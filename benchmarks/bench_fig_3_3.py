"""Figure 3.3 — source inversion: initial guess, 5th iteration, solution.

The paper inverts the fault source fields — delay time T(x),
dislocation amplitude u0(x), rise time t0(x) — with the material fixed,
and shows the profiles at the initial guess, the 5th Newton iteration,
and convergence ("the latter essentially coincides with the target"),
plus the displacement fit at a receiver.

We reproduce exactly that protocol on the scaled antiplane section and
report the relative error of each source field at the same three
stages, and the receiver waveform misfit.
"""

import numpy as np

from _common import emit, run_once
from repro.core import AntiplaneSetup, SourceInversion
from repro.inverse.fault_source import SourceParams


def vs_section(pts):
    vs = np.full(len(pts), 1.8)
    vs = np.where(pts[:, 1] > 6.0, 2.4, vs)
    vs = np.where(pts[:, 1] > 12.0, 3.0, vs)
    return vs


def fig_3_3():
    setup = AntiplaneSetup(
        vs_section,
        lengths=(24.0, 12.0),
        wave_shape=(48, 24),
        fault_x_frac=0.5,
        fault_depth_frac=(0.2, 0.8),
        rupture_velocity=2.2,
        u0=1.0,
        t0=1.0,
        n_receivers=32,
        t_end=18.0,
        noise=0.0,
        seed=0,
    )
    pt = setup.params_true
    inv = SourceInversion(setup)
    p0 = SourceParams(
        u0=np.full(setup.fault.ns, 1.3),
        t0=np.full(setup.fault.ns, 1.4),
        T=np.full(setup.fault.ns, float(np.mean(pt.T))),
    )

    stages = {}

    def rel(p):
        return {
            "u0": float(np.linalg.norm(p.u0 - pt.u0) / np.linalg.norm(pt.u0)),
            "t0": float(np.linalg.norm(p.t0 - pt.t0) / np.linalg.norm(pt.t0)),
            "T": float(
                np.linalg.norm(p.T - pt.T) / max(np.linalg.norm(pt.T), 1e-12)
            ),
        }

    def cb(it, x, J):
        if it == 4:  # after the 5th Newton iteration
            stages["5th iteration"] = rel(SourceParams.unpack(x))

    stages["initial guess"] = rel(p0)
    p_hat, res = inv.run(p_init=p0, max_newton=25, cg_maxiter=40, callback=cb)
    stages["solution"] = rel(p_hat)

    # receiver displacement fit
    s = setup
    u_init = s.solver.march(
        s.mu_true_e, s.fault.forcing(s.mu_true_e, p0, s.dt), s.nsteps, s.dt
    )[:, s.receivers]
    u_hat = s.solver.march(
        s.mu_true_e, s.fault.forcing(s.mu_true_e, p_hat, s.dt), s.nsteps, s.dt
    )[:, s.receivers]
    mis_init = float(
        np.linalg.norm(u_init - s.clean_data) / np.linalg.norm(s.clean_data)
    )
    mis_hat = float(
        np.linalg.norm(u_hat - s.clean_data) / np.linalg.norm(s.clean_data)
    )

    lines = ["Source inversion stages (Figure 3.3):", ""]
    lines.append(f"{'stage':>16} {'u0 rel err':>11} {'t0 rel err':>11} {'T rel err':>11}")
    for name in ("initial guess", "5th iteration", "solution"):
        e = stages[name]
        lines.append(
            f"{name:>16} {e['u0']:>11.3f} {e['t0']:>11.3f} {e['T']:>11.3f}"
        )
    lines.append("")
    lines.append("converged source fields vs target (per fault segment):")
    lines.append(f"{'depth km':>9} {'u0':>7} {'u0*':>7} {'t0':>7} {'t0*':>7} {'T':>7} {'T*':>7}")
    for d, a, b, c, dd, e, f in zip(
        setup.fault.depths, p_hat.u0, pt.u0, p_hat.t0, pt.t0, p_hat.T, pt.T
    ):
        lines.append(
            f"{d:>9.2f} {a:>7.3f} {b:>7.3f} {c:>7.3f} {dd:>7.3f} "
            f"{e:>7.3f} {f:>7.3f}"
        )
    lines.append("")
    lines.append(
        f"receiver displacement misfit: initial {mis_init:.3f} -> "
        f"converged {mis_hat:.4f}"
    )
    lines.append(
        f"wave-equation solves used: {inv.problem.n_wave_solves} "
        f"({res.newton_iterations} Newton, {res.total_cg_iterations} CG)"
    )
    return "\n".join(lines), (stages, mis_init, mis_hat)


def test_fig_3_3(benchmark):
    text, (stages, mis_init, mis_hat) = run_once(benchmark, fig_3_3)
    emit("fig_3_3", text)
    # the 5th iteration improves the source model overall (individual
    # fields can transiently trade off — the paper's middle column shows
    # t0 still off-target at iteration 5 too); the converged solution
    # "essentially coincides with the target"
    mean5 = np.mean([stages["5th iteration"][f] for f in ("u0", "t0", "T")])
    mean0 = np.mean([stages["initial guess"][f] for f in ("u0", "t0", "T")])
    assert mean5 < mean0
    for f in ("u0", "t0", "T"):
        assert stages["solution"][f] < 0.05
    assert mis_hat < 0.02
    assert mis_hat < 0.1 * mis_init
