"""Strong scaling of the distributed solver over real processes.

Times the same fixed-size problem (the quickstart-scale conforming
basin box) three ways:

* the serial :class:`repro.solver.ElasticWaveSolver` (the baseline a
  parallel run has to beat);
* the distributed solver over the **simulated** transport (``SimWorld``
  — all ranks on one core; measures the bookkeeping overhead of the
  SPMD decomposition);
* the distributed solver over the **process** transport (``ProcWorld``
  — persistent workers, shared-memory boundary exchange, comm/compute
  overlap; real cores).

Also measures the transport's alpha/beta by ping-pong and the element
kernel's sustained flop rate, builds the calibrated machine model from
them (:func:`repro.parallel.perfmodel.machine_from_measurements`), and
reports its predicted step time next to the measured one.

Writes ``BENCH_scaling.json``.  ``cpu_count`` is recorded because the
numbers only mean what they appear to mean when the worker count fits
in physical cores — on a 1-core container every process-transport run
is oversubscribed and the speedup column shows overhead, not scaling.

Usage::

    python benchmarks/bench_scaling.py                    # full run
    python benchmarks/bench_scaling.py --smoke            # CI-sized
    python benchmarks/bench_scaling.py --workers 1,2,4 --size 16
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from _common import export_telemetry, timed

from repro.fem import ElasticOperator
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition
from repro.octree import build_adaptive_octree
from repro.parallel import (
    DistributedWaveSolver,
    ProcWorld,
    SimWorld,
    machine_from_measurements,
    measure_transport,
    predict_scalability,
)
from repro.physics.elastic import lame_from_velocities
from repro.solver import ElasticWaveSolver

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


def effective_cpu_count() -> int:
    """Cores this process may actually schedule on — the CPU affinity
    mask when the platform exposes one (containers routinely pin fewer
    cores than ``os.cpu_count()`` reports), else ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class PointForce:
    """Picklable Gaussian point force (worker processes need to
    unpickle the force function)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t: float, out: np.ndarray | None = None) -> np.ndarray:
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return b


def build_problem(n: int):
    """Conforming uniform ``n^3`` mesh (power-of-two ``n``)."""
    level = int(np.log2(n))
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=level
    )
    mesh = extract_mesh(tree, L=L)
    return tree, mesh, PointForce(mesh.nnode // 2, mesh.nnode)


def serial_reference(mesh, tree, force, nsteps):
    """Serial wall time and the state ``u^nsteps`` (the distributed
    run's final state; the serial callback reports pre-update states,
    so march one extra step to observe it)."""
    solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    # half-step offsets keep ceil(t_end / dt) unambiguous under float
    # roundoff: exactly nsteps + 1 serial steps, nsteps distributed
    _, elapsed = timed(
        "bench.serial", solver.run, force, (nsteps + 0.5) * solver.dt,
        callback=cb,
    )
    # don't charge the distributed runs for the extra observation step
    return solver.dt, elapsed * nsteps / (nsteps + 1), out["u"]


def measure_flop_rate(mesh, repeats: int = 20) -> float:
    """Sustained flop/s of one process running the element kernel —
    the ``flop_rate`` the calibrated machine model uses."""
    vs, vp, rho = MAT.query(mesh.elem_centers)
    lam, mu = lame_from_velocities(vs, vp, rho)
    op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    u = np.random.default_rng(0).standard_normal((mesh.nnode, 3))
    out = np.empty_like(u)
    op.matvec(u, out=out)  # warm-up

    def _loop():
        for _ in range(repeats):
            op.matvec(u, out=out)

    _, dt = timed("bench.flop_rate", _loop)
    return op.flops_per_matvec * repeats / dt


def run_distributed(world, mesh, parts, force, dt, nsteps):
    solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=dt)
    u, elapsed = timed(
        "bench.distributed", solver.run, force, (nsteps - 0.5) * dt
    )
    return elapsed, u, getattr(solver, "last_timings", None)


def main(argv=None) -> dict:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_scaling.json")
    ap.add_argument("--size", type=int, default=16,
                    help="mesh is size^3 elements (power of two)")
    ap.add_argument("--steps", type=int, default=100)
    ap.add_argument("--workers", default="1,2,4,8",
                    help="comma-separated worker counts")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (8^3 elements, 10 steps, 1-2 workers)")
    args = ap.parse_args(argv)
    if args.smoke:
        args.size, args.steps, args.workers = 8, 10, "1,2"
    worker_counts = [int(w) for w in args.workers.split(",")]

    tree, mesh, force = build_problem(args.size)
    dt, serial_s, u_ref = serial_reference(mesh, tree, force, args.steps)
    ref_scale = float(np.abs(u_ref).max())
    flop_rate = measure_flop_rate(mesh)
    vs, vp, rho = MAT.query(mesh.elem_centers)
    lam, mu = lame_from_velocities(vs, vp, rho)

    with ProcWorld(2) as w2:
        meas = measure_transport(w2)
    machine = machine_from_measurements(meas, flop_rate=flop_rate)

    ncores = effective_cpu_count()
    rows = []
    for nw in worker_counts:
        parts = (
            rcb_partition(mesh.elem_centers, nw)
            if nw > 1
            else np.zeros(mesh.nelem, dtype=np.int64)
        )
        sim_s, u_sim, _ = run_distributed(
            SimWorld(nw), mesh, parts, force, dt, args.steps
        )
        with ProcWorld(nw) as world:
            proc_s, u_proc, timings = run_distributed(
                world, mesh, parts, force, dt, args.steps
            )
        assert np.array_equal(u_sim, u_proc)
        err = float(np.abs(u_proc - u_ref).max() / ref_scale)
        predicted = predict_scalability(
            mesh, lam, mu, nw, machine=machine, baseline_rate=flop_rate
        )
        rows.append(
            {
                "workers": nw,
                "cpu_count": ncores,
                # more workers than schedulable cores: the speedup
                # column measures overhead, not scaling
                "oversubscribed": nw > ncores,
                "sim_seconds": sim_s,
                "proc_seconds": proc_s,
                "speedup_vs_serial": serial_s / proc_s,
                "sim_speedup_vs_serial": serial_s / sim_s,
                "max_rel_err_vs_serial": err,
                "model_step_seconds": predicted.step_seconds,
                "model_speedup_vs_serial": serial_s
                / (predicted.step_seconds * args.steps),
                "worker_compute_seconds": (
                    [t["t_compute"] for t in timings] if timings else None
                ),
                "worker_wait_seconds": (
                    [t["t_wait"] for t in timings] if timings else None
                ),
            }
        )
        print(
            f"P={nw:2d}  serial {serial_s:7.3f}s  sim {sim_s:7.3f}s  "
            f"proc {proc_s:7.3f}s  speedup {serial_s / proc_s:5.2f}x  "
            f"rel err {err:.2e}"
            + ("  [oversubscribed]" if nw > ncores else "")
        )

    result = {
        "problem": {
            "n": args.size,
            "nelem": int(mesh.nelem),
            "nnode": int(mesh.nnode),
            "nsteps": args.steps,
            "dt": dt,
        },
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": ncores,
        "smoke": bool(args.smoke),
        "serial_seconds": serial_s,
        "flop_rate": flop_rate,
        "transport": meas,
        "scaling": rows,
    }
    with open(args.json, "w") as f:
        json.dump(result, f, indent=2)
    print(f"wrote {args.json} (cpu_count={result['cpu_count']})")
    export_telemetry("bench_scaling")
    return result


if __name__ == "__main__":
    main()
