"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment once under pytest-benchmark (``pedantic`` with a single
round — these are simulations, not microbenchmarks), prints the
table/series the paper reports, and writes the same text to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

import os

from repro import telemetry
from repro.util.timing import Timer

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    value (simulations are too long for statistical repetition)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed(span_name: str, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` inside a telemetry span and a
    :class:`Timer`; returns ``(result, seconds)``.

    Replaces the hand-paired ``time.perf_counter()`` calls the
    benchmarks used to carry: the wall time feeds the benchmark's own
    tables as before, and when telemetry is enabled the same interval
    lands in the trace under ``span_name``.
    """
    with Timer() as t, telemetry.span(span_name):
        result = fn(*args, **kwargs)
    return result, t.seconds


def export_telemetry(name: str) -> dict | None:
    """Write the active trace + a PerfReport under ``benchmarks/out/``
    (``<name>.trace.jsonl`` / ``<name>.perfreport.txt``).  No-op (None)
    when telemetry is disabled; returns the report dict otherwise."""
    if not telemetry.enabled():
        return None
    os.makedirs(OUT_DIR, exist_ok=True)
    telemetry.dump_jsonl(os.path.join(OUT_DIR, f"{name}.trace.jsonl"))
    report = telemetry.PerfReport.collect(
        tracer=telemetry.current_tracer(),
        metrics=telemetry.metrics(),
        title=f"PerfReport: {name}",
    )
    with open(os.path.join(OUT_DIR, f"{name}.perfreport.txt"), "w") as f:
        f.write(report.as_text() + "\n")
    return report.as_dict()
