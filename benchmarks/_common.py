"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment once under pytest-benchmark (``pedantic`` with a single
round — these are simulations, not microbenchmarks), prints the
table/series the paper reports, and writes the same text to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    value (simulations are too long for statistical repetition)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
