"""Throughput of the batched multi-scenario execution engine.

Measures per-scenario wall time of the fused ensemble time loops
against the looped-serial baseline (the same B scenarios marched one
at a time), for the 2D scalar march and the 3D elastic solve, at
B in {1, 4, 16, 64}, on every available backend.  The batched loops
amortize the per-step Python dispatch and every indirect-addressing
pass (gather + CSR scatter) over the whole batch, and turn the
element GEMM into a level-3 product — the win the multi-shot
inversion's "one batched forward + one batched adjoint" rests on.

Usage::

    python benchmarks/bench_batch.py --json BENCH_batch.json
    python benchmarks/bench_batch.py --smoke     # CI-sized

Emits ``BENCH_batch.json`` with per-(backend, scenario, B) seconds per
scenario and the batched-over-looped speedup.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from _common import export_telemetry, timed

from repro.backend import available_backends, use_backend
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import (
    ElasticWaveSolver,
    RegularGridScalarWave,
    batched_forcing,
)
MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


def _time_pair(looped, batched, repeat: int) -> tuple[float, float]:
    """Time both variants ``repeat`` times, interleaved, and return
    the (looped, batched) pair of the rep with the *median* ratio.
    Interleaving puts each looped/batched pair inside one short time
    window, so CPU frequency drift cancels out of the per-rep ratio;
    the median rep then rejects the occasional descheduled outlier
    that best-of-N timing lets poison one side of the division."""
    pairs = []
    for _ in range(repeat):
        _, t_l = timed("bench.looped", looped)
        _, t_b = timed("bench.batched", batched)
        pairs.append((t_l, t_b))
    pairs.sort(key=lambda p: p[0] / p[1])
    return pairs[len(pairs) // 2]


# ------------------------------------------------------------- scalar 2D


def scalar_case(shape, nsteps, batches, repeat):
    solver = RegularGridScalarWave(shape, 100.0, rho=1000.0)
    rng = np.random.default_rng(0)
    mu = rng.uniform(2e9, 4e9, solver.nelem)
    dt = solver.stable_dt(mu)
    nodes = rng.integers(0, solver.nnode, size=max(batches))
    fbuf = np.zeros(solver.nnode)

    # a finite point pulse per scenario (onset staggered over the
    # batch, None once quiet) — sources with compact support in time
    # are the realistic case and exercise the dead-column skip
    def forcing_for(b):
        node = int(nodes[b])
        k0 = 2 + (b % 8)

        def forcing(k):
            if not k0 <= k < k0 + 10:
                return None
            fbuf.fill(0.0)
            fbuf[node] = dt**2 * np.sin(0.3 * (k - k0) + b)
            return fbuf

        return forcing

    rows = []
    for B in batches:
        cols = [forcing_for(b) for b in range(B)]

        def looped():
            for fn in cols:
                solver.march(mu, fn, nsteps, dt, store=False)

        def batched():
            solver.march(
                mu, batched_forcing(cols, solver.nnode), nsteps, dt,
                store=False, batch=B,
            )

        looped()  # warm caches / coefficient hoist
        batched()  # warm the batch workspace + replicated scatter plan
        t_loop, t_batch = _time_pair(looped, batched, repeat)
        rows.append(
            {
                "B": B,
                "looped_s_per_scenario": t_loop / B,
                "batched_s_per_scenario": t_batch / B,
                "speedup": t_loop / t_batch,
            }
        )
    return {
        "grid": list(shape),
        "nnode": solver.nnode,
        "nsteps": nsteps,
        "rows": rows,
    }


# ------------------------------------------------------------ elastic 3D


def elastic_case(n, nsteps, batches, repeat):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n),
        max_level=int(np.log2(n)) + 1,
    )
    mesh = extract_mesh(tree, L=L)
    solver = ElasticWaveSolver(mesh, tree, MAT)  # production config
    dt = solver.dt
    t_end = (nsteps - 0.5) * dt
    rng = np.random.default_rng(1)
    nodes = rng.integers(0, mesh.nnode, size=max(batches))

    # a cheap nodal pulse: the scenarios differ in source node and
    # onset, go quiet after ~10 steps (returning None), and cost the
    # serial and batched loops the same — so the measured ratio is the
    # time-loop speedup, not source-evaluation overhead
    def force_for(b):
        node = int(nodes[b])
        t0 = (4.0 + 0.5 * (b % 8)) * dt

        def fn(t, out):
            if t > t0 + 6.0 * dt:
                return None
            out.fill(0.0)
            out[node, 2] = 1e9 * np.exp(-(((t - t0) / (1.5 * dt)) ** 2))
            return out

        return fn

    rows = []
    for B in batches:
        forces = [force_for(b) for b in range(B)]

        def looped():
            for fc in forces:
                solver.run(fc, t_end)

        def batched():
            solver.run_batch(forces, t_end)

        solver.run(forces[0], t_end)  # warmup
        solver.run_batch(forces, t_end)  # batch workspace + plan
        t_loop, t_batch = _time_pair(looped, batched, repeat)
        rows.append(
            {
                "B": B,
                "looped_s_per_scenario": t_loop / B,
                "batched_s_per_scenario": t_batch / B,
                "speedup": t_loop / t_batch,
            }
        )
    return {
        "mesh_n": n,
        "nelem": mesh.nelem,
        "nnode": mesh.nnode,
        "nsteps": nsteps,
        "rows": rows,
    }


def main(argv=None) -> dict:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_batch.json")
    ap.add_argument("--batches", default="1,4,16,64",
                    help="comma-separated batch widths")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timing repetitions (best-of)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized problems, reduced batch widths")
    args = ap.parse_args(argv)

    batches = [int(b) for b in args.batches.split(",")]
    if args.smoke:
        batches = [b for b in batches if b <= 16] or [1, 4]
        scalar_cfg = dict(shape=(16, 8), nsteps=40)
        elastic_cfg = dict(n=4, nsteps=15)
        repeat = 1
    else:
        scalar_cfg = dict(shape=(24, 12), nsteps=200)
        elastic_cfg = dict(n=4, nsteps=60)
        repeat = args.repeat

    backends = available_backends()
    results = {
        "smoke": bool(args.smoke),
        "batches": batches,
        "backends": backends,
        "cases": {},
    }
    for backend in backends:
        with use_backend(backend):
            results["cases"][backend] = {
                "scalar_march_2d": scalar_case(
                    batches=batches, repeat=repeat, **scalar_cfg
                ),
                "elastic_solve_3d": elastic_case(
                    batches=batches, repeat=repeat, **elastic_cfg
                ),
            }

    for backend, cases in results["cases"].items():
        for name, case in cases.items():
            print(f"-- {backend} / {name} --")
            for row in case["rows"]:
                print(
                    f"  B={row['B']:>3}  "
                    f"looped {row['looped_s_per_scenario'] * 1e3:8.2f} ms/scn  "
                    f"batched {row['batched_s_per_scenario'] * 1e3:8.2f} ms/scn  "
                    f"speedup {row['speedup']:.2f}x"
                )

    with open(args.json, "w") as f:
        json.dump(results, f, indent=2)
    print(f"wrote {args.json}")
    export_telemetry("bench_batch")
    return results


if __name__ == "__main__":
    main()
