"""Extension — 3D elastic inversion preview.

The paper presents 2D antiplane inversions and announces that "results
from 3D inversion will be presented at SC2003".  This benchmark runs
that experiment at laptop scale: invert BOTH Lamé fields of a two-layer
3D elastic model from three-component records (surface plus a sparse
side array) of four buried point forces, with the exact-discrete-adjoint
Gauss-Newton-CG machinery (one forward + one adjoint elastic solve per
CG iteration, as in the 2D case).
"""

import numpy as np

from _common import emit, run_once
from repro.inverse import ElasticInverseProblem, MaterialGrid, gauss_newton_cg
from repro.mesh import uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.sources.fault import PointForceSource, SourceCollection

L = 2000.0


def stf(t):
    return (
        np.where(
            (t > 0) & (t < 0.3),
            np.sin(np.pi * np.clip(t, 0, 0.3) / 0.3) ** 2,
            0.0,
        )
        * 1e10
    )


def elastic_3d_inversion():
    n = 8
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = uniform_hex_mesh(n, L=L)
    rho = np.full(mesh.nelem, 2000.0)
    grid = MaterialGrid((4, 4, 2), (L, L, L))

    lam_true = grid.sample(lambda p: 2.0e9 + 1.5e9 * (p[:, 2] > 0.5 * L))
    mu_true = grid.sample(lambda p: 1.0e9 + 0.8e9 * (p[:, 2] > 0.5 * L))
    m_true = np.concatenate([lam_true, mu_true])

    srcs = [
        PointForceSource(
            position=np.array([0.35 * L, 0.4 * L, 0.45 * L]),
            direction=np.array([1.0, 0.3, 0.5]),
            time_function=stf,
        ),
        PointForceSource(
            position=np.array([0.7 * L, 0.65 * L, 0.3 * L]),
            direction=np.array([0.0, 1.0, 0.7]),
            time_function=lambda t: stf(t - 0.1),
        ),
        PointForceSource(
            position=np.array([0.25 * L, 0.75 * L, 0.7 * L]),
            direction=np.array([0.6, -1.0, 0.2]),
            time_function=lambda t: stf(t - 0.2),
        ),
        PointForceSource(
            position=np.array([0.8 * L, 0.2 * L, 0.8 * L]),
            direction=np.array([-0.5, 0.4, 1.0]),
            time_function=lambda t: stf(t - 0.3),
        ),
    ]
    forces = SourceCollection(mesh, tree, srcs)
    fbuf = np.zeros((mesh.nnode, 3))
    force_fn = lambda t: forces.forces_at(t, fbuf)

    dt = 0.4 * (L / n) / 2200.0 / np.sqrt(3)
    nsteps = int(2.4 / dt)
    probe = ElasticInverseProblem(
        mesh, grid, rho, np.arange(0), np.zeros((nsteps + 1, 0, 3)), dt,
        nsteps, force_fn,
    )
    lam_e, mu_e = probe.fields(m_true)
    u = probe._march(
        lam_e, mu_e, lambda k: dt**2 * force_fn(k * dt), store=True
    )
    # free-surface receivers plus a sparse borehole-like side array
    # (improves lambda illumination through P conversions)
    rec = np.unique(
        np.concatenate(
            [mesh.surface_nodes(2, 0), mesh.surface_nodes(0, 0)[::2]]
        )
    )
    data = u[:, rec, :]

    prob = ElasticInverseProblem(
        mesh, grid, rho, rec, data, dt, nsteps, force_fn
    )
    m0 = np.concatenate(
        [np.full(grid.n, float(lam_true.mean())),
         np.full(grid.n, float(mu_true.mean()))]
    )
    J0 = prob.objective(m0)[0]
    res = gauss_newton_cg(prob, m0, max_newton=12, cg_maxiter=30)
    lam_hat, mu_hat = prob.split(res.m)
    e_lam = float(np.linalg.norm(lam_hat - lam_true) / np.linalg.norm(lam_true))
    e_mu = float(np.linalg.norm(mu_hat - mu_true) / np.linalg.norm(mu_true))
    e0_lam = float(np.linalg.norm(m0[: grid.n] - lam_true) / np.linalg.norm(lam_true))
    e0_mu = float(np.linalg.norm(m0[grid.n :] - mu_true) / np.linalg.norm(mu_true))

    lines = [
        "3D elastic (lambda, mu) inversion — the paper's announced next step:",
        f"  wave grid {mesh.nelem} hexes / {mesh.nnode} points x 3 components,",
        f"  material grid {grid.shape} x 2 fields = {2 * grid.n} parameters,",
        f"  {len(rec)} 3-component receivers (surface + side array), "
        "4 buried point forces",
        "",
        f"  J: {J0:.3e} -> {res.objective:.3e} "
        f"({res.newton_iterations} Newton / {res.total_cg_iterations} CG "
        f"= {prob.n_wave_solves} elastic wave solves)",
        f"  mu     rel error: {e0_mu:.3f} -> {e_mu:.3f}",
        f"  lambda rel error: {e0_lam:.3f} -> {e_lam:.3f}",
        "  (mu is constrained by S waves everywhere; lambda only where P",
        "   conversions illuminate it — the expected contrast)",
    ]
    return "\n".join(lines), (J0, res.objective, e_mu, e_lam, e0_mu, e0_lam)


def test_3d_elastic_inversion(benchmark):
    text, (J0, J, e_mu, e_lam, e0_mu, e0_lam) = run_once(
        benchmark, elastic_3d_inversion
    )
    emit("elastic_3d_inversion", text)
    assert J < 1e-2 * J0
    assert e_mu < 0.35 * e0_mu
    assert e_lam < 0.6 * e0_lam
