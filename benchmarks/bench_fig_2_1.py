"""Figure 2.1 — the etree method: construct -> balance -> transform.

Runs the full out-of-core mesh-generation pipeline on a synthetic LA
basin material model with a deliberately small page cache, and reports
what the paper reports about the method: octant/element/node counts,
hanging-point counts, per-step wall time, and disk traffic.  Also
measures the paper's *local balancing* speedup claim (8-28x on their
workloads) by timing blocked local balancing against the plain ripple
algorithm on the same octree.
"""

import time

import numpy as np

from _common import emit, run_once
from repro.etree import generate_mesh_database
from repro.materials import SyntheticBasinModel
from repro.octree import (
    LinearOctree,
    balance_octree,
    build_adaptive_octree,
    is_balanced,
    local_balance_octree,
)
from repro.mesh.hexmesh import wavelength_target


def fig_2_1(tmp_dir="/tmp/repro_etree_bench"):
    lines = []
    L = 80_000.0
    mat = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=250.0)
    result = generate_mesh_database(
        tmp_dir,
        mat,
        L=L,
        fmax=0.1,
        max_level=6,
        box_frac=(1, 1, 0.5),
        h_min=1250.0,
        blocks_per_axis=4,
        cache_pages=64,  # small cache: the mesh lives on disk
    )
    lines.append("etree pipeline on the synthetic LA basin (out-of-core):")
    lines.append(f"  unbalanced octants : {result.n_octants_unbalanced:,}")
    lines.append(f"  elements (balanced): {result.n_elements:,}")
    lines.append(f"  grid points        : {result.n_nodes:,}")
    lines.append(
        f"  hanging points     : {result.n_hanging:,} "
        f"({100 * result.n_hanging / result.n_nodes:.1f}% — paper's LA mesh: 15.1%)"
    )
    lines.append(f"  construct          : {result.construct_seconds:.2f} s")
    lines.append(f"  balance            : {result.balance_seconds:.2f} s")
    lines.append(f"  transform          : {result.transform_seconds:.2f} s")
    for step, st in result.io_stats.items():
        lines.append(
            f"  {step:<9} disk I/O : {st['page_reads']:,} page reads, "
            f"{st['page_writes']:,} page writes"
        )

    # local vs plain (ripple) balancing on a heavily unbalanced octree
    rng = np.random.default_rng(0)
    sites = rng.random((80, 3))

    def target(c, s):
        inside = np.max(
            np.abs(c[:, None, :] - sites[None, :, :]), axis=2
        ) < (s[:, None] / 2)
        return np.where(inside.any(axis=1), 1 / 128, 1 / 8)

    tree = build_adaptive_octree(target, max_level=7)
    t0 = time.perf_counter()
    g = balance_octree(tree)
    t_global = time.perf_counter() - t0
    t0 = time.perf_counter()
    loc = local_balance_octree(tree, blocks_per_axis=4)
    t_local = time.perf_counter() - t0
    assert g == loc and is_balanced(loc)
    # working set: largest per-block octant count vs the whole tree —
    # the mechanism behind the paper's 8-28x out-of-core speedup
    from repro.octree.octant import octant_anchor
    from repro.octree.morton import MAX_COORD

    bsize = MAX_COORD // 4
    x, y, z, _ = octant_anchor(tree.keys)
    bid = (x // bsize) * 16 + (y // bsize) * 4 + (z // bsize)
    biggest_block = int(np.bincount(bid).max())
    lines.append("")
    lines.append(
        f"local balancing of {len(tree):,} -> {len(g):,} octants "
        f"(2-to-1 violations ripple across {len(g) - len(tree):,} splits):"
    )
    lines.append(
        f"  ripple (global) {t_global:.2f} s | local (4^3 blocks) "
        f"{t_local:.2f} s | identical results verified"
    )
    lines.append(
        f"  peak working set: {biggest_block:,} octants/block vs "
        f"{len(tree):,} total ({len(tree) / biggest_block:.0f}x smaller) — "
        "this locality is what produced the paper's 8-28x speedup on "
        "multi-GB on-disk meshes; our in-memory numpy rounds are already "
        "vectorized, so wall-clock parity here is expected"
    )
    return "\n".join(lines), result


def test_fig_2_1(benchmark, tmp_path):
    text, result = run_once(benchmark, lambda: fig_2_1(str(tmp_path)))
    emit("fig_2_1", text)
    assert result.n_elements >= result.n_octants_unbalanced
    assert result.n_hanging > 0
