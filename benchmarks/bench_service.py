"""Latency and throughput of the warm simulation service.

Two questions, matching the service's two claims:

* **Warm setup** — how much of a repeat scenario run the artifact
  cache removes: wall time of ``Engine.simulation(spec)`` cold (mesh
  generation + assembly + plan construction), warm (memory-tier hit),
  and disk-warm (a fresh process loading the CRC-verified disk tier).
* **Coalesced throughput** — per-scenario wall time of B
  independently-submitted requests packed by the
  :class:`CoalescingScheduler` into one fused ``run_batch`` loop,
  against the same B requests run solo through the warm engine, and
  against a *direct* ``run_batch`` call (the scheduler's overhead
  ceiling — BENCH_batch.json's numbers come from that direct path),
  at B in {1, 4, 16}.

Usage::

    python benchmarks/bench_service.py --json BENCH_service.json
    python benchmarks/bench_service.py --smoke     # CI-sized

Emits ``BENCH_service.json``; the CI smoke asserts warm setup is
>= 10x faster than cold and coalesced dispatch tracks the direct
batched loop.
"""

from __future__ import annotations

import argparse
import json
import tempfile

import numpy as np

from _common import export_telemetry, timed

from repro.io.seismogram import ReceiverArray
from repro.materials import HomogeneousMaterial
from repro.service import (
    CoalescingScheduler,
    Engine,
    ForwardRequest,
    ServicePolicy,
    SimulationSpec,
)
from repro.sources import idealized_strike_slip
from repro.sources.fault import SourceCollection

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


def make_spec(max_level: int) -> SimulationSpec:
    return SimulationSpec(
        material=MAT,
        L=8000.0,
        fmax=0.4,
        box_frac=(1, 1, 0.5),
        max_level=max_level,
    )


def bench_setup(spec: SimulationSpec, repeat: int) -> dict:
    """Cold vs warm vs disk-warm construction latency."""
    with tempfile.TemporaryDirectory() as disk:
        colds = []
        for _ in range(repeat):
            eng = Engine(disk_dir=disk)
            eng.cache.clear(disk=True)
            _, t = timed("service.cold_setup", eng.simulation, spec)
            colds.append(t)
        # warm: memory-tier hits on the live engine
        warms = []
        for _ in range(max(repeat * 5, 10)):
            _, t = timed("service.warm_setup", eng.simulation, spec)
            warms.append(t)
        # disk-warm: a fresh engine (new process stand-in) over the
        # persisted artifact tier
        disk_warms = []
        for _ in range(repeat):
            fresh = Engine(disk_dir=disk)
            _, t = timed("service.disk_setup", fresh.simulation, spec)
            disk_warms.append(t)
    cold = float(np.median(colds))
    warm = float(np.median(warms))
    disk_warm = float(np.median(disk_warms))
    return {
        "cold_s": cold,
        "warm_s": warm,
        "disk_warm_s": disk_warm,
        "warm_speedup": cold / max(warm, 1e-12),
        "disk_speedup": cold / max(disk_warm, 1e-12),
    }


def bench_coalescing(
    spec: SimulationSpec, nsteps: int, batches, repeat: int
) -> dict:
    """Per-scenario seconds: solo submits vs coalesced dispatch vs the
    direct ``run_batch`` ceiling."""
    engine = Engine()
    sim = engine.simulation(spec)  # warm once; every path below is hot
    t_end = (nsteps - 0.5) * sim.dt
    scenario = idealized_strike_slip(L=spec.L)
    rec = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])

    rows = []
    for B in batches:
        requests = [
            ForwardRequest(spec, scenario, t_end, receivers=rec)
            for _ in range(B)
        ]

        def solo():
            for r in requests:
                engine.submit(
                    r.spec, r.scenario, r.t_end, receivers=r.receivers
                )

        def coalesced():
            with CoalescingScheduler(
                engine, max_batch=B, max_wait=5.0
            ) as sched:
                sched.map_wait(requests)

        def direct():
            forces = [
                SourceCollection(sim.mesh, sim.tree, scenario.sources)
                for _ in range(B)
            ]
            sim.solver.run_batch(
                forces, t_end, receivers=ReceiverArray(sim.mesh, rec)
            )

        solo()  # warm every code path + batch workspace
        coalesced()
        direct()
        t_solo = t_coal = t_direct = float("inf")
        for _ in range(repeat):
            _, t = timed("service.solo", solo)
            t_solo = min(t_solo, t)
            _, t = timed("service.coalesced", coalesced)
            t_coal = min(t_coal, t)
            _, t = timed("service.direct_batch", direct)
            t_direct = min(t_direct, t)
        rows.append(
            {
                "B": B,
                "solo_s_per_scenario": t_solo / B,
                "coalesced_s_per_scenario": t_coal / B,
                "direct_batch_s_per_scenario": t_direct / B,
                "speedup": t_solo / t_coal,
                "coalesced_vs_direct": t_coal / t_direct,
            }
        )
    return {
        "nelem": sim.mesh.nelem,
        "nnode": sim.mesh.nnode,
        "nsteps": nsteps,
        "rows": rows,
    }


def bench_policy(
    spec: SimulationSpec, nsteps: int, B: int, repeat: int
) -> dict:
    """Coalesced dispatch with the robustness policy disarmed vs armed.

    Armed means every admission-path guard is live: bounded queue
    depth, per-request deadline minting at submit plus the dispatch
    and demux-time recheck, and the circuit breaker's ``allow()``
    gate.  The overhead budget is <=2 % per scenario (the hard gate
    lives in ``check_overhead.py --policy-armed``; this records the
    measured ratio alongside the other service numbers).
    """
    engine = Engine()
    sim = engine.simulation(spec)
    t_end = (nsteps - 0.5) * sim.dt
    scenario = idealized_strike_slip(L=spec.L)
    rec = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])
    armed_policy = ServicePolicy(max_queue_depth=1024, deadline=600.0)

    def drive(policy):
        # fresh requests each run: an armed policy mints a deadline
        # per submit, which is part of the cost being measured
        requests = [
            ForwardRequest(spec, scenario, t_end, receivers=rec)
            for _ in range(B)
        ]
        with CoalescingScheduler(
            engine, max_batch=B, max_wait=5.0, policy=policy
        ) as sched:
            sched.map_wait(requests)

    drive(None)  # warm every code path + batch workspace
    drive(armed_policy)
    t_off = t_on = float("inf")
    for _ in range(repeat):
        _, t = timed("service.policy_off", drive, None)
        t_off = min(t_off, t)
        _, t = timed("service.policy_on", drive, armed_policy)
        t_on = min(t_on, t)
    return {
        "B": B,
        "unarmed_s_per_scenario": t_off / B,
        "armed_s_per_scenario": t_on / B,
        "overhead": t_on / t_off - 1.0,
        "budget": 0.02,
    }


def main(argv=None) -> dict:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_service.json")
    ap.add_argument("--batches", default="1,4,16",
                    help="comma-separated batch widths")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timing repetitions (best-of)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized problem, fewer steps")
    args = ap.parse_args(argv)

    batches = [int(b) for b in args.batches.split(",")]
    if args.smoke:
        max_level, nsteps, repeat = 4, 15, 1
    else:
        max_level, nsteps, repeat = 4, 60, args.repeat

    spec = make_spec(max_level)
    results = {
        "smoke": bool(args.smoke),
        "batches": batches,
        "setup": bench_setup(spec, repeat),
        "coalescing": bench_coalescing(spec, nsteps, batches, repeat),
        # best-of floor of 5: the armed-vs-unarmed delta is a few
        # microseconds per request, far below one-shot timing noise
        "policy": bench_policy(spec, nsteps, max(batches), max(repeat, 5)),
    }

    s = results["setup"]
    print(
        f"setup: cold {s['cold_s'] * 1e3:9.1f} ms   "
        f"warm {s['warm_s'] * 1e6:7.0f} us ({s['warm_speedup']:.0f}x)   "
        f"disk-warm {s['disk_warm_s'] * 1e3:7.1f} ms "
        f"({s['disk_speedup']:.1f}x)"
    )
    for row in results["coalescing"]["rows"]:
        print(
            f"  B={row['B']:>3}  "
            f"solo {row['solo_s_per_scenario'] * 1e3:8.2f} ms/scn  "
            f"coalesced {row['coalesced_s_per_scenario'] * 1e3:8.2f} ms/scn  "
            f"speedup {row['speedup']:.2f}x  "
            f"vs direct batch {row['coalesced_vs_direct']:.3f}"
        )

    p = results["policy"]
    print(
        f"  policy (B={p['B']}): unarmed "
        f"{p['unarmed_s_per_scenario'] * 1e3:8.2f} ms/scn  armed "
        f"{p['armed_s_per_scenario'] * 1e3:8.2f} ms/scn  overhead "
        f"{p['overhead'] * 100:+.2f}% (budget {p['budget'] * 100:.0f}%)"
    )

    with open(args.json, "w") as f:
        json.dump(results, f, indent=2)
    print(f"wrote {args.json}")
    export_telemetry("bench_service")
    return results


if __name__ == "__main__":
    main()
