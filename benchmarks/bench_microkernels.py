"""Microbenchmarks of the solver's hot kernels.

Unlike the table/figure reproductions (single-shot simulations), these
use pytest-benchmark's statistical repetition: they track the
throughput of the operations the paper's performance engineering is
about — the element-based dense matvec (vs CSR), the scalar-wave
kernel, the hanging-node projection, and Morton encoding.

Run directly (``python benchmarks/bench_microkernels.py --json``) to
emit ``BENCH_kernels.json``: per-backend matvec throughput
(matvecs/s, effective GB/s) and the speedup over the seed's
``np.bincount`` scatter, which is kept here as the reference
implementation.
"""

import argparse
import json
import time

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - direct --json invocation only
    pytest = None

from repro.backend import available_backends, use_backend
from repro.fem import ElasticOperator, assemble_csr
from repro.fem.hex_element import hex_elastic_reference
from repro.mesh import build_constraints, extract_mesh, uniform_hex_mesh
from repro.octree import balance_octree, build_adaptive_octree, morton_encode
from repro.solver import RegularGridScalarWave


class BincountMatvec:
    """The seed implementation of the elastic matvec: fresh per-call
    scaling passes and a ``np.bincount`` scatter.  Kept as the baseline
    the planned kernels are measured against."""

    def __init__(self, conn, h, lam, mu, nnode):
        self.nnode = int(nnode)
        self.conn = conn
        self.nelem = len(conn)
        K_l, K_m = hex_elastic_reference()
        self.K_l, self.K_m = K_l, K_m
        self.c_lam = lam * h
        self.c_mu = mu * h
        dof = (conn[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
            self.nelem, 24
        )
        self._dof_flat = dof.ravel()

    def matvec(self, u):
        U = u.reshape(self.nnode, 3)[self.conn].reshape(self.nelem, 24)
        Y = (U @ self.K_l.T) * self.c_lam[:, None]
        Y += (U @ self.K_m.T) * self.c_mu[:, None]
        out = np.bincount(
            self._dof_flat, weights=Y.ravel(), minlength=3 * self.nnode
        )
        return out.reshape(self.nnode, 3)


@pytest.fixture(scope="module")
def hex_problem():
    mesh = uniform_hex_mesh(16, L=1000.0)
    lam = np.full(mesh.nelem, 2e9)
    mu = np.full(mesh.nelem, 1e9)
    op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    A = assemble_csr(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((mesh.nnode, 3))
    return mesh, op, A, u


def test_element_matvec_throughput(benchmark, hex_problem):
    mesh, op, A, u = hex_problem
    benchmark(op.matvec, u)
    benchmark.extra_info["elements"] = mesh.nelem
    benchmark.extra_info["flops_per_apply"] = op.flops_per_matvec


def test_csr_matvec_throughput(benchmark, hex_problem):
    mesh, op, A, u = hex_problem
    v = u.ravel()
    benchmark(lambda: A @ v)


def test_scalar_wave_kernel(benchmark):
    s = RegularGridScalarWave((64, 64), 10.0, 1000.0)
    mu = np.full(s.nelem, 1e9)
    rng = np.random.default_rng(1)
    u = rng.standard_normal(s.nnode)
    benchmark(s.apply_K, mu, u)


def test_hanging_projection(benchmark):
    def target(c, s):
        return np.where(np.all(c < 0.5, axis=1), 1 / 16, 1 / 8)

    tree = balance_octree(build_adaptive_octree(target, max_level=5))
    mesh = extract_mesh(tree, L=1000.0)
    info = build_constraints(tree, mesh)
    rng = np.random.default_rng(2)
    r = rng.standard_normal((mesh.nnode, 3))
    B, BT = info.B, info.B.T.tocsr()

    def project():
        return B @ (BT @ r)

    benchmark(project)
    benchmark.extra_info["hanging"] = info.n_hanging


def test_morton_encode_throughput(benchmark):
    rng = np.random.default_rng(3)
    pts = rng.integers(0, 2**16, size=(1_000_000, 3)).astype(np.uint64)
    benchmark(morton_encode, pts[:, 0], pts[:, 1], pts[:, 2])


# ----------------------------------------------------- JSON bench mode


def _time_interleaved(fns, *, repeat=7, min_time=0.05):
    """Best-of-``repeat`` seconds per call for each callable, with the
    repeats *interleaved* across callables so slow machine phases (CPU
    frequency, co-tenants) hit every candidate equally and ratios stay
    honest.  The minimum is the least noise-contaminated estimator;
    inner loops are sized for timer resolution."""
    counts = []
    for fn in fns:
        fn()  # warmup (JIT compilation, lazy folds, page faults)
        n = 1
        while True:
            t0 = time.perf_counter()
            for _ in range(n):
                fn()
            if time.perf_counter() - t0 >= min_time:
                break
            n *= 2
        counts.append(n)
    best = [np.inf] * len(fns)
    for _ in range(repeat):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            for _ in range(counts[i]):
                fn()
            best[i] = min(
                best[i], (time.perf_counter() - t0) / counts[i]
            )
    return [float(b) for b in best]


def _time(fn, *, repeat=7, min_time=0.05):
    return _time_interleaved([fn], repeat=repeat, min_time=min_time)[0]


def _matvec_traffic_bytes(op: ElasticOperator) -> int:
    """Effective memory traffic of one planned matvec: gather read +
    workspace write/read around the GEMM, folded scatter streams, and
    the output vector."""
    k = op._kernel
    n_U = k._U.nbytes
    n_Y = k._Y.nbytes
    return (
        k.dof.nbytes  # gather indices
        + n_U  # gathered values written
        + n_U + n_Y  # GEMM read + write
        + n_Y  # scatter reads the block
        + k._data.nbytes  # folded coefficients
        + k.plan.indices.nbytes  # scatter indices
        + 2 * 8 * k.ndof  # output read+write (accumulate)
    )


def run_json_bench(n: int = 16, repeat: int = 7) -> dict:
    mesh = uniform_hex_mesh(n, L=1000.0)
    lam = np.full(mesh.nelem, 2e9)
    mu = np.full(mesh.nelem, 1e9)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((mesh.nnode, 3))

    ref = BincountMatvec(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)

    results = {
        "problem": {
            "mesh": f"uniform_hex_{n}",
            "nelem": int(mesh.nelem),
            "nnode": int(mesh.nnode),
            "ndof": int(3 * mesh.nnode),
        },
        "reference": {
            "kernel": "bincount_matvec (seed implementation)",
        },
        "backends": {},
    }

    t_ref = np.inf
    for name in available_backends():
        with use_backend(name):
            op = ElasticOperator(
                mesh.conn, mesh.elem_h, lam, mu, mesh.nnode
            )
            out = np.empty((mesh.nnode, 3))
            # interleave kernel and reference: the ratio survives load
            t_op, t_ref_i = _time_interleaved(
                [lambda: op.matvec(u, out=out), lambda: ref.matvec(u)],
                repeat=repeat,
            )
            t_ref = min(t_ref, t_ref_i)
            traffic = _matvec_traffic_bytes(op)

            s = RegularGridScalarWave((64, 64), 10.0, 1000.0)
            mu_s = np.full(s.nelem, 1e9)
            us = rng.standard_normal(s.nnode)
            outs = np.empty(s.nnode)
            t_sc = _time(lambda: s.apply_K(mu_s, us, out=outs), repeat=repeat)

        results["backends"][name] = {
            "elastic_matvec": {
                "seconds_per_matvec": t_op,
                "matvecs_per_s": 1.0 / t_op,
                "gbytes_per_s": traffic / t_op / 1e9,
                "speedup_vs_bincount": t_ref_i / t_op,
            },
            "scalar_apply_K": {
                "seconds_per_apply": t_sc,
                "applies_per_s": 1.0 / t_sc,
            },
        }
    results["reference"]["seconds_per_matvec"] = t_ref
    results["reference"]["matvecs_per_s"] = 1.0 / t_ref
    return results


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--json",
        nargs="?",
        const="BENCH_kernels.json",
        default=None,
        metavar="PATH",
        help="emit kernel throughput JSON (default: BENCH_kernels.json)",
    )
    ap.add_argument("--size", type=int, default=16, help="mesh n per side")
    ap.add_argument("--repeat", type=int, default=7)
    args = ap.parse_args(argv)
    results = run_json_bench(n=args.size, repeat=max(1, args.repeat))
    text = json.dumps(results, indent=2)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
    print(text)
    for name, r in results["backends"].items():
        print(
            f"[{name}] matvec {r['elastic_matvec']['matvecs_per_s']:.1f}/s, "
            f"{r['elastic_matvec']['gbytes_per_s']:.2f} GB/s, "
            f"{r['elastic_matvec']['speedup_vs_bincount']:.2f}x vs bincount"
        )


if __name__ == "__main__":
    main()
