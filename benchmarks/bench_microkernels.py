"""Microbenchmarks of the solver's hot kernels.

Unlike the table/figure reproductions (single-shot simulations), these
use pytest-benchmark's statistical repetition: they track the
throughput of the operations the paper's performance engineering is
about — the element-based dense matvec (vs CSR), the scalar-wave
kernel, the hanging-node projection, and Morton encoding.
"""

import numpy as np
import pytest

from repro.fem import ElasticOperator, assemble_csr
from repro.mesh import build_constraints, extract_mesh, uniform_hex_mesh
from repro.octree import balance_octree, build_adaptive_octree, morton_encode
from repro.solver import RegularGridScalarWave


@pytest.fixture(scope="module")
def hex_problem():
    mesh = uniform_hex_mesh(16, L=1000.0)
    lam = np.full(mesh.nelem, 2e9)
    mu = np.full(mesh.nelem, 1e9)
    op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    A = assemble_csr(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((mesh.nnode, 3))
    return mesh, op, A, u


def test_element_matvec_throughput(benchmark, hex_problem):
    mesh, op, A, u = hex_problem
    benchmark(op.matvec, u)
    benchmark.extra_info["elements"] = mesh.nelem
    benchmark.extra_info["flops_per_apply"] = op.flops_per_matvec


def test_csr_matvec_throughput(benchmark, hex_problem):
    mesh, op, A, u = hex_problem
    v = u.ravel()
    benchmark(lambda: A @ v)


def test_scalar_wave_kernel(benchmark):
    s = RegularGridScalarWave((64, 64), 10.0, 1000.0)
    mu = np.full(s.nelem, 1e9)
    rng = np.random.default_rng(1)
    u = rng.standard_normal(s.nnode)
    benchmark(s.apply_K, mu, u)


def test_hanging_projection(benchmark):
    def target(c, s):
        return np.where(np.all(c < 0.5, axis=1), 1 / 16, 1 / 8)

    tree = balance_octree(build_adaptive_octree(target, max_level=5))
    mesh = extract_mesh(tree, L=1000.0)
    info = build_constraints(tree, mesh)
    rng = np.random.default_rng(2)
    r = rng.standard_normal((mesh.nnode, 3))
    B, BT = info.B, info.B.T.tocsr()

    def project():
        return B @ (BT @ r)

    benchmark(project)
    benchmark.extra_info["hanging"] = info.n_hanging


def test_morton_encode_throughput(benchmark):
    rng = np.random.default_rng(3)
    pts = rng.integers(0, 2**16, size=(1_000_000, 3)).astype(np.uint64)
    benchmark(morton_encode, pts[:, 0], pts[:, 1], pts[:, 2])
