"""Communication-avoiding fused stepping: messages vs wall clock.

Runs the quickstart-scale problem on the process transport for a
sweep of ``steps_per_exchange`` values and reports, per ``k``:

* wall-clock seconds (median over repeats);
* halo messages, bytes, and exchange rounds per time step measured
  from :class:`repro.parallel.simcomm.TrafficStats` — the message
  count drops by a factor of ~``k``;
* the calibrated alpha-beta-gamma model's predicted step time;
* ``max_rel_err_vs_serial`` — fused vs the serial exchange schedule
  (the unfused ``k=1`` distributed run) on owned nodes.  This is
  **0.0 exactly**: fusion reproduces the per-step exchange
  arithmetic bit for bit.  The k=1 schedule itself differs from the
  single-process serial solver only by summation-order roundoff
  (~1e-15), reported separately as
  ``max_rel_err_vs_serial_solver``.

An ``auto`` row runs ``steps_per_exchange="auto"``: the measured
machine model picks ``k``.  On an oversubscribed host (workers >
schedulable cores — the common CI container case) the redundant halo
recompute serializes while the "saved" exchanges were never network
latency to begin with, so the model correctly picks ``k=1`` and the
auto run matches the unfused wall clock; on a real multi-node alpha
the same model trades recompute for latency and picks ``k>1``.  The
per-row ``oversubscribed`` flag records which regime produced the
numbers.

Writes ``BENCH_fusion.json``.

Usage::

    python benchmarks/bench_fusion.py                  # full run
    python benchmarks/bench_fusion.py --smoke          # CI-sized
    python benchmarks/bench_fusion.py --ks 1,2,4,8 --workers 2
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from _common import timed
from bench_scaling import (
    PointForce,  # noqa: F401  (re-exported for pickled workers)
    build_problem,
    effective_cpu_count,
    measure_flop_rate,
    serial_reference,
)

from repro.materials import HomogeneousMaterial
from repro.mesh import rcb_partition
from repro.parallel import DistributedWaveSolver, ProcWorld, SimWorld

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


def run_fused(mesh, parts, force, dt, nsteps, nw, k, repeats):
    """Median proc wall time over ``repeats`` runs plus the traffic
    totals and final state of the last run."""
    walls = []
    for _ in range(repeats):
        with ProcWorld(nw) as world:
            solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=dt)
            u, elapsed = timed(
                "bench.fused", solver.run, force, (nsteps - 0.5) * dt,
                steps_per_exchange=k,
            )
            walls.append(elapsed)
            msgs = sum(st.messages_sent for st in world.stats)
            nbytes = sum(st.bytes_sent for st in world.stats)
            exch = sum(st.exchanges for st in world.stats)
            fused = solver.last_fused
    return float(np.median(walls)), u, msgs, nbytes, exch, fused


def main(argv=None) -> dict:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_fusion.json")
    ap.add_argument("--size", type=int, default=16,
                    help="mesh is size^3 elements (power of two)")
    ap.add_argument("--steps", type=int, default=100)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--ks", default="1,2,4,8",
                    help="comma-separated steps_per_exchange values")
    ap.add_argument("--repeats", type=int, default=3,
                    help="wall-clock repeats per configuration (median)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (8^3 elements, 16 steps, k=1,4)")
    args = ap.parse_args(argv)
    if args.smoke:
        args.size, args.steps, args.ks, args.repeats = 8, 16, "1,4", 1
    ks = [int(k) for k in args.ks.split(",")]
    if 1 not in ks:
        ks.insert(0, 1)
    nw = args.workers
    ncores = effective_cpu_count()

    tree, mesh, force = build_problem(args.size)
    dt, serial_s, u_serial = serial_reference(mesh, tree, force, args.steps)
    ref_scale = float(np.abs(u_serial).max())
    parts = rcb_partition(mesh.elem_centers, nw)

    rows = []
    u_k1 = None
    wall_k1 = None
    for k in ks:
        wall, u, msgs, nbytes, exch, fused = run_fused(
            mesh, parts, force, dt, args.steps, nw, k, args.repeats
        )
        if k == 1:
            u_k1, wall_k1 = u, wall
        err_k1 = float(np.abs(u - u_k1).max() / ref_scale)
        err_serial = float(np.abs(u - u_serial).max() / ref_scale)
        rows.append(
            {
                "steps_per_exchange": fused["steps_per_exchange"],
                "wall_seconds": wall,
                "messages": msgs,
                "bytes": nbytes,
                "exchange_rounds": exch,
                "messages_per_step": msgs / args.steps,
                "exchanges_per_step": exch / args.steps,
                "max_rel_err_vs_serial": err_k1,
                "max_rel_err_vs_serial_solver": err_serial,
                "oversubscribed": nw > ncores,
            }
        )
        print(
            f"k={k:2d}  wall {wall:7.3f}s  msgs/step "
            f"{msgs / args.steps:6.2f}  exch/step "
            f"{exch / args.steps:5.2f}  err vs k=1 {err_k1:.1e}  "
            f"vs serial {err_serial:.1e}"
        )
        assert err_k1 == 0.0, "fused trajectory must be bitwise k=1"

    # auto: calibrate the machine model once (transport ping-pong +
    # flop-rate probe — one-time setup, kept out of the marching
    # clock), then time the run at the chosen k
    with ProcWorld(nw) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=dt)
        k_auto, model_times = solver.recommend_steps_per_exchange(
            nsteps=args.steps
        )
    wall_auto, u_auto, msgs_auto, _, _, _ = run_fused(
        mesh, parts, force, dt, args.steps, nw, k_auto, args.repeats
    )
    auto_row = {
        "requested": "auto",
        "chosen_k": k_auto,
        "model_step_seconds": model_times,
        "wall_seconds": wall_auto,
        "wall_vs_k1": wall_auto / wall_k1,
        # when the model picks k=1 the auto run IS the k=1 code path:
        # any wall_vs_k1 deviation from 1.0 is run-to-run noise
        "identical_code_path_to_k1": k_auto == 1,
        "messages_per_step": msgs_auto / args.steps,
        "max_rel_err_vs_serial": float(
            np.abs(u_auto - u_k1).max() / ref_scale
        ),
    }
    print(
        f"auto  picked k={auto_row['chosen_k']}  wall {wall_auto:7.3f}s "
        f"({auto_row['wall_vs_k1']:.2f}x of k=1)"
    )
    assert auto_row["max_rel_err_vs_serial"] == 0.0

    # sim-transport bitwise cross-check at the deepest k
    k_deep = max(ks)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(nw), dt=dt)
    u_sim = solver.run(
        force, (args.steps - 0.5) * dt, steps_per_exchange=k_deep
    )
    assert np.array_equal(u_sim, u_k1), "sim fused must match proc k=1"

    result = {
        "problem": {
            "n": args.size,
            "nelem": int(mesh.nelem),
            "nnode": int(mesh.nnode),
            "nsteps": args.steps,
            "dt": dt,
            "workers": nw,
        },
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": ncores,
        "oversubscribed": nw > ncores,
        "smoke": bool(args.smoke),
        "serial_seconds": serial_s,
        "flop_rate": measure_flop_rate(mesh),
        "rows": rows,
        "auto": auto_row,
        "sim_bitwise_check": {"steps_per_exchange": k_deep, "ok": True},
    }
    with open(args.json, "w") as f:
        json.dump(result, f, indent=2)
    print(
        f"wrote {args.json} (effective_cpu_count={ncores}, "
        f"oversubscribed={nw > ncores})"
    )
    return result


if __name__ == "__main__":
    main()
