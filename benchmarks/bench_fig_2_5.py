"""Figure 2.5 — snapshots of the propagating Northridge wavefield.

The figure shows free-surface wavefronts expanding from the blind
thrust, with "directivity of the ground motion along strike from the
epicenter and the concentration of motion near the fault corners", and
stronger shaking inside the soft basin.  We run the scaled idealized
Northridge scenario on the synthetic basin, record surface snapshots,
and quantify the same three observations:

* the wavefront radius grows at the bedrock wave speed;
* peak surface motion above/along the fault exceeds the far field
  (directivity / fault-corner concentration);
* soft-basin sites shake harder than rock sites at similar distance.
"""

import numpy as np

from _common import emit, run_once
from repro.core import ForwardSimulation
from repro.materials import SyntheticBasinModel
from repro.sources import idealized_northridge


def fig_2_5():
    L = 80_000.0
    mat = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=400.0)
    sim = ForwardSimulation(
        mat,
        L=L,
        fmax=0.05,  # scaled: keeps the run minutes-long, physics intact
        box_frac=(1, 1, 0.5),
        max_level=6,
        h_min=1250.0,
        damping_ratio=0.03,
        damping_band=(0.005, 0.05),
    )
    scenario = idealized_northridge(L=L, n_strike=5, n_dip=3, rise_time=2.0)
    result = sim.run(scenario, t_end=30.0, snapshot_every=40)
    frames = result.snapshots.as_array()
    times = np.array(result.snapshots.times)
    surf_nodes = sim.mesh.surface_nodes(2, 0)
    xy = sim.mesh.coords[surf_nodes][:, :2]
    epi = scenario.hypocenter[:2]

    lines = [
        "Scaled Northridge simulation (Figure 2.5 role):",
        f"  mesh: {sim.mesh.nnode:,} pts, dt = {sim.dt:.3f} s, "
        f"{result.nsteps} steps, {len(frames)} snapshots",
        "",
        "wavefront expansion (radius of the 20%-of-peak motion contour):",
        "  t(s)   radius(km)  implied speed(km/s)",
    ]
    radii = []
    for f, t in zip(frames, times):
        if f.max() <= 0 or t <= 2.0:
            continue
        hot = f > 0.2 * f.max()
        if hot.sum() < 3:
            continue
        r = np.percentile(np.linalg.norm(xy[hot] - epi, axis=1), 90) / 1000.0
        radii.append((t, r))
    for t, r in radii:
        v = r / t if t > 0 else 0.0
        lines.append(f"  {t:5.1f}  {r:9.1f}  {v:9.2f}")

    # rupture directivity: the hypocenter sits near one end of the
    # fault, so rupture propagates along +strike; sites in the forward
    # sector see the pulse compressed and amplified
    peak = frames.max(axis=0)
    st = np.deg2rad(scenario.strike_deg)
    e_strike = np.array([np.sin(st), np.cos(st)])
    rel = xy - epi
    along = rel @ e_strike  # signed: + is the rupture direction
    dist = np.linalg.norm(rel, axis=1)
    ring = (dist > 12_000) & (dist < 30_000)
    fwd = ring & (along > 0.7 * dist)
    bwd = ring & (along < -0.7 * dist)
    dir_ratio = float(np.mean(peak[fwd]) / np.mean(peak[bwd]))
    lines.append("")
    lines.append(
        f"rupture directivity: mean peak motion forward / backward of "
        f"the rupture (12-30 km ring) = {dir_ratio:.2f} (paper: motion "
        "concentrates along strike from the epicenter)"
    )

    # basin amplification
    bdepth = mat.basin_depth_at(xy)
    dist = np.linalg.norm(rel, axis=1)
    band = (dist > 10_000) & (dist < 35_000)
    in_basin = band & (bdepth > 500.0)
    on_rock = band & (bdepth <= 0.0)
    amp = float(np.mean(peak[in_basin]) / np.mean(peak[on_rock]))
    lines.append(
        f"basin amplification: mean peak motion basin / rock sites "
        f"(10-35 km) = {amp:.2f}"
    )
    return "\n".join(lines), (radii, dir_ratio, amp)


def test_fig_2_5(benchmark):
    text, (radii, dir_ratio, amp) = run_once(benchmark, fig_2_5)
    emit("fig_2_5", text)
    assert len(radii) >= 3
    # wavefront speeds bounded by the model's physical wave speeds
    speeds = [r / t for t, r in radii if t > 5]
    assert all(0.5 < v < 8.0 for v in speeds)
    assert dir_ratio > 1.05  # along-strike concentration
    assert amp > 1.1  # sediments amplify
