"""Table 3.1 — algorithmic scalability of the inversion.

The paper inverts the material field of a 3D scalar wave problem with
the wave grid fixed and material grids growing from 5^3 = 125 to
129^3 = 2,146,689 parameters, and observes "essentially mesh
independence of nonlinear and linear iterations" (17-25 Newton, 144-439
total CG).

Scaled reproduction: fixed 3D scalar wave grid, material grids from
3^3 = 27 to 17^3 parameters (repro band 3: reduced resolution), same
Gauss-Newton-CG solver, same accounting: nonlinear iterations, total CG
iterations, average CG per Newton — the claim is that none of them grow
with the parameter count.
"""

import numpy as np

from _common import emit, run_once
from repro.inverse import (
    MaterialGrid,
    ScalarWaveInverseProblem,
    gauss_newton_cg,
)
from repro.solver import RegularGridScalarWave

PAPER_ROWS = [
    (125, 17, 144, 8.5),
    (729, 12, 249, 21.0),
    (4_913, 12, 396, 33.0),
    (35_937, 25, 439, 17.6),
    (274_625, 19, 370, 19.5),
    (2_146_689, 22, 436, 19.8),
]


def table_3_1():
    # fixed 3D wave grid (paper: 65^3 = 274,625 unknowns; scaled: 13^3)
    n = 12
    Lbox = 6.0  # km
    h = Lbox / n
    solver = RegularGridScalarWave((n, n, n), h, rho=1.0)

    def mu_true_fn(pts):
        # layered + a slow inclusion, like the 2D targets
        vs = 1.0 + 0.6 * (pts[:, 2] > 0.5 * Lbox)
        r = np.linalg.norm(pts - 0.45 * Lbox, axis=1)
        vs = np.where(r < 0.22 * Lbox, 0.85, vs)
        return vs**2

    mu_e_true = mu_true_fn(solver.elem_centers())
    dt = solver.stable_dt(mu_e_true)
    nsteps = int(round(3.5 / dt))

    # a grid of near-surface point sources (the 3D case inverts material
    # with a known source)
    src_nodes = [
        solver.node_index((i, j, 1))
        for i in (n // 4, 3 * n // 4)
        for j in (n // 4, 3 * n // 4)
    ]

    def stf(t):
        f0 = 1.0
        a = (np.pi * f0 * (t - 1.2)) ** 2
        return (1 - 2 * a) * np.exp(-a)

    def forcing(k):
        f = np.zeros(solver.nnode)
        f[src_nodes] = dt**2 * 5.0 * stf(k * dt)
        return f

    u = solver.march(mu_e_true, forcing, nsteps, dt, store=True)
    rec = solver.surface_nodes()
    data = u[:, rec]

    rows = []
    for mcells in (2, 4, 8, 16):
        grid = MaterialGrid((mcells,) * 3, (Lbox,) * 3)
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, extra_forcing=forcing,
        )
        m0 = np.full(grid.n, float(np.mean(mu_e_true)))
        res = gauss_newton_cg(
            prob, m0, max_newton=30, gtol=3e-3, cg_maxiter=60,
        )
        rows.append(
            (
                grid.n,
                res.newton_iterations,
                res.total_cg_iterations,
                res.avg_cg_per_newton,
                res.objective,
            )
        )

    lines = [
        "Inversion algorithmic scalability, 3D scalar wave "
        f"(wave grid fixed at {solver.nnode:,} unknowns):",
        "",
        f"{'material grid':>14} {'nonlinear iter':>15} {'total linear':>13} "
        f"{'avg linear':>11} {'final J':>12}",
    ]
    for n_m, ni, li, avg, J in rows:
        lines.append(
            f"{n_m:>14,} {ni:>15} {li:>13} {avg:>11.1f} {J:>12.3e}"
        )
    lines.append("")
    lines.append("paper (wave grid 274,625; material 125 ... 2,146,689):")
    lines.append(
        f"{'material grid':>14} {'nonlinear iter':>15} {'total linear':>13} "
        f"{'avg linear':>11}"
    )
    for n_m, ni, li, avg in PAPER_ROWS:
        lines.append(f"{n_m:>14,} {ni:>15} {li:>13} {avg:>11.1f}")
    lines.append("")
    lines.append(
        "claim under test: iteration counts do NOT grow with the number "
        "of inversion parameters (mesh independence)"
    )
    return "\n".join(lines), rows


def test_table_3_1(benchmark):
    text, rows = run_once(benchmark, table_3_1)
    emit("table_3_1", text)
    # mesh independence: once the grid resolves the structure (drop the
    # trivially coarse first row), iteration counts stay bounded while
    # the parameter count grows ~40x (paper: 12-25 Newton, 144-439 CG
    # over a 17,000x growth)
    newts = [r[1] for r in rows[1:]]
    cgs = [r[2] for r in rows[1:]]
    assert max(newts) <= 2.5 * min(newts)
    assert max(cgs) <= 4.0 * min(cgs)
    assert rows[-1][2] <= 2.0 * rows[-2][2] + 5
