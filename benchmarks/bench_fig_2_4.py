"""Figure 2.4 — hexahedral vs tetrahedral codes at two frequencies.

The paper compares ground velocity from the new hexahedral code against
the verified tetrahedral baseline at two receivers, low-passed at 0.5 Hz
(within the tet code's resolution: "very good agreement") and at 1.0 Hz
(beyond it: "significant differences ... because our tetrahedral model
cannot represent the ground motion at this higher frequency").

We run the identical scaled experiment: a layered basin, a buried
double-couple source, two surface receivers, both solvers on the same
mesh, and report waveform correlations at a low (resolved) and a high
(unresolved) cutoff.  The reproduction target is the *shape*:
correlation high at the low cutoff, sharply lower at the high one.
"""

import numpy as np

from _common import emit, run_once
from repro.io.seismogram import ReceiverArray
from repro.materials import LayeredMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import ElasticWaveSolver, TetWaveSolver
from repro.sources import MomentTensorSource, double_couple_moment
from repro.sources.fault import SourceCollection


def fig_2_4():
    L = 4000.0
    n = 16
    mat = LayeredMaterial(
        [800.0, 2000.0],
        vs=[600.0, 1200.0, 2000.0],
        vp=[1200.0, 2400.0, 3600.0],
        rho=[1900.0, 2200.0, 2500.0],
    )
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=5
    )
    mesh = extract_mesh(tree, L=L)
    src = MomentTensorSource(
        position=np.array([0.45 * L, 0.55 * L, 0.4 * L]),
        moment=double_couple_moment(30.0, 60.0, 90.0, 5e14),
        T=0.2,
        t0=1.0,
    )
    forces = SourceCollection(mesh, tree, [src])
    # two receivers: one near-epicentral ("JFP"-like), one distant ("TAR")
    rec_pos = np.array(
        [[0.5 * L, 0.5 * L, 0.0], [0.8 * L, 0.25 * L, 0.0]]
    )
    t_end = 6.0

    hexs = ElasticWaveSolver(mesh, tree, mat, stacey_c1=False)
    s_hex = hexs.run(forces, t_end, receivers=ReceiverArray(mesh, rec_pos))
    tets = TetWaveSolver(mesh, mat, dt=hexs.dt)
    s_tet = tets.run(forces, t_end, receivers=ReceiverArray(mesh, rec_pos))

    # resolved band of this mesh: h = 250 m, slowest vs = 600 m/s ->
    # ~0.24 Hz at 10 ppw; use scaled analogues of the paper's 0.5/1.0 Hz
    f_low, f_high = 0.25, 1.0
    rows = []
    for r, name in enumerate(("JFP-like", "TAR-like")):
        for fc in (f_low, f_high):
            a = s_hex.lowpassed(fc).data[r]
            b = s_tet.lowpassed(fc).data[r]
            corr = float(np.corrcoef(a.ravel(), b.ravel())[0, 1])
            ratio = float(np.abs(a).max() / np.abs(b).max())
            rows.append((name, fc, corr, ratio))
    lines = [
        "Hex vs tet seismograms (Figure 2.4 role; cutoffs scaled to this",
        f"mesh's resolved band — paper used 0.5 and 1.0 Hz):",
        "",
        f"{'receiver':>10} {'cutoff Hz':>10} {'correlation':>12} {'amp ratio':>10}",
    ]
    for name, fc, corr, ratio in rows:
        lines.append(f"{name:>10} {fc:>10.2f} {corr:>12.3f} {ratio:>10.3f}")
    lines.append("")
    lines.append(
        "expected shape: near-1 correlation at the resolved cutoff, "
        "visible divergence at the high cutoff (the tet mesh cannot "
        "represent the higher-frequency motion)"
    )
    mem_ratio = tets.memory_bytes() / hexs.memory_bytes()
    lines.append(
        f"solver memory: tet/hex = {mem_ratio:.1f}x "
        "(paper: ~10x more memory for the grid-point-based tet code)"
    )
    return "\n".join(lines), rows


def test_fig_2_4(benchmark):
    text, rows = run_once(benchmark, fig_2_4)
    emit("fig_2_4", text)
    by_f = {}
    for name, fc, corr, ratio in rows:
        by_f.setdefault(fc, []).append(corr)
    f_low, f_high = sorted(by_f)
    assert min(by_f[f_low]) > 0.9
    assert max(by_f[f_high]) < min(by_f[f_low])
