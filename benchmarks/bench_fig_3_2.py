"""Figure 3.2 — multiscale material inversion of a basin cross-section.

The paper inverts the shear velocity of a vertical LA-basin section
from free-surface records of an idealized strike-slip event, starting
from a homogeneous guess and marching through inversion grids 1x1 ->
257x257 (Fig 3.2a), then compares 64 vs 16 receivers including the
waveform fit at a NON-receiver location (Fig 3.2b).

Scaled reproduction (repro band 3): a 40 x 20 km section with layered
velocities (~1.0-3.5 km/s) and a slow basin lens, wave grid 80 x 40,
multiscale material grids 3x2 ... 33x17 nodes.  Reported: relative
model error per continuation level (should fall monotonically), the
64-vs-16-receiver comparison, and the velocity-history misfit at a
non-receiver site for the initial guess vs the inverted model.
"""

import numpy as np

from _common import emit, run_once
from repro.core import AntiplaneSetup, MaterialInversion


def vs_target(pts):
    """Layered section with a slow sedimentary lens (km/s)."""
    x, z = pts[:, 0], pts[:, 1]
    vs = np.full(len(pts), 1.6)
    vs = np.where(z > 4.0, 2.2, vs)
    vs = np.where(z > 9.0, 2.9, vs)
    vs = np.where(z > 14.0, 3.5, vs)
    # basin lens near the surface
    lens = ((x - 14.0) / 9.0) ** 2 + ((z - 0.0) / 3.2) ** 2 < 1.0
    vs = np.where(lens, 1.0, vs)
    # stiff inclusion at mid depth
    inc = ((x - 28.0) / 4.0) ** 2 + ((z - 7.0) / 2.5) ** 2 < 1.0
    vs = np.where(inc, 3.2, vs)
    return vs


def run_inversion(n_receivers: int, n_levels: int = 5):
    setup = AntiplaneSetup(
        vs_target,
        lengths=(40.0, 20.0),
        wave_shape=(80, 40),
        fault_x_frac=0.55,
        fault_depth_frac=(0.3, 0.8),
        rupture_velocity=2.5,
        t0=0.8,
        n_receivers=n_receivers,
        t_end=30.0,
        noise=0.05,  # the paper adds 5% noise
        seed=1,
    )
    inv = MaterialInversion(setup, beta_tv=3e-6, barrier_gamma=1e-9,
                            mu_min=0.2)
    res = inv.run(
        n_levels=n_levels, newton_per_level=10, cg_maxiter=40, m_init=4.0
    )
    return setup, inv, res


def fig_3_2():
    lines = ["Multiscale material inversion (Figure 3.2):", ""]
    setup64, inv64, res64 = run_inversion(64)
    grids = setup64.material_grids(5)
    m_init_err = None
    lines.append("(a) continuation stages, 64 receivers, 5% noise:")
    lines.append(f"{'grid (nodes)':>14} {'rel model error':>16} {'J':>12}")
    for (shape, gn), err in zip(res64.multiscale.levels, res64.model_errors):
        nodes = (shape[0] + 1, shape[1] + 1)
        lines.append(
            f"{str(nodes):>14} {err:>16.3f} {gn.objective:>12.3e}"
        )
    lines.append(
        f"  total CG iterations: {res64.multiscale.total_cg_iterations} "
        "(each = 1 forward + 1 adjoint wave solve)"
    )
    J_noise = 0.5 * setup64.dt * float(
        np.sum((setup64.data - setup64.clean_data) ** 2)
    )
    J_final = res64.multiscale.levels[-1][1].objective
    lines.append(
        f"  final J = {J_final:.3f} vs the 5%-noise floor "
        f"{J_noise:.3f}: the data are fit to the noise level"
    )

    setup16, inv16, res16 = run_inversion(16)
    lines.append("")
    lines.append("(b) receiver-density study (final level):")
    lines.append(
        f"  64 receivers: rel model error {res64.model_errors[-1]:.3f}"
    )
    lines.append(
        f"  16 receivers: rel model error {res16.model_errors[-1]:.3f}"
    )

    # waveform check at a surface site that is a receiver in NEITHER
    # configuration (a central, well-illuminated location, as in the
    # paper's Fig 3.2b)
    surf = setup64.solver.surface_nodes()
    rec_set = set(int(r) for r in setup64.receivers) | set(
        int(r) for r in setup16.receivers
    )
    center = len(surf) // 2
    non_rec = next(
        int(surf[center + d])
        for d in range(len(surf) // 2)
        if int(surf[center + d]) not in rec_set
    )
    grid_f = grids[-1]
    m_true = grid_f.sample(setup64.mu_target_fn)
    w_true = inv64.predicted_waveform(m_true, grid_f, non_rec)
    rows = []
    from repro.util.filters import lowpass

    f_band = 1.0 / setup64.params_true.t0[0]  # dominant source band
    wt = lowpass(w_true, setup64.dt, f_band)
    for label, inv, res in (("64", inv64, res64), ("16", inv16, res16)):
        m0 = np.full(grid_f.n, 4.0)
        wi = lowpass(
            inv.predicted_waveform(m0, grid_f, non_rec), setup64.dt, f_band
        )
        wv = lowpass(
            inv.predicted_waveform(res.m_final, grid_f, non_rec),
            setup64.dt,
            f_band,
        )
        c_init = float(np.corrcoef(wi, wt)[0, 1])
        c_inv = float(np.corrcoef(wv, wt)[0, 1])
        rows.append((label, c_init, c_inv))
        lines.append(
            f"  {label} receivers, non-receiver waveform correlation with "
            f"the target: initial guess {c_init:.3f} -> inverted {c_inv:.3f}"
        )
    lines.append(
        "  (paper: inverted waveforms remain close to the target even at "
        "non-receiver locations and with 16 receivers)"
    )
    return "\n".join(lines), (res64, res16, rows)


def test_fig_3_2(benchmark):
    text, (res64, res16, rows) = run_once(benchmark, fig_3_2)
    emit("fig_3_2", text)
    errs = res64.model_errors
    # continuation: errors fall with refinement, substantially overall
    # (the residual is sharp-interface smearing plus the weakly
    # illuminated deep corners, at 5% noise)
    assert errs[-1] < errs[0]
    assert errs[-1] < 0.35
    # more receivers resolve the model at least as well
    assert res64.model_errors[-1] <= res16.model_errors[-1] + 0.05
    # but even 16 receivers approximate the target closely
    assert res16.model_errors[-1] < 0.4
    # non-receiver waveforms: the inverted model predicts the unseen
    # site far better than the initial guess (the paper's traces match
    # more closely still — its final grid is 257x257 vs our 33x17, see
    # EXPERIMENTS.md)
    for label, c_init, c_inv in rows:
        assert c_inv > 0.5
        assert c_inv > c_init + 0.4
