"""Ablations of the paper's design choices (DESIGN.md).

1. element-based dense matvec vs assembled CSR (cache-friendliness and
   memory: the reason the hexahedral code stores no matrix);
2. hex vs tet memory per grid point (~10x in the paper);
3. octree-adaptive vs uniform meshing (the ~2000x grid-point savings
   mechanism, measured at our scale);
4. multiscale continuation vs direct fine-grid inversion (the local
   minima / entrapment remedy of Section 3.1).
"""

import time

import numpy as np

from _common import emit, run_once
from repro.core import AntiplaneSetup, ForwardSimulation, MaterialInversion
from repro.fem import ElasticOperator, assemble_csr
from repro.inverse import MaterialGrid, gauss_newton_cg
from repro.materials import HomogeneousMaterial, SyntheticBasinModel
from repro.mesh import uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.solver import TetWaveSolver, ElasticWaveSolver


def matvec_ablation():
    mesh = uniform_hex_mesh(16, L=1000.0)
    rng = np.random.default_rng(0)
    lam = np.full(mesh.nelem, 2e9)
    mu = np.full(mesh.nelem, 1e9)
    op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    A = assemble_csr(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
    u = rng.standard_normal((mesh.nnode, 3))
    # correctness (relative: the entries are modulus-scaled, ~1e9)
    y = op.matvec(u)
    err = np.abs(y - (A @ u.ravel()).reshape(-1, 3)).max() / np.abs(y).max()
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        op.matvec(u)
    t_elem = (time.perf_counter() - t0) / reps
    v = u.ravel()
    t0 = time.perf_counter()
    for _ in range(reps):
        A @ v
    t_csr = (time.perf_counter() - t0) / reps
    mem_elem = mesh.conn.nbytes + 2 * 8 * mesh.nelem + 2 * 24 * 24 * 8
    mem_csr = A.data.nbytes + A.indices.nbytes + A.indptr.nbytes
    return {
        "nelem": mesh.nelem,
        "err": float(err),
        "t_elem_ms": 1e3 * t_elem,
        "t_csr_ms": 1e3 * t_csr,
        "mem_ratio": mem_csr / mem_elem,
    }


def memory_ablation():
    mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    mesh = uniform_hex_mesh(8, L=1000.0)
    tree = build_adaptive_octree(lambda c, s: np.full(len(c), 1 / 8), max_level=4)
    hexs = ElasticWaveSolver(mesh, tree, mat)
    tets = TetWaveSolver(mesh, mat)
    return {
        "hex_bytes_per_point": hexs.memory_bytes() / mesh.nnode,
        "tet_bytes_per_point": tets.memory_bytes() / mesh.nnode,
        "ratio": tets.memory_bytes() / hexs.memory_bytes(),
    }


def adaptivity_ablation():
    L = 80_000.0
    mat = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=250.0)
    sim = ForwardSimulation(
        mat, L=L, fmax=0.1, box_frac=(1, 1, 0.5), max_level=7, h_min=L / 2**7
    )
    uniform = sim.uniform_equivalent_grid_points()
    return {
        "adaptive_points": sim.mesh.nnode,
        "uniform_points": uniform,
        "savings": uniform / sim.mesh.nnode,
        "levels": len(np.unique(sim.mesh.elem_level)),
    }


def continuation_ablation():
    """Local minima and the grid-continuation remedy (Section 3.1).

    Two measurements: (i) nonconvexity — starting the fine-grid
    inversion from a modulus 1.8x too stiff strands it at a much higher
    misfit than starting near the prior mean (the Newton convergence
    ball is wavelength-sized); (ii) continuation economics — seeding the
    fine grid from the prolonged coarse solution reaches the same
    misfit in fewer (expensive) fine-grid iterations than starting the
    fine grid from scratch.
    """

    def vs(pts):
        v = 1.2 + 0.8 * (pts[:, 1] > 2.5)
        lens = ((pts[:, 0] - 4.0) / 2.2) ** 2 + (pts[:, 1] / 1.8) ** 2 < 1.0
        return np.where(lens, 0.9, v)

    setup = AntiplaneSetup(
        vs,
        lengths=(12.0, 6.0),
        wave_shape=(36, 18),
        n_receivers=24,
        t_end=10.0,
        rupture_velocity=2.0,
        t0=0.6,
    )
    inv = MaterialInversion(setup, beta_tv=1e-6)
    good = float(np.mean(setup.mu_true_e))
    grid = setup.material_grids(4)[-1]
    prob_near = inv.make_problem(grid)
    near = gauss_newton_cg(
        prob_near, np.full(grid.n, good), max_newton=15, cg_maxiter=25
    )
    prob_far = inv.make_problem(grid)
    far = gauss_newton_cg(
        prob_far, np.full(grid.n, 1.8 * good), max_newton=15, cg_maxiter=25
    )

    ms = inv.run(n_levels=4, newton_per_level=6, cg_maxiter=25, m_init=good)
    J_target = ms.multiscale.levels[-1][1].objective
    fine_iters_ms = ms.multiscale.levels[-1][1].newton_iterations
    hit = {"n": None}

    def cb(it, m, J):
        if J <= J_target and hit["n"] is None:
            hit["n"] = it + 1

    prob_scratch = inv.make_problem(grid)
    gauss_newton_cg(
        prob_scratch,
        np.full(grid.n, good),
        max_newton=30,
        cg_maxiter=25,
        callback=cb,
    )
    return {
        "J_near_guess": float(near.objective),
        "J_far_guess": float(far.objective),
        "J_target": float(J_target),
        "fine_iters_multiscale": int(fine_iters_ms),
        "fine_iters_direct": hit["n"] if hit["n"] is not None else 31,
    }


def ablations():
    lines = ["Design-choice ablations:", ""]
    m = matvec_ablation()
    lines.append(
        f"1. element-based matvec vs CSR ({m['nelem']:,} elements): "
        f"dense-element {m['t_elem_ms']:.1f} ms vs CSR {m['t_csr_ms']:.1f} ms "
        f"per apply (identical to {m['err']:.1e}); CSR stores "
        f"{m['mem_ratio']:.0f}x more bytes — the matrix-free design removes "
        "that storage entirely"
    )
    mm = memory_ablation()
    lines.append(
        f"2. solver memory per grid point: hex {mm['hex_bytes_per_point']:.0f} B "
        f"vs tet {mm['tet_bytes_per_point']:.0f} B -> {mm['ratio']:.1f}x "
        "(paper: ~10x less memory than the tetrahedral code)"
    )
    a = adaptivity_ablation()
    lines.append(
        f"3. wavelength-adaptive octree: {a['adaptive_points']:,} points vs "
        f"{a['uniform_points']:,} uniform at the finest h -> "
        f"{a['savings']:.0f}x savings across {a['levels']} levels "
        "(grows with vs contrast: paper reports ~2000x at 1 Hz / 100 m/s)"
    )
    c = continuation_ablation()
    lines.append(
        f"4a. local minima: fine-grid GN from a near initial guess "
        f"reaches J = {c['J_near_guess']:.2e}; from a 1.8x-too-stiff "
        f"guess it strands at J = {c['J_far_guess']:.2e} "
        "(wavelength-sized Newton convergence ball, Section 3.1)"
    )
    lines.append(
        f"4b. continuation economics: the multiscale solve reaches "
        f"J = {c['J_target']:.2e} with {c['fine_iters_multiscale']} "
        f"fine-grid Newton iterations (coarse levels are cheap); the "
        f"direct fine-grid solve needs {c['fine_iters_direct']} to get "
        "there"
    )
    return "\n".join(lines), (m, mm, a, c)


def test_ablations(benchmark):
    text, (m, mm, a, c) = run_once(benchmark, ablations)
    emit("ablations", text)
    assert m["err"] < 1e-6
    assert m["mem_ratio"] > 5
    assert mm["ratio"] > 4
    assert a["savings"] > 2
    assert c["J_far_guess"] > 1.5 * c["J_near_guess"]  # entrapment
    assert c["fine_iters_multiscale"] < c["fine_iters_direct"]
