"""Figure 2.2 — verification against closed-form solutions.

The paper verifies its hexahedral code against a closed-form solution
(layer over halfspace, extended strike-slip fault).  Our substitutes
(DESIGN.md): (a) plane-interface SH reflection/transmission against the
exact impedance coefficients, and (b) the 3D elastic solver against the
Stokes point-force full-space solution — both quantitative where the
paper shows renderings.
"""

import numpy as np

from _common import emit, run_once
from repro.analytic import sh_reflection_transmission, stokes_point_force
from repro.io.seismogram import ReceiverArray
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import ElasticWaveSolver, RegularGridScalarWave
from repro.sources.fault import PointForceSource, SourceCollection


def interface_pulse_check():
    """Simulated vs analytic reflection/transmission coefficients."""
    rho = 2000.0
    vs1, vs2 = 1000.0, 2500.0
    n, L = 256, 8000.0
    h = L / n
    s = RegularGridScalarWave((n, 2), h, rho, absorbing=[(0, 0), (0, 1)])
    centers = s.elem_centers()
    mu = np.where(centers[:, 0] < L / 2, rho * vs1**2, rho * vs2**2)
    dt = s.stable_dt(mu)
    x = s.node_coords()[:, 0]
    g = lambda xx: np.exp(-(((xx - 1500.0) / 200.0) ** 2))
    # at t = 3.6 s the incident pulse is gone, the reflected pulse sits
    # near x = 2.9 km and the transmitted one near x = 6.75 km, both
    # still inside the box
    nsteps = int(3.6 / dt)
    hist = s.march(
        mu, lambda k: None, nsteps, dt, store=True,
        x0=g(x), x1=g(x - vs1 * dt),
    )
    R, T = sh_reflection_transmission(rho, vs1, rho, vs2)
    final = hist[-1]
    left = final[(x > 1000.0) & (x < 3800.0)]
    right = final[x > 4200.0]
    r_sim = left[np.argmax(np.abs(left))]
    t_sim = right[np.argmax(np.abs(right))]
    return (R, float(r_sim)), (T, float(t_sim))


def stokes_check():
    """3D elastic solver vs the full-space Green's function."""
    L = 2000.0
    vs, vp, rho = 1000.0, 1800.0, 2000.0
    mat = HomogeneousMaterial(vs=vs, vp=vp, rho=rho)
    n = 32
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=5
    )
    mesh = extract_mesh(tree, L=L)
    solver = ElasticWaveSolver(mesh, tree, mat, stacey_c1=False, cfl_safety=0.4)

    t_half = 0.3
    amp = 1e10

    def force(t):
        t = np.asarray(t, dtype=float)
        ph = np.clip(t / t_half, 0.0, 1.0)
        return amp * np.sin(np.pi * ph) ** 2 * (t > 0) * (t < t_half)

    src = PointForceSource(
        position=np.array([L / 2 + 1.0, L / 2 + 1.0, L / 2 + 1.0]),
        direction=np.array([0.0, 0.0, 1.0]),
        time_function=force,
    )
    forces = SourceCollection(mesh, tree, [src])
    # receiver transverse to the force, 5 elements away
    rec_pos = np.array([[L / 2 + 8 * L / n, L / 2, L / 2]])
    rec = ReceiverArray(mesh, rec_pos)
    t_end = 1.2
    seis = solver.run(forces, t_end, receivers=rec, record="displacement")
    t = seis.times
    u_exact = stokes_point_force(
        rec.positions[0] - src.position,
        t,
        force,
        src.direction,
        rho=rho,
        vp=vp,
        vs=vs,
    )
    # compare within the resolved band (10 grid points per wavelength:
    # f <= vs / (10 h) = 1.6 Hz for this mesh)
    from repro.util.filters import lowpass

    f_resolved = vs / (10 * L / n)
    uz_s = lowpass(seis.data[0, 2], seis.dt, f_resolved)
    uz_e = lowpass(u_exact[:, 2], seis.dt, f_resolved)
    corr = float(np.corrcoef(uz_s, uz_e)[0, 1])
    amp_ratio = float(np.abs(uz_s).max() / np.abs(uz_e).max())
    return corr, amp_ratio, t, uz_s, uz_e


def haskell_amplification_check():
    """Layer-over-halfspace response vs the Haskell transfer function —
    the direct analogue of the paper's closed-form verification."""
    import os
    import sys

    tests_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests"
    )
    if tests_dir not in sys.path:
        sys.path.insert(0, tests_dir)
    from test_haskell_verification import run_column

    freqs, sim, exact, f0 = run_column()
    rel = np.abs(sim - exact) / exact
    return freqs, sim, exact, f0, float(np.median(rel)), float(rel.max())


def fig_2_2():
    lines = ["Verification against closed forms (Figure 2.2 role):", ""]
    freqs, sim, exact, f0, med, mx = haskell_amplification_check()
    lines.append(
        "(a) layer over halfspace, vertically incident SH wave, surface"
    )
    lines.append(
        "    amplification vs the exact (Haskell) transfer function:"
    )
    lines.append("      f/f0   simulated   exact")
    step = max(1, len(freqs) // 9)
    for i in range(0, len(freqs), step):
        lines.append(
            f"      {freqs[i] / f0:4.2f}   {sim[i]:9.2f}   {exact[i]:5.2f}"
        )
    lines.append(
        f"    median relative error {med:.4f}, max {mx:.4f} over the band"
    )
    (R, r_sim), (T, t_sim) = interface_pulse_check()
    lines.append("")
    lines.append("(a') SH pulse at a plane impedance contrast (1000 -> 2500 m/s):")
    lines.append(f"    reflection   R: analytic {R:+.4f}, simulated {r_sim:+.4f}")
    lines.append(f"    transmission T: analytic {T:+.4f}, simulated {t_sim:+.4f}")
    corr, amp_ratio, t, us, ue = stokes_check()
    lines.append("")
    lines.append("(b) 3D point force vs Stokes full-space solution")
    lines.append("    (z displacement, transverse receiver, 500 m offset,")
    lines.append("     both low-passed to the resolved band 1.6 Hz):")
    lines.append(f"    waveform correlation : {corr:.3f}")
    lines.append(f"    peak amplitude ratio : {amp_ratio:.3f}")
    k = max(1, len(t) // 12)
    lines.append("    t(s)    simulated     analytic")
    for i in range(0, len(t), k):
        lines.append(f"    {t[i]:5.2f}  {us[i]:+.4e}  {ue[i]:+.4e}")
    return "\n".join(lines), (R, r_sim, T, t_sim, corr, amp_ratio, med, mx)


def test_fig_2_2(benchmark):
    text, (R, r_sim, T, t_sim, corr, amp_ratio, med, mx) = run_once(
        benchmark, fig_2_2
    )
    emit("fig_2_2", text)
    assert med < 0.01 and mx < 0.05  # Haskell transfer function
    assert abs(r_sim - R) < 0.03
    assert abs(t_sim - T) < 0.05
    assert corr > 0.98
    assert 0.9 < amp_ratio < 1.15
