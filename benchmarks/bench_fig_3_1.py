"""Figure 3.1 — the seismic source model.

The figure defines the dislocation function g(t; T, t0, u0): zero until
the delay time T, rising to the dislocation magnitude over the rise
time t0, with a hat-function (isosceles-triangle) slip velocity.  The
benchmark tabulates the family, verifies the defining properties, and
checks the analytic parameter derivatives the source inversion uses.
"""

import numpy as np

from _common import emit, run_once
from repro.sources import dslip_dT, dslip_dt0, slip_function, slip_rate


def fig_3_1():
    lines = ["Seismic source model g(t; T, t0) (Figure 3.1):", ""]
    t = np.linspace(0, 4.0, 4001)
    cases = [(0.5, 1.0), (1.0, 1.5), (0.0, 0.5)]
    lines.append("  t(s)   " + "  ".join(f"T={T},t0={t0}" for T, t0 in cases))
    for i in range(0, len(t), 400):
        vals = "   ".join(
            f"{float(slip_function(t[i], T, t0)):8.4f}" for T, t0 in cases
        )
        lines.append(f"  {t[i]:4.1f}  {vals}")
    checks = {}
    for T, t0 in cases:
        v = slip_rate(t, T, t0)
        checks[(T, t0)] = {
            "unit_slip": float(slip_function(t[-1], T, t0)),
            "velocity_area": float(np.trapezoid(v, t)),
            "velocity_peak": float(v.max()),
            "peak_expected": 2.0 / t0,
            "onset_ok": bool(np.all(v[t < T - 1e-9] == 0.0)),
        }
    lines.append("")
    lines.append("defining properties (hat slip velocity):")
    for (T, t0), c in checks.items():
        lines.append(
            f"  T={T}, t0={t0}: final slip {c['unit_slip']:.4f} (=1), "
            f"velocity area {c['velocity_area']:.4f} (=1), peak "
            f"{c['velocity_peak']:.3f} (=2/t0={c['peak_expected']:.3f}), "
            f"zero before T: {c['onset_ok']}"
        )
    # analytic derivatives vs finite differences (off the knots)
    rng = np.random.default_rng(0)
    tt = rng.uniform(0.05, 3.9, 200)
    T0, t00 = 0.8, 1.1
    eps = 1e-6
    knots = np.array([T0, T0 + t00 / 2, T0 + t00])
    ok = np.min(np.abs(tt[:, None] - knots[None, :]), axis=1) > 1e-3
    tt = tt[ok]
    fd_T = (slip_function(tt, T0 + eps, t00) - slip_function(tt, T0 - eps, t00)) / (2 * eps)
    fd_t0 = (slip_function(tt, T0, t00 + eps) - slip_function(tt, T0, t00 - eps)) / (2 * eps)
    err_T = float(np.abs(dslip_dT(tt, T0, t00) - fd_T).max())
    err_t0 = float(np.abs(dslip_dt0(tt, T0, t00) - fd_t0).max())
    lines.append("")
    lines.append(
        f"analytic source derivatives vs FD: max |dg/dT err| = {err_T:.2e}, "
        f"max |dg/dt0 err| = {err_t0:.2e}"
    )
    return "\n".join(lines), (checks, err_T, err_t0)


def test_fig_3_1(benchmark):
    text, (checks, err_T, err_t0) = run_once(benchmark, fig_3_1)
    emit("fig_3_1", text)
    for c in checks.values():
        assert abs(c["unit_slip"] - 1.0) < 1e-12
        assert abs(c["velocity_area"] - 1.0) < 1e-3
        assert abs(c["velocity_peak"] - c["peak_expected"]) < 0.01
        assert c["onset_ok"]
    assert err_T < 1e-5 and err_t0 < 1e-5
