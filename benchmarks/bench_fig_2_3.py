"""Figure 2.3 — the LA Basin model: shear velocity distribution, the
wavelength-adaptive hexahedral mesh, and the 64-PE element partition.

Reports the quantities the figure conveys: the vs range of the model
(soft sediments to stiff bedrock), how the octree adapts element sizes
to the local wavelength (element counts per level and the resulting
savings over a uniform grid), and the quality of a 64-way partition
(ParMETIS in the paper, RCB here): load balance and interface sizes.
"""

import numpy as np

from _common import emit, run_once
from repro.core import ForwardSimulation
from repro.materials import SyntheticBasinModel
from repro.mesh import partition_metrics, rcb_partition


def fig_2_3():
    L = 80_000.0
    mat = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=250.0)
    sim = ForwardSimulation(
        mat,
        L=L,
        fmax=0.1,  # scaled stand-in for the figure's 0.2 Hz mesh
        box_frac=(1, 1, 0.5),
        max_level=7,
        h_min=L / 2**7,
    )
    lines = ["Synthetic Greater-LA basin model (Figure 2.3 role):", ""]

    # (a) shear velocity distribution
    rng = np.random.default_rng(0)
    surf = rng.random((4000, 3)) * [L, L, 30.0]
    deep = rng.random((4000, 3)) * [L, L, 40_000.0]
    vs_s, _, _ = mat.query(surf)
    vs_d, _, _ = mat.query(deep)
    lines.append(
        f"(a) free-surface vs: {vs_s.min():.0f} - {vs_s.max():.0f} m/s "
        "(paper colorbar: 100 - 4500 m/s over the volume)"
    )
    lines.append(
        f"    volume vs      : {vs_d.min():.0f} - {vs_d.max():.0f} m/s"
    )

    # (b)-(c) the adaptive mesh
    s = sim.mesh_summary()
    lines.append("")
    lines.append(f"(b) wavelength-adaptive mesh at {sim.fmax} Hz:")
    lines.append(f"    elements     : {s['elements']:,}")
    lines.append(f"    grid points  : {s['grid_points']:,}")
    lines.append(
        f"    hanging pts  : {s['hanging_points']:,} "
        f"({100 * s['hanging_points'] / s['grid_points']:.1f}%)"
    )
    lines.append(f"    element sizes: {s['h_min_m']:.0f} - {s['h_max_m']:.0f} m")
    lines.append("    level  elements")
    for lvl, cnt in sorted(s["levels"].items()):
        lines.append(f"    {lvl:>5}  {cnt:,}")
    savings = sim.uniform_equivalent_grid_points() / s["grid_points"]
    lines.append(
        f"    uniform grid at finest h would need "
        f"{sim.uniform_equivalent_grid_points():,} points -> "
        f"{savings:.0f}x multiresolution savings "
        "(paper: ~2000x at 1 Hz / 100 m/s)"
    )

    # (d) 64-PE partition
    parts = rcb_partition(sim.mesh.elem_centers, 64)
    pm = partition_metrics(sim.mesh, parts)
    lines.append("")
    lines.append("(d) 64-PE element partition (RCB; paper: ParMETIS):")
    lines.append(
        f"    elements/PE  : {pm.elems_per_part.min()} - "
        f"{pm.elems_per_part.max()} (imbalance {pm.imbalance:.3f})"
    )
    lines.append(f"    interface pts: {pm.total_shared_nodes:,} "
                 f"({100 * pm.total_shared_nodes / sim.mesh.nnode:.1f}% of grid)")
    lines.append(f"    face edge cut: {pm.edge_cut:,}")
    return "\n".join(lines), (sim, pm, savings)


def test_fig_2_3(benchmark):
    text, (sim, pm, savings) = run_once(benchmark, fig_2_3)
    emit("fig_2_3", text)
    assert len(np.unique(sim.mesh.elem_level)) >= 2  # multiresolution
    assert pm.imbalance < 1.1
    assert savings > 2.0
