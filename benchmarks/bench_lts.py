"""Wall-clock payoff of clustered local time stepping.

Marches the canonical LTS test problem — a soft sedimentary basin
(v = 1) over a stiff bedrock layer (v = 8) filling the bottom eighth of
a 2D grid — with the global-dt leapfrog and with the clustered LTS
schedule, at several grid sizes.  The stiff layer pins the global dt
eight times below what the basin needs, so rate binning puts ~7/8 of
the elements in coarse clusters; the benchmark reports the theoretical
(work-ratio) speedup next to the achieved wall-clock one, the cluster
histogram, and the relative error of the clustered solution against
the global-dt reference.

Also asserts the ``lts=off`` contract: on a uniform material the plan
is trivial and the clustered entry point falls back to the global loop
bit for bit.

Usage::

    python benchmarks/bench_lts.py --json BENCH_lts.json
    python benchmarks/bench_lts.py --smoke     # CI-sized
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from _common import export_telemetry, timed

from repro.solver import RegularGridScalarWave

STIFF_FRAC = 0.875  # bedrock fills the bottom (1 - STIFF_FRAC) of the box


def _make_forcing(solver, src, dt, t0, sig):
    """Point Ricker wavelet, dt^2-prescaled per the march convention."""
    buf = np.zeros(solver.nnode)

    def forcing(k):
        t = k * dt
        a = (t - t0) / sig
        w = (1.0 - 2.0 * a * a) * np.exp(-a * a)
        if abs(w) < 1e-12:
            return None
        buf[src] = dt * dt * w
        return buf

    return forcing


def two_layer_case(shape, nsteps, repeat):
    solver = RegularGridScalarWave(shape, 1.0, rho=1.0)
    centers = solver.elem_centers()
    v = np.where(centers[:, 1] > STIFF_FRAC * shape[1], 8.0, 1.0)
    mu = v * v  # rho = 1: mu = rho v^2
    dt = solver.stable_dt(mu, safety=0.5)
    plan = solver.lts_plan(mu)
    src = solver.node_index((shape[0] // 2, shape[1] // 4))
    # wavelet wide enough that even the coarsest cluster resolves it
    forcing = _make_forcing(
        solver, src, dt, t0=0.3 * nsteps * dt, sig=0.08 * nsteps * dt
    )

    def run_global():
        return solver.march(mu, forcing, nsteps, dt, store=False)

    def run_lts():
        return solver.march(mu, forcing, nsteps, dt, store=False, lts=True)

    ref = run_global()  # warm caches / hoisted coefficients
    out = run_lts()  # warm the per-level kernels
    rel_err = float(
        np.linalg.norm(out[1] - ref[1]) / np.linalg.norm(ref[1])
    )
    # interleaved reps, median ratio: frequency drift cancels within a
    # rep and the median rejects descheduled outliers
    pairs = []
    for _ in range(repeat):
        _, t_g = timed("bench.lts_global", run_global)
        _, t_l = timed("bench.lts_clustered", run_lts)
        pairs.append((t_g, t_l))
    pairs.sort(key=lambda p: p[0] / p[1])
    t_g, t_l = pairs[len(pairs) // 2]
    return {
        "shape": list(shape),
        "nelem": solver.nelem,
        "nnode": solver.nnode,
        "nsteps": nsteps,
        "dt": float(dt),
        "histogram": {str(k): v for k, v in plan.histogram().items()},
        "theoretical_speedup": float(plan.theoretical_speedup()),
        "global_s": t_g,
        "lts_s": t_l,
        "achieved_speedup": t_g / t_l,
        "rel_err": rel_err,
    }


def lts_off_bitwise(shape, nsteps) -> bool:
    """Uniform material -> trivial plan -> the lts entry point must
    reproduce the global loop bit for bit."""
    solver = RegularGridScalarWave(shape, 1.0, rho=1.0)
    mu = np.full(solver.nelem, 4.0)
    dt = solver.stable_dt(mu, safety=0.5)
    src = solver.node_index((shape[0] // 2, shape[1] // 4))
    f = _make_forcing(solver, src, dt, 0.3 * nsteps * dt, 0.08 * nsteps * dt)
    a = solver.march(mu, f, nsteps, dt, store=False)
    b = solver.march(mu, f, nsteps, dt, store=False, lts=True)
    return bool(np.array_equal(a, b))


def main(argv=None) -> dict:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_lts.json")
    ap.add_argument("--repeat", type=int, default=5,
                    help="timing repetitions (median of ratios)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized problems")
    args = ap.parse_args(argv)

    if args.smoke:
        sizes = [((128, 64), 256)]
        repeat = 1
    else:
        sizes = [((256, 128), 1024), ((384, 192), 1024), ((512, 256), 1024)]
        repeat = args.repeat

    results = {
        "smoke": bool(args.smoke),
        "stiff_frac": STIFF_FRAC,
        "cases": [
            two_layer_case(shape, nsteps, repeat)
            for shape, nsteps in sizes
        ],
        "lts_off_bitwise": lts_off_bitwise(*sizes[0]),
    }

    for c in results["cases"]:
        print(
            f"  {c['shape'][0]:>4}x{c['shape'][1]:<4} "
            f"global {c['global_s'] * 1e3:8.1f} ms  "
            f"lts {c['lts_s'] * 1e3:8.1f} ms  "
            f"achieved {c['achieved_speedup']:.2f}x "
            f"(theoretical {c['theoretical_speedup']:.2f}x)  "
            f"rel-err {c['rel_err']:.2e}"
        )
    print(f"  lts=off bitwise fallback: {results['lts_off_bitwise']}")

    with open(args.json, "w") as f:
        json.dump(results, f, indent=2)
    print(f"wrote {args.json}")
    export_telemetry("bench_lts")
    return results


if __name__ == "__main__":
    main()
