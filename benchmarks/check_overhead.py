"""Telemetry-off overhead gate.

The telemetry subsystem promises *near-zero cost when disabled*: the
hot loops pay one module-level ``None`` check per span and nothing
else.  This script holds that promise to a number.  It marches the
same quickstart-scale elastic problem two ways:

* the instrumented :meth:`ElasticWaveSolver.run` with telemetry
  disabled (the shipping configuration);
* a *replica loop* — the identical per-step numpy sequence with every
  telemetry call stripped, i.e. the pre-telemetry seed loop.

Both runs must produce bitwise-identical final states (the replica is
checked against the solver, so it cannot silently drift), and the
instrumented loop must be within ``--tol`` (default 2%) of the
replica.  Repeats are interleaved and the minimum of each side is
compared, so CPU frequency drift hits both sides equally and a single
descheduled rep cannot poison the ratio.

Exits nonzero when the gate fails — wire it into CI after the test
suite::

    python benchmarks/check_overhead.py            # default gate
    python benchmarks/check_overhead.py --tol 0.05 --repeat 9
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import telemetry
from repro.backend import spmv_acc, spmv_into
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import ElasticWaveSolver

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


def build_solver(n: int) -> ElasticWaveSolver:
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=int(np.log2(n))
    )
    mesh = extract_mesh(tree, L=L)
    return ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)


def make_force(solver: ElasticWaveSolver):
    node = solver.nnode // 2

    def force(t, out):
        out.fill(0.0)
        out[node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return out

    return force


def replica_run(solver: ElasticWaveSolver, force, nsteps: int) -> np.ndarray:
    """The seed time loop: byte-for-byte the arithmetic of
    :meth:`ElasticWaveSolver.run` (damping off) with every telemetry
    call removed.  Returns the final ``u`` state."""
    dt = solver.dt
    dt2 = dt * dt
    hd = 0.5 * dt
    nnode = solver.nnode
    m = solver.m[:, None]
    m_alpha = solver.m_alpha[:, None]
    m2 = 2.0 * m
    prev_coef = (hd * m_alpha - m) + hd * solver.C_diag
    u_prev = np.zeros((nnode, 3))
    u = np.zeros((nnode, 3))
    u_next = np.zeros((nnode, 3))
    r = np.empty((nnode, 3))
    Ku = np.empty((nnode, 3))
    tmp = np.empty((nnode, 3))
    r_bar = np.empty((solver.A_bar.shape[0], 3))
    fbuf = np.zeros((nnode, 3))
    flops_K = solver.K.flops_per_matvec
    callback = None
    receivers = None
    snapshots = None
    for k in range(nsteps):
        t = k * dt
        solver.K.matvec(u, out=Ku)
        solver.flops.add("stiffness", flops_K)
        np.multiply(m2, u, out=r)
        np.multiply(Ku, dt2, out=Ku)
        np.subtract(r, Ku, out=r)
        if solver._has_kab:
            spmv_acc(solver._K_AB_mdt2, u.reshape(-1), r.reshape(-1))
        np.multiply(prev_coef, u_prev, out=tmp)
        np.add(r, tmp, out=r)
        b = force(t, fbuf)
        if b is not None:
            np.multiply(b, dt2, out=tmp)
            np.add(r, tmp, out=r)
        spmv_into(solver.BT, r, r_bar)
        np.multiply(r_bar, solver._inv_A_bar, out=r_bar)
        spmv_into(solver.B, r_bar, u_next)
        solver.flops.add("update", 12 * nnode)
        # the seed loop carried these per-step dispatch checks
        if receivers is not None:
            pass
        if snapshots is not None:
            pass
        if callback is not None:
            pass
        u_prev, u, u_next = u, u_next, u_prev
    return u


def check_replica(solver: ElasticWaveSolver, force, nsteps: int) -> bool:
    """Bitwise-compare the replica's final state u^nsteps against the
    instrumented solver's (the callback reports pre-update states, so
    march one extra step to observe u^nsteps)."""
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    solver.run(force, (nsteps + 0.5) * solver.dt, callback=cb)
    u_replica = replica_run(solver, force, nsteps)
    return np.array_equal(out["u"], u_replica)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--size", type=int, default=8,
                    help="mesh is size^3 elements (power of two)")
    ap.add_argument("--steps", type=int, default=60)
    ap.add_argument("--repeat", type=int, default=5,
                    help="interleaved repetitions (min of each side)")
    ap.add_argument("--tol", type=float, default=0.02,
                    help="allowed relative overhead of the instrumented "
                         "loop over the replica (0.02 = 2%%)")
    args = ap.parse_args(argv)

    if telemetry.enabled():
        telemetry.disable()
    solver = build_solver(args.size)
    force = make_force(solver)

    # correctness first: the replica must track the instrumented loop
    # bitwise, or the timing comparison measures two different codes
    if not check_replica(solver, force, args.steps):
        print("FAIL: replica loop diverged from ElasticWaveSolver.run — "
              "update the replica to match the solver's time step")
        return 1

    # both sides march exactly args.steps steps
    t_end = (args.steps - 0.5) * solver.dt
    t_instr = []
    t_replica = []
    for _ in range(args.repeat):
        t0 = time.perf_counter()
        solver.run(force, t_end)
        t_instr.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        replica_run(solver, force, args.steps)
        t_replica.append(time.perf_counter() - t0)

    best_instr = min(t_instr)
    best_replica = min(t_replica)
    overhead = best_instr / best_replica - 1.0
    print(
        f"telemetry-off overhead: instrumented {best_instr * 1e3:.2f} ms, "
        f"replica {best_replica * 1e3:.2f} ms, "
        f"overhead {overhead * 100:+.2f}% (tol {args.tol * 100:.1f}%)"
    )
    if overhead > args.tol:
        print("FAIL: disabled telemetry costs more than the tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
