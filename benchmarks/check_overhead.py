"""Telemetry-off / resilience-idle / service-idle overhead gate.

The telemetry subsystem promises *near-zero cost when disabled*, the
resilience layer promises *near-zero cost when armed but idle*
(health sentinel at its default interval, a checkpoint manager bound
but never due), and the simulation service promises *near-zero cost
when it has nothing to coalesce* (a warm engine behind a zero-wait
scheduler adds only a cache lookup and a Future handoff per request).
This script holds each promise to one number.  For the first two it
marches the same quickstart-scale elastic problem two ways:

* the instrumented :meth:`ElasticWaveSolver.run` with telemetry
  disabled and resilience in the shipping configuration (default
  health interval, a bound-but-never-due checkpoint manager);
* a *replica loop* — the identical per-step numpy sequence with every
  telemetry and resilience call stripped, i.e. the pre-telemetry seed
  loop.

Both runs must produce bitwise-identical final states (the replica is
checked against the solver, so it cannot silently drift), and the
instrumented loop must be within ``--tol`` (default 2%) of the
replica.

Shared CI runners are noisy enough (scheduler quanta, frequency
phases, noisy neighbours) that a single timing pair cannot resolve a
2% tolerance, so the gate uses two floor-seeking estimators and
retries: each attempt times ``--repeat`` order-alternating
instrumented/replica pairs, then the overhead estimate is the smaller
of (a) the ratio of pooled minima across all attempts so far — the
classic noise floor, monotonically improving — and (b) the best
per-attempt median of adjacent-pair ratios — adjacent pairs share
frequency drift, so it cancels.  The gate passes as soon as either
estimator is within tolerance and fails only when ``--attempts``
rounds (with a breather in between) never get there.  A true
regression shifts *both* estimators up by its full size, so real
slowdowns still fail every attempt.

The service gate reuses the same estimators on a different pair: a
warm :class:`~repro.service.Engine` behind a B=1 zero-wait
:class:`~repro.service.CoalescingScheduler` (the idle configuration —
no co-batchable traffic ever arrives) against a direct
``ForwardSimulation.run`` of the identical request, after asserting
the two produce bitwise-identical seismograms.

Exits nonzero when any gate fails — wire it into CI after the test
suite::

    python benchmarks/check_overhead.py            # both gates
    python benchmarks/check_overhead.py --tol 0.05 --repeat 9
    python benchmarks/check_overhead.py --skip-service
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.solver.checkpoint import CheckpointManager
from repro.backend import spmv_acc, spmv_into
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import ElasticWaveSolver

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


def build_solver(n: int) -> ElasticWaveSolver:
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=int(np.log2(n))
    )
    mesh = extract_mesh(tree, L=L)
    return ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)


def make_force(solver: ElasticWaveSolver):
    node = solver.nnode // 2

    def force(t, out):
        out.fill(0.0)
        out[node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return out

    return force


def replica_run(solver: ElasticWaveSolver, force, nsteps: int) -> np.ndarray:
    """The seed time loop: byte-for-byte the arithmetic of
    :meth:`ElasticWaveSolver.run` (damping off) with every telemetry
    call removed.  Returns the final ``u`` state."""
    dt = solver.dt
    dt2 = dt * dt
    hd = 0.5 * dt
    nnode = solver.nnode
    m = solver.m[:, None]
    m_alpha = solver.m_alpha[:, None]
    m2 = 2.0 * m
    prev_coef = (hd * m_alpha - m) + hd * solver.C_diag
    u_prev = np.zeros((nnode, 3))
    u = np.zeros((nnode, 3))
    u_next = np.zeros((nnode, 3))
    r = np.empty((nnode, 3))
    Ku = np.empty((nnode, 3))
    tmp = np.empty((nnode, 3))
    r_bar = np.empty((solver.A_bar.shape[0], 3))
    fbuf = np.zeros((nnode, 3))
    flops_K = solver.K.flops_per_matvec
    callback = None
    receivers = None
    snapshots = None
    for k in range(nsteps):
        t = k * dt
        solver.K.matvec(u, out=Ku)
        solver.flops.add("stiffness", flops_K)
        np.multiply(m2, u, out=r)
        np.multiply(Ku, dt2, out=Ku)
        np.subtract(r, Ku, out=r)
        if solver._has_kab:
            spmv_acc(solver._K_AB_mdt2, u.reshape(-1), r.reshape(-1))
        np.multiply(prev_coef, u_prev, out=tmp)
        np.add(r, tmp, out=r)
        b = force(t, fbuf)
        if b is not None:
            np.multiply(b, dt2, out=tmp)
            np.add(r, tmp, out=r)
        spmv_into(solver.BT, r, r_bar)
        np.multiply(r_bar, solver._inv_A_bar, out=r_bar)
        spmv_into(solver.B, r_bar, u_next)
        solver.flops.add("update", 12 * nnode)
        # the seed loop carried these per-step dispatch checks
        if receivers is not None:
            pass
        if snapshots is not None:
            pass
        if callback is not None:
            pass
        u_prev, u, u_next = u, u_next, u_prev
    return u


def check_replica(
    solver: ElasticWaveSolver, force, nsteps: int, checkpoint
) -> bool:
    """Bitwise-compare the replica's final state u^nsteps against the
    instrumented solver's (the callback reports pre-update states, so
    march one extra step to observe u^nsteps)."""
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    solver.run(
        force, (nsteps + 0.5) * solver.dt, callback=cb, checkpoint=checkpoint
    )
    u_replica = replica_run(solver, force, nsteps)
    return np.array_equal(out["u"], u_replica)


def floor_gate(
    label: str,
    time_instr,
    time_replica,
    *,
    repeat: int,
    attempts: int,
    tol: float,
) -> float:
    """Run the two floor-seeking estimators over order-alternating
    instrumented/replica timing pairs until either estimator clears
    ``tol`` or ``attempts`` rounds are exhausted; returns the final
    overhead estimate (compare against ``tol`` for pass/fail)."""
    t_instr: list[float] = []
    t_replica: list[float] = []
    best_median = float("inf")
    overhead = float("inf")
    for attempt in range(attempts):
        ratios = []
        for i in range(repeat):
            # alternate which side runs first so a frequency ramp
            # inside a pair cannot systematically favour one side
            if (i + attempt) % 2 == 0:
                a, b = time_instr(), time_replica()
            else:
                b, a = time_replica(), time_instr()
            t_instr.append(a)
            t_replica.append(b)
            ratios.append(a / b)
        floor = min(t_instr) / min(t_replica) - 1.0
        best_median = min(best_median, statistics.median(ratios) - 1.0)
        overhead = min(floor, best_median)
        print(
            f"[{label}] attempt {attempt + 1}/{attempts}: "
            f"floor {min(t_instr) * 1e3:.2f}/{min(t_replica) * 1e3:.2f} ms "
            f"({floor * 100:+.2f}%), "
            f"best pair-median {best_median * 100:+.2f}%"
        )
        if overhead <= tol:
            break
        time.sleep(0.3)  # let a noisy-host phase pass before retrying
    return overhead


def service_gate(args) -> int:
    """Idle-service overhead: Engine + zero-wait scheduler routed
    requests vs direct ``ForwardSimulation.run`` calls.

    With ``--policy-armed`` the routed side also pays the full
    resilience policy on every request — admission-control depth
    check, deadline minting at submit plus the dispatch/demux expiry
    checks, and the breaker consult — proving the armed-but-never-
    triggered policy machinery fits the same ≤tol budget."""
    from repro.materials import HomogeneousMaterial
    from repro.service import (
        CoalescingScheduler,
        Engine,
        ForwardRequest,
        ServicePolicy,
        SimulationSpec,
    )

    spec = SimulationSpec(
        material=HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0),
        L=8000.0,
        fmax=0.4,
        box_frac=(1, 1, 0.5),
        max_level=4,
    )
    from repro.sources import idealized_strike_slip

    scenario = idealized_strike_slip(L=spec.L)
    rec = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])
    engine = Engine()
    sim = engine.simulation(spec)  # warm the cache: the gate times the
    t_end = (args.steps - 0.5) * sim.dt  # steady state, not the build
    request = ForwardRequest(spec, scenario, t_end, receivers=rec)
    policy = None
    if args.policy_armed:
        # every knob on, none ever triggering: a deep queue bound, a
        # generous deadline, bisection + retry + breaker armed
        policy = ServicePolicy(max_queue_depth=1024, deadline=600.0)
    # max_wait=0: every request dispatches alone, immediately — the
    # idle configuration whose per-request cost this gate bounds
    scheduler = CoalescingScheduler(
        engine, max_batch=1, max_wait=0.0, policy=policy
    )
    label = "service+policy" if args.policy_armed else "service"
    try:
        # correctness first: the routed path must be bitwise the
        # direct path, or the timing comparison is meaningless
        routed = scheduler.submit(request).result()
        direct = sim.run(
            scenario, t_end, receivers=rec
        ).seismograms
        if not np.array_equal(routed.data, direct.data):
            print("FAIL: service-routed seismograms diverge from a "
                  "direct ForwardSimulation.run — the idle service "
                  "changed the answer")
            return 1

        def time_routed() -> float:
            # a fresh request per iteration so an armed policy mints
            # a fresh deadline each time (the real per-request cost)
            r = ForwardRequest(spec, scenario, t_end, receivers=rec)
            t0 = time.perf_counter()
            scheduler.submit(r).result()
            return time.perf_counter() - t0

        def time_direct() -> float:
            t0 = time.perf_counter()
            sim.run(scenario, t_end, receivers=rec)
            return time.perf_counter() - t0

        overhead = floor_gate(
            label, time_routed, time_direct,
            repeat=args.repeat, attempts=args.attempts, tol=args.tol,
        )
    finally:
        scheduler.close()
        engine.close()
    print(
        f"idle-{label} overhead: {overhead * 100:+.2f}% "
        f"(tol {args.tol * 100:.1f}%)"
    )
    if overhead > args.tol:
        print("FAIL: the idle service costs more than the tolerance")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--size", type=int, default=8,
                    help="mesh is size^3 elements (power of two)")
    ap.add_argument("--steps", type=int, default=150)
    ap.add_argument("--repeat", type=int, default=6,
                    help="interleaved instrumented/replica pairs per attempt")
    ap.add_argument("--attempts", type=int, default=5,
                    help="measurement rounds before declaring failure")
    ap.add_argument("--tol", type=float, default=0.02,
                    help="allowed relative overhead of the instrumented "
                         "loop over the replica (0.02 = 2%%)")
    ap.add_argument("--skip-service", action="store_true",
                    help="run only the telemetry/resilience gate")
    ap.add_argument("--skip-telemetry", action="store_true",
                    help="run only the idle-service gate")
    ap.add_argument("--exporter-armed", action="store_true",
                    help="arm the flight recorder and construct both "
                         "exporters before timing — the armed-but-idle "
                         "observability stack must fit the same budget")
    ap.add_argument("--policy-armed", action="store_true",
                    help="arm the full service resilience policy "
                         "(admission control, deadlines, breaker) on "
                         "the routed side of the service gate — the "
                         "never-triggered policy must fit the same "
                         "budget")
    args = ap.parse_args(argv)

    if args.exporter_armed:
        # exporters/recorder exist but telemetry stays off: the gate
        # proves arming them adds nothing to the disabled hot path
        flight_dir = tempfile.mkdtemp(prefix="overhead_flight_")
        telemetry.arm_flight_recorder(flight_dir)
        telemetry.MetricsJsonlExporter(
            tempfile.mktemp(prefix="overhead_metrics_", suffix=".jsonl")
        )
        telemetry.StatusFile(
            tempfile.mktemp(prefix="overhead_status_", suffix=".json")
        )

    if args.skip_telemetry:
        if telemetry.enabled():
            telemetry.disable()
        return service_gate(args)

    if telemetry.enabled():
        telemetry.disable()
    solver = build_solver(args.size)
    force = make_force(solver)
    # resilience armed but idle: the manager is bound but interval=0
    # means no step is ever due, so the loop pays only the dispatch
    ckpt_dir = tempfile.mkdtemp(prefix="overhead_ckpt_")
    ckpt = CheckpointManager(ckpt_dir, interval=0)

    # correctness first: the replica must track the instrumented loop
    # bitwise, or the timing comparison measures two different codes
    if not check_replica(solver, force, args.steps, ckpt):
        print("FAIL: replica loop diverged from ElasticWaveSolver.run — "
              "update the replica to match the solver's time step")
        return 1

    # both sides march exactly args.steps steps
    t_end = (args.steps - 0.5) * solver.dt

    def time_instr() -> float:
        t0 = time.perf_counter()
        solver.run(force, t_end, checkpoint=ckpt)
        return time.perf_counter() - t0

    def time_replica() -> float:
        t0 = time.perf_counter()
        replica_run(solver, force, args.steps)
        return time.perf_counter() - t0

    overhead = floor_gate(
        "telemetry", time_instr, time_replica,
        repeat=args.repeat, attempts=args.attempts, tol=args.tol,
    )

    print(
        f"telemetry-off overhead: {overhead * 100:+.2f}% "
        f"(tol {args.tol * 100:.1f}%)"
    )
    if overhead > args.tol:
        print("FAIL: disabled telemetry costs more than the tolerance")
        return 1
    print("OK")
    if args.skip_service:
        return 0
    print()
    return service_gate(args)


if __name__ == "__main__":
    sys.exit(main())
