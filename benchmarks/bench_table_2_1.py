"""Table 2.1 — parallel scalability of the octree earthquake code.

Reproduction method (see DESIGN.md):

1. **Measure** the RCB surface-to-volume law on real wavelength-adaptive
   basin meshes: partition them across many rank counts with the actual
   distributed operator and record the worst rank's interface size.
2. **Predict** each paper row (1 ... 3000 AlphaServer PEs, LA10S ...
   LA1HB models, up to 102M grid points) from its granularity with the
   fitted law and the calibrated AlphaServer/Quadrics machine model
   (the 3000-PE row calibrates the synchronization constant; all other
   rows are predictions).
3. Report modeled Gflop/s, Mflop/s per PE and parallel efficiency next
   to the paper's measured values.

Also runs a *measured* weak-scaling series on meshes we actually hold in
memory, demonstrating the same monotone trend end-to-end.
"""

import numpy as np

from _common import emit, run_once
from repro.materials import SyntheticBasinModel
from repro.mesh import extract_mesh, rcb_partition
from repro.mesh.hexmesh import wavelength_target
from repro.octree import balance_octree, build_adaptive_octree
from repro.parallel.perfmodel import (
    ALPHASERVER_ES45,
    fit_interface_constant,
    format_table,
    predict_paper_row,
    predict_scalability,
)
from repro.physics import lame_from_velocities

# (PEs, model, grid pts, pts/PE, paper Gflop/s, paper Mflop/PE, paper eff)
PAPER_ROWS = [
    (1, "LA10S", 134_500, 134_500, 0.505, 505, 1.000),
    (16, "LA5S", 618_672, 38_667, 7.85, 491, 0.972),
    (128, "LA2S", 14_792_064, 115_563, 60.0, 469, 0.929),
    (512, "LA1HA", 47_556_096, 92_883, 231, 451, 0.893),
    (1024, "LA1HB", 101_940_152, 99_551, 460, 450, 0.891),
    (2048, "LA1HB", 101_940_152, 49_775, 907, 443, 0.874),
    (3000, "LA1HB", 101_940_152, 33_980, 1_210, 403, 0.800),
]


def build_basin_mesh(fmax: float, h_min: float, max_level: int = 6):
    L = 80_000.0
    mat = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=300.0)
    target = wavelength_target(
        lambda p: mat.query(p)[0], L=L, fmax=fmax, h_min=h_min
    )
    tree = balance_octree(
        build_adaptive_octree(target, max_level=max_level, box_frac=(1, 1, 0.5))
    )
    mesh = extract_mesh(tree, L=L, box_frac=(1, 1, 0.5))
    vs, vp, rho = mat.query(mesh.elem_centers)
    lam, mu = lame_from_velocities(vs, vp, rho)
    return mesh, lam, mu


def table_2_1():
    lines = []
    # step 1: surface law from real partitions of a real adaptive mesh
    mesh, lam, mu = build_basin_mesh(fmax=0.2, h_min=1250.0)
    c = fit_interface_constant(mesh, [8, 16, 32, 64])
    lines.append(
        f"RCB surface law fitted on a {mesh.nnode:,}-point adaptive basin "
        f"mesh: n_shared ~ {c:.2f} * g^(2/3)"
    )

    # step 2: paper rows at their true granularity
    rows = [
        predict_paper_row(g, p, c_interface=c, model_name=m)
        for p, m, _, g, *_ in PAPER_ROWS
    ]
    lines.append("")
    lines.append("Modeled Table 2.1 (AlphaServer ES45 / Quadrics model):")
    lines.append(format_table(rows))
    lines.append("")
    lines.append(
        f"{'PEs':>5} {'eff(model)':>10} {'eff(paper)':>10} {'abs diff':>9}"
    )
    for row, (_, _, _, _, _, _, eff_p) in zip(rows, PAPER_ROWS):
        lines.append(
            f"{row.pes:>5} {row.efficiency:>10.3f} {eff_p:>10.3f} "
            f"{abs(row.efficiency - eff_p):>9.3f}"
        )
    lines.append(
        f"headline: modeled {rows[-1].gflops / 1000:.2f} Tflop/s on 3000 PEs "
        "(paper: 1.21 Tflop/s)"
    )

    # step 3: fully measured strong-scaling series on the in-memory mesh
    lines.append("")
    lines.append(
        f"Measured strong scaling of the {mesh.nnode:,}-point mesh "
        "(real partitions + exact flop/byte accounting):"
    )
    measured = [
        predict_scalability(mesh, lam, mu, p, model_name="LA-scaled")
        for p in (1, 2, 4, 8, 16, 32, 64)
    ]
    lines.append(format_table(measured))
    return "\n".join(lines), rows


def test_table_2_1(benchmark):
    text, rows = run_once(benchmark, table_2_1)
    emit("table_2_1", text)
    effs = [r.efficiency for r in rows]
    paper = [r[-1] for r in PAPER_ROWS]
    # shape agreement: every modeled row within 0.08 of the paper, the
    # 3000-PE headline within 0.05, monotone over the final rows
    assert max(abs(a - b) for a, b in zip(effs, paper)) < 0.08
    assert abs(effs[-1] - 0.80) < 0.05
    assert effs[-1] < effs[-2] < effs[-3]
