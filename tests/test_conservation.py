"""Conservation and invariance properties of the explicit solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh
from repro.octree import build_adaptive_octree
from repro.solver import ElasticWaveSolver, RegularGridScalarWave
from repro.sources import moment_magnitude


class TestScalarEnergyConservation:
    def _energy_series(self, n=16, nsteps=400):
        """Discrete energy of the undamped leapfrog on a closed box:
        E^k+1/2 = 0.5 v^T M v + 0.5 u^{k+1,T} K u^k (the conserved
        quantity of central differences)."""
        L, rho, vs = 1000.0, 1000.0, 1000.0
        s = RegularGridScalarWave((n, n), L / n, rho, absorbing=[])
        mu = np.full(s.nelem, rho * vs**2)
        dt = s.stable_dt(mu, safety=0.4)
        x = s.node_coords()
        u0 = np.exp(-np.sum((x - 500.0) ** 2, axis=1) / 150.0**2)
        hist = s.march(mu, lambda k: None, nsteps, dt, store=True,
                       x0=u0, x1=u0)
        E = []
        for k in range(1, nsteps):
            v = (hist[k + 1] - hist[k]) / dt
            kinetic = 0.5 * float(v @ (s.m * v))
            potential = 0.5 * float(hist[k + 1] @ s.apply_K(mu, hist[k]))
            E.append(kinetic + potential)
        return np.array(E)

    def test_closed_box_conserves_energy(self):
        E = self._energy_series()
        drift = np.abs(E - E[0]).max() / abs(E[0])
        assert drift < 1e-9

    def test_absorbing_boundaries_dissipate(self):
        L, n, rho, vs = 1000.0, 16, 1000.0, 1000.0
        s = RegularGridScalarWave((n, n), L / n, rho)
        mu = np.full(s.nelem, rho * vs**2)
        dt = s.stable_dt(mu, safety=0.4)
        x = s.node_coords()
        u0 = np.exp(-np.sum((x - 500.0) ** 2, axis=1) / 150.0**2)
        hist = s.march(mu, lambda k: None, 400, dt, store=True, x0=u0, x1=u0)
        # total field norm decays monotonically once waves reach the rim
        norms = np.linalg.norm(hist, axis=1)
        assert norms[-1] < 0.5 * norms[0]


class TestElasticReciprocity:
    def test_source_receiver_reciprocity(self):
        """Green's function symmetry: force at A recorded at B equals
        force at B recorded at A (same components)."""
        from repro.io.seismogram import ReceiverArray
        from repro.sources.fault import PointForceSource, SourceCollection

        L, n = 1000.0, 8
        mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
        tree = build_adaptive_octree(
            lambda c, s: np.full(len(c), 1.0 / n), max_level=4
        )
        mesh = extract_mesh(tree, L=L)
        A = np.array([375.0, 375.0, 375.0])
        B = np.array([625.0, 625.0, 500.0])
        stf = lambda t: np.where((t > 0) & (t < 0.1),
                                 np.sin(np.pi * np.clip(t, 0, 0.1) / 0.1) ** 2,
                                 0.0) * 1e10
        out = {}
        for name, src_pos, rec_pos in (("AB", A, B), ("BA", B, A)):
            solver = ElasticWaveSolver(mesh, tree, mat, stacey_c1=False)
            src = PointForceSource(
                position=src_pos, direction=np.array([0.0, 0.0, 1.0]),
                time_function=stf,
            )
            rec = ReceiverArray(mesh, rec_pos[None, :])
            seis = solver.run(
                SourceCollection(mesh, tree, [src]),
                0.6,
                receivers=rec,
                record="displacement",
            )
            out[name] = seis.data[0, 2]  # z at receiver from z force
        scale = np.abs(out["AB"]).max()
        np.testing.assert_allclose(out["AB"] / scale, out["BA"] / scale,
                                   atol=5e-3)


class TestMomentMagnitude:
    def test_known_values(self):
        # Northridge: M0 ~ 1.2e19 N m -> Mw ~ 6.7
        np.testing.assert_allclose(moment_magnitude(1.2e19), 6.66, atol=0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            moment_magnitude(0.0)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(1e10, 1e22))
    def test_monotone(self, m0):
        assert moment_magnitude(2 * m0) > moment_magnitude(m0)


class TestSeismogramIO:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.io.seismogram import Seismograms

        rng = np.random.default_rng(0)
        s = Seismograms(
            data=rng.standard_normal((2, 3, 50)),
            dt=0.02,
            kind="velocity",
            positions=rng.random((2, 3)),
        )
        p = str(tmp_path / "seis.npz")
        s.save(p)
        t = Seismograms.load(p)
        np.testing.assert_array_equal(t.data, s.data)
        assert t.dt == s.dt and t.kind == s.kind
        np.testing.assert_array_equal(t.positions, s.positions)
        np.testing.assert_array_equal(
            t.peak_ground_motion(), np.abs(s.data).max(axis=(1, 2))
        )
