"""Tests for the surface-law fit and paper-row modeling (Table 2.1
machinery beyond what test_parallel covers)."""

import numpy as np
import pytest

from repro.mesh import uniform_hex_mesh
from repro.parallel.perfmodel import (
    ALPHASERVER_ES45,
    MachineModel,
    fit_interface_constant,
    format_table,
    predict_paper_row,
)


class TestInterfaceLaw:
    def test_fit_on_uniform_mesh(self):
        mesh = uniform_hex_mesh(8, L=1000.0)
        c = fit_interface_constant(mesh, [8, 16, 32])
        # an interior RCB part of g points exposes ~6 g^(2/3) interface
        # points (cube surface law); allow geometry slack
        assert 2.0 < c < 12.0

    def test_fit_requires_multirank(self):
        mesh = uniform_hex_mesh(2, L=1.0)
        with pytest.raises(ValueError):
            fit_interface_constant(mesh, [1])


class TestPaperRowModel:
    def test_single_pe_row_is_nearly_ideal(self):
        row = predict_paper_row(100_000, 1, c_interface=6.0)
        assert row.efficiency > 0.99

    def test_efficiency_monotone_in_granularity_at_fixed_pes(self):
        rows = [
            predict_paper_row(g, 2048, c_interface=6.0)
            for g in (200_000, 50_000, 10_000)
        ]
        assert rows[0].efficiency > rows[1].efficiency > rows[2].efficiency

    def test_efficiency_monotone_in_pes_at_fixed_granularity(self):
        rows = [
            predict_paper_row(50_000, p, c_interface=6.0)
            for p in (16, 256, 3000)
        ]
        assert rows[0].efficiency > rows[1].efficiency > rows[2].efficiency

    def test_headline_calibration(self):
        """The 3000-PE Northridge row must model at ~80% efficiency /
        1.2 Tflop/s — the calibration target."""
        row = predict_paper_row(
            33_980, 3000, c_interface=6.0, model_name="LA1HB"
        )
        assert abs(row.efficiency - 0.80) < 0.05
        assert abs(row.gflops - 1210) < 120

    def test_machine_model_terms(self):
        m = MachineModel("t", 1e9, 1e-6, 1e8, 1e-3)
        t1 = m.rank_step_time(1_000_000, 0, 0, 1)
        np.testing.assert_allclose(t1, 1e-3)
        t2 = m.rank_step_time(1_000_000, 10, 1_000_000, 1)
        np.testing.assert_allclose(t2, 1e-3 + 1e-5 + 1e-2)
        # sync term grows with log2(P)
        t4 = m.rank_step_time(0, 0, 0, 4)
        np.testing.assert_allclose(t4, 2e-3)

    def test_format_table_contains_all_rows(self):
        rows = [
            predict_paper_row(10_000, p, c_interface=6.0, model_name=f"m{p}")
            for p in (1, 8)
        ]
        text = format_table(rows)
        assert "m1" in text and "m8" in text
        assert text.count("\n") >= 3
