"""Tests for the inversion extensions: Griewank-checkpointed gradients
and frequency continuation (residual smoothing)."""

import numpy as np
import pytest

from repro.inverse import (
    FaultLineSource2D,
    MaterialGrid,
    ScalarWaveInverseProblem,
    multiscale_invert,
)
from repro.inverse.problem import gaussian_time_kernel
from repro.solver import RegularGridScalarWave


@pytest.fixture(scope="module")
def setup2d():
    nx, nz = 16, 8
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))
    m_true = grid.sample(lambda p: 2.0e9 + 1.5e9 * (p[:, 1] > 400.0))
    fault = FaultLineSource2D(solver, ix=nx // 2, jz=range(2, 6))
    params = fault.hypocentral_params(
        hypo_j=4, rupture_velocity=2000.0, u0=1.0, t0=0.3
    )
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = 120
    u = solver.march(
        mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
    )
    rec = solver.surface_nodes()[::2]
    return solver, grid, fault, params, rec, u[:, rec], dt, nsteps, m_true


class TestCheckpointedGradient:
    def test_matches_full_store(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        m0 = np.full(grid.n, 2.5e9)
        g_full, J_full, _ = prob.gradient(m0)
        for slots in (3, 8, 20):
            g_cp, J_cp = prob.gradient_checkpointed(m0, slots=slots)
            np.testing.assert_allclose(J_cp, J_full, rtol=1e-14)
            np.testing.assert_allclose(g_cp, g_full, rtol=1e-10)

    def test_matches_with_regularization_and_barrier(self, setup2d):
        from repro.inverse import TotalVariation

        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
            reg=TotalVariation(grid, beta=1e-12, eps=1e6),
            barrier_gamma=1e-4, mu_min=1e8,
        )
        rng = np.random.default_rng(0)
        m0 = 2.5e9 + 1e8 * rng.standard_normal(grid.n)
        g_full, J_full, _ = prob.gradient(m0)
        g_cp, J_cp = prob.gradient_checkpointed(m0, slots=6)
        np.testing.assert_allclose(J_cp, J_full, rtol=1e-12)
        np.testing.assert_allclose(g_cp, g_full, rtol=1e-9)


class TestFrequencyContinuation:
    def test_kernel_properties(self):
        w = gaussian_time_kernel(0.01, 2.0)
        assert len(w) % 2 == 1
        np.testing.assert_allclose(w, w[::-1])
        np.testing.assert_allclose(w.sum(), 1.0)
        with pytest.raises(ValueError):
            gaussian_time_kernel(0.01, -1.0)

    def test_asymmetric_kernel_rejected(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        with pytest.raises(ValueError):
            ScalarWaveInverseProblem(
                solver, grid, rec, data, dt, nsteps, fault=fault,
                source_params=params,
                residual_smoother=np.array([0.2, 0.5, 0.3]),
            )

    def test_smoothed_gradient_matches_fd(self, setup2d):
        """Exactness must survive the residual filter (F^T F term)."""
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        w = gaussian_time_kernel(dt, f_cut=3.0)
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params, residual_smoother=w,
        )
        m0 = np.full(grid.n, 2.5e9)
        g, J, _ = prob.gradient(m0)
        eps = 2.5e5
        for i in [1, 6, 11]:
            mp, mm = m0.copy(), m0.copy()
            mp[i] += eps
            mm[i] -= eps
            fd = (prob.objective(mp)[0] - prob.objective(mm)[0]) / (2 * eps)
            np.testing.assert_allclose(g[i], fd, rtol=1e-5)

    def test_smoothing_lowers_misfit_of_coarse_errors(self, setup2d):
        """A heavily smoothed misfit is less sensitive to fine-scale
        model errors (the continuation mechanism)."""
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        m_off = m_true * 1.15
        raw = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        smooth = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
            residual_smoother=gaussian_time_kernel(dt, f_cut=0.5),
        )
        J_raw = raw.objective(m_off)[0]
        J_s = smooth.objective(m_off)[0]
        assert J_s < J_raw

    def test_multiscale_with_level_dependent_smoother(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        L = (1600.0, 800.0)
        grids = [MaterialGrid((2, 1), L), MaterialGrid((4, 2), L)]
        cutoffs = [2.0, 8.0]

        def make_problem(g, level):
            return ScalarWaveInverseProblem(
                solver, g, rec, data, dt, nsteps, fault=fault,
                source_params=params,
                residual_smoother=gaussian_time_kernel(dt, cutoffs[level]),
            )

        res = multiscale_invert(
            make_problem, grids, m_init=2.5e9, newton_per_level=3,
            cg_maxiter=10,
        )
        assert len(res.levels) == 2
        Js = [r.objective for _, r in res.levels]
        assert np.isfinite(Js).all()
