"""Tests for linear octrees, adaptive construction, and 2-to-1 balancing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    MAX_COORD,
    LinearOctree,
    balance_octree,
    build_adaptive_octree,
    is_balanced,
    local_balance_octree,
    morton_encode,
    octant_children,
    pack_key,
)


def uniform_tree(level: int) -> LinearOctree:
    keys = np.array([pack_key(np.uint64(0), np.uint64(0))], dtype=np.uint64)
    for _ in range(level):
        keys = octant_children(keys).ravel()
    return LinearOctree(keys)


def graded_tree(seed: int = 0, n_refine: int = 30, max_level: int = 5) -> LinearOctree:
    """Randomly refined (unbalanced) tree for property tests."""
    rng = np.random.default_rng(seed)
    keys = list(octant_children(pack_key(np.uint64(0), np.uint64(0))).ravel())
    for _ in range(n_refine):
        i = rng.integers(len(keys))
        k = keys[i]
        from repro.octree import unpack_key

        _, lvl = unpack_key(k)
        if int(lvl) >= max_level:
            continue
        keys.pop(i)
        keys.extend(octant_children(k).ravel())
    return LinearOctree(np.array(keys, dtype=np.uint64))


class TestLinearOctree:
    def test_uniform_tree_covers_domain(self):
        t = uniform_tree(3)
        assert len(t) == 8**3
        t.validate()
        assert t.covered_volume() == MAX_COORD**3

    def test_locate_uniform(self):
        t = uniform_tree(2)
        size = MAX_COORD // 4
        pts = np.array([[0, 0, 0], [size, 0, 0], [MAX_COORD - 1] * 3])
        idx = t.locate(pts)
        assert np.all(idx >= 0)
        np.testing.assert_array_equal(t.anchors[idx[0]], [0, 0, 0])
        np.testing.assert_array_equal(t.anchors[idx[1]], [size, 0, 0])

    def test_locate_outside_domain(self):
        t = uniform_tree(1)
        idx = t.locate(np.array([[-1, 0, 0], [0, MAX_COORD, 0]]))
        assert np.all(idx == -1)

    def test_locate_respects_leaf_extents(self):
        t = graded_tree(3)
        rng = np.random.default_rng(1)
        pts = rng.integers(0, MAX_COORD, size=(500, 3))
        idx = t.locate(pts)
        assert np.all(idx >= 0)
        rel = pts - t.anchors[idx]
        assert np.all(rel >= 0)
        assert np.all(rel < t.sizes[idx][:, None])

    def test_validate_rejects_duplicates(self):
        k = pack_key(morton_encode(0, 0, 0), 1)
        with pytest.raises(ValueError):
            LinearOctree(np.array([k, k], dtype=np.uint64)).validate()

    def test_validate_rejects_overlap(self):
        root = pack_key(np.uint64(0), np.uint64(0))
        child = octant_children(root).ravel()[0]
        with pytest.raises(ValueError):
            LinearOctree(np.array([root, child], dtype=np.uint64)).validate()


class TestAdaptiveConstruction:
    def test_uniform_target_gives_uniform_tree(self):
        t = build_adaptive_octree(
            lambda c, s: np.full(len(c), 0.25), max_level=6
        )
        assert len(t) == 4**3
        assert np.all(t.levels == 2)

    def test_spatially_varying_target(self):
        # fine near x=0, coarse elsewhere
        def target(c, s):
            return np.where(c[:, 0] < 0.25, 1 / 16, 1 / 4)

        t = build_adaptive_octree(target, max_level=6)
        t.validate()
        fine = t.levels[t.anchors[:, 0] < MAX_COORD // 4]
        coarse = t.levels[t.anchors[:, 0] >= MAX_COORD // 4]
        assert np.all(fine == 4)
        assert np.all(coarse == 2)

    def test_max_level_caps_refinement(self):
        t = build_adaptive_octree(lambda c, s: np.full(len(c), 1e-9), max_level=3)
        assert np.all(t.levels == 3)

    def test_box_fraction_tiles_box_only(self):
        t = build_adaptive_octree(
            lambda c, s: np.full(len(c), 0.25), max_level=6, box_frac=(1, 1, 0.5)
        )
        t.validate()
        assert t.covered_volume() == MAX_COORD**3 // 2
        assert np.all(t.anchors[:, 2] + t.sizes <= MAX_COORD // 2)

    def test_box_fraction_three_eighths(self):
        t = build_adaptive_octree(
            lambda c, s: np.full(len(c), 0.25),
            max_level=6,
            box_frac=(1, 1, 3 / 8),
        )
        assert t.covered_volume() == (MAX_COORD**3 * 3) // 8

    def test_non_binary_box_fraction_rejected(self):
        with pytest.raises(ValueError):
            build_adaptive_octree(
                lambda c, s: np.full(len(c), 0.25), max_level=6, box_frac=(1, 1, 0.3)
            )

    def test_min_level_enforced(self):
        t = build_adaptive_octree(
            lambda c, s: np.full(len(c), 1.0), max_level=6, min_level=2
        )
        assert np.all(t.levels >= 2)


class TestBalance:
    def test_already_balanced_unchanged(self):
        t = uniform_tree(2)
        b = balance_octree(t)
        assert b == t

    def test_unbalanced_pair_gets_split(self):
        # refine a chain toward the x = 1/2 plane inside the first root
        # child; the resulting level-4 leaf touches the level-1 leaf on
        # the other side of the plane, violating 2-to-1 by three levels
        root_kids = octant_children(pack_key(np.uint64(0), np.uint64(0))).ravel()
        keys = list(root_kids[1:])
        cur = root_kids[0]
        for _ in range(3):
            kids = octant_children(cur).ravel()
            keys.extend(kids[[0, 2, 3, 4, 5, 6, 7]])
            cur = kids[1]  # x-max, y-min, z-min child
        deep = cur
        keys.append(deep)
        t = LinearOctree(np.asarray(keys, dtype=np.uint64))
        t.validate()
        assert not is_balanced(t)
        b = balance_octree(t)
        b.validate()
        assert is_balanced(b)
        assert b.covered_volume() == MAX_COORD**3
        # the original deep leaf must survive (balancing never coarsens)
        assert int(deep) in set(int(k) for k in b.keys)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_balance_random_trees(self, seed):
        t = graded_tree(seed, n_refine=25, max_level=5)
        b = balance_octree(t)
        b.validate()
        assert is_balanced(b)
        assert b.covered_volume() == MAX_COORD**3
        # refinement only: every original leaf is a leaf or was split
        assert len(b) >= len(t)

    @settings(deadline=None, max_examples=6)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_local_balance_matches_global(self, seed):
        t = graded_tree(seed, n_refine=25, max_level=5)
        g = balance_octree(t)
        l = local_balance_octree(t, blocks_per_axis=2)
        assert g == l

    def test_local_balance_rejects_oversized_leaves(self):
        t = uniform_tree(1)  # leaves are half the domain
        with pytest.raises(ValueError):
            local_balance_octree(t, blocks_per_axis=4)

    def test_adaptive_then_balance(self):
        def target(c, s):
            r = np.linalg.norm(c - 0.5, axis=1)
            return np.where(r < 0.35, 1 / 32, 1 / 4)

        t = build_adaptive_octree(target, max_level=6)
        assert not is_balanced(t)
        b = balance_octree(t)
        assert is_balanced(b)
        assert b.covered_volume() == MAX_COORD**3
