"""Tests for the high-level public API (repro.core)."""

import numpy as np
import pytest

from repro.core import (
    AntiplaneSetup,
    ForwardSimulation,
    MaterialInversion,
    SourceInversion,
)
from repro.materials import HomogeneousMaterial, SyntheticBasinModel
from repro.sources import idealized_strike_slip


@pytest.fixture(scope="module")
def small_forward():
    mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    return ForwardSimulation(
        mat, L=2000.0, fmax=2.0, max_level=4, h_min=250.0
    )


class TestForwardSimulation:
    def test_mesh_summary(self, small_forward):
        s = small_forward.mesh_summary()
        assert s["elements"] > 0
        assert s["grid_points"] > s["elements"]
        assert s["dt_s"] > 0

    def test_run_records_seismograms(self, small_forward):
        sc = idealized_strike_slip(
            L=2000.0, n_strike=2, n_dip=1, rise_time=0.2
        )
        rec = np.array([[1000.0, 1000.0, 0.0], [500.0, 500.0, 0.0]])
        result = small_forward.run(
            sc, t_end=1.0, receivers=rec, snapshot_every=10
        )
        assert result.seismograms.data.shape[0] == 2
        assert result.seismograms.data.shape[2] == result.nsteps
        assert np.isfinite(result.seismograms.data).all()
        assert np.abs(result.seismograms.data).max() > 0
        assert result.snapshots.as_array().shape[0] >= 1

    def test_basin_mesh_is_multiresolution(self):
        mat = SyntheticBasinModel(L=8000.0, depth=4000.0, vs_min=400.0)
        sim = ForwardSimulation(
            mat, L=8000.0, fmax=0.25, box_frac=(1, 1, 0.5), max_level=5
        )
        summary = sim.mesh_summary()
        assert len(summary["levels"]) > 1  # adaptive
        # soft basin forces finer elements than the bedrock needs
        assert summary["h_min_m"] < summary["h_max_m"]
        assert summary["hanging_points"] > 0

    def test_uniform_equivalent_savings(self):
        mat = SyntheticBasinModel(L=8000.0, depth=4000.0, vs_min=200.0)
        sim = ForwardSimulation(
            mat, L=8000.0, fmax=0.5, box_frac=(1, 1, 0.5), max_level=6
        )
        savings = sim.uniform_equivalent_grid_points() / sim.mesh.nnode
        assert savings > 3.0  # grows with contrast; huge at paper scale


@pytest.fixture(scope="module")
def antiplane():
    def vs(pts):
        return 1.0 + 0.8 * (pts[:, 1] > 2.0)

    return AntiplaneSetup(
        vs,
        lengths=(8.0, 4.0),
        wave_shape=(24, 12),
        n_receivers=12,
        t_end=6.0,
        noise=0.0,
    )


class TestAntiplaneSetup:
    def test_data_shapes(self, antiplane):
        s = antiplane
        assert s.data.shape == (s.nsteps + 1, len(s.receivers))
        assert np.abs(s.data).max() > 0

    def test_noise_added(self):
        def vs(pts):
            return np.full(len(pts), 1.0)

        a = AntiplaneSetup(
            vs, lengths=(8.0, 4.0), wave_shape=(16, 8), n_receivers=8,
            t_end=4.0, noise=0.05,
        )
        assert not np.allclose(a.data, a.clean_data)
        rel = np.linalg.norm(a.data - a.clean_data) / np.linalg.norm(
            a.clean_data
        )
        assert 0.001 < rel < 1.0

    def test_material_grids_sequence(self, antiplane):
        grids = antiplane.material_grids(3)
        assert [g.shape for g in grids] == [(2, 1), (4, 2), (8, 4)]

    def test_bad_aspect_rejected(self):
        with pytest.raises(ValueError):
            AntiplaneSetup(
                lambda p: np.ones(len(p)),
                lengths=(8.0, 4.0),
                wave_shape=(16, 16),
            )


class TestMaterialInversionAPI:
    def test_inversion_improves_model(self, antiplane):
        inv = MaterialInversion(antiplane, beta_tv=1e-6)
        res = inv.run(n_levels=3, newton_per_level=4, cg_maxiter=15)
        assert len(res.model_errors) == 3
        # error shrinks as grids refine and iterations accumulate; this
        # quick run uses few iterations per level — the Figure 3.2 bench
        # pushes the error far lower
        assert res.model_errors[-1] < 0.8 * res.model_errors[0]
        assert res.model_errors[-1] < 0.65

    def test_predicted_waveform(self, antiplane):
        inv = MaterialInversion(antiplane)
        grids = antiplane.material_grids(2)
        m = grids[-1].sample(antiplane.mu_target_fn)
        node = int(antiplane.solver.surface_nodes()[3])
        w = inv.predicted_waveform(m, grids[-1], node)
        assert w.shape == (antiplane.nsteps + 1,)
        assert np.abs(w).max() > 0


class TestSourceInversionAPI:
    def test_source_recovery(self, antiplane):
        inv = SourceInversion(antiplane)
        p_hat, res = inv.run(max_newton=20, cg_maxiter=40)
        pt = antiplane.params_true
        assert np.abs(p_hat.u0 - pt.u0).max() < 0.1
        assert np.abs(p_hat.t0 - pt.t0).max() < 0.1
        assert np.abs(p_hat.T - pt.T).max() < 0.1
        assert res.total_cg_iterations > 0
