"""Tests for seismograms, snapshots, filters, timing, and flops."""

import numpy as np
import pytest

from repro.io.seismogram import ReceiverArray, Seismograms
from repro.io.snapshots import SnapshotRecorder
from repro.mesh import uniform_hex_mesh
from repro.util import FlopCounter, Timer, lowpass


class TestLowpass:
    def test_removes_high_frequency(self):
        dt = 0.01
        t = np.arange(0, 10, dt)
        x = np.sin(2 * np.pi * 0.5 * t) + np.sin(2 * np.pi * 20.0 * t)
        y = lowpass(x, dt, 2.0)
        # the 20 Hz component is gone, the 0.5 Hz one survives
        resid = y - np.sin(2 * np.pi * 0.5 * t)
        assert np.abs(resid[100:-100]).max() < 0.05

    def test_zero_phase(self):
        """filtfilt must not shift the peak of a smooth pulse."""
        dt = 0.01
        t = np.arange(0, 4, dt)
        x = np.exp(-(((t - 2.0) / 0.3) ** 2))
        y = lowpass(x, dt, 3.0)
        assert abs(t[np.argmax(y)] - 2.0) < 0.03

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            lowpass(np.zeros(100), 0.01, 100.0)  # above Nyquist
        with pytest.raises(ValueError):
            lowpass(np.zeros(100), 0.01, 0.0)

    def test_axis_handling(self):
        x = np.random.default_rng(0).standard_normal((3, 2, 500))
        y = lowpass(x, 0.01, 5.0)
        assert y.shape == x.shape


class TestSeismograms:
    def _make(self, scale=1.0):
        rng = np.random.default_rng(0)
        data = scale * rng.standard_normal((2, 3, 200))
        return Seismograms(data=data, dt=0.01)

    def test_times(self):
        s = self._make()
        assert len(s.times) == 200
        np.testing.assert_allclose(s.times[1] - s.times[0], 0.01)

    def test_lowpassed_returns_new(self):
        s = self._make()
        f = s.lowpassed(5.0)
        assert f.data.shape == s.data.shape
        assert not np.allclose(f.data, s.data)

    def test_misfit(self):
        a = self._make()
        b = Seismograms(data=a.data.copy(), dt=0.01)
        assert a.misfit(b) == 0.0
        c = Seismograms(data=2 * a.data, dt=0.01)
        np.testing.assert_allclose(a.misfit(c), 0.5)

    def test_receiver_array_snaps_to_nodes(self):
        mesh = uniform_hex_mesh(4, L=1000.0)
        rec = ReceiverArray(mesh, np.array([[260.0, 510.0, 0.0]]))
        np.testing.assert_allclose(rec.positions[0], [250.0, 500.0, 0.0])
        assert rec.allocate(3, 10).shape == (1, 3, 10)


class TestSnapshotRecorder:
    def test_records_on_stride(self):
        rec = SnapshotRecorder(np.array([0, 1, 2]), every=5)
        field = np.ones((10, 3))
        for k in range(12):
            rec.maybe_record(k, k * 0.1, field * k)
        assert len(rec.frames) == 3  # k = 0, 5, 10
        np.testing.assert_allclose(rec.times, [0.0, 0.5, 1.0])
        arr = rec.as_array()
        assert arr.shape == (3, 3)
        # magnitude of (5,5,5) rows
        np.testing.assert_allclose(arr[1], np.sqrt(3) * 5)

    def test_scalar_field(self):
        rec = SnapshotRecorder(np.array([1]), every=1)
        rec.maybe_record(0, 0.0, np.array([1.0, -2.0, 3.0]))
        np.testing.assert_allclose(rec.as_array(), [[2.0]])

    def test_empty(self):
        rec = SnapshotRecorder(np.array([0]), every=1)
        assert rec.as_array().shape == (0, 0)


class TestTimerAndFlops:
    def test_timer_measures(self):
        import time

        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009

    def test_flop_counter(self):
        c = FlopCounter()
        c.add("matvec", 100)
        c.add("matvec", 50)
        c.add("update", 10)
        assert c.total == 160
        d = FlopCounter()
        d.add("matvec", 1)
        c.merge(d)
        assert c.counts["matvec"] == 151
