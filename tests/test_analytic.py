"""Verification against closed-form solutions (the Figure 2.2 role)."""

import numpy as np
import pytest

from repro.analytic import (
    fundamental_frequency,
    layer_halfspace_transfer,
    sh_reflection_transmission,
    stokes_point_force,
)
from repro.solver import RegularGridScalarWave


class TestClosedForms:
    def test_rt_energy_consistency(self):
        """1 + R = T (displacement continuity at the interface)."""
        R, T = sh_reflection_transmission(1800.0, 500.0, 2500.0, 3000.0)
        np.testing.assert_allclose(1.0 + R, T)
        assert -1 < R < 0  # soft-to-hard: phase flip

    def test_transfer_peaks_at_resonance(self):
        H, vs1, rho1 = 200.0, 400.0, 1800.0
        vs2, rho2 = 2000.0, 2500.0
        f0 = fundamental_frequency(H, vs1)
        f = np.linspace(0.05, 3.0, 2000)
        A = layer_halfspace_transfer(f, H, vs1, rho1, vs2, rho2)
        fpeak = f[np.argmax(A)]
        np.testing.assert_allclose(fpeak, f0, rtol=0.02)
        # peak amplification = 2 Z2/Z1... for lossless: 2/(Z1/Z2)
        np.testing.assert_allclose(
            A.max(), 2.0 * (rho2 * vs2) / (rho1 * vs1), rtol=0.01
        )

    def test_uniform_halfspace_amplification_is_two(self):
        """No impedance contrast: free-surface doubling only."""
        A = layer_halfspace_transfer(
            np.array([0.5, 1.0, 2.0]), 100.0, 1000.0, 2000.0, 1000.0, 2000.0
        )
        np.testing.assert_allclose(A, 2.0)


class TestInterfacePulseAgainstSimulation:
    def test_reflection_coefficient_in_simulation(self):
        """A quasi-1D two-layer column: the simulated reflected pulse
        amplitude matches R = (Z1 - Z2)/(Z1 + Z2)."""
        rho = 2000.0
        vs1, vs2 = 1000.0, 2500.0
        n = 128
        L = 4000.0
        h = L / n
        s = RegularGridScalarWave((n, 2), h, rho, absorbing=[(0, 0), (0, 1)])
        centers = s.elem_centers()
        mu = np.where(centers[:, 0] < L / 2, rho * vs1**2, rho * vs2**2)
        dt = s.stable_dt(mu)
        x = s.node_coords()[:, 0]
        # rightward pulse in medium 1
        g = lambda xx: np.exp(-(((xx - 800.0) / 120.0) ** 2))
        hist = s.march(
            mu,
            lambda k: None,
            int(1.1 * (L / 2) / vs1 / dt),
            dt,
            store=True,
            x0=g(x),
            x1=g(x - vs1 * dt),
        )
        # after reflection, measure amplitude of the leftward pulse in
        # medium 1 (take the extremum in the left half at final time)
        left = hist[-1][x < 1500.0]
        R, T = sh_reflection_transmission(rho, vs1, rho, vs2)
        refl_amp = left[np.argmax(np.abs(left))]
        np.testing.assert_allclose(refl_amp, R, atol=0.05)


class TestStokes:
    def test_far_field_decay_rate(self):
        """Far-field terms decay as 1/r."""
        def force(t):
            return np.where(t > 0, np.sin(8 * np.pi * np.clip(t, 0, 0.25)) ** 2, 0.0)

        t = np.linspace(0, 3.0, 800)
        rho, vp, vs = 2000.0, 2000.0, 1000.0
        u1 = stokes_point_force(
            np.array([800.0, 0, 0]), t, force, np.array([0, 0, 1.0]),
            rho=rho, vp=vp, vs=vs,
        )
        u2 = stokes_point_force(
            np.array([1600.0, 0, 0]), t, force, np.array([0, 0, 1.0]),
            rho=rho, vp=vp, vs=vs,
        )
        a1 = np.abs(u1).max()
        a2 = np.abs(u2).max()
        np.testing.assert_allclose(a1 / a2, 2.0, rtol=0.25)

    def test_s_wave_arrival_transverse(self):
        """A force transverse to the receiver direction arrives at the S
        time with (far-field) transverse polarization."""
        def force(t):
            return np.where(
                (t > 0) & (t < 0.1), np.sin(np.pi * np.clip(t, 0, 0.1) / 0.1) ** 2, 0.0
            )

        rho, vp, vs = 2000.0, 2000.0, 1000.0
        r = 1000.0
        t = np.linspace(0, 2.0, 2000)
        u = stokes_point_force(
            np.array([r, 0, 0]), t, force, np.array([0, 0, 1.0]),
            rho=rho, vp=vp, vs=vs,
        )
        uz = np.abs(u[:, 2])
        # main S pulse peaks shortly after r/vs = 1.0
        t_peak = t[np.argmax(uz)]
        assert 1.0 < t_peak < 1.15

    def test_longitudinal_force_p_dominant(self):
        def force(t):
            return np.where(
                (t > 0) & (t < 0.1), np.sin(np.pi * np.clip(t, 0, 0.1) / 0.1) ** 2, 0.0
            )

        rho, vp, vs = 2000.0, 2000.0, 1000.0
        r = 1000.0
        t = np.linspace(0, 2.0, 2000)
        u = stokes_point_force(
            np.array([r, 0, 0]), t, force, np.array([1.0, 0, 0]),
            rho=rho, vp=vp, vs=vs,
        )
        ux = np.abs(u[:, 0])
        # radial component: a clear pulse around r/vp = 0.5
        window_p = (t > 0.45) & (t < 0.65)
        assert ux[window_p].max() > 0.5 * ux.max()
        np.testing.assert_allclose(np.abs(u[:, 1]).max(), 0.0, atol=1e-12)

    def test_receiver_at_origin_rejected(self):
        with pytest.raises(ValueError):
            stokes_point_force(
                np.zeros(3),
                np.linspace(0, 1, 10),
                lambda t: np.zeros_like(t),
                np.array([1.0, 0, 0]),
                rho=1.0,
                vp=2.0,
                vs=1.0,
            )
