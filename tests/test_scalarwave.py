"""Tests for the regular-grid scalar wave substrate."""

import numpy as np
import pytest

from repro.solver import RegularGridScalarWave
from repro.solver.checkpoint import CheckpointedStates, checkpoint_schedule


def standing_mode_error(n, steps_per_period=None):
    """Error of the (1,0) standing mode on an all-free box after one
    period; second-order convergence in h (with dt ~ h)."""
    L = 1000.0
    rho, vs = 1000.0, 1000.0
    mu = rho * vs**2
    solver = RegularGridScalarWave((n, n), L / n, rho, absorbing=[])
    mu_e = np.full(solver.nelem, mu)
    coords = solver.node_coords()
    omega = np.pi * vs / L
    period = 2 * np.pi / omega
    dt = period / (40 * n // 8)  # dt shrinks with h
    nsteps = int(round(period / dt))
    dt = period / nsteps
    u0 = np.cos(np.pi * coords[:, 0] / L)
    # exact second state: u(dt) = u0 cos(omega dt)
    u1 = u0 * np.cos(omega * dt)
    hist = solver.march(
        mu_e, lambda k: None, nsteps, dt, store=True, x0=u0, x1=u1
    )
    exact = u0 * np.cos(omega * nsteps * dt)
    return np.linalg.norm(hist[-1] - exact) / np.linalg.norm(exact)


class TestScalarWaveCore:
    def test_grid_structure(self):
        s = RegularGridScalarWave((4, 3), 10.0, 1000.0)
        assert s.nnode == 5 * 4
        assert s.nelem == 12
        assert s.conn.shape == (12, 4)
        assert len(s.surface_nodes()) == 5

    def test_3d_grid(self):
        s = RegularGridScalarWave((3, 3, 3), 10.0, 1000.0)
        assert s.nnode == 64
        assert s.conn.shape == (27, 8)
        assert len(s.surface_nodes()) == 16

    def test_mass_conserves_total(self):
        s = RegularGridScalarWave((4, 4), 25.0, 1500.0)
        np.testing.assert_allclose(s.m.sum(), 1500.0 * (4 * 25.0) ** 2)

    def test_apply_K_constant_field_zero(self):
        s = RegularGridScalarWave((5, 4), 10.0, 1000.0)
        mu = np.random.default_rng(0).random(s.nelem) + 1.0
        r = s.apply_K(mu, np.ones(s.nnode))
        np.testing.assert_allclose(r, 0.0, atol=1e-12)

    def test_apply_K_symmetric(self):
        s = RegularGridScalarWave((4, 4), 10.0, 1000.0)
        rng = np.random.default_rng(1)
        mu = rng.random(s.nelem) + 0.5
        u, v = rng.standard_normal((2, s.nnode))
        np.testing.assert_allclose(
            v @ s.apply_K(mu, u), u @ s.apply_K(mu, v), rtol=1e-12
        )

    def test_K_diagonal_matches(self):
        s = RegularGridScalarWave((3, 3), 10.0, 1000.0)
        mu = np.arange(1.0, s.nelem + 1)
        diag = s.K_diagonal(mu)
        for i in range(s.nnode):
            e = np.zeros(s.nnode)
            e[i] = 1.0
            np.testing.assert_allclose(diag[i], s.apply_K(mu, e)[i], rtol=1e-12)

    def test_K_material_gradient_is_exact_derivative(self):
        s = RegularGridScalarWave((4, 3), 10.0, 1000.0)
        rng = np.random.default_rng(2)
        mu = rng.random(s.nelem) + 1.0
        u, lam = rng.standard_normal((2, s.nnode))
        g = s.K_material_gradient(u, lam)
        eps = 1e-7
        for e in [0, 5, s.nelem - 1]:
            mp, mm = mu.copy(), mu.copy()
            mp[e] += eps
            mm[e] -= eps
            fd = (lam @ s.apply_K(mp, u) - lam @ s.apply_K(mm, u)) / (2 * eps)
            np.testing.assert_allclose(g[e], fd, rtol=1e-6)

    def test_C_material_gradient_is_exact_derivative(self):
        s = RegularGridScalarWave((4, 3), 10.0, 1000.0)
        rng = np.random.default_rng(3)
        mu = rng.random(s.nelem) + 1.0
        w, lam = rng.standard_normal((2, s.nnode))
        g = s.C_material_gradient(w, lam, mu)
        eps = 1e-7
        for e in range(s.nelem):
            mp, mm = mu.copy(), mu.copy()
            mp[e] += eps
            mm[e] -= eps
            fd = (
                lam @ (s.damping_diag(mp) * w) - lam @ (s.damping_diag(mm) * w)
            ) / (2 * eps)
            np.testing.assert_allclose(g[e], fd, rtol=1e-5, atol=1e-12)

    def test_free_surface_has_no_damping(self):
        s = RegularGridScalarWave((4, 4), 10.0, 1000.0)
        C = s.damping_diag(np.ones(s.nelem))
        surf = s.surface_nodes()
        interior_surf = surf[1:-1]  # corners touch absorbing sides
        np.testing.assert_allclose(C[interior_surf], 0.0)


class TestScalarWavePropagation:
    def test_standing_mode_frequency(self):
        err = standing_mode_error(16)
        assert err < 0.05

    def test_second_order_convergence(self):
        e1 = standing_mode_error(8)
        e2 = standing_mode_error(16)
        e3 = standing_mode_error(32)
        r1 = np.log2(e1 / e2)
        r2 = np.log2(e2 / e3)
        assert r1 > 1.6 and r2 > 1.6  # ~2nd order in h (dt ~ h)

    @staticmethod
    def _ricker_point_run(n, absorbing):
        L, rho, vs = 1000.0, 1000.0, 1000.0
        kwargs = {} if absorbing else {"absorbing": []}
        s = RegularGridScalarWave((n, n), L / n, rho, **kwargs)
        mu = np.full(s.nelem, rho * vs**2)
        dt = s.stable_dt(mu)
        src = s.node_index((n // 2, n // 2))
        f0 = 20.0  # Hz, zero-mean Ricker (no static offset)

        def forcing(k):
            t = k * dt
            a = (np.pi * f0 * (t - 0.12)) ** 2
            f = np.zeros(s.nnode)
            f[src] = dt**2 * 1e6 * (1 - 2 * a) * np.exp(-a)
            return f

        nsteps = int(3.0 * L / vs / dt)
        hist = s.march(mu, forcing, nsteps, dt, store=True)
        norm = np.linalg.norm(hist, axis=1)
        return norm[-1] / norm.max()

    def test_absorbing_vs_reflecting_energy(self):
        """Absorbing boundaries drain most of the wavefield energy; the
        residual is the 2D wake plus grazing-incidence reflection of the
        first-order condition.  The closed box keeps nearly all of it."""
        absorbed = self._ricker_point_run(32, absorbing=True)
        reflected = self._ricker_point_run(24, absorbing=False)
        assert absorbed < 0.7
        assert reflected > 0.75
        assert absorbed < reflected - 0.1

    def test_plane_wave_normal_incidence_absorbed(self):
        """Lysmer damping is exact at normal incidence: a rightward plane
        pulse exits through the x faces with <2% residual."""
        L, n = 1000.0, 64
        rho, vs = 1000.0, 1000.0
        s = RegularGridScalarWave(
            (n, 4), L / n, rho, absorbing=[(0, 0), (0, 1)]
        )
        mu = np.full(s.nelem, rho * vs**2)
        dt = s.stable_dt(mu)
        x = s.node_coords()[:, 0]
        g = lambda xx: np.exp(-(((xx - 300.0) / 50.0) ** 2))
        hist = s.march(
            mu,
            lambda k: None,
            int(1.5 * L / vs / dt),
            dt,
            store=True,
            x0=g(x),
            x1=g(x - vs * dt),
        )
        assert np.abs(hist[-1]).max() < 0.02 * np.abs(hist).max()

    def test_march_store_false_matches_store_true(self):
        s = RegularGridScalarWave((8, 8), 10.0, 1000.0)
        mu = np.full(s.nelem, 1e9)
        dt = s.stable_dt(mu)
        rng = np.random.default_rng(0)
        f0 = rng.standard_normal(s.nnode)

        def forcing(k):
            return f0 * np.sin(0.3 * k)

        h1 = s.march(mu, forcing, 40, dt, store=True)
        pair = s.march(mu, forcing, 40, dt, store=False)
        np.testing.assert_allclose(pair[1], h1[-1])
        np.testing.assert_allclose(pair[0], h1[-2])


class TestCheckpointing:
    def test_schedule_covers_range(self):
        sched = checkpoint_schedule(100, 5)
        assert sched[0] == 0
        assert len(sched) <= 5 + 1
        assert max(sched) < 100

    def test_replay_matches_stored(self):
        s = RegularGridScalarWave((8, 8), 10.0, 1000.0)
        mu = np.full(s.nelem, 1e9)
        dt = s.stable_dt(mu)
        rng = np.random.default_rng(1)
        f0 = rng.standard_normal(s.nnode)
        forcing = lambda k: f0 * np.cos(0.1 * k)
        nsteps = 60
        hist = s.march(mu, forcing, nsteps, dt, store=True)

        # capture (x^s, x^{s+1}) snapshot pairs during a second pass
        sched = set(checkpoint_schedule(nsteps, 4))
        snaps = {}
        last = {}

        def on_step(k, x):
            if k - 1 in sched:
                snaps[k - 1] = (last["x"], x.copy())
            last["x"] = x.copy()

        s.march(mu, forcing, nsteps, dt, store=False, on_step=on_step)

        C = s.damping_diag(mu)
        a_plus = s.m + 0.5 * dt * C
        a_minus = s.m - 0.5 * dt * C

        def step_fn(k, x_prev, x):
            f = forcing(k)
            r = 2 * s.m * x - dt**2 * s.apply_K(mu, x) - a_minus * x_prev
            if f is not None:
                r = r + f
            return r / a_plus

        cs = CheckpointedStates(step_fn, snaps, nsteps)
        for k in [nsteps, nsteps - 3, 31, 17, 2]:
            np.testing.assert_allclose(cs.state(k), hist[k], rtol=1e-12, atol=1e-12)
        assert cs.recomputed_steps > 0
