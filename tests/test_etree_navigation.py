"""Auto-navigation construction: chunking invariance and edge cases."""

import numpy as np
import pytest

from repro.etree import EtreeDatabase, OctantRecord, construct_octree
from repro.octree import LinearOctree


def build(tmp_path, name, chunk_level, max_level=5, box_frac=(1, 1, 1)):
    db = EtreeDatabase(str(tmp_path / f"{name}.etree"))

    def decide(centers, sizes, levels):
        # refine everywhere to level 3 (so the traversal chunk level,
        # which doubles as a minimum level, cannot change the result),
        # then adaptively inside a ball
        r = np.linalg.norm(centers - 0.4, axis=1)
        return (levels < 3) | ((r < 0.3) & (sizes > 1.0 / 2**max_level))

    def payload(centers, sizes):
        rec = np.zeros(len(centers), dtype=OctantRecord)
        rec["vs"] = 100.0 + 1000.0 * centers[:, 0]
        return rec

    n = construct_octree(
        db, decide, payload, max_level=max_level, box_frac=box_frac,
        chunk_level=chunk_level,
    )
    return db, n


class TestAutoNavigation:
    def test_chunk_level_does_not_change_the_octree(self, tmp_path):
        """The paper's insight: 'the ordering of expanding an octree
        under construction is independent of the correctness of the
        result' — different traversal chunkings give identical trees."""
        trees = {}
        for cl in (1, 2, 3):
            db, n = build(tmp_path, f"c{cl}", cl)
            trees[cl] = db.keys()
            db.close()
        np.testing.assert_array_equal(trees[1], trees[2])
        np.testing.assert_array_equal(trees[2], trees[3])

    def test_payload_deterministic_across_chunkings(self, tmp_path):
        db1, _ = build(tmp_path, "p1", 1)
        db2, _ = build(tmp_path, "p2", 3)
        k1, r1 = db1.scan_arrays()
        k2, r2 = db2.scan_arrays()
        np.testing.assert_array_equal(k1, k2)
        np.testing.assert_array_equal(r1["vs"], r2["vs"])
        db1.close()
        db2.close()

    def test_box_restricted_construction(self, tmp_path):
        db, n = build(tmp_path, "box", 2, box_frac=(1, 1, 0.25))
        tree = LinearOctree(db.keys())
        tree.validate()
        from repro.octree.morton import MAX_COORD

        assert tree.covered_volume() == MAX_COORD**3 // 4
        db.close()

    def test_chunk_level_acts_as_min_level(self, tmp_path):
        db, _ = build(tmp_path, "min", 3)
        tree = LinearOctree(db.keys())
        assert tree.levels.min() >= 3
        db.close()

    def test_empty_database_required(self, tmp_path):
        db, _ = build(tmp_path, "full", 2)
        with pytest.raises(ValueError):
            construct_octree(
                db,
                lambda c, s, l: np.zeros(len(c), dtype=bool),
                lambda c, s: np.zeros(len(c), dtype=OctantRecord),
                max_level=3,
            )
        db.close()
