"""Tests for the mesh-size/work predictor and the paper's scaling law."""

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial, SyntheticBasinModel
from repro.mesh import estimate_mesh_size, extract_mesh
from repro.mesh.hexmesh import wavelength_target
from repro.octree import balance_octree, build_adaptive_octree


class TestScalingLaw:
    def test_frequency_doubling_is_8x_grid_16x_work(self):
        """Paper footnote 3: 'Each doubling of frequency leads to a
        factor of 8 increase in grid size and factor of 16 increase in
        work, for a given material model.'"""
        mat = HomogeneousMaterial(vs=1000.0, vp=2000.0, rho=2200.0)
        lo = estimate_mesh_size(mat, L=10_000.0, fmax=0.5)
        hi = estimate_mesh_size(mat, L=10_000.0, fmax=1.0)
        np.testing.assert_allclose(hi["elements"] / lo["elements"], 8.0,
                                   rtol=1e-6)
        np.testing.assert_allclose(hi["work"] / lo["work"], 16.0, rtol=1e-6)

    def test_h_min_floor_breaks_scaling(self):
        """With an element-size floor the growth saturates."""
        mat = HomogeneousMaterial(vs=1000.0, vp=2000.0, rho=2200.0)
        lo = estimate_mesh_size(mat, L=10_000.0, fmax=0.5, h_min=200.0)
        hi = estimate_mesh_size(mat, L=10_000.0, fmax=4.0, h_min=200.0)
        assert hi["elements"] / lo["elements"] < 8.0**3

    def test_estimate_matches_built_mesh(self):
        """The predictor agrees with an actually-built octree mesh to
        within the octree's power-of-two quantization (~3x)."""
        mat = SyntheticBasinModel(L=8_000.0, depth=4_000.0, vs_min=400.0)
        est = estimate_mesh_size(
            mat, L=8_000.0, fmax=0.5, box_frac=(1, 1, 0.5), h_min=125.0
        )
        target = wavelength_target(
            lambda p: mat.query(p)[0], L=8_000.0, fmax=0.5, h_min=125.0
        )
        tree = balance_octree(
            build_adaptive_octree(target, max_level=6, box_frac=(1, 1, 0.5))
        )
        mesh = extract_mesh(tree, L=8_000.0, box_frac=(1, 1, 0.5))
        ratio = mesh.nelem / est["elements"]
        assert 1 / 3 < ratio < 3.0

    def test_paper_scale_projection(self):
        """At the paper's production parameters (1 Hz, 100 m/s minimum
        vs) the LA-basin projection reaches the ~1e8-point regime, and
        2 Hz lands near the paper's 1.2-billion-point run."""
        mat = SyntheticBasinModel(L=80_000.0, depth=40_000.0, vs_min=100.0)
        one_hz = estimate_mesh_size(
            mat, L=80_000.0, fmax=1.0, box_frac=(1, 1, 0.5)
        )
        two_hz = estimate_mesh_size(
            mat, L=80_000.0, fmax=2.0, box_frac=(1, 1, 0.5)
        )
        assert 1e7 < one_hz["grid_points"] < 1e9
        np.testing.assert_allclose(
            two_hz["grid_points"] / one_hz["grid_points"], 8.0, rtol=1e-6
        )
