"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.damping import damping_ratio, rayleigh_coefficients
from repro.io.viz import render_grid, render_section, render_surface_snapshot
from repro.inverse import MaterialGrid
from repro.mesh import rcb_partition, uniform_hex_mesh
from repro.octree import MAX_COORD, build_adaptive_octree
from repro.sources import slip_function, slip_rate


class TestPartitionProperties:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=2**31))
    def test_rcb_covers_and_balances(self, nparts, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((200, 3))
        parts = rcb_partition(pts, nparts)
        counts = np.bincount(parts, minlength=nparts)
        assert counts.sum() == 200
        assert parts.min() >= 0 and parts.max() < nparts
        if nparts <= 200:
            assert counts.max() - counts.min() <= max(2, 200 // nparts)

    def test_rcb_deterministic(self):
        pts = np.random.default_rng(7).random((100, 3))
        a = rcb_partition(pts, 8)
        b = rcb_partition(pts, 8)
        np.testing.assert_array_equal(a, b)


class TestOctreeProperties:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_point_located_in_adaptive_tree(self, seed):
        rng = np.random.default_rng(seed)
        center = rng.random(3)

        def target(c, s):
            d = np.linalg.norm(c - center, axis=1)
            return np.where(d < 0.25, 1 / 16, 1 / 4)

        tree = build_adaptive_octree(target, max_level=5)
        pts = rng.integers(0, MAX_COORD, size=(100, 3))
        idx = tree.locate(pts)
        assert np.all(idx >= 0)
        # containment
        rel = pts - tree.anchors[idx]
        assert np.all(rel >= 0)
        assert np.all(rel < tree.sizes[idx][:, None])


class TestDampingProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(0.001, 0.3),
        st.floats(0.01, 2.0),
        st.floats(2.1, 20.0),
    )
    def test_fit_positive_and_scales_linearly(self, xi, f1, ratio):
        f2 = f1 * ratio
        a, b = rayleigh_coefficients(xi, f1, f2)
        assert a > 0 and b > 0
        a2, b2 = rayleigh_coefficients(2 * xi, f1, f2)
        np.testing.assert_allclose([a2, b2], [2 * a, 2 * b], rtol=1e-12)
        # the fitted curve is within a factor ~3 of the target mid-band
        mid = np.sqrt(f1 * f2)
        got = damping_ratio(a, b, mid)
        assert 0.3 * xi < got < 3.0 * xi


class TestSlipProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 5.0), st.floats(0.05, 4.0), st.floats(-1.0, 12.0))
    def test_slip_bounded_monotone_saturating(self, T, t0, t):
        g = float(slip_function(t, T, t0))
        assert 0.0 <= g <= 1.0
        assert float(slip_function(t + 0.3, T, t0)) >= g - 1e-12
        assert float(slip_rate(t, T, t0)) >= 0.0


class TestViz:
    def test_render_grid_shape_and_ramp(self):
        v = np.linspace(0, 1, 12).reshape(4, 3)
        out = render_grid(v)
        rows = out.split("\n")
        assert len(rows) == 3
        assert all(len(r) == 4 for r in rows)
        assert out[0] == " " and out[-1] == "@"

    def test_render_grid_constant_field(self):
        out = render_grid(np.ones((3, 3)))
        assert set(out.replace("\n", "")) == {" "}

    def test_render_grid_rejects_1d(self):
        with pytest.raises(ValueError):
            render_grid(np.ones(5))

    def test_render_section(self):
        grid = MaterialGrid((4, 2), (1.0, 0.5))
        m = grid.sample(lambda p: p[:, 1])
        out = render_section(grid, m)
        rows = out.split("\n")
        assert len(rows) == 3  # nodes along depth
        assert rows[0] != rows[-1]

    def test_render_surface_snapshot(self):
        mesh = uniform_hex_mesh(4, L=100.0)
        nodes = mesh.surface_nodes(2, 0)
        vals = mesh.coords[nodes][:, 0]  # gradient along x
        out = render_surface_snapshot(mesh, nodes, vals, width=16)
        rows = out.split("\n")
        assert len(rows) >= 2
        assert len(set(out.replace("\n", ""))) > 2
