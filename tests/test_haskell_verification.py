"""Layer-over-halfspace verification against the Haskell solution.

The closest analogue of the paper's Figure 2.2 closed-form check: a
vertically incident SH wave injected through the absorbing bottom of a
layered column must reproduce the exact frequency-domain surface
amplification — including the quarter-wavelength resonance — of the
Haskell transfer function.
"""

import numpy as np
import pytest

from repro.analytic import fundamental_frequency, layer_halfspace_transfer
from repro.solver import RegularGridScalarWave


def run_column(H=200.0, vs1=400.0, vs2=2000.0, rho=2000.0, depth=1600.0,
               nz=128):
    h = depth / nz
    s = RegularGridScalarWave((2, nz), h, rho, absorbing=[(1, 1)])
    centers = s.elem_centers()
    mu = np.where(centers[:, 1] < H, rho * vs1**2, rho * vs2**2)
    dt = s.stable_dt(mu, safety=0.4)
    f0 = fundamental_frequency(H, vs1)

    def vinc(t):
        a = (np.pi * f0 * (t - 1.2 / f0)) ** 2
        return (1 - 2 * a) * np.exp(-a)

    nsteps = int(30.0 / f0 / dt)
    surf = s.surface_nodes()[0]
    u = s.march(mu, s.plane_wave_injection(mu, vinc, dt, axis=1, side=1),
                nsteps, dt, store=True)[:, surf]
    mu_ref = np.full(s.nelem, rho * vs2**2)
    u_ref = s.march(
        mu_ref, s.plane_wave_injection(mu_ref, vinc, dt, axis=1, side=1),
        nsteps, dt, store=True,
    )[:, surf]
    freqs = np.fft.rfftfreq(len(u), dt)
    U, Ur = np.fft.rfft(u), np.fft.rfft(u_ref)
    band = (
        (freqs > 0.3 * f0)
        & (freqs < 2.5 * f0)
        & (np.abs(Ur) > 0.05 * np.abs(Ur).max())
    )
    # halfspace surface motion doubles the incident wave, so the
    # amplification relative to the incident amplitude is 2 U / U_ref
    sim = 2.0 * np.abs(U[band]) / np.abs(Ur[band])
    exact = layer_halfspace_transfer(freqs[band], H, vs1, rho, vs2, rho)
    return freqs[band], sim, exact, f0


class TestHaskellVerification:
    def test_transfer_function_matches(self):
        freqs, sim, exact, f0 = run_column()
        rel = np.abs(sim - exact) / exact
        assert np.median(rel) < 0.01
        assert rel.max() < 0.05

    def test_resonance_peak_location_and_height(self):
        freqs, sim, exact, f0 = run_column()
        fpeak = freqs[np.argmax(sim)]
        np.testing.assert_allclose(fpeak, f0, rtol=0.05)
        # peak amplification = 2 Z2/Z1 = 2 * 2000/400 = 10
        np.testing.assert_allclose(sim.max(), 10.0, rtol=0.05)

    def test_injection_requires_absorbing_face(self):
        s = RegularGridScalarWave((2, 8), 10.0, 1000.0, absorbing=[(1, 1)])
        mu = np.full(s.nelem, 1e9)
        with pytest.raises(ValueError):
            s.plane_wave_injection(mu, lambda t: 0.0, 1e-3, axis=1, side=0)
