"""Backend layer tests.

Three concerns: (1) the planned gather/GEMM/scatter kernels reproduce
the straightforward bincount assembly to roundoff, (2) backend
selection (env var, ``set_backend``, numba fallback) behaves as
documented, (3) the zero-allocation guarantee the kernels exist to
provide actually holds — verified with tracemalloc, so an accidental
reintroduction of a per-step temporary fails the suite.
"""

import os
import subprocess
import sys
import tracemalloc

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    HAVE_INPLACE_SPMV,
    ScatterPlan,
    available_backends,
    get_backend,
    set_backend,
    spmv_acc,
    spmv_into,
    use_backend,
)
from repro.fem.assembly import ElasticOperator, assemble_csr
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.io.seismogram import ReceiverArray
from repro.solver import ElasticWaveSolver, RegularGridScalarWave, TetWaveSolver
from repro.sources import MomentTensorSource, double_couple_moment
from repro.sources.fault import SourceCollection

HAVE_NUMBA = "numba" in available_backends()

L = 1000.0
MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


def make_uniform(n=4):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=int(np.log2(n)) + 1
    )
    mesh = extract_mesh(tree, L=L)
    return tree, mesh


def center_source():
    M = double_couple_moment(90.0, 90.0, 0.0, 1e12)
    return MomentTensorSource(
        position=np.array([0.5 * L + 1.0, 0.5 * L + 1.0, 0.5 * L + 1.0]),
        moment=M,
        T=0.05,
        t0=0.15,
    )


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-global backend as it found it."""
    saved = backend_mod._active
    yield
    backend_mod._active = saved


# ------------------------------------------------------------- ScatterPlan


class TestScatterPlan:
    def test_matches_bincount(self):
        rng = np.random.default_rng(0)
        n, nnz = 50, 400
        idx = rng.integers(0, n, size=nnz)
        plan = ScatterPlan(idx, n)
        x = rng.standard_normal(nnz)
        y = rng.standard_normal(n)
        expect = y + np.bincount(idx, weights=x, minlength=n)
        got = plan.scatter_acc(np.ones(nnz), x, y.copy())
        np.testing.assert_allclose(got, expect, rtol=1e-13, atol=1e-13)

    def test_folded_coefficients(self):
        rng = np.random.default_rng(1)
        n, nnz = 30, 200
        idx = rng.integers(0, n, size=nnz)
        coef = rng.standard_normal(nnz)
        plan = ScatterPlan(idx, n)
        data = np.empty(nnz)
        plan.fold(coef, data)
        x = rng.standard_normal(nnz)
        expect = np.bincount(idx, weights=coef * x, minlength=n)
        got = plan.scatter_acc(data, x, np.zeros(n))
        np.testing.assert_allclose(got, expect, rtol=1e-13, atol=1e-13)

    def test_fold_after_drop_raises(self):
        plan = ScatterPlan(np.array([0, 1, 1]), 2)
        plan.drop_order()
        with pytest.raises(ValueError):
            plan.fold(np.ones(3), np.empty(3))

    def test_empty_plan(self):
        plan = ScatterPlan(np.array([], dtype=np.int64), 4)
        y = np.ones(4)
        assert plan.scatter_acc(np.array([]), np.array([]), y) is y
        np.testing.assert_array_equal(y, 1.0)

    def test_spmv_helpers(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(2)
        A = sp.random(20, 15, density=0.3, random_state=3, format="csr")
        x = rng.standard_normal(15)
        y0 = rng.standard_normal(20)
        got = spmv_acc(A, x, y0.copy())
        np.testing.assert_allclose(got, y0 + A @ x, rtol=1e-13, atol=1e-13)
        out = np.empty(20)
        spmv_into(A, x, out)
        np.testing.assert_allclose(out, A @ x, rtol=1e-13, atol=1e-13)
        # 2D right-hand sides (the B / B^T projection path)
        X = np.ascontiguousarray(rng.standard_normal((15, 3)))
        Y = np.zeros((20, 3))
        spmv_acc(A, X, Y)
        np.testing.assert_allclose(Y, A @ X, rtol=1e-13, atol=1e-13)


# ------------------------------------------- kernels vs naive assembly


class TestKernelsMatchReference:
    def test_elastic_matvec_vs_csr(self):
        _, mesh = make_uniform(4)
        lam = np.full(mesh.nelem, 2.0)
        mu = np.full(mesh.nelem, 1.0)
        op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        A = assemble_csr(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        rng = np.random.default_rng(4)
        u = rng.standard_normal((mesh.nnode, 3))
        ref = (A @ u.ravel()).reshape(mesh.nnode, 3)
        got = op.matvec(u)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)
        # out= path writes the same values into a caller buffer
        out = np.empty((mesh.nnode, 3))
        assert op.matvec(u, out=out) is out
        np.testing.assert_array_equal(out, got)
        np.testing.assert_allclose(
            op.diagonal(),
            A.diagonal().reshape(mesh.nnode, 3),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_matvec_rejects_noncontiguous_out(self):
        _, mesh = make_uniform(2)
        op = ElasticOperator(
            mesh.conn,
            mesh.elem_h,
            np.ones(mesh.nelem),
            np.ones(mesh.nelem),
            mesh.nnode,
        )
        bad = np.empty((mesh.nnode, 6))[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            op.matvec(np.zeros((mesh.nnode, 3)), out=bad)

    def test_scalar_apply_K_vs_bincount(self):
        solver = RegularGridScalarWave((8, 6), 50.0, rho=1000.0)
        rng = np.random.default_rng(5)
        mu = rng.uniform(1e9, 3e9, solver.nelem)
        u = rng.standard_normal(solver.nnode)
        coef = mu * solver.h ** (solver.d - 2)
        Y = (u[solver.conn] @ solver.K_ref.T) * coef[:, None]
        ref = np.bincount(
            solver.conn.ravel(), weights=Y.ravel(), minlength=solver.nnode
        )
        np.testing.assert_allclose(
            solver.apply_K(mu, u), ref, rtol=1e-12, atol=1e-6
        )

    def test_tet_matvec_vs_bincount(self):
        _, mesh = make_uniform(2)
        solver = TetWaveSolver(mesh, MAT)
        rng = np.random.default_rng(6)
        u = rng.standard_normal((solver.nnode, 3))
        U = u.reshape(-1)[solver._dof]
        Y = np.einsum("eij,ej->ei", solver.Ke, U)
        ref = np.bincount(
            solver._dof_flat, weights=Y.ravel(), minlength=3 * solver.nnode
        ).reshape(solver.nnode, 3)
        np.testing.assert_allclose(
            solver.matvec(u), ref, rtol=1e-12, atol=1e-9
        )


# --------------------------------------------------- backend selection


class TestBackendSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert set_backend("numpy").name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("fortran")

    def test_env_var_selects(self):
        code = (
            "from repro.backend import get_backend; "
            "print(get_backend().name)"
        )
        env = dict(os.environ, REPRO_BACKEND="numpy")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "numpy"

    def test_bad_env_var_warns_and_falls_back(self):
        backend_mod._active = None
        os.environ["REPRO_BACKEND"] = "no-such-backend"
        try:
            with pytest.warns(RuntimeWarning, match="not a known backend"):
                assert get_backend().name == "numpy"
        finally:
            del os.environ["REPRO_BACKEND"]
            backend_mod._active = None

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_numba_fallback_warns(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert set_backend("numba").name == "numpy"

    def test_use_backend_restores(self):
        before = backend_mod._active
        with use_backend("numpy") as b:
            assert b.name == "numpy"
            assert get_backend() is b
        assert backend_mod._active is before


# ---------------------------------------------- cross-backend equivalence


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaEquivalence:
    def _forward(self):
        tree, mesh = make_uniform(4)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        forces = SourceCollection(mesh, tree, [center_source()])
        rec = ReceiverArray(mesh, np.array([[500.0, 500.0, 0.0]]))
        seis = solver.run(forces, 0.3, receivers=rec)
        return seis.data

    def test_elastic_forward_matches(self):
        with use_backend("numpy"):
            ref = self._forward()
        with use_backend("numba"):
            got = self._forward()
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_scalar_gradient_matches(self):
        from repro.inverse import MaterialGrid, ScalarWaveInverseProblem

        def gradient():
            nx, nz = 8, 6
            h = 100.0
            solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
            grid = MaterialGrid((2, 2), (nx * h, nz * h))
            m_true = grid.sample(lambda p: np.full(len(p), 3.0e9))
            m0 = grid.sample(lambda p: np.full(len(p), 2.5e9))
            dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
            nsteps = 40
            src_node = int(solver.nnode // 2)
            fbuf = np.zeros(solver.nnode)

            def forcing(k):
                fbuf[src_node] = dt**2 * np.sin(0.3 * k)
                return fbuf

            rec = solver.surface_nodes()[::2]
            mu_true = grid.to_elements(solver) @ m_true
            u = solver.march(mu_true, forcing, nsteps, dt, store=True)
            data = u[:, rec]
            prob = ScalarWaveInverseProblem(
                solver, grid, rec, data, dt, nsteps, extra_forcing=forcing
            )
            g, _, _ = prob.gradient(m0)
            return g

        with use_backend("numpy"):
            g_np = gradient()
        with use_backend("numba"):
            g_nb = gradient()
        np.testing.assert_allclose(g_nb, g_np, rtol=1e-12, atol=1e-20)


# ------------------------------------------------- allocation regression


@pytest.mark.skipif(
    not HAVE_INPLACE_SPMV,
    reason="scipy in-place CSR kernels unavailable: fallback allocates",
)
class TestZeroAllocation:
    def test_elastic_matvec_allocates_nothing(self):
        """After warmup, ``matvec(u, out=...)`` must not allocate any
        O(nnode) array — the workspace was all built in ``__init__``."""
        _, mesh = make_uniform(8)
        lam = np.full(mesh.nelem, 2.0)
        mu = np.full(mesh.nelem, 1.0)
        op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        u = np.ones((mesh.nnode, 3))
        out = np.empty((mesh.nnode, 3))
        op.matvec(u, out=out)  # warmup
        node_bytes = 8 * 3 * mesh.nnode
        tracemalloc.start()
        for _ in range(5):
            op.matvec(u, out=out)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < node_bytes // 2, (
            f"matvec allocated {peak} B (node vector is {node_bytes} B)"
        )

    def test_scalar_march_no_per_step_growth(self):
        """March allocations are setup-only: 25x more steps must not
        raise the allocation peak (no per-step temporaries)."""
        solver = RegularGridScalarWave((16, 8), 100.0, rho=1000.0)
        mu = np.full(solver.nelem, 2.5e9)
        dt = solver.stable_dt(mu)

        def peak_for(nsteps):
            solver.march(mu, lambda k: None, 4, dt, store=False)  # warmup
            tracemalloc.start()
            solver.march(mu, lambda k: None, nsteps, dt, store=False)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        short, long_ = peak_for(8), peak_for(200)
        assert long_ <= short + 8 * solver.nnode, (
            f"march peak grew from {short} B (8 steps) to {long_} B "
            "(200 steps): something allocates per step"
        )
