"""End-to-end: mesh databases -> solver (the paper's production loop).

The basin is meshed once into element/node databases; simulations are
then driven straight from the databases.  These tests check that the
reconstructed mesh/constraints are identical to the in-core pipeline
and that the solver runs on them.
"""

import numpy as np
import pytest

from repro.etree import (
    DatabaseMaterial,
    generate_mesh_database,
    load_mesh_from_databases,
)
from repro.mesh import build_constraints, extract_mesh
from repro.octree import LinearOctree
from repro.solver import ElasticWaveSolver
from repro.sources import MomentTensorSource
from repro.sources.fault import SourceCollection


class SlabMaterial:
    """Soft slab over stiff halfspace with the interface on an octant
    face, guaranteeing hanging nodes after balancing."""

    def query(self, pts):
        pts = np.asarray(pts, dtype=float)
        soft = np.all(pts < 250.0, axis=1)
        vs = np.where(soft, 100.0, 1600.0)
        return vs, 2.0 * vs, np.full(len(pts), 2000.0)


@pytest.fixture(scope="module")
def dbs(tmp_path_factory):
    d = tmp_path_factory.mktemp("meshdb")
    return generate_mesh_database(
        str(d),
        SlabMaterial(),
        L=1000.0,
        fmax=1.0,
        max_level=5,
        blocks_per_axis=2,
    )


def test_roundtrip_matches_in_core(dbs):
    mesh, tree, constraints, (vs, vp, rho) = load_mesh_from_databases(
        dbs.element_path, dbs.node_path, L=1000.0
    )
    assert mesh.nelem == dbs.n_elements
    assert mesh.nnode == dbs.n_nodes
    assert constraints.n_hanging == dbs.n_hanging
    # geometry identical to re-extracting from the octree
    mesh2 = extract_mesh(tree, L=1000.0)
    np.testing.assert_array_equal(mesh.node_ticks, mesh2.node_ticks)
    np.testing.assert_array_equal(mesh.conn, mesh2.conn)
    # constraint matrix identical to rebuilding in core
    info2 = build_constraints(tree, mesh2)
    assert (constraints.B != info2.B).nnz == 0
    # materials follow the model
    assert set(np.round(np.unique(vs)).astype(int)) <= {100, 1600}


def test_database_material_adapter(dbs):
    mesh, tree, constraints, mats = load_mesh_from_databases(
        dbs.element_path, dbs.node_path, L=1000.0
    )
    mat = DatabaseMaterial(tree, mesh, *mats)
    vs, vp, rho = mat.query(np.array([[50.0, 50.0, 50.0], [800.0, 800.0, 800.0]]))
    assert vs[0] == pytest.approx(100.0)
    assert vs[1] == pytest.approx(1600.0)
    with pytest.raises(ValueError):
        mat.query(np.array([[2000.0, 0.0, 0.0]]))


def test_solver_runs_from_databases(dbs):
    mesh, tree, constraints, mats = load_mesh_from_databases(
        dbs.element_path, dbs.node_path, L=1000.0
    )
    mat = DatabaseMaterial(tree, mesh, *mats)
    solver = ElasticWaveSolver(
        mesh, tree, mat, constraints=constraints, stacey_c1=False
    )
    src = MomentTensorSource(
        position=np.array([501.0, 501.0, 501.0]),
        moment=1e10 * np.eye(3),
        T=0.02,
        t0=0.1,
    )
    forces = SourceCollection(mesh, tree, [src])
    out = {}
    solver.run(
        forces, 20 * solver.dt,
        callback=lambda k, t, u: out.__setitem__("u", u),
    )
    assert np.isfinite(out["u"]).all()
    assert np.abs(out["u"]).max() > 0
