"""Frequency continuation through the high-level MaterialInversion API."""

import numpy as np
import pytest

from repro.core import AntiplaneSetup, MaterialInversion


@pytest.fixture(scope="module")
def setup():
    def vs(pts):
        return 1.0 + 0.8 * (pts[:, 1] > 2.0)

    return AntiplaneSetup(
        vs,
        lengths=(8.0, 4.0),
        wave_shape=(24, 12),
        n_receivers=12,
        t_end=6.0,
    )


def test_make_problem_attaches_level_smoother(setup):
    inv = MaterialInversion(setup, freq_continuation=[0.5, None])
    grids = setup.material_grids(2)
    p0 = inv.make_problem(grids[0], level=0)
    p1 = inv.make_problem(grids[1], level=1)
    assert p0.residual_smoother is not None
    assert p1.residual_smoother is None
    # default (no level): unfiltered
    assert inv.make_problem(grids[0]).residual_smoother is None


def test_continuation_beats_unfiltered_inversion(setup):
    """Low-passing early levels keeps the coarse updates in the basin
    of attraction: with the same iteration budget, grid+frequency
    continuation lands at a better model than grid continuation alone
    (the combination the paper advocates)."""
    inv_f = MaterialInversion(
        setup, beta_tv=1e-6, freq_continuation=[0.4, 1.0, None]
    )
    res_f = inv_f.run(n_levels=3, newton_per_level=4, cg_maxiter=15)
    inv_raw = MaterialInversion(setup, beta_tv=1e-6)
    res_raw = inv_raw.run(n_levels=3, newton_per_level=4, cg_maxiter=15)
    assert np.isfinite(res_f.m_final).all()
    assert res_f.model_errors[-1] < res_raw.model_errors[-1]
    assert res_f.model_errors[-1] < 0.45


def test_smoothed_level_fits_lowpassed_data_better(setup):
    """The filtered objective at the homogeneous guess is smaller than
    the raw one (high-frequency residual energy is suppressed)."""
    inv_raw = MaterialInversion(setup)
    inv_f = MaterialInversion(setup, freq_continuation=[0.3])
    grid = setup.material_grids(1)[0]
    m0 = np.full(grid.n, float(np.mean(setup.mu_true_e)))
    J_raw = inv_raw.make_problem(grid, level=0).objective(m0)[0]
    J_f = inv_f.make_problem(grid, level=0).objective(m0)[0]
    assert J_f < J_raw
