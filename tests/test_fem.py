"""Tests for shape functions, reference elements, damping, and the
element-based matvec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import (
    ElasticOperator,
    assemble_csr,
    gauss_points_weights,
    hex_elastic_reference,
    rayleigh_coefficients,
    scalar_mass_reference,
    scalar_stiffness_reference,
    shape_functions,
    shape_gradients,
    tet_elastic_stiffness,
    tet_lumped_mass,
)
from repro.fem.assembly import lumped_mass
from repro.fem.damping import damping_ratio
from repro.fem.hex_element import hex_consistent_mass_reference, hex_element_stiffness
from repro.mesh import hex_to_tet_mesh, uniform_hex_mesh


class TestShape:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_partition_of_unity(self, d):
        rng = np.random.default_rng(0)
        xi = rng.random((20, d))
        N = shape_functions(xi, d)
        np.testing.assert_allclose(N.sum(axis=1), 1.0, atol=1e-13)

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_kronecker_at_corners(self, d):
        nn = 1 << d
        corners = np.array(
            [[(k >> a) & 1 for a in range(d)] for k in range(nn)], dtype=float
        )
        N = shape_functions(corners, d)
        np.testing.assert_allclose(N, np.eye(nn), atol=1e-14)

    @pytest.mark.parametrize("d", [2, 3])
    def test_gradients_match_fd(self, d):
        rng = np.random.default_rng(1)
        xi = rng.random((5, d)) * 0.8 + 0.1
        g = shape_gradients(xi, d)
        eps = 1e-6
        for a in range(d):
            xp = xi.copy()
            xp[:, a] += eps
            xm = xi.copy()
            xm[:, a] -= eps
            fd = (shape_functions(xp, d) - shape_functions(xm, d)) / (2 * eps)
            np.testing.assert_allclose(g[:, :, a], fd, atol=1e-8)

    def test_gauss_weights_sum_to_volume(self):
        for d in (1, 2, 3):
            _, w = gauss_points_weights(d)
            np.testing.assert_allclose(w.sum(), 1.0)

    def test_gauss_exactness_quadratic(self):
        pts, w = gauss_points_weights(1, n=2)
        # int_0^1 x^2 dx = 1/3; int x^3 = 1/4 (2-pt exact to degree 3)
        np.testing.assert_allclose(np.sum(w * pts[:, 0] ** 2), 1 / 3)
        np.testing.assert_allclose(np.sum(w * pts[:, 0] ** 3), 1 / 4)


class TestHexElement:
    def test_reference_symmetric(self):
        K_l, K_m = hex_elastic_reference()
        np.testing.assert_allclose(K_l, K_l.T, atol=1e-13)
        np.testing.assert_allclose(K_m, K_m.T, atol=1e-13)

    def test_rigid_body_modes_in_nullspace(self):
        """Translations and infinitesimal rotations produce zero force."""
        K = hex_element_stiffness(2.0, 1.7e9, 0.8e9)
        corners = np.array(
            [[(k >> a) & 1 for a in range(3)] for k in range(8)], dtype=float
        )
        modes = []
        for a in range(3):  # translations
            m = np.zeros((8, 3))
            m[:, a] = 1.0
            modes.append(m.ravel())
        # rotations about each axis
        c = corners - 0.5
        for axis in range(3):
            rot = np.zeros((8, 3))
            a, b = [(1, 2), (2, 0), (0, 1)][axis]
            rot[:, a] = -c[:, b]
            rot[:, b] = c[:, a]
            modes.append(rot.ravel())
        for m in modes:
            r = K @ m
            assert np.linalg.norm(r) < 1e-6 * np.linalg.norm(K)

    def test_positive_semidefinite(self):
        K = hex_element_stiffness(1.0, 1.0, 1.0)
        w = np.linalg.eigvalsh(K)
        assert w.min() > -1e-12
        # exactly 6 zero modes
        assert np.sum(np.abs(w) < 1e-10) == 6

    def test_scaling_with_h(self):
        K1 = hex_element_stiffness(1.0, 2.0, 3.0)
        K2 = hex_element_stiffness(4.0, 2.0, 3.0)
        np.testing.assert_allclose(K2, 4.0 * K1)

    def test_consistent_mass_rowsum_is_lumped(self):
        M = hex_consistent_mass_reference()
        np.testing.assert_allclose(M.sum(axis=1), 1.0 / 8.0, atol=1e-14)
        np.testing.assert_allclose(M.sum(), 1.0)

    def test_uniaxial_strain_energy(self):
        """Uniform strain e_xx = 1 on a unit cube with (lam, mu) stores
        energy (lam/2 + mu) -> u^T K u = lam + 2 mu."""
        lam, mu = 2.3, 0.9
        K = hex_element_stiffness(1.0, lam, mu)
        corners = np.array(
            [[(k >> a) & 1 for a in range(3)] for k in range(8)], dtype=float
        )
        u = np.zeros((8, 3))
        u[:, 0] = corners[:, 0]  # u_x = x
        e = u.ravel() @ K @ u.ravel()
        np.testing.assert_allclose(e, lam + 2 * mu, rtol=1e-12)

    def test_pure_shear_energy(self):
        """u_x = y gives energy mu on the unit cube."""
        lam, mu = 2.3, 0.9
        K = hex_element_stiffness(1.0, lam, mu)
        corners = np.array(
            [[(k >> a) & 1 for a in range(3)] for k in range(8)], dtype=float
        )
        u = np.zeros((8, 3))
        u[:, 0] = corners[:, 1]
        e = u.ravel() @ K @ u.ravel()
        np.testing.assert_allclose(e, mu, rtol=1e-12)


class TestScalarElement:
    @pytest.mark.parametrize("d", [2, 3])
    def test_stiffness_nullspace_is_constants(self, d):
        K = scalar_stiffness_reference(d)
        np.testing.assert_allclose(K @ np.ones(1 << d), 0.0, atol=1e-13)
        w = np.linalg.eigvalsh(K)
        assert np.sum(np.abs(w) < 1e-12) == 1

    @pytest.mark.parametrize("d", [2, 3])
    def test_mass_total(self, d):
        M = scalar_mass_reference(d)
        np.testing.assert_allclose(M.sum(), 1.0)

    def test_linear_field_energy_2d(self):
        K = scalar_stiffness_reference(2)
        corners = np.array([[k & 1, (k >> 1) & 1] for k in range(4)], dtype=float)
        u = 3.0 * corners[:, 0]  # grad = (3, 0) -> energy 9
        np.testing.assert_allclose(u @ K @ u, 9.0, rtol=1e-12)


class TestTetElement:
    def _mesh(self):
        mesh = uniform_hex_mesh(2, L=2.0)
        return hex_to_tet_mesh(mesh)

    def test_rigid_modes(self):
        tet = self._mesh()
        lam = np.full(tet.nelem, 1.3e9)
        mu = np.full(tet.nelem, 0.6e9)
        K = tet_elastic_stiffness(tet.coords, tet.conn, lam, mu)
        # translation in x on each element
        u = np.zeros((tet.nelem, 12))
        u[:, 0::3] = 1.0
        r = np.einsum("eij,ej->ei", K, u)
        assert np.abs(r).max() < 1e-3  # Pa-scale entries, ~1e9 magnitudes

    def test_symmetry_and_psd(self):
        tet = self._mesh()
        lam = np.full(tet.nelem, 2.0)
        mu = np.full(tet.nelem, 1.0)
        K = tet_elastic_stiffness(tet.coords, tet.conn, lam, mu)
        np.testing.assert_allclose(K, np.transpose(K, (0, 2, 1)), atol=1e-12)
        w = np.linalg.eigvalsh(K[0])
        assert w.min() > -1e-12

    def test_lumped_mass_total(self):
        tet = self._mesh()
        rho = np.full(tet.nelem, 1500.0)
        m = tet_lumped_mass(tet.coords, tet.conn, rho, tet.nnode)
        np.testing.assert_allclose(m.sum(), 1500.0 * 8.0)  # rho * volume

    def test_uniaxial_patch_matches_hex(self):
        """The assembled tet energy of a uniform strain field equals the
        hex energy (both integrate the exact constant strain)."""
        mesh = uniform_hex_mesh(2, L=1.0)
        tet = hex_to_tet_mesh(mesh)
        lam_, mu_ = 2.0, 1.0
        Kt = tet_elastic_stiffness(
            tet.coords, tet.conn, np.full(tet.nelem, lam_), np.full(tet.nelem, mu_)
        )
        u = np.zeros((tet.nnode, 3))
        u[:, 0] = tet.coords[:, 0]
        ue = u[tet.conn].reshape(tet.nelem, 12)
        e = np.einsum("ei,eij,ej->", ue, Kt, ue)
        np.testing.assert_allclose(e, lam_ + 2 * mu_, rtol=1e-12)


class TestDamping:
    def test_fit_hits_target_at_band_interior(self):
        alpha, beta = rayleigh_coefficients(0.05, 0.1, 1.0)
        f = np.linspace(0.1, 1.0, 50)
        xi = damping_ratio(alpha, beta, f)
        # within the band the ratio stays near the target; the largest
        # deviation sits at the band edges (Rayleigh damping grows both
        # inversely and linearly with frequency)
        assert np.abs(xi - 0.05).max() < 0.035
        assert abs(xi.mean() - 0.05) < 0.01

    def test_overdamped_outside_band(self):
        """Paper: very low and very high frequencies are overdamped."""
        alpha, beta = rayleigh_coefficients(0.05, 0.1, 1.0)
        assert damping_ratio(alpha, beta, 0.01) > 0.1
        assert damping_ratio(alpha, beta, 10.0) > 0.1

    def test_vectorized_targets(self):
        xi = np.array([0.02, 0.05, 0.10])
        alpha, beta = rayleigh_coefficients(xi, 0.1, 1.0)
        assert alpha.shape == xi.shape
        # linearity in the target
        np.testing.assert_allclose(alpha / alpha[0], xi / xi[0])

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            rayleigh_coefficients(0.05, 1.0, 0.5)


class TestElasticOperator:
    def _op(self, n=2, lam_=2.0, mu_=1.0):
        mesh = uniform_hex_mesh(n, L=1.0)
        lam = np.full(mesh.nelem, lam_)
        mu = np.full(mesh.nelem, mu_)
        op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        return mesh, op

    def test_matches_csr(self):
        mesh, op = self._op(2)
        A = assemble_csr(
            mesh.conn,
            mesh.elem_h,
            np.full(mesh.nelem, 2.0),
            np.full(mesh.nelem, 1.0),
            mesh.nnode,
        )
        rng = np.random.default_rng(0)
        u = rng.standard_normal((mesh.nnode, 3))
        y1 = op.matvec(u)
        y2 = (A @ u.ravel()).reshape(mesh.nnode, 3)
        np.testing.assert_allclose(y1, y2, rtol=1e-10, atol=1e-12)

    def test_diagonal_matches_csr(self):
        mesh, op = self._op(2)
        A = assemble_csr(
            mesh.conn,
            mesh.elem_h,
            np.full(mesh.nelem, 2.0),
            np.full(mesh.nelem, 1.0),
            mesh.nnode,
        )
        np.testing.assert_allclose(
            op.diagonal().ravel(), A.diagonal(), rtol=1e-10
        )

    def test_rigid_translation_zero(self):
        mesh, op = self._op(4)
        u = np.zeros((mesh.nnode, 3))
        u[:, 1] = 1.0
        assert np.abs(op.matvec(u)).max() < 1e-10

    def test_linear_displacement_interior_equilibrium(self):
        """A uniform-strain field is in equilibrium: interior nodes see
        zero residual (boundary nodes carry the surface traction)."""
        mesh, op = self._op(4)
        u = np.zeros((mesh.nnode, 3))
        u[:, 0] = mesh.coords[:, 0]
        r = op.matvec(u)
        interior = np.all(
            (mesh.node_ticks > 0) & (mesh.node_ticks < mesh.box_ticks), axis=1
        )
        assert np.abs(r[interior]).max() < 1e-10
        assert np.abs(r[~interior]).max() > 1e-3

    def test_lumped_mass_conserves_total(self):
        mesh, _ = self._op(4)
        rho = np.full(mesh.nelem, 2200.0)
        m = lumped_mass(mesh.conn, mesh.elem_h, rho, mesh.nnode)
        np.testing.assert_allclose(m.sum(), 2200.0 * 1.0)

    def test_flop_count_positive(self):
        _, op = self._op(2)
        assert op.flops_per_matvec > 0

    @settings(deadline=None, max_examples=10)
    @given(st.floats(0.1, 10.0), st.floats(0.1, 10.0))
    def test_property_symmetry(self, lam_, mu_):
        mesh, op = self._op(2, lam_, mu_)
        rng = np.random.default_rng(3)
        u = rng.standard_normal((mesh.nnode, 3))
        v = rng.standard_normal((mesh.nnode, 3))
        a = np.sum(v * op.matvec(u))
        b = np.sum(u * op.matvec(v))
        np.testing.assert_allclose(a, b, rtol=1e-10)
