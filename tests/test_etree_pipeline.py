"""Tests for the etree database layer and the mesh-generation pipeline."""

import numpy as np
import pytest

from repro.etree import (
    EtreeDatabase,
    OctantRecord,
    construct_octree,
    generate_mesh_database,
)
from repro.etree.pipeline import HANGING_FLAG, balance_step, construct_step
from repro.octree import LinearOctree, is_balanced, balance_octree


class TwoSpeedMaterial:
    """Fast halfspace with a slow box in one corner: forces refinement
    with a genuine 2-to-1 violation at the box faces."""

    def __init__(self, vs_slow=200.0, vs_fast=800.0, scale=1.0):
        self.vs_slow = vs_slow
        self.vs_fast = vs_fast
        self.scale = scale

    def query(self, pts):
        pts = np.asarray(pts, dtype=float)
        # boundary on a coarse octant face (x = L/4) so the slow box
        # refines deeply right up against coarse fast octants
        slow = np.all(pts < 0.25 * self.scale, axis=1)
        vs = np.where(slow, self.vs_slow, self.vs_fast)
        return vs, 2.0 * vs, np.full(len(pts), 2000.0)


class TestEtreeDatabase:
    def test_insert_get_typed(self, tmp_path):
        with EtreeDatabase(str(tmp_path / "db.etree")) as db:
            db.insert(5, (100.0, 200.0, 1500.0, 0))
            rec = db.get(5)
            assert rec["vs"] == 100.0
            assert rec["rho"] == 1500.0
            assert db.get(6) is None

    def test_scan_arrays_roundtrip(self, tmp_path):
        with EtreeDatabase(str(tmp_path / "db.etree")) as db:
            keys = np.arange(10, 50, 2, dtype=np.uint64)
            recs = np.zeros(len(keys), dtype=OctantRecord)
            recs["vs"] = np.arange(len(keys), dtype=np.float32)
            db.append_sorted(keys, recs)
            k2, r2 = db.scan_arrays(14, 30)
            np.testing.assert_array_equal(k2, np.arange(14, 30, 2))
            np.testing.assert_array_equal(r2["vs"], np.arange(2, 10))

    def test_io_stats_exposed(self, tmp_path):
        with EtreeDatabase(str(tmp_path / "db.etree"), cache_pages=4) as db:
            for k in range(500):
                db.insert(k, (1.0, 2.0, 3.0, 0))
            stats = db.io_stats
            assert stats["page_writes"] > 0


class TestConstructOctree:
    def _build(self, tmp_path, max_level=4):
        db = EtreeDatabase(str(tmp_path / "oct.etree"))
        mat = TwoSpeedMaterial()

        def decide(centers, sizes, levels):
            vs, _, _ = mat.query(centers)
            return sizes > vs / 2000.0

        def payload(centers, sizes):
            vs, vp, rho = mat.query(centers)
            rec = np.zeros(len(centers), dtype=OctantRecord)
            rec["vs"], rec["vp"], rec["rho"] = vs, vp, rho
            return rec

        n = construct_octree(db, decide, payload, max_level=max_level)
        return db, n

    def test_construct_writes_leaves_in_order(self, tmp_path):
        db, n = self._build(tmp_path)
        assert n == len(db) > 64
        keys = db.keys()
        assert np.all(keys[1:] > keys[:-1])
        LinearOctree(keys).validate()
        db.close()

    def test_construct_tiles_domain(self, tmp_path):
        db, _ = self._build(tmp_path)
        tree = LinearOctree(db.keys())
        from repro.octree.morton import MAX_COORD

        assert tree.covered_volume() == MAX_COORD**3
        db.close()

    def test_payload_matches_material(self, tmp_path):
        db, _ = self._build(tmp_path)
        # the slow corner must hold slow-material records at fine levels
        from repro.octree.morton import MAX_COORD
        from repro.octree.octant import octant_anchor

        keys = db.keys()
        x, y, z, lvl = octant_anchor(keys)
        corner = (x < MAX_COORD // 8) & (y < MAX_COORD // 8) & (z < MAX_COORD // 8)
        for k in keys[corner][:5]:
            assert db.get(int(k))["vs"] == 200.0
        db.close()


class TestPipeline:
    def test_balance_step_produces_balanced_db(self, tmp_path):
        mat = TwoSpeedMaterial(vs_slow=100.0, vs_fast=1600.0, scale=1000.0)
        db = construct_step(
            str(tmp_path / "oct.etree"),
            mat,
            L=1000.0,
            fmax=1.0,
            points_per_wavelength=10.0,
            max_level=5,
        )
        tree_unbal = LinearOctree(db.keys())
        assert not is_balanced(tree_unbal)
        out = balance_step(db, str(tmp_path / "bal.etree"), blocks_per_axis=2)
        tree = LinearOctree(out.keys())
        tree.validate()
        assert is_balanced(tree)
        # identical to the in-core global algorithm
        assert tree == balance_octree(tree_unbal)
        # every record present, inherited where split
        for k in out.keys()[:20]:
            assert out.get(int(k)) is not None
        db.close()
        out.close()

    def test_full_pipeline(self, tmp_path):
        mat = TwoSpeedMaterial(vs_slow=100.0, vs_fast=1600.0, scale=1000.0)
        result = generate_mesh_database(
            str(tmp_path / "mesh"),
            mat,
            L=1000.0,
            fmax=1.0,
            max_level=5,
            blocks_per_axis=2,
        )
        assert result.n_elements >= result.n_octants_unbalanced
        assert result.n_nodes > result.n_elements  # hex meshes: more nodes
        assert result.n_hanging > 0
        assert result.construct_seconds > 0
        # element db is replayable into a consistent mesh
        from repro.etree.pipeline import ElementRecord, NodeRecord

        with EtreeDatabase(result.element_path, ElementRecord) as edb:
            assert len(edb) == result.n_elements
            _, recs = edb.scan_arrays()
            assert recs["nodes"].max() < result.n_nodes
            assert np.all(recs["vs"] > 0)
        with EtreeDatabase(result.node_path, NodeRecord) as ndb:
            assert len(ndb) == result.n_nodes
            _, nrecs = ndb.scan_arrays()
            hang = (nrecs["flags"] & HANGING_FLAG) > 0
            assert int(hang.sum()) == result.n_hanging
            # hanging nodes carry normalized constraint weights
            w = nrecs["weights"][hang].sum(axis=1)
            np.testing.assert_allclose(w, 1.0, atol=1e-6)
