"""Tests for the attenuation (damping field) inversion."""

import numpy as np
import pytest

from repro.inverse import (
    AttenuationInverseProblem,
    MaterialGrid,
    gauss_newton_cg,
)
from repro.solver import RegularGridScalarWave


@pytest.fixture(scope="module")
def atten_setup():
    nx, nz = 24, 12
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))
    mu_e = np.full(solver.nelem, 2.0e9)
    alpha_true = grid.sample(lambda p: 0.5 + 1.5 * (p[:, 0] > 1200.0))
    alpha_e = grid.to_elements(solver) @ alpha_true
    dt = solver.stable_dt(mu_e)
    nsteps = 250
    src = solver.node_index((nx // 2, 3))

    def ricker(t, f0=2.0, t0=0.6):
        a = (np.pi * f0 * (t - t0)) ** 2
        return (1 - 2 * a) * np.exp(-a)

    def forcing(k):
        f = np.zeros(solver.nnode)
        f[src] = dt**2 * 1e6 * ricker(k * dt)
        return f

    u = solver.march(mu_e, forcing, nsteps, dt, store=True, alpha=alpha_e)
    rec = solver.surface_nodes()
    prob = AttenuationInverseProblem(
        solver, grid, mu_e, rec, u[:, rec], dt, nsteps, forcing
    )
    return prob, grid, alpha_true


class TestVolumeDamping:
    def test_damping_reduces_amplitude(self):
        solver = RegularGridScalarWave((16, 8), 100.0, 1000.0)
        mu = np.full(solver.nelem, 2e9)
        dt = solver.stable_dt(mu)
        src = solver.node_index((8, 2))

        def forcing(k):
            f = np.zeros(solver.nnode)
            f[src] = dt**2 * 1e6 * np.exp(-(((k * dt - 0.2) / 0.05) ** 2))
            return f

        u0 = solver.march(mu, forcing, 150, dt, store=True)
        u1 = solver.march(
            mu, forcing, 150, dt, store=True,
            alpha=np.full(solver.nelem, 3.0),
        )
        assert np.abs(u1[-30:]).max() < np.abs(u0[-30:]).max()

    def test_volume_damping_total(self):
        solver = RegularGridScalarWave((4, 4), 25.0, 1500.0)
        C = solver.volume_damping_diag(np.full(solver.nelem, 2.0))
        np.testing.assert_allclose(C.sum(), 2.0 * 1500.0 * (4 * 25.0) ** 2)


class TestAttenuationGradient:
    def test_gradient_matches_fd(self, atten_setup):
        prob, grid, alpha_true = atten_setup
        m0 = np.full(grid.n, 1.0)
        g, J, _ = prob.gradient(m0)
        eps = 1e-5
        for i in [0, 5, grid.n - 1]:
            mp, mm = m0.copy(), m0.copy()
            mp[i] += eps
            mm[i] -= eps
            fd = (prob.objective(mp)[0] - prob.objective(mm)[0]) / (2 * eps)
            assert abs(fd - g[i]) <= 1e-6 * max(abs(fd), 1e-30)

    def test_zero_at_truth(self, atten_setup):
        prob, grid, alpha_true = atten_setup
        g, J, _ = prob.gradient(alpha_true)
        assert J < 1e-28
        assert np.abs(g).max() < 1e-25

    def test_gn_symmetric(self, atten_setup):
        prob, grid, alpha_true = atten_setup
        _, _, state = prob.gradient(np.full(grid.n, 1.0))
        rng = np.random.default_rng(0)
        v, w = rng.standard_normal((2, grid.n))
        np.testing.assert_allclose(
            w @ prob.gn_hessvec(v, state),
            v @ prob.gn_hessvec(w, state),
            rtol=1e-9,
        )

    def test_negative_alpha_rejected(self, atten_setup):
        prob, grid, _ = atten_setup
        with pytest.raises(FloatingPointError):
            prob.forward(-np.ones(grid.n))


class TestAttenuationRecovery:
    def test_gn_recovers_damping_field(self, atten_setup):
        prob, grid, alpha_true = atten_setup
        m0 = np.full(grid.n, 1.0)
        res = gauss_newton_cg(prob, m0, max_newton=12, cg_maxiter=25)
        err = np.linalg.norm(res.m - alpha_true) / np.linalg.norm(alpha_true)
        assert err < 0.01
        assert res.objective < 1e-6 * prob.objective(m0)[0]
