"""Tests for the simulated MPI, distributed matvec, and machine model."""

import numpy as np
import pytest

from repro.fem import ElasticOperator
from repro.mesh import rcb_partition, uniform_hex_mesh
from repro.parallel import (
    ALPHASERVER_ES45,
    DistributedElasticOperator,
    MachineModel,
    SimWorld,
    predict_scalability,
)
from repro.parallel.perfmodel import format_table


class TestSimComm:
    def test_send_recv_roundtrip(self):
        w = SimWorld(2)
        a, b = w.comms()
        a.send(np.arange(5.0), dest=1)
        got = b.recv(source=0)
        np.testing.assert_array_equal(got, np.arange(5.0))

    def test_send_copies_buffer(self):
        w = SimWorld(2)
        a, b = w.comms()
        buf = np.ones(3)
        a.send(buf, dest=1)
        buf[:] = 99.0
        np.testing.assert_array_equal(b.recv(0), np.ones(3))

    def test_traffic_accounted(self):
        w = SimWorld(2)
        a, b = w.comms()
        a.send(np.zeros(10), dest=1)
        assert w.stats[0].messages_sent == 1
        assert w.stats[0].bytes_sent == 80
        assert w.stats[1].messages_sent == 0

    def test_recv_without_message_raises(self):
        w = SimWorld(2)
        with pytest.raises(RuntimeError):
            w.comm(1).recv(source=0)

    def test_allreduce(self):
        w = SimWorld(4)
        assert w.allreduce([1.0, 2.0, 3.0, 4.0]) == 10.0
        assert all(s.messages_sent > 0 for s in w.stats)

    def test_bad_rank_rejected(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            w.comm(5)


class TestDistributedMatvec:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_matches_serial_operator(self, nranks):
        mesh = uniform_hex_mesh(4, L=100.0)
        rng = np.random.default_rng(0)
        lam = rng.random(mesh.nelem) + 1.0
        mu = rng.random(mesh.nelem) + 0.5
        serial = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        u = rng.standard_normal((mesh.nnode, 3))
        expected = serial.matvec(u)

        parts = rcb_partition(mesh.elem_centers, nranks)
        world = SimWorld(nranks)
        dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
        got = dist.matvec_distributed(u)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)

    def test_communication_happens_for_multirank(self):
        mesh = uniform_hex_mesh(4, L=100.0)
        lam = np.ones(mesh.nelem)
        mu = np.ones(mesh.nelem)
        parts = rcb_partition(mesh.elem_centers, 4)
        world = SimWorld(4)
        dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
        dist.matvec_distributed(np.ones((mesh.nnode, 3)))
        total = world.total_stats()
        assert total.messages_sent > 0
        assert total.bytes_sent > 0
        assert total.flops > 0

    def test_single_rank_has_no_communication(self):
        mesh = uniform_hex_mesh(2, L=100.0)
        world = SimWorld(1)
        dist = DistributedElasticOperator(
            mesh,
            np.ones(mesh.nelem),
            np.ones(mesh.nelem),
            np.zeros(mesh.nelem, dtype=np.int64),
            world,
        )
        dist.matvec_distributed(np.ones((mesh.nnode, 3)))
        assert world.total_stats().messages_sent == 0

    def test_profile_shapes(self):
        mesh = uniform_hex_mesh(4, L=100.0)
        parts = rcb_partition(mesh.elem_centers, 8)
        world = SimWorld(8)
        dist = DistributedElasticOperator(
            mesh, np.ones(mesh.nelem), np.ones(mesh.nelem), parts, world
        )
        prof = dist.per_step_profile()
        assert len(prof) == 8
        assert sum(p["elements"] for p in prof) == mesh.nelem
        assert all(p["flops"] > 0 for p in prof)
        # interior ranks talk to several neighbors
        assert max(p["neighbors"] for p in prof) >= 3


class TestMachineModel:
    def test_single_pe_reaches_full_efficiency(self):
        mesh = uniform_hex_mesh(8, L=1000.0)
        lam = np.full(mesh.nelem, 2e9)
        mu = np.full(mesh.nelem, 1e9)
        row = predict_scalability(mesh, lam, mu, 1)
        np.testing.assert_allclose(row.efficiency, 1.0, rtol=1e-6)
        np.testing.assert_allclose(
            row.mflops_per_pe, ALPHASERVER_ES45.flop_rate / 1e6, rtol=1e-6
        )

    def test_efficiency_decreases_with_ranks_at_fixed_size(self):
        """Strong scaling: same mesh on more PEs -> lower efficiency
        (growing communication-to-computation ratio), the Table 2.1
        trend at the 3000-PE end."""
        mesh = uniform_hex_mesh(8, L=1000.0)
        lam = np.full(mesh.nelem, 2e9)
        mu = np.full(mesh.nelem, 1e9)
        effs = [
            predict_scalability(mesh, lam, mu, p).efficiency
            for p in (1, 8, 64)
        ]
        assert effs[0] > effs[1] > effs[2]
        # without the scale-driven synchronization term, communication
        # alone leaves these tiny grains still reasonably efficient
        nosync = MachineModel("nosync", 505e6, 6e-6, 250e6, 0.0)
        effs2 = [
            predict_scalability(mesh, lam, mu, p, machine=nosync).efficiency
            for p in (1, 8, 64)
        ]
        assert effs2[0] > effs2[1] > effs2[2]
        assert effs2[2] > 0.1

    def test_latency_hurts_small_grains(self):
        mesh = uniform_hex_mesh(8, L=1000.0)
        lam = np.full(mesh.nelem, 2e9)
        mu = np.full(mesh.nelem, 1e9)
        fast = MachineModel("fast-net", 505e6, 1e-7, 1e9)
        slow = MachineModel("slow-net", 505e6, 1e-4, 1e7)
        e_fast = predict_scalability(mesh, lam, mu, 32, machine=fast).efficiency
        e_slow = predict_scalability(mesh, lam, mu, 32, machine=slow).efficiency
        assert e_fast > e_slow

    def test_table_format(self):
        mesh = uniform_hex_mesh(4, L=1000.0)
        lam = np.full(mesh.nelem, 2e9)
        mu = np.full(mesh.nelem, 1e9)
        rows = [
            predict_scalability(mesh, lam, mu, p, model_name=f"T{p}")
            for p in (1, 4)
        ]
        text = format_table(rows)
        assert "PEs" in text and "efficiency" in text
        assert "T4" in text
