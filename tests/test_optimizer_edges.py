"""Edge cases of the Gauss-Newton driver and preconditioner stack."""

import numpy as np
import pytest

from repro.inverse import LBFGSPreconditioner, frankel_solve, gauss_newton_cg
from repro.inverse.gauss_newton import _pcg
from repro.inverse.precond import power_estimate_lmax


class QuadraticProblem:
    """Analytic test problem J = 0.5 (m - m*)^T H (m - m*)."""

    def __init__(self, H, m_star):
        self.H = H
        self.m_star = m_star
        self.barrier_gamma = 0.0
        self.mu_min = 0.0

    def objective(self, m, state=None):
        d = m - self.m_star
        return 0.5 * float(d @ self.H @ d), {}, m

    def gradient(self, m, state=None):
        J, _, _ = self.objective(m)
        return self.H @ (m - self.m_star), J, m

    def gn_hessvec(self, v, state):
        return self.H @ v


def make_spd(n, cond=100.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    d = np.geomspace(1.0, cond, n)
    return Q @ np.diag(d) @ Q.T


class TestGNDriver:
    def test_quadratic_converges_in_one_newton_step(self):
        H = make_spd(12)
        m_star = np.arange(12.0)
        prob = QuadraticProblem(H, m_star)
        res = gauss_newton_cg(
            prob, np.zeros(12), max_newton=5, cg_maxiter=100, cg_forcing=1e-10
        )
        np.testing.assert_allclose(res.m, m_star, atol=1e-6)
        assert res.newton_iterations <= 3

    def test_scale_invariance(self):
        """The optimizer must behave identically when the problem is
        rescaled by 1e-20 (the bug class the curvature guard had)."""
        H = make_spd(10, seed=1)
        m_star = np.linspace(1, 2, 10)
        for scale in (1.0, 1e-20, 1e20):
            prob = QuadraticProblem(scale * H, m_star)
            res = gauss_newton_cg(
                prob, np.zeros(10), max_newton=6, cg_maxiter=100,
                cg_forcing=1e-10,
            )
            np.testing.assert_allclose(res.m, m_star, atol=1e-5)

    def test_zero_gradient_immediately_converged(self):
        H = make_spd(5)
        m_star = np.ones(5)
        prob = QuadraticProblem(H, m_star)
        res = gauss_newton_cg(prob, m_star.copy(), max_newton=5)
        assert res.converged
        assert res.newton_iterations == 0

    def test_history_recorded(self):
        H = make_spd(8)
        prob = QuadraticProblem(H, np.ones(8))
        res = gauss_newton_cg(prob, np.zeros(8), max_newton=4)
        assert len(res.history) >= 2
        assert res.history[0]["J"] >= res.history[-1]["J"]

    def test_pcg_solves_spd_system(self):
        H = make_spd(20, cond=50.0)
        g = np.random.default_rng(2).standard_normal(20)
        d, iters = _pcg(
            lambda v: H @ v, g, tol=1e-10, maxiter=200, precond=None
        )
        np.testing.assert_allclose(H @ d, -g, atol=1e-7)

    def test_pcg_with_lbfgs_precond_uses_fewer_iterations(self):
        H = make_spd(30, cond=1e4, seed=3)
        rng = np.random.default_rng(4)
        g = rng.standard_normal(30)
        _, it_plain = _pcg(lambda v: H @ v, g, tol=1e-8, maxiter=500,
                           precond=None)
        pre = LBFGSPreconditioner(30, memory=30)
        for _ in range(30):
            s = rng.standard_normal(30)
            pre.stage_pair(s, H @ s)
        pre.commit()
        _, it_pre = _pcg(lambda v: H @ v, g, tol=1e-8, maxiter=500,
                         precond=pre)
        assert it_pre < it_plain


class TestFrankelBasedPreconditioner:
    def test_lbfgs_with_frankel_base(self):
        """Morales-Nocedal with a Frankel-two-step H0 on the 'cheap'
        operator part — the paper's exact preconditioner recipe."""
        n = 25
        H_cheap = make_spd(n, cond=30.0, seed=5)  # plays the reg operator
        H_full = H_cheap + 0.5 * make_spd(n, cond=5.0, seed=6)
        lmax = power_estimate_lmax(lambda v: H_cheap @ v, n)

        def base(r):
            return frankel_solve(
                lambda v: H_cheap @ v, r, lmax / 30.0, lmax, iters=10
            )

        pre = LBFGSPreconditioner(n, memory=10, base_apply=base)
        rng = np.random.default_rng(7)
        for _ in range(10):
            s = rng.standard_normal(n)
            pre.stage_pair(s, H_full @ s)
        pre.commit()
        g = rng.standard_normal(n)
        _, it_plain = _pcg(lambda v: H_full @ v, g, tol=1e-8, maxiter=500,
                           precond=None)
        _, it_pre = _pcg(lambda v: H_full @ v, g, tol=1e-8, maxiter=500,
                         precond=pre)
        assert it_pre <= it_plain
