"""Tests for the 3D elastic (lambda, mu) inversion."""

import numpy as np
import pytest

from repro.inverse import ElasticInverseProblem, MaterialGrid, gauss_newton_cg
from repro.mesh import uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.sources.fault import PointForceSource, SourceCollection

L = 1000.0


def _stf(t):
    return (
        np.where(
            (t > 0) & (t < 0.15),
            np.sin(np.pi * np.clip(t, 0, 0.15) / 0.15) ** 2,
            0.0,
        )
        * 1e10
    )


@pytest.fixture(scope="module")
def elastic_setup():
    n = 4
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=3
    )
    mesh = uniform_hex_mesh(n, L=L)
    rho = np.full(mesh.nelem, 2000.0)
    grid = MaterialGrid((2, 2, 2), (L, L, L))
    lam_true = grid.sample(lambda p: 2.0e9 + 1.0e9 * (p[:, 2] > 500.0))
    mu_true = grid.sample(lambda p: 1.0e9 + 0.5e9 * (p[:, 2] > 500.0))
    m_true = np.concatenate([lam_true, mu_true])

    srcs = [
        PointForceSource(
            position=np.array([501.0, 501.0, 380.0]),
            direction=np.array([1.0, 0.5, 0.3]),
            time_function=_stf,
        ),
        PointForceSource(
            position=np.array([260.0, 740.0, 620.0]),
            direction=np.array([0.0, 0.0, 1.0]),
            time_function=lambda t: _stf(t - 0.05),
        ),
    ]
    forces = SourceCollection(mesh, tree, srcs)
    fbuf = np.zeros((mesh.nnode, 3))
    force_fn = lambda t: forces.forces_at(t, fbuf)

    dt = 0.4 * (L / n) / 2000.0 / np.sqrt(3)
    nsteps = 100
    prob0 = ElasticInverseProblem(
        mesh, grid, rho, np.arange(0), np.zeros((nsteps + 1, 0, 3)), dt,
        nsteps, force_fn,
    )
    lam_e, mu_e = prob0.fields(m_true)
    u = prob0._march(
        lam_e, mu_e, lambda k: dt**2 * force_fn(k * dt), store=True
    )
    rec = mesh.surface_nodes(2, 0)
    data = u[:, rec, :]
    prob = ElasticInverseProblem(
        mesh, grid, rho, rec, data, dt, nsteps, force_fn
    )
    return prob, grid, m_true


class TestElasticGradient:
    def test_gradient_matches_fd_both_fields(self, elastic_setup):
        prob, grid, m_true = elastic_setup
        m0 = np.concatenate(
            [np.full(grid.n, 2.4e9), np.full(grid.n, 1.2e9)]
        )
        g, J, _ = prob.gradient(m0)
        eps = 2e5
        for i in [0, 7, grid.n, grid.n + 7, 2 * grid.n - 1]:
            mp, mm = m0.copy(), m0.copy()
            mp[i] += eps
            mm[i] -= eps
            fd = (prob.objective(mp)[0] - prob.objective(mm)[0]) / (2 * eps)
            assert abs(fd - g[i]) <= 1e-5 * max(abs(fd), 1e-30)

    def test_zero_gradient_at_truth(self, elastic_setup):
        prob, grid, m_true = elastic_setup
        g, J, _ = prob.gradient(m_true)
        assert J < 1e-25
        assert np.abs(g).max() < 1e-22

    def test_gn_symmetric_psd(self, elastic_setup):
        prob, grid, m_true = elastic_setup
        m0 = np.concatenate(
            [np.full(grid.n, 2.4e9), np.full(grid.n, 1.2e9)]
        )
        _, _, state = prob.gradient(m0)
        rng = np.random.default_rng(0)
        v, w = rng.standard_normal((2, 2 * grid.n)) * 1e8
        Hv = prob.gn_hessvec(v, state)
        Hw = prob.gn_hessvec(w, state)
        np.testing.assert_allclose(w @ Hv, v @ Hw, rtol=1e-10)
        assert v @ Hv >= 0 and w @ Hw >= 0

    def test_nonpositive_field_rejected(self, elastic_setup):
        prob, grid, m_true = elastic_setup
        with pytest.raises(FloatingPointError):
            prob.forward(-np.ones(2 * grid.n))

    def test_requires_conforming_mesh(self):
        from repro.octree import balance_octree
        from repro.mesh import extract_mesh

        def target(c, s):
            return np.where(np.all(c < 0.5, axis=1), 1 / 16, 1 / 8)

        tree = balance_octree(build_adaptive_octree(target, max_level=5))
        mesh = extract_mesh(tree, L=L)
        with pytest.raises(ValueError):
            ElasticInverseProblem(
                mesh,
                MaterialGrid((2, 2, 2), (L, L, L)),
                np.full(mesh.nelem, 2000.0),
                np.arange(0),
                np.zeros((11, 0, 3)),
                1e-3,
                10,
                lambda t: None,
            )


class TestElasticRecovery:
    def test_gn_recovers_both_fields(self, elastic_setup):
        prob, grid, m_true = elastic_setup
        m0 = np.concatenate(
            [np.full(grid.n, 2.4e9), np.full(grid.n, 1.2e9)]
        )
        J0 = prob.objective(m0)[0]
        res = gauss_newton_cg(prob, m0, max_newton=10, cg_maxiter=25)
        assert res.objective < 1e-3 * J0
        lam_hat, mu_hat = prob.split(res.m)
        lam_t, mu_t = prob.split(m_true)
        assert (
            np.linalg.norm(mu_hat - mu_t) / np.linalg.norm(mu_t) < 0.05
        )
        assert (
            np.linalg.norm(lam_hat - lam_t) / np.linalg.norm(lam_t) < 0.15
        )
