"""Batched multi-scenario execution must be *bit-identical* per column.

The batching tentpole's contract: advancing B scenarios through one
fused level-3 time loop produces, for every column, exactly the bits
the serial single-RHS run produces — same gather, same row-stacked
GEMM accumulation order, same slot-ordered scatter, same elementwise
updates.  These tests pin that contract at every layer: the element
kernel (``matmat`` vs ``matvec``, phased vs plain), the scalar and
elastic ensemble time loops, the multi-shot inverse problem (one
batched forward + one batched adjoint regardless of shot count), and
the shot-sharded distributed path on both transports.
"""

import tracemalloc

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import available_backends, use_backend
from repro.fem.assembly import ElasticOperator
from repro.inverse import (
    FaultLineSource2D,
    MaterialGrid,
    ScalarWaveInverseProblem,
    Shot,
)
from repro.io.seismogram import ReceiverArray
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition, uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.parallel import (
    DistributedWaveSolver,
    ProcWorld,
    SimWorld,
    recommend_sharding,
)
from repro.solver import (
    ElasticWaveSolver,
    RegularGridScalarWave,
    batched_forcing,
)
from repro.sources import MomentTensorSource
from repro.sources.fault import SourceCollection

L = 1000.0
MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _restore_backend():
    saved = backend_mod._active
    yield
    backend_mod._active = saved


def make_mesh(n=4, max_level=3):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=max_level
    )
    return tree, extract_mesh(tree, L=L)


def make_sources(mesh, tree, B):
    out = []
    for b in range(B):
        src = MomentTensorSource(
            position=np.array([400.0 + 50.0 * b, 500.0, 450.0 + 30.0 * b]),
            moment=1e12 * np.eye(3),
            T=0.02,
            t0=0.08 + 0.01 * b,
        )
        out.append(SourceCollection(mesh, tree, [src]))
    return out


# ---------------------------------------------------- kernel level


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelMatmat:
    def test_matmat_bitwise_per_column(self, backend):
        _, mesh = make_mesh()
        rng = np.random.default_rng(0)
        lam = rng.uniform(1.0, 3.0, mesh.nelem)
        mu = rng.uniform(0.5, 2.0, mesh.nelem)
        with use_backend(backend):
            op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
            B = 5
            U = np.ascontiguousarray(
                rng.standard_normal((mesh.nnode, 3, B))
            )
            out = op.matmat(U)
            for b in range(B):
                ref = op.matvec(np.ascontiguousarray(U[:, :, b]))
                assert np.array_equal(out[:, :, b], ref), f"column {b}"

    def test_phased_matmat_equals_plain(self, backend):
        _, mesh = make_mesh()
        lam = np.full(mesh.nelem, 2.0)
        mu = np.full(mesh.nelem, 1.0)
        with use_backend(backend):
            op = ElasticOperator(
                mesh.conn, mesh.elem_h, lam, mu, mesh.nnode,
                split_elems=mesh.nelem // 3,
            )
            rng = np.random.default_rng(1)
            U = np.ascontiguousarray(rng.standard_normal((mesh.nnode, 3, 4)))
            full = op.matmat(U)
            phased = np.empty_like(full)
            op.matmat_interface(U, phased)
            op.matmat_interior_acc(U, phased)
            # interface + interior partition the element loop, so the
            # phased sums equal the single pass to roundoff (the same
            # guarantee the single-RHS overlap path provides)
            np.testing.assert_allclose(phased, full, rtol=1e-12, atol=1e-9)
            for b in range(4):
                ref = np.empty((mesh.nnode, 3))
                op.matvec_interface(np.ascontiguousarray(U[:, :, b]), ref)
                op.matvec_interior_acc(np.ascontiguousarray(U[:, :, b]), ref)
                assert np.array_equal(phased[:, :, b], ref)

    def test_matmat_zero_allocation_warm(self, backend):
        _, mesh = make_mesh()
        lam = np.full(mesh.nelem, 2.0)
        mu = np.full(mesh.nelem, 1.0)
        with use_backend(backend):
            op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
            U = np.ones((mesh.nnode, 3, 8))
            out = np.empty_like(U)
            op.matmat(U, out=out)  # warmup sizes the batch workspace
            tracemalloc.start()
            for _ in range(5):
                op.matmat(U, out=out)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert peak < 2048, f"warm matmat allocated {peak} B"


def test_strided_input_rejected_not_copied():
    """The old silent ``ascontiguousarray`` copy is gone: a strided
    field is a caller bug and must raise."""
    _, mesh = make_mesh(2, max_level=2)
    op = ElasticOperator(
        mesh.conn, mesh.elem_h,
        np.ones(mesh.nelem), np.ones(mesh.nelem), mesh.nnode,
    )
    bad = np.zeros((mesh.nnode, 6))[:, ::2]
    with pytest.raises(ValueError, match="contiguous"):
        op.matvec(bad)


# ------------------------------------------------ scalar ensemble march


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_batched_march_bitwise(backend):
    with use_backend(backend):
        solver = RegularGridScalarWave((16, 8), 100.0, rho=1000.0)
        rng = np.random.default_rng(2)
        mu = rng.uniform(2e9, 4e9, solver.nelem)
        dt = solver.stable_dt(mu)
        nsteps = 60
        src = [5, 40, 77]

        def forcing_for(b):
            def forcing(k):
                f = np.zeros(solver.nnode)
                f[src[b]] = dt**2 * np.sin(0.3 * k + b)
                return f
            return forcing

        cols = [forcing_for(0), None, forcing_for(2)]
        batched = solver.march(
            mu, batched_forcing(cols, solver.nnode), nsteps, dt,
            batch=len(cols),
        )
        for b, fn in enumerate(cols):
            serial = solver.march(
                mu, fn if fn is not None else (lambda k: None),
                nsteps, dt,
            )
            assert np.array_equal(batched[:, :, b], serial), f"column {b}"


def test_scalar_batched_march_with_initial_states_and_alpha():
    solver = RegularGridScalarWave((12, 6), 80.0, rho=900.0)
    rng = np.random.default_rng(3)
    mu = rng.uniform(1e9, 2e9, solver.nelem)
    alpha = rng.uniform(0.0, 0.5, solver.nelem)
    dt = solver.stable_dt(mu)
    B = 3
    x0 = rng.standard_normal((solver.nnode, B))
    x1 = rng.standard_normal((solver.nnode, B))
    # batch inferred from the 2D initial states
    batched = solver.march(
        mu, lambda k: None, 40, dt, x0=x0, x1=x1, alpha=alpha
    )
    assert batched.shape == (41, solver.nnode, B)
    for b in range(B):
        serial = solver.march(
            mu, lambda k: None, 40, dt,
            x0=x0[:, b], x1=x1[:, b], alpha=alpha,
        )
        assert np.array_equal(batched[:, :, b], serial)


def test_march_coefficient_cache_reused_and_invalidated():
    solver = RegularGridScalarWave((8, 4), 50.0, rho=1000.0)
    mu = np.full(solver.nelem, 2e9)
    dt = solver.stable_dt(mu)
    inv1, am1 = solver._march_coeffs(mu, dt, None)
    inv2, am2 = solver._march_coeffs(mu.copy(), dt, None)
    assert inv1 is inv2 and am1 is am2  # same iterate -> cached arrays
    inv3, _ = solver._march_coeffs(mu * 1.01, dt, None)
    assert inv3 is not inv1  # material changed -> recompute


# ------------------------------------------------ elastic ensemble run


class TestElasticRunBatch:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stacey_c1": False},
            {"stacey_c1": True},
            {"stacey_c1": False, "damping_ratio": 0.02},
        ],
        ids=["lysmer", "stacey_c1", "rayleigh"],
    )
    def test_bitwise_vs_looped_serial(self, kwargs):
        tree, mesh = make_mesh()
        solver = ElasticWaveSolver(mesh, tree, MAT, **kwargs)
        forces = make_sources(mesh, tree, 3)
        rec = ReceiverArray(
            mesh, np.array([[500.0, 500.0, 0.0], [250.0, 750.0, 0.0]])
        )
        t_end = 0.15
        state_b = {}
        state_s = {}

        def cap(store, b=None):
            def cb(k, t, u):
                store[k] = u.copy() if b is None else u[:, :, b].copy()
            return cb

        seis_b = solver.run_batch(
            forces, t_end, receivers=rec, callback=cap(state_b)
        )
        assert len(seis_b) == 3
        for b, fc in enumerate(forces):
            seis = solver.run(fc, t_end, receivers=rec)
            assert np.array_equal(seis_b[b].data, seis.data), f"shot {b}"
            assert np.abs(seis.data).max() > 0
        # interior trajectory, not just the receiver rows
        solver.run(forces[1], t_end, callback=cap(state_s))
        for k in state_s:
            assert np.array_equal(state_b[k][:, :, 1], state_s[k])

    def test_per_scenario_receivers(self):
        tree, mesh = make_mesh()
        solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
        forces = make_sources(mesh, tree, 2)
        recs = [
            ReceiverArray(mesh, np.array([[500.0, 500.0, 0.0]])),
            ReceiverArray(mesh, np.array([[125.0, 625.0, 0.0]])),
        ]
        seis = solver.run_batch(forces, 0.1, receivers=recs)
        for b in range(2):
            ref = solver.run(forces[b], 0.1, receivers=recs[b])
            assert np.array_equal(seis[b].data, ref.data)


# ------------------------------------------------- multi-shot inverse


@pytest.fixture(scope="module")
def multishot_setup():
    nx, nz = 16, 8
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))
    m_true = grid.sample(lambda p: 2.0e9 + 1.5e9 * (p[:, 1] > 400.0))
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = 120
    shots = []
    for ix, hj in [(nx // 2, 4), (nx // 4, 3), (3 * nx // 4, 5)]:
        fault = FaultLineSource2D(solver, ix=ix, jz=range(2, 6))
        params = fault.hypocentral_params(
            hypo_j=hj, rupture_velocity=2000.0, u0=1.0, t0=0.3
        )
        u = solver.march(
            mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
        )
        rec = solver.surface_nodes()[::2]
        shots.append(
            Shot(
                receivers=rec, data=u[:, rec],
                fault=fault, source_params=params,
            )
        )
    return solver, grid, shots, dt, nsteps


class TestMultiShotInverse:
    def test_gradient_is_sum_of_singles_in_two_solves(self, multishot_setup):
        solver, grid, shots, dt, nsteps = multishot_setup
        prob = ScalarWaveInverseProblem.multi_shot(
            solver, grid, shots, dt, nsteps
        )
        singles = [
            ScalarWaveInverseProblem(
                solver, grid, s.receivers, s.data, dt, nsteps,
                fault=s.fault, source_params=s.source_params,
            )
            for s in shots
        ]
        m0 = np.full(grid.n, 2.5e9)
        n0 = prob.n_wave_solves
        g, J, state = prob.gradient(m0)
        # ONE batched forward + ONE batched adjoint, whatever len(shots)
        assert prob.n_wave_solves - n0 == 2
        results = [p.gradient(m0) for p in singles]
        np.testing.assert_allclose(
            J, sum(r[1] for r in results), rtol=1e-9
        )
        np.testing.assert_allclose(
            g, sum(r[0] for r in results), rtol=1e-9
        )

    def test_gradient_matches_fd(self, multishot_setup):
        solver, grid, shots, dt, nsteps = multishot_setup
        prob = ScalarWaveInverseProblem.multi_shot(
            solver, grid, shots, dt, nsteps
        )
        m0 = np.full(grid.n, 2.5e9)
        g, _, _ = prob.gradient(m0)
        eps = 2.5e5
        for i in [0, 3, grid.n - 1]:
            mp = m0.copy()
            mp[i] += eps
            mm = m0.copy()
            mm[i] -= eps
            fd = (prob.objective(mp)[0] - prob.objective(mm)[0]) / (2 * eps)
            assert abs(fd - g[i]) <= 1e-5 * max(abs(fd), 1e-30)

    def test_gn_hessvec_is_sum_of_singles_in_two_solves(
        self, multishot_setup
    ):
        solver, grid, shots, dt, nsteps = multishot_setup
        prob = ScalarWaveInverseProblem.multi_shot(
            solver, grid, shots, dt, nsteps
        )
        singles = [
            ScalarWaveInverseProblem(
                solver, grid, s.receivers, s.data, dt, nsteps,
                fault=s.fault, source_params=s.source_params,
            )
            for s in shots
        ]
        m0 = np.full(grid.n, 2.5e9)
        _, _, state = prob.gradient(m0)
        states = [p.gradient(m0)[2] for p in singles]
        rng = np.random.default_rng(4)
        v = rng.standard_normal(grid.n)
        n0 = prob.n_wave_solves
        Hv = prob.gn_hessvec(v, state)
        assert prob.n_wave_solves - n0 == 2
        Hv_sum = sum(p.gn_hessvec(v, st) for p, st in zip(singles, states))
        np.testing.assert_allclose(Hv, Hv_sum, rtol=1e-8)

    def test_single_shot_list_equals_legacy_constructor(
        self, multishot_setup
    ):
        solver, grid, shots, dt, nsteps = multishot_setup
        s = shots[0]
        legacy = ScalarWaveInverseProblem(
            solver, grid, s.receivers, s.data, dt, nsteps,
            fault=s.fault, source_params=s.source_params,
        )
        listed = ScalarWaveInverseProblem.multi_shot(
            solver, grid, [s], dt, nsteps
        )
        m0 = np.full(grid.n, 2.4e9)
        g1, J1, _ = legacy.gradient(m0)
        g2, J2, _ = listed.gradient(m0)
        np.testing.assert_allclose(J2, J1, rtol=1e-12)
        np.testing.assert_allclose(g2, g1, rtol=1e-12)

    def test_shots_exclusive_with_legacy_args(self, multishot_setup):
        solver, grid, shots, dt, nsteps = multishot_setup
        with pytest.raises(ValueError):
            ScalarWaveInverseProblem(
                solver, grid, shots[0].receivers, shots[0].data, dt, nsteps,
                shots=shots,
            )


# ------------------------------------------------ shot-sharded parallel


class PointForce:
    """Picklable point force (worker processes unpickle it by value)."""

    def __init__(self, node, nnode, t0=0.02):
        self.node = node
        self.nnode = nnode
        self.t0 = t0

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - self.t0) / 0.008) ** 2))
        return b


class TestShotSharding:
    def _problem(self):
        mesh = uniform_hex_mesh(4)
        forces = [
            PointForce(mesh.nnode // 2, mesh.nnode),
            PointForce(mesh.nnode // 3, mesh.nnode, t0=0.03),
            PointForce(mesh.nnode // 5, mesh.nnode, t0=0.01),
        ]
        return mesh, rcb_partition(mesh.elem_centers, 2), forces

    def test_simworld_matches_single_shot_runs(self):
        mesh, parts, forces = self._problem()
        world = SimWorld(2)
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        t_end = 24.5 * solver.dt
        u = solver.run_shots(forces, t_end)
        assert u.shape == (3, mesh.nnode, 3)
        assert np.abs(u).max() > 0
        for b, f in enumerate(forces):
            ub = solver.run_shots([f], t_end)
            assert np.array_equal(ub[0], u[b]), f"shot {b}"

    def test_transports_bit_identical(self):
        mesh, parts, forces = self._problem()
        sim = SimWorld(2)
        solver = DistributedWaveSolver(mesh, MAT, parts, sim)
        t_end = 24.5 * solver.dt
        u_sim = solver.run_shots(forces, t_end)
        with ProcWorld(2) as proc:
            dist = DistributedWaveSolver(
                mesh, MAT, parts, proc, dt=solver.dt
            )
            u_proc = dist.run_shots(forces, t_end)
            # the whole point: zero per-step boundary traffic (only
            # the setup-time mass/damping exchange is accounted)
            per_step = [
                s.messages_sent for s in proc.stats
            ]
        assert np.array_equal(u_sim, u_proc)
        setup_msgs = [s.messages_sent for s in sim.stats]
        assert per_step == setup_msgs

    def test_matches_serial_elastic_solver(self):
        tree, mesh = make_mesh()
        serial = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
        forces = [
            PointForce(mesh.nnode // 2, mesh.nnode),
            PointForce(mesh.nnode // 3, mesh.nnode, t0=0.03),
        ]
        nsteps = 20
        refs = []
        for f in forces:
            out = {}

            def cb(k, t, u, out=out):
                if k == nsteps:
                    out["u"] = u.copy()

            serial.run(f, (nsteps + 0.5) * serial.dt, callback=cb)
            refs.append(out["u"])
        world = SimWorld(2)
        dist = DistributedWaveSolver(
            mesh, MAT, rcb_partition(mesh.elem_centers, 2), world,
            dt=serial.dt,
        )
        u = dist.run_shots(forces, (nsteps - 0.5) * serial.dt)
        for b, ref in enumerate(refs):
            scale = np.abs(ref).max()
            assert scale > 0
            np.testing.assert_allclose(
                u[b], ref, rtol=1e-9, atol=1e-12 * scale
            )

    def test_recommend_sharding_heuristic(self):
        # plenty of shots, small mesh -> shard the batch
        assert recommend_sharding(1000, 8, 4) == "shots"
        # fewer shots than workers -> some would idle
        assert recommend_sharding(1000, 2, 4) == "domain"
        # mesh too big to replicate per worker
        assert recommend_sharding(10**8, 64, 4) == "domain"
