"""The telemetry subsystem's contracts.

Four promises are pinned here: (1) spans nest, aggregate, and export
faithfully; (2) disabled telemetry is free — zero allocations on the
hot path and bitwise-identical solver trajectories; (3) the per-rank
timelines and per-peer traffic of the distributed solver agree across
the simulated and process transports; (4) the PerfReport renders the
Table-2.1 quantities deterministically (golden text).
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro import telemetry
from repro.fem.assembly import ElasticOperator
from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition
from repro.octree import build_adaptive_octree
from repro.parallel import DistributedWaveSolver, ProcWorld, SimWorld
from repro.parallel.simcomm import TrafficStats
from repro.solver import ElasticWaveSolver, RegularGridScalarWave
from repro.telemetry import MergedTimeline, MetricsRegistry, PerfReport, RankTimeline
from repro.telemetry.timeline import PHASES
from repro.util.flops import FlopCounter
from repro.util.timing import Timer

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def make_mesh(n=4, max_level=2):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=max_level
    )
    return tree, extract_mesh(tree, L=L)


class PointForce:
    """Picklable point force (ProcWorld workers unpickle it)."""

    def __init__(self, node, nnode):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return b


# ------------------------------------------------------------------ spans


class TestSpans:
    def test_nesting_aggregation_and_order(self):
        telemetry.enable()
        for _ in range(3):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
                with telemetry.span("inner"):
                    pass
        with telemetry.span("tail"):
            pass
        aggs = telemetry.current_tracer().aggregates()
        paths = [a["path"] for a in aggs]
        # depth-first, parents before children, insertion-ordered
        assert paths == ["outer", "outer/inner", "tail"]
        by_path = {a["path"]: a for a in aggs}
        assert by_path["outer"]["count"] == 3
        assert by_path["outer/inner"]["count"] == 6
        assert by_path["outer/inner"]["depth"] == 1
        assert by_path["outer"]["seconds"] >= by_path["outer/inner"]["seconds"]

    def test_same_name_different_parent_is_distinct(self):
        telemetry.enable()
        with telemetry.span("a"):
            with telemetry.span("work"):
                pass
        with telemetry.span("b"):
            with telemetry.span("work"):
                pass
        paths = [a["path"] for a in telemetry.current_tracer().aggregates()]
        assert "a/work" in paths and "b/work" in paths

    def test_counters_attach_and_accumulate(self):
        telemetry.enable()
        for _ in range(2):
            with telemetry.span("phase") as s:
                s.add("flops", 100)
                s.add("flops", 50)
        (agg,) = telemetry.current_tracer().aggregates()
        assert agg["counters"] == {"flops": 300}

    def test_annotate_creates_path(self):
        telemetry.enable()
        telemetry.annotate(("x", "y"), "bytes", 7)
        by_path = {
            a["path"]: a for a in telemetry.current_tracer().aggregates()
        }
        assert by_path["x/y"]["counters"] == {"bytes": 7}
        assert by_path["x/y"]["count"] == 0

    def test_disabled_returns_shared_null_span(self):
        assert not telemetry.enabled()
        s1 = telemetry.span("anything")
        s2 = telemetry.span("else")
        assert s1 is s2
        with s1 as s:
            assert s.add("flops", 1) is s
        telemetry.add("flops", 1)  # no-op, must not raise

    def test_disabled_spans_allocate_nothing(self):
        assert not telemetry.enabled()

        def hot_loop(n):
            for _ in range(n):
                with telemetry.span("stiffness") as s:
                    s.add("flops", 1000)
                telemetry.add("extra", 1)
                telemetry.sample("residual", 1.0)

        hot_loop(10)  # warm up any lazy interning
        tracemalloc.start()
        hot_loop(2000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 1024, f"disabled telemetry allocated {peak} bytes"

    def test_event_stream_is_bounded(self):
        telemetry.enable(max_events=4)
        for _ in range(10):
            with telemetry.span("s"):
                pass
        tr = telemetry.current_tracer()
        assert len(tr.events) == 4
        assert tr.dropped_events == 6
        # the aggregate keeps counting past the event cap
        assert tr.aggregates()[0]["count"] == 10

    def test_jsonl_dump(self, tmp_path):
        telemetry.enable()
        with telemetry.span("run") as s:
            s.add("flops", 42)
            with telemetry.span("step"):
                pass
        telemetry.sample("res", 0.5, step=3)
        path = tmp_path / "trace.jsonl"
        n = telemetry.dump_jsonl(
            str(path), extra_records=[{"type": "rank_span", "rank": 0}]
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == n
        kinds = [r["type"] for r in records]
        assert kinds[0] == "meta"
        assert kinds.count("span") == 2
        assert kinds.count("event") == 2
        assert "rank_span" in kinds and "metric" in kinds
        spans = {r["path"]: r for r in records if r["type"] == "span"}
        assert spans["run"]["counters"] == {"flops": 42}
        assert spans["run/step"]["depth"] == 1
        metric = next(r for r in records if r["type"] == "metric")
        assert metric["name"] == "res"
        assert metric["steps"] == [3] and metric["values"] == [0.5]

    def test_dump_returns_zero_when_disabled(self, tmp_path):
        assert telemetry.dump_jsonl(str(tmp_path / "x.jsonl")) == 0


# ---------------------------------------------------------------- metrics


class TestMetrics:
    def test_registry_find_or_create_and_type_clash(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.add(3)
        assert reg.counter("n") is c and c.value == 3
        with pytest.raises(TypeError):
            reg.gauge("n")

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        g = reg.gauge("cfl")
        g.set(2.0)
        g.set(0.5)
        assert (g.value, g.min, g.max, g.n) == (0.5, 0.5, 2.0, 2)
        h = reg.histogram("dt")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean == 2.0 and h.n == 3
        assert h.std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_series_auto_and_explicit_steps(self):
        reg = MetricsRegistry()
        s = reg.series("r")
        s.append(1.0)
        s.append(2.0, step=10)
        assert s.steps == [0, 10] and s.values == [1.0, 2.0]

    def test_flopcounter_shim_is_category_counter(self):
        fc = FlopCounter()
        fc.add("stiffness", 100)
        fc.add("stiffness", 50)
        fc.add("update", 7)
        assert fc.counts == {"stiffness": 150, "update": 7}
        assert fc.total == 157
        other = FlopCounter()
        other.add("update", 3)
        fc.merge(other)
        assert fc.counts["update"] == 10
        assert isinstance(fc, telemetry.CategoryCounter)

    def test_sample_and_gauge_gated_on_enabled(self):
        telemetry.sample("x", 1.0)
        telemetry.gauge("g", 1.0)
        assert "x" not in telemetry.metrics()
        telemetry.enable()
        telemetry.sample("x", 1.0)
        telemetry.gauge("g", 2.0)
        assert telemetry.metrics()["x"].values == [1.0]
        assert telemetry.metrics()["g"].value == 2.0

    def test_sample_alloc_requires_tracemalloc(self):
        telemetry.enable()
        telemetry.sample_alloc()
        assert "alloc.peak_bytes" not in telemetry.metrics()
        tracemalloc.start()
        try:
            telemetry.sample_alloc()
        finally:
            tracemalloc.stop()
        assert len(telemetry.metrics()["alloc.peak_bytes"]) == 1

    def test_absorb_flops(self):
        reg = MetricsRegistry()
        fc = FlopCounter()
        fc.add("stiffness", 9)
        reg.absorb_flops(fc)
        assert reg.counter("flops.stiffness").value == 9


# ------------------------------------------------------------------ timer


class TestAccumulatingTimer:
    def test_accumulates_over_reentries(self):
        t = Timer.accumulating()
        for _ in range(3):
            with t:
                sum(range(100))
        assert t.count == 3
        assert t.total > 0
        assert t.mean == pytest.approx(t.total / 3)
        assert t.seconds <= t.total  # last lap vs running sum


# ------------------------------------------- trajectories on/off identity


class TestTrajectoryIdentity:
    def test_elastic_bitwise_identical_on_off(self):
        tree, mesh = make_mesh()
        force = PointForce(mesh.nnode // 2, mesh.nnode)
        t_end = 8.5 * ElasticWaveSolver(mesh, tree, MAT).dt

        def trajectory():
            solver = ElasticWaveSolver(mesh, tree, MAT)
            states = []
            solver.run(
                force, t_end, callback=lambda k, t, u: states.append(u.copy())
            )
            return states

        off = trajectory()
        telemetry.enable()
        on = trajectory()
        assert len(on) == len(off) > 0
        for k, (a, b) in enumerate(zip(on, off)):
            assert np.array_equal(a, b), f"step {k}"
        # and the trace actually saw the run
        paths = [a["path"] for a in telemetry.current_tracer().aggregates()]
        assert "elastic.run" in paths
        assert "elastic.run/stiffness" in paths

    def test_scalar_march_bitwise_identical_on_off(self):
        solver = RegularGridScalarWave((8, 4), 100.0, rho=1000.0)
        mu = np.full(solver.nelem, 2e9)
        dt = solver.stable_dt(mu)
        f = np.zeros(solver.nnode)
        f[solver.nnode // 2] = 1.0

        def forcing(k):
            return f if k < 3 else None

        u_off = solver.march(mu, forcing, 20, dt, store=True)
        telemetry.enable()
        u_on = solver.march(mu, forcing, 20, dt, store=True)
        assert np.array_equal(u_on, u_off)


# ------------------------------------------------------- per-peer traffic


class TestPeerTraffic:
    def test_record_send_updates_scalars_and_peers(self):
        st = TrafficStats()
        st.record_send(0, 1, 100)
        st.record_send(0, 1, 50)
        st.record_send(0, 2, 10)
        assert st.messages_sent == 3 and st.bytes_sent == 160
        assert st.peers == {(0, 1): (2, 150), (0, 2): (1, 10)}
        assert st.as_tuple() == (3, 160, 0)

    def test_copy_and_merge_carry_peers(self):
        a = TrafficStats()
        a.record_send(0, 1, 5)
        b = a.copy()
        b.record_send(0, 1, 5)
        assert a.peers == {(0, 1): (1, 5)}
        a.merge(b)
        assert a.peers == {(0, 1): (3, 15)}

    def test_peers_payload_roundtrip(self):
        a = TrafficStats()
        a.record_send(1, 0, 8)
        a.record_send(1, 2, 16)
        b = TrafficStats()
        b.merge_peers_payload(a.peers_payload())
        assert b.peers == a.peers

    def test_transports_agree_on_peer_matrix(self):
        tree, mesh = make_mesh()
        force = PointForce(mesh.nnode // 2, mesh.nnode)
        parts = rcb_partition(mesh.elem_centers, 2)

        def run(world):
            solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=1e-4)
            solver.run(force, 5.5e-4)
            return [dict(st.peers) for st in world.stats]

        sim_peers = run(SimWorld(2))
        with ProcWorld(2) as world:
            proc_peers = run(world)
        assert sim_peers == proc_peers
        # a 2-rank run must have traffic in both directions
        flat = {}
        for p in sim_peers:
            for k, (m, b) in p.items():
                pm, pb = flat.get(k, (0, 0))
                flat[k] = (pm + m, pb + b)
        assert set(flat) == {(0, 1), (1, 0)}


# ------------------------------------------------------- rank timelines


class TestTimelines:
    def test_rank_timeline_views(self):
        tl = RankTimeline(0, 2)
        tl.record(0, 0, 1.0)  # interface
        tl.record(0, 2, 2.0)  # interior
        tl.record(1, 1, 0.5)  # send
        tl.record(1, 4, 1.0)  # update
        assert tl.compute_seconds == 4.0
        assert tl.comm_seconds == 0.5
        assert tl.interface_fraction() == pytest.approx(1.0 / 3.0)
        rt = RankTimeline.from_payload(tl.to_payload())
        assert np.array_equal(rt.durations, tl.durations)
        recs = tl.span_records()
        assert len(recs) == 2 * len(PHASES)
        assert recs[0]["phase"] == "interface"

    def test_merged_imbalance_and_overlap(self):
        a = RankTimeline(0, 1)
        b = RankTimeline(1, 1)
        a.record(0, 2, 3.0)  # interior
        a.record(0, 3, 1.0)  # recv
        b.record(0, 2, 1.0)
        b.record(0, 3, 1.0)
        merged = MergedTimeline([b, a])
        assert merged.ranks[0].rank == 0  # sorted
        # compute: 3 vs 1 -> (3-1)/2
        assert merged.step_imbalance()[0] == pytest.approx(1.0)
        # rank0 hides min(3,1)=1 of 1s comm; rank1 min(1,1)=1 of 1 -> 1.0
        assert merged.overlap_ratio() == pytest.approx(1.0)
        summary = merged.summary()
        assert summary["nranks"] == 2 and summary["phases"] == list(PHASES)

    def test_nsteps_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MergedTimeline([RankTimeline(0, 2), RankTimeline(1, 3)])

    def test_solver_timelines_on_both_transports(self):
        tree, mesh = make_mesh()
        force = PointForce(mesh.nnode // 2, mesh.nnode)
        parts = rcb_partition(mesh.elem_centers, 2)
        nsteps = 6
        dt = 1e-4
        t_end = (nsteps - 0.5) * dt

        def run(world):
            solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=dt)
            u = solver.run(force, t_end)
            return u, solver.last_timeline

        # disabled -> no timeline is recorded
        _, tl = run(SimWorld(2))
        assert tl is None

        telemetry.enable()
        u_sim, tl_sim = run(SimWorld(2))
        with ProcWorld(2) as world:
            u_proc, tl_proc = run(world)
        assert np.array_equal(u_sim, u_proc)
        for tl in (tl_sim, tl_proc):
            assert isinstance(tl, MergedTimeline)
            assert tl.nranks == 2
            assert tl.nsteps == nsteps
            for r in tl.ranks:
                assert r.durations.shape == (nsteps, len(PHASES))
                assert np.all(np.isfinite(r.durations))
                assert np.all(r.durations >= 0)
                assert r.compute_seconds > 0
            s = tl.summary()
            assert len(s["per_rank"]) == 2
            assert 0.0 <= s["overlap_ratio"] <= 1.0
        # the two transports ran the same schedule: summaries have the
        # same structure (identical keys), wall times of course differ
        assert set(tl_sim.summary()) == set(tl_proc.summary())


# ---------------------------------------------------------- flop formulas


class TestFlopAccounting:
    def test_matmat_is_width_times_matvec(self):
        _, mesh = make_mesh()
        lam = np.full(mesh.nelem, 2.0)
        mu = np.full(mesh.nelem, 1.0)
        op = ElasticOperator(mesh.conn, mesh.elem_h, lam, mu, mesh.nnode)
        assert op.flops_per_matvec > 0
        for w in (1, 3, 8):
            assert op.flops_per_matmat(w) == w * op.flops_per_matvec

    def test_run_batch_flops_match_singles(self):
        tree, mesh = make_mesh()
        forces = [PointForce(1, mesh.nnode), PointForce(2, mesh.nnode)]
        t_end = 5.5e-4

        single = ElasticWaveSolver(mesh, tree, MAT, dt=1e-4)
        for fc in forces:
            single.run(fc, t_end)
        batched = ElasticWaveSolver(mesh, tree, MAT, dt=1e-4)
        batched.run_batch(forces, t_end)
        assert batched.flops.counts == single.flops.counts


# ------------------------------------------------------------- PerfReport


class TestPerfReport:
    def _fixed_report(self):
        return PerfReport(
            phases=[
                {"path": "elastic.run", "name": "elastic.run", "depth": 0,
                 "seconds": 2.0, "count": 1, "flops": None},
                {"path": "elastic.run/stiffness", "name": "stiffness",
                 "depth": 1, "seconds": 1.5, "count": 100,
                 "flops": 300_000_000},
            ],
            traffic={(0, 1): (10, 4096), (1, 0): (10, 4096)},
            timeline={
                "nranks": 2,
                "nsteps": 100,
                "phases": list(PHASES),
                "per_rank": [
                    {"rank": 0, "compute_seconds": 1.25,
                     "comm_seconds": 0.25, "interface_fraction": 0.125},
                    {"rank": 1, "compute_seconds": 1.0,
                     "comm_seconds": 0.5, "interface_fraction": 0.25},
                ],
                "mean_step_imbalance": 0.2,
                "max_step_imbalance": 0.4,
                "overlap_ratio": 0.75,
            },
            baseline_seconds=2.0,
            parallel_seconds=1.25,
            nranks=2,
            title="golden",
        )

    def test_golden_text(self):
        expected = "\n".join(
            [
                "golden",
                "======",
                "",
                "phase                                   "
                "seconds    calls        Mflop    Mflop/s",
                "-" * 80,
                "elastic.run                             "
                "  2.000        1            -          -",
                "  stiffness                             "
                "  1.500      100       300.00      200.0",
                "",
                "rank-pair traffic",
                "src->dst       messages          bytes",
                "-" * 38,
                "0 -> 1               10           4096",
                "1 -> 0               10           4096",
                "total                20           8192",
                "",
                "per-rank timeline (100 steps)",
                "rank  compute_s     comm_s iface_frac",
                "-" * 38,
                "   0      1.250      0.250      0.125",
                "   1      1.000      0.500      0.250",
                "mean step imbalance 0.200   overlap ratio 0.750",
                "",
                "parallel efficiency vs 1-rank baseline: 0.800  "
                "(P=2, T1=2.000s, TP=1.250s)",
            ]
        )
        assert self._fixed_report().as_text() == expected

    def test_as_dict_round_trips_through_json(self):
        d = self._fixed_report().as_dict()
        d2 = json.loads(json.dumps(d))
        assert d2["efficiency"] == pytest.approx(0.8)
        assert d2["traffic"]["0->1"] == {"messages": 10, "bytes": 4096}

    def test_efficiency_requires_all_inputs(self):
        assert PerfReport(baseline_seconds=1.0).efficiency is None
        r = PerfReport(
            baseline_seconds=4.0, parallel_seconds=1.0, nranks=4
        )
        assert r.efficiency == 1.0

    def test_collect_from_live_objects(self):
        telemetry.enable()
        with telemetry.span("work") as s:
            s.add("flops", 1000)
        fc = FlopCounter()
        fc.add("stiffness", 500)
        st = TrafficStats()
        st.record_send(0, 1, 64)

        class World:
            stats = [st]
            nranks = 2

        report = PerfReport.collect(
            tracer=telemetry.current_tracer(),
            world=World(),
            flops=fc,
            metrics=telemetry.metrics(),
            baseline_seconds=1.0,
            parallel_seconds=0.5,
        )
        by_path = {p["path"]: p for p in report.phases}
        assert by_path["work"]["flops"] == 1000
        assert by_path["flops/stiffness"]["flops"] == 500
        assert report.traffic == {(0, 1): (1, 64)}
        assert report.nranks == 2  # taken from the world
        assert report.efficiency == 1.0
        assert report.total_traffic() == (1, 64)
