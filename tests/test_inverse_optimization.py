"""Tests for regularization, preconditioning, GN-CG, multiscale, and
end-to-end inversion recovery."""

import numpy as np
import pytest

from repro.inverse import (
    FaultLineSource2D,
    LBFGSPreconditioner,
    MaterialGrid,
    ScalarWaveInverseProblem,
    SourceInverseProblem,
    Tikhonov1D,
    TotalVariation,
    frankel_solve,
    gauss_newton_cg,
    multiscale_invert,
)
from repro.inverse.fault_source import SourceParams
from repro.inverse.precond import power_estimate_lmax
from repro.solver import RegularGridScalarWave


class TestRegularization:
    def test_tv_zero_for_constant(self):
        grid = MaterialGrid((4, 4), (1.0, 1.0))
        tv = TotalVariation(grid, beta=1.0, eps=1e-8)
        m = np.full(grid.n, 3.0)
        assert tv.value(m) < 1e-6
        np.testing.assert_allclose(tv.gradient(m), 0.0, atol=1e-8)

    def test_tv_value_of_linear_ramp(self):
        # |grad m| = 2 everywhere on the unit square -> TV ~ 2
        grid = MaterialGrid((8, 8), (1.0, 1.0))
        m = 2.0 * grid.node_coords()[:, 0]
        tv = TotalVariation(grid, beta=1.0, eps=1e-9)
        np.testing.assert_allclose(tv.value(m), 2.0, rtol=1e-6)

    def test_tv_gradient_matches_fd(self):
        grid = MaterialGrid((4, 3), (1.0, 1.0))
        tv = TotalVariation(grid, beta=0.7, eps=0.1)
        rng = np.random.default_rng(0)
        m = rng.standard_normal(grid.n)
        g = tv.gradient(m)
        eps = 1e-7
        for i in [0, 5, grid.n - 1]:
            mp, mm = m.copy(), m.copy()
            mp[i] += eps
            mm[i] -= eps
            fd = (tv.value(mp) - tv.value(mm)) / (2 * eps)
            np.testing.assert_allclose(g[i], fd, rtol=1e-5, atol=1e-10)

    def test_tv_prefers_sharp_edge_over_smooth_at_same_jump(self):
        """TV of a jump is (nearly) independent of how it is smeared —
        unlike Tikhonov, which heavily penalizes the sharp version."""
        grid = MaterialGrid((16, 1), (1.0, 1.0 / 16))
        x = grid.node_coords()[:, 0]
        sharp = (x > 0.5).astype(float)
        smooth = np.clip((x - 0.25) / 0.5, 0, 1)
        tv = TotalVariation(grid, beta=1.0, eps=1e-6)
        ratio = tv.value(sharp) / tv.value(smooth)
        assert 0.9 < ratio < 1.1

    def test_tv_hessvec_spd(self):
        grid = MaterialGrid((5, 5), (1.0, 1.0))
        tv = TotalVariation(grid, beta=1.0, eps=0.5)
        rng = np.random.default_rng(1)
        m = rng.standard_normal(grid.n)
        v, w = rng.standard_normal((2, grid.n))
        np.testing.assert_allclose(
            w @ tv.hessvec(m, v), v @ tv.hessvec(m, w), rtol=1e-10
        )
        assert v @ tv.hessvec(m, v) >= 0

    def test_tikhonov_1d(self):
        t = Tikhonov1D(8, 0.5, beta=2.0)
        p = np.arange(8.0)
        # |dp/dx| = 2 on 7 intervals of length 0.5
        np.testing.assert_allclose(t.value(p), 0.5 * 2.0 * 0.5 * 7 * 4.0)
        g = t.gradient(p)
        eps = 1e-7
        fd = np.zeros(8)
        for i in range(8):
            pp, pm = p.copy(), p.copy()
            pp[i] += eps
            pm[i] -= eps
            fd[i] = (t.value(pp) - t.value(pm)) / (2 * eps)
        np.testing.assert_allclose(g, fd, atol=1e-6)


class TestMaterialGrid:
    def test_interpolation_partition_of_unity(self):
        grid = MaterialGrid((4, 4), (2.0, 2.0))
        pts = np.random.default_rng(0).random((50, 2)) * 2.0
        P = grid.interpolation_matrix(pts)
        np.testing.assert_allclose(
            np.asarray(P.sum(axis=1)).ravel(), 1.0, atol=1e-12
        )

    def test_interpolation_reproduces_linear_fields(self):
        grid = MaterialGrid((4, 4), (2.0, 2.0))
        m = grid.sample(lambda p: 3.0 * p[:, 0] - p[:, 1] + 1.0)
        pts = np.random.default_rng(1).random((30, 2)) * 2.0
        P = grid.interpolation_matrix(pts)
        np.testing.assert_allclose(
            P @ m, 3.0 * pts[:, 0] - pts[:, 1] + 1.0, atol=1e-12
        )

    def test_to_finer_nested(self):
        coarse = MaterialGrid((2, 2), (1.0, 1.0))
        fine = MaterialGrid((4, 4), (1.0, 1.0))
        m = coarse.sample(lambda p: p[:, 0] + 2 * p[:, 1])
        mf = coarse.to_finer(fine) @ m
        np.testing.assert_allclose(
            mf, fine.sample(lambda p: p[:, 0] + 2 * p[:, 1]), atol=1e-12
        )


class TestFrankelAndPreconditioner:
    def test_frankel_converges_on_spd_system(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((30, 30))
        A = A @ A.T + 5.0 * np.eye(30)
        w = np.linalg.eigvalsh(A)
        b = rng.standard_normal(30)
        x = frankel_solve(lambda v: A @ v, b, w[0], w[-1], iters=60)
        assert np.linalg.norm(A @ x - b) < 1e-5 * np.linalg.norm(b)

    def test_frankel_beats_first_order_richardson(self):
        rng = np.random.default_rng(1)
        A = np.diag(np.linspace(1.0, 100.0, 40))
        b = rng.standard_normal(40)
        x2 = frankel_solve(lambda v: A @ v, b, 1.0, 100.0, iters=25)
        # first-order optimal Richardson, same iteration count
        x1 = np.zeros(40)
        alpha = 2.0 / 101.0
        for _ in range(26):
            x1 = x1 + alpha * (b - A @ x1)
        r2 = np.linalg.norm(A @ x2 - b)
        r1 = np.linalg.norm(A @ x1 - b)
        assert r2 < 0.2 * r1

    def test_frankel_validates_spectrum(self):
        with pytest.raises(ValueError):
            frankel_solve(lambda v: v, np.ones(3), -1.0, 2.0)

    def test_power_estimate(self):
        A = np.diag([1.0, 5.0, 42.0])
        lmax = power_estimate_lmax(lambda v: A @ v, 3, iters=100)
        np.testing.assert_allclose(lmax, 42.0, rtol=1e-6)

    def test_lbfgs_preconditioner_learns_diagonal(self):
        """After seeing pairs from H = diag(d), applying the
        preconditioner to H x should roughly return x."""
        rng = np.random.default_rng(2)
        d = np.linspace(1.0, 50.0, 20)
        H = np.diag(d)
        pre = LBFGSPreconditioner(20, memory=25)
        for _ in range(25):
            s = rng.standard_normal(20)
            pre.stage_pair(s, H @ s)
        pre.commit()
        x = rng.standard_normal(20)
        y = pre.apply(H @ x)
        # much closer to x than the unpreconditioned residual
        assert np.linalg.norm(y - x) < 0.5 * np.linalg.norm(H @ x - x)

    def test_stage_rejects_nonpositive_curvature(self):
        pre = LBFGSPreconditioner(3)
        pre.stage_pair(np.array([1.0, 0, 0]), np.array([-1.0, 0, 0]))
        pre.commit()
        assert len(pre.pairs) == 0


@pytest.fixture(scope="module")
def small_inversion():
    """A small 2D inversion whose target is reachable: two-layer medium,
    fault source, surface receivers.  Units: km, s, mu = vs^2 (rho=1)."""
    nx, nz = 24, 12
    h = 1.0 / 3.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1.0)
    fault = FaultLineSource2D(solver, ix=nx // 2, jz=range(3, 9))
    params = fault.hypocentral_params(
        hypo_j=6, rupture_velocity=2.0, u0=1.0, t0=0.5
    )

    def mu_fn(pts):
        return (1.0 + 0.8 * (pts[:, 1] > 2.0)) ** 2

    fine = MaterialGrid((8, 4), (nx * h, nz * h))
    m_true = fine.sample(mu_fn)
    mu_e = fine.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = int(6.0 / dt)
    u = solver.march(
        mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
    )
    rec = solver.surface_nodes()
    data = u[:, rec]
    return solver, fault, params, fine, m_true, rec, data, dt, nsteps


class TestGaussNewtonCG:
    def test_single_grid_reduces_misfit(self, small_inversion):
        solver, fault, params, fine, m_true, rec, data, dt, nsteps = (
            small_inversion
        )
        grid = MaterialGrid((4, 2), tuple(fine.lengths))
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        m0 = np.full(grid.n, 1.3)
        J0 = prob.objective(m0)[0]
        res = gauss_newton_cg(prob, m0, max_newton=6, cg_maxiter=20)
        assert res.objective < 0.2 * J0
        assert res.newton_iterations >= 1
        assert res.total_cg_iterations >= res.newton_iterations

    def test_preconditioner_does_not_break_convergence(self, small_inversion):
        solver, fault, params, fine, m_true, rec, data, dt, nsteps = (
            small_inversion
        )
        grid = MaterialGrid((4, 2), tuple(fine.lengths))
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        m0 = np.full(grid.n, 1.3)
        pre = LBFGSPreconditioner(grid.n)
        res = gauss_newton_cg(
            prob, m0, max_newton=6, cg_maxiter=20, precond=pre
        )
        assert res.objective < 0.2 * prob.objective(m0)[0]
        assert len(pre.pairs) > 0

    def test_barrier_keeps_positive(self, small_inversion):
        solver, fault, params, fine, m_true, rec, data, dt, nsteps = (
            small_inversion
        )
        grid = MaterialGrid((4, 2), tuple(fine.lengths))
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params, barrier_gamma=1e-6, mu_min=0.2,
        )
        res = gauss_newton_cg(
            prob, np.full(grid.n, 0.5), max_newton=8, cg_maxiter=20
        )
        assert np.all(res.m > 0.2)


class TestMultiscale:
    def test_levels_improve_model_error(self, small_inversion):
        solver, fault, params, fine, m_true, rec, data, dt, nsteps = (
            small_inversion
        )

        def make_problem(grid):
            return ScalarWaveInverseProblem(
                solver, grid, rec, data, dt, nsteps, fault=fault,
                source_params=params,
            )

        L = tuple(fine.lengths)
        grids = [
            MaterialGrid((2, 1), L),
            MaterialGrid((4, 2), L),
            MaterialGrid((8, 4), L),
        ]
        errs = []

        def cb(li, grid, m, result):
            mt = fine.sample(lambda p: None) if False else None

        res = multiscale_invert(
            make_problem, grids, m_init=1.3, newton_per_level=5,
            cg_maxiter=20,
        )
        assert res.grid_final.shape == (8, 4)
        err = np.linalg.norm(res.m_final - m_true) / np.linalg.norm(m_true)
        m0_err = np.linalg.norm(1.3 - m_true) / np.linalg.norm(m_true)
        assert err < 0.5 * m0_err
        # objective decreases across levels
        Js = [r.objective for _, r in res.levels]
        assert Js[-1] < Js[0]


class TestSourceInversionEndToEnd:
    def test_recovers_source_params(self, small_inversion):
        solver, fault, params, fine, m_true, rec, data, dt, nsteps = (
            small_inversion
        )
        mu_e = fine.to_elements(solver) @ m_true
        sp = SourceInverseProblem(
            solver, fault, mu_e, rec, data, dt, nsteps,
            beta_u0=1e-6, beta_t0=1e-6, beta_T=1e-6,
        )
        p0 = SourceParams(
            np.full(fault.ns, 0.8),
            np.full(fault.ns, 0.7),
            params.T + 0.2,
        )
        res = gauss_newton_cg(sp, p0.pack(), max_newton=12, cg_maxiter=25)
        p_hat = SourceParams.unpack(res.m)
        np.testing.assert_allclose(p_hat.u0, params.u0, atol=0.05)
        np.testing.assert_allclose(p_hat.t0, params.t0, atol=0.05)
        np.testing.assert_allclose(p_hat.T, params.T, atol=0.05)
