"""Tests for the on-disk B-tree storage engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.etree import BTree


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "test.btree")


def test_create_and_reopen(path):
    with BTree(path, record_size=16) as t:
        t.insert(42, b"x" * 16)
    with BTree(path) as t:
        assert t.record_size == 16
        assert t.get(42) == b"x" * 16
        assert len(t) == 1


def test_missing_key_returns_none(path):
    with BTree(path, record_size=8) as t:
        t.insert(1, b"a" * 8)
        assert t.get(2) is None
        assert 1 in t
        assert 2 not in t


def test_wrong_record_size_rejected(path):
    with BTree(path, record_size=8) as t:
        with pytest.raises(ValueError):
            t.insert(1, b"too long for record")


def test_replace_existing(path):
    with BTree(path, record_size=4) as t:
        t.insert(7, b"aaaa")
        t.insert(7, b"bbbb")
        assert t.get(7) == b"bbbb"
        assert len(t) == 1


def test_duplicate_insert_no_replace_raises(path):
    with BTree(path, record_size=4) as t:
        t.insert(7, b"aaaa")
        with pytest.raises(KeyError):
            t.insert(7, b"bbbb", replace=False)


def test_many_inserts_random_order_with_splits(path):
    rng = np.random.default_rng(0)
    keys = rng.permutation(5000).astype(np.uint64)
    with BTree(path, record_size=8, page_size=512, cache_pages=8) as t:
        for k in keys:
            t.insert(int(k), int(k).to_bytes(8, "little"))
        assert len(t) == 5000
        assert t.height > 1
    with BTree(path, cache_pages=8) as t:
        for k in [0, 1, 2499, 4998, 4999]:
            assert t.get(k) == k.to_bytes(8, "little")
        got = t.keys()
        np.testing.assert_array_equal(got, np.arange(5000, dtype=np.uint64))


def test_range_scan_order_and_bounds(path):
    with BTree(path, record_size=8, page_size=512) as t:
        for k in [10, 5, 30, 20, 40]:
            t.insert(k, k.to_bytes(8, "little"))
        scanned = [k for k, _ in t.range_scan(10, 40)]
        assert scanned == [10, 20, 30]
        assert [k for k, _ in t.range_scan()] == [5, 10, 20, 30, 40]


def test_delete(path):
    with BTree(path, record_size=8, page_size=512) as t:
        for k in range(200):
            t.insert(k, k.to_bytes(8, "little"))
        assert t.delete(100)
        assert not t.delete(100)
        assert t.get(100) is None
        assert len(t) == 199
        assert [k for k, _ in t.range_scan(99, 102)] == [99, 101]


def test_bulk_load_and_lookup(path):
    n = 10000
    keys = np.arange(0, 3 * n, 3, dtype=np.uint64)
    recs = np.zeros((n, 8), dtype=np.uint8)
    recs[:, 0] = np.arange(n) % 251
    with BTree(path, record_size=8, page_size=512, cache_pages=16) as t:
        t.bulk_load(keys, recs)
        assert len(t) == n
    with BTree(path, cache_pages=16) as t:
        assert t.get(0) == bytes(recs[0])
        assert t.get(3 * (n - 1)) == bytes(recs[n - 1])
        assert t.get(1) is None
        np.testing.assert_array_equal(t.keys(), keys)


def test_bulk_load_requires_sorted(path):
    with BTree(path, record_size=8) as t:
        with pytest.raises(ValueError):
            t.bulk_load(np.array([3, 1], dtype=np.uint64), np.zeros((2, 8), np.uint8))


def test_bulk_load_requires_empty(path):
    with BTree(path, record_size=8) as t:
        t.insert(1, b"x" * 8)
        with pytest.raises(ValueError):
            t.bulk_load(np.array([5], dtype=np.uint64), np.zeros((1, 8), np.uint8))


def test_streaming_bulk_loader_chunks(path):
    with BTree(path, record_size=8, page_size=512, cache_pages=8) as t:
        with t.bulk_loader() as loader:
            for start in range(0, 3000, 100):
                ks = np.arange(start, start + 100, dtype=np.uint64)
                rs = np.zeros((100, 8), dtype=np.uint8)
                rs[:, 0] = ks % 256
                loader.append(ks, rs)
        assert len(t) == 3000
        np.testing.assert_array_equal(t.keys(), np.arange(3000, dtype=np.uint64))


def test_streaming_loader_rejects_out_of_order_chunks(path):
    with BTree(path, record_size=8) as t:
        loader = t.bulk_loader()
        loader.append(np.array([10], dtype=np.uint64), np.zeros((1, 8), np.uint8))
        with pytest.raises(ValueError):
            loader.append(np.array([5], dtype=np.uint64), np.zeros((1, 8), np.uint8))


def test_insert_after_bulk_load(path):
    with BTree(path, record_size=8, page_size=512) as t:
        t.bulk_load(
            np.arange(0, 1000, 2, dtype=np.uint64), np.zeros((500, 8), np.uint8)
        )
        t.insert(501, b"q" * 8)
        assert t.get(501) == b"q" * 8
        assert len(t) == 501


def test_tiny_cache_still_correct(path):
    """Out-of-core claim: correctness must not depend on cache size."""
    rng = np.random.default_rng(1)
    keys = rng.permutation(2000).astype(np.uint64)
    with BTree(path, record_size=8, page_size=256, cache_pages=4) as t:
        for k in keys:
            t.insert(int(k), int(k).to_bytes(8, "little"))
        assert t.reads > 0  # cache misses occurred
    with BTree(path, cache_pages=4) as t:
        for k in rng.choice(2000, 100, replace=False):
            assert t.get(int(k)) == int(k).to_bytes(8, "little")


def test_io_counters_move(path):
    with BTree(path, record_size=8, page_size=256, cache_pages=4) as t:
        for k in range(500):
            t.insert(k, k.to_bytes(8, "little"))
        assert t.writes > 0


@settings(deadline=None, max_examples=20)
@given(
    st.lists(
        st.integers(min_value=0, max_value=2**53), min_size=1, max_size=200, unique=True
    )
)
def test_property_insert_then_scan_sorted(tmp_path_factory, keys):
    path = str(tmp_path_factory.mktemp("bt") / "p.btree")
    with BTree(path, record_size=8, page_size=256, cache_pages=4) as t:
        for k in keys:
            t.insert(k, int(k % 255).to_bytes(1, "little") * 8)
        scanned = [k for k, _ in t.range_scan()]
        assert scanned == sorted(keys)
        for k in keys:
            assert t.get(k) == int(k % 255).to_bytes(1, "little") * 8
