"""Stateful property test: the B-tree against a dict reference model."""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.etree import BTree

KEYS = st.integers(min_value=0, max_value=10_000)


class BTreeModel(RuleBasedStateMachine):
    """Random insert/replace/delete/lookup sequences with a tiny page
    size and cache (maximizing splits and evictions) must behave like a
    dict."""

    def __init__(self):
        super().__init__()
        import tempfile

        self.dir = tempfile.TemporaryDirectory()
        self.tree = BTree(
            f"{self.dir.name}/t.btree",
            record_size=8,
            page_size=256,
            cache_pages=4,
        )
        self.model: dict[int, bytes] = {}

    def record_for(self, key: int, salt: int) -> bytes:
        return ((key * 1_000_003 + salt) % 2**64).to_bytes(8, "little")

    @rule(key=KEYS, salt=st.integers(0, 7))
    def insert(self, key, salt):
        rec = self.record_for(key, salt)
        self.tree.insert(key, rec)
        self.model[key] = rec

    @rule(key=KEYS)
    def delete(self, key):
        present = key in self.model
        assert self.tree.delete(key) == present
        self.model.pop(key, None)

    @rule(key=KEYS)
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @invariant()
    def length_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def scan_is_sorted_and_complete(self):
        items = list(self.tree.range_scan())
        keys = [k for k, _ in items]
        assert keys == sorted(self.model)
        for k, rec in items:
            assert rec == self.model[k]

    def teardown(self):
        self.tree.close()
        self.dir.cleanup()


TestBTreeStateful = BTreeModel.TestCase
TestBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
