"""Tests for mesh extraction, hanging-node constraints, tet baseline,
and partitioning."""

import numpy as np
import pytest

from repro.mesh import (
    HexMesh,
    build_constraints,
    element_dual_graph,
    extract_mesh,
    graph_partition,
    hex_to_tet_mesh,
    partition_metrics,
    rcb_partition,
    uniform_hex_mesh,
    wavelength_target,
)
from repro.octree import (
    MAX_COORD,
    balance_octree,
    build_adaptive_octree,
    is_balanced,
)


def refined_corner_tree(max_level=3):
    """Balanced tree refined in the (0,0,0) corner: guarantees hanging
    nodes at the refinement interface."""

    def target(c, s):
        return np.where(np.all(c < 0.25, axis=1), 1.0 / 2**max_level, 0.25)

    t = build_adaptive_octree(target, max_level=max_level)
    return balance_octree(t)


class TestExtractMesh:
    def test_uniform_counts(self):
        mesh = uniform_hex_mesh(4, L=100.0)
        assert mesh.nelem == 64
        assert mesh.nnode == 5**3
        assert mesh.coords.max() == 100.0
        assert mesh.coords.min() == 0.0

    def test_conn_indices_valid_and_corner_order(self):
        mesh = uniform_hex_mesh(2, L=1.0)
        assert mesh.conn.min() >= 0 and mesh.conn.max() < mesh.nnode
        # corner order must be Morton: node k at offset (k&1,(k>>1)&1,(k>>2)&1)
        h = mesh.elem_h[0]
        for e in range(mesh.nelem):
            p0 = mesh.coords[mesh.conn[e, 0]]
            for k in range(8):
                off = np.array([k & 1, (k >> 1) & 1, (k >> 2) & 1]) * h
                np.testing.assert_allclose(mesh.coords[mesh.conn[e, k]], p0 + off)

    def test_shared_nodes_deduplicated(self):
        mesh = uniform_hex_mesh(2)
        # 8 elements share the center node
        counts = np.bincount(mesh.conn.ravel(), minlength=mesh.nnode)
        assert counts.max() == 8

    def test_multiresolution_mesh(self):
        tree = refined_corner_tree()
        mesh = extract_mesh(tree, L=1000.0)
        assert mesh.nelem == len(tree)
        assert len(np.unique(mesh.elem_level)) > 1

    def test_boundary_faces_free_surface(self):
        mesh = uniform_hex_mesh(4)
        idx, faces = mesh.boundary_faces(2, 0)  # z=0 plane
        assert len(idx) == 16
        assert np.all(mesh.node_ticks[faces.ravel(), 2] == 0)

    def test_boundary_faces_bottom(self):
        mesh = uniform_hex_mesh(4)
        idx, faces = mesh.boundary_faces(2, 1)
        assert len(idx) == 16
        assert np.all(mesh.node_ticks[faces.ravel(), 2] == MAX_COORD)

    def test_surface_nodes(self):
        mesh = uniform_hex_mesh(4)
        assert len(mesh.surface_nodes(2, 0)) == 25

    def test_box_frac_mesh(self):
        tree = build_adaptive_octree(
            lambda c, s: np.full(len(c), 0.25), max_level=4, box_frac=(1, 1, 0.5)
        )
        mesh = extract_mesh(balance_octree(tree), L=80.0, box_frac=(1, 1, 0.5))
        np.testing.assert_allclose(mesh.box_lengths, [80.0, 80.0, 40.0])
        assert mesh.coords[:, 2].max() == 40.0

    def test_wavelength_target_rule(self):
        vs = lambda pts: np.full(len(pts), 400.0)
        target = wavelength_target(vs, L=4000.0, fmax=1.0, points_per_wavelength=10)
        h = target(np.array([[0.5, 0.5, 0.5]]), np.array([0.5]))
        # h = 400/(10*1) = 40 m = 0.01 of L
        np.testing.assert_allclose(h, [0.01])


class TestHangingNodes:
    def test_uniform_mesh_has_no_hanging(self):
        from repro.octree.linear_octree import build_adaptive_octree

        tree = build_adaptive_octree(lambda c, s: np.full(len(c), 0.25), max_level=4)
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        assert info.n_hanging == 0
        assert info.B.shape == (mesh.nnode, mesh.nnode)
        # B is the identity
        assert (info.B != 0).sum() == mesh.nnode

    def test_refined_interface_has_hanging(self):
        tree = refined_corner_tree()
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        assert info.n_hanging > 0
        assert info.B.shape == (mesh.nnode, mesh.nnode - info.n_hanging)

    def test_weights_sum_to_one(self):
        tree = refined_corner_tree()
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        rowsum = np.asarray(info.B.sum(axis=1)).ravel()
        np.testing.assert_allclose(rowsum, 1.0, atol=1e-12)

    def test_masters_are_independent(self):
        tree = refined_corner_tree()
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        for i, st in info.masters.items():
            assert info.hanging[i]
            for j in st:
                assert not info.hanging[j], "master must be independent"

    def test_linear_field_patch_test(self):
        """Interpolating a linear field at independent nodes and applying
        B must reproduce the field exactly at hanging nodes."""
        tree = refined_corner_tree()
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        coords = mesh.coords
        f = 2.0 * coords[:, 0] - 3.0 * coords[:, 1] + 0.5 * coords[:, 2] + 7.0
        fbar = f[info.independent]
        np.testing.assert_allclose(info.B @ fbar, f, atol=1e-9)

    def test_hanging_count_matches_interface(self):
        """On a half-refined cube the hanging nodes sit exactly on the
        2-to-1 interface."""
        def target(c, s):
            return np.where(c[:, 0] < 0.5, 0.125, 0.25)

        tree = balance_octree(build_adaptive_octree(target, max_level=4))
        assert is_balanced(tree)
        mesh = extract_mesh(tree)
        info = build_constraints(tree, mesh)
        hang_nodes = mesh.node_ticks[info.hanging]
        assert np.all(hang_nodes[:, 0] == MAX_COORD // 2)


class TestTetMesh:
    def test_split_counts_and_volume(self):
        mesh = uniform_hex_mesh(2, L=2.0)
        tet = hex_to_tet_mesh(mesh)
        assert tet.nelem == mesh.nelem * 6
        vols = tet.volumes()
        assert np.all(vols > 0)
        np.testing.assert_allclose(vols.sum(), 8.0)

    def test_requires_conforming(self):
        tree = refined_corner_tree()
        mesh = extract_mesh(tree)
        with pytest.raises(ValueError):
            hex_to_tet_mesh(mesh)

    def test_face_diagonals_consistent(self):
        """Across a shared hex face, the two hexes' tets must induce the
        same diagonal (no cracks): check shared faces triangulate alike."""
        mesh = uniform_hex_mesh(2, L=1.0)
        tet = hex_to_tet_mesh(mesh)
        # collect all triangular faces; internal triangles must appear twice
        faces = {}
        for t in tet.conn:
            for tri in ([0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]):
                key = tuple(sorted(t[list(tri)]))
                faces[key] = faces.get(key, 0) + 1
        assert max(faces.values()) <= 2


class TestPartition:
    def test_rcb_balance(self):
        mesh = uniform_hex_mesh(8)
        parts = rcb_partition(mesh.elem_centers, 16)
        counts = np.bincount(parts, minlength=16)
        assert counts.min() >= 1
        assert counts.max() - counts.min() <= 1

    def test_rcb_non_power_of_two(self):
        mesh = uniform_hex_mesh(4)
        parts = rcb_partition(mesh.elem_centers, 5)
        counts = np.bincount(parts, minlength=5)
        assert len(counts) == 5
        assert counts.sum() == mesh.nelem
        assert counts.max() / counts.min() < 1.5

    def test_rcb_single_part(self):
        mesh = uniform_hex_mesh(2)
        parts = rcb_partition(mesh.elem_centers, 1)
        assert np.all(parts == 0)

    def test_partition_metrics(self):
        mesh = uniform_hex_mesh(4)
        parts = rcb_partition(mesh.elem_centers, 4)
        m = partition_metrics(mesh, parts)
        assert m.nparts == 4
        assert m.elems_per_part.sum() == mesh.nelem
        assert m.total_shared_nodes > 0
        assert m.edge_cut > 0
        assert m.imbalance >= 1.0
        # shared nodes are a minority for a good partition
        assert m.total_shared_nodes < mesh.nnode / 2

    def test_graph_partition(self):
        mesh = uniform_hex_mesh(4)
        parts = graph_partition(mesh, 4)
        counts = np.bincount(parts, minlength=4)
        assert counts.sum() == mesh.nelem
        assert counts.min() > 0

    def test_dual_graph_face_adjacency(self):
        mesh = uniform_hex_mesh(2)
        g = element_dual_graph(mesh)
        # interior cube mesh: each of the 8 elements face-touches 3 others
        degs = [d for _, d in g.degree()]
        assert all(d == 3 for d in degs)

    def test_rcb_cut_grows_sublinearly(self):
        """Surface-to-volume: interface nodes per part shrink relative to
        local size as parts grow."""
        mesh = uniform_hex_mesh(8)
        m4 = partition_metrics(mesh, rcb_partition(mesh.elem_centers, 4))
        m32 = partition_metrics(mesh, rcb_partition(mesh.elem_centers, 32))
        # total interface grows with parts but much slower than 8x
        assert m32.total_shared_nodes < 4 * m4.total_shared_nodes
