"""Tests for elastic conversions, CFL, Stacey coefficients, materials."""

import numpy as np
import pytest

from repro.materials import (
    HomogeneousMaterial,
    LayeredMaterial,
    SyntheticBasinModel,
)
from repro.physics import (
    lame_from_velocities,
    stable_timestep,
    stacey_coefficients,
    velocities_from_lame,
)


class TestElastic:
    def test_roundtrip(self):
        vs, vp, rho = 1000.0, 2000.0, 2300.0
        lam, mu = lame_from_velocities(vs, vp, rho)
        vs2, vp2 = velocities_from_lame(lam, mu, rho)
        np.testing.assert_allclose([vs2, vp2], [vs, vp])

    def test_moduli_values(self):
        lam, mu = lame_from_velocities(1000.0, 2000.0, 2000.0)
        assert mu == 2000.0 * 1000.0**2
        assert lam == 2000.0 * (2000.0**2 - 2 * 1000.0**2)

    def test_invalid_velocities(self):
        with pytest.raises(ValueError):
            lame_from_velocities(1000.0, 1200.0, 2000.0)

    def test_vectorized(self):
        vs = np.array([500.0, 1000.0])
        vp = np.array([1200.0, 2500.0])
        rho = np.array([1800.0, 2200.0])
        lam, mu = lame_from_velocities(vs, vp, rho)
        assert lam.shape == (2,)


class TestCFL:
    def test_finest_softest_governs(self):
        h = np.array([100.0, 50.0])
        vp = np.array([2000.0, 4000.0])
        dt = stable_timestep(h, vp, safety=1.0)
        np.testing.assert_allclose(dt, (50.0 / 4000.0) / np.sqrt(3))

    def test_safety_scales(self):
        h, vp = np.array([100.0]), np.array([1000.0])
        assert stable_timestep(h, vp, safety=0.25) == 0.5 * stable_timestep(
            h, vp, safety=0.5
        )

    def test_empty_mesh_raises(self):
        with pytest.raises(ValueError):
            stable_timestep(np.array([]), np.array([]))


class TestStaceyCoefficients:
    def test_impedances(self):
        lam, mu, rho = 2.0e9, 1.0e9, 2000.0
        d1, d2, c1 = stacey_coefficients(lam, mu, rho)
        np.testing.assert_allclose(d1, np.sqrt(rho * (lam + 2 * mu)))
        np.testing.assert_allclose(d2, np.sqrt(rho * mu))
        np.testing.assert_allclose(c1, -2 * mu + np.sqrt(mu * (lam + 2 * mu)))

    def test_c1_sign_for_poisson_solid(self):
        # for lambda = mu (Poisson), c1 = mu (sqrt(3) - 2) < 0
        _, _, c1 = stacey_coefficients(1.0, 1.0, 1.0)
        assert c1 < 0


class TestMaterials:
    def test_homogeneous(self):
        m = HomogeneousMaterial(1000.0, 2000.0, 2300.0)
        vs, vp, rho = m.query(np.zeros((5, 3)))
        assert np.all(vs == 1000.0) and vs.shape == (5,)

    def test_homogeneous_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            HomogeneousMaterial(1000.0, 1100.0, 2000.0)

    def test_layered_lookup(self):
        m = LayeredMaterial(
            [1000.0, 5000.0],
            vs=[500.0, 1500.0, 3000.0],
            vp=[1000.0, 3000.0, 5500.0],
            rho=[1800.0, 2200.0, 2600.0],
        )
        pts = np.array([[0, 0, 500.0], [0, 0, 2000.0], [0, 0, 9000.0]])
        vs, vp, rho = m.query(pts)
        np.testing.assert_array_equal(vs, [500.0, 1500.0, 3000.0])

    def test_layered_validates(self):
        with pytest.raises(ValueError):
            LayeredMaterial([2000.0, 1000.0], [1, 2, 3], [2, 4, 6], [1, 1, 1])
        with pytest.raises(ValueError):
            LayeredMaterial([1000.0], [1, 2], [2, 4, 6], [1, 1])

    def test_basin_model_soft_center_hard_outside(self):
        m = SyntheticBasinModel(L=80_000.0, vs_min=100.0)
        center = np.array([[0.55 * 80_000, 0.45 * 80_000, 10.0]])
        far = np.array([[1000.0, 1000.0, 10.0]])
        vs_c, _, _ = m.query(center)
        vs_f, _, _ = m.query(far)
        assert vs_c[0] < 200.0
        assert vs_f[0] > 1500.0

    def test_basin_stiffens_with_depth(self):
        m = SyntheticBasinModel(L=80_000.0)
        col = np.array([[0.55 * 80_000, 0.45 * 80_000, z] for z in
                        [10.0, 500.0, 2000.0, 20_000.0]])
        vs, vp, rho = m.query(col)
        assert np.all(np.diff(vs) > 0)
        assert vs[-1] > 3500.0

    def test_basin_physically_admissible(self):
        m = SyntheticBasinModel(L=80_000.0, vs_min=100.0)
        rng = np.random.default_rng(0)
        pts = rng.random((500, 3)) * [80_000, 80_000, 30_000]
        vs, vp, rho = m.query(pts)
        assert np.all(vp >= np.sqrt(2) * vs)
        assert np.all(rho > 1000.0)
        assert np.all(vs >= 100.0 - 1e-9)
        assert np.all(vs <= 5000.0)
