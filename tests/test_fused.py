"""Communication-avoiding distributed stepping (k-deep ghost halos).

The contract under test:

* a fused rank marches ``k`` steps per aggregated halo exchange yet
  stays **bitwise identical on owned nodes** to ``k`` sequential
  1-deep exchanges — across 1/2/4 ranks, both transports, and partial
  trailing windows;
* ``steps_per_exchange=1`` is exactly the historical per-step loop;
* the per-step message count drops by a factor of ~``k``;
* checkpoints land only on exchange boundaries and resume
  bit-identically; resuming a misaligned (non-boundary) checkpoint is
  rejected; a worker killed mid-window recovers bit-identically;
* the alpha-beta-gamma machine model picks ``k`` sensibly, and the
  ``auto`` knob plumbs its choice through a real run.
"""

import os

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.mesh import rcb_partition, uniform_hex_mesh
from repro.parallel import (
    DistributedWaveSolver,
    MachineModel,
    ProcWorld,
    SimWorld,
    choose_steps_per_exchange,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    NumericalHealthError,
    RetryPolicy,
)
from repro.solver.checkpoint import collective_latest_step

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


class PointForce:
    """Picklable point force (worker processes unpickle it by value)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.02) / 0.008) ** 2))
        return b


def _problem(nranks: int):
    mesh = uniform_hex_mesh(4)
    parts = (
        rcb_partition(mesh.elem_centers, nranks)
        if nranks > 1
        else np.zeros(mesh.nelem, dtype=np.int64)
    )
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    return mesh, parts, force


# --------------------------------------------------- halo construction


def test_fused_halo_construction_invariants():
    mesh, parts, _ = _problem(4)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(4))
    shallow = solver.dist.build_fused_halos(2)
    deep = solver.dist.build_fused_halos(4)
    assert shallow.depth == 2 and deep.depth == 4
    assert deep.max_message_bytes() >= shallow.max_message_bytes() > 0
    for h2, h4, rp in zip(shallow.halos, deep.halos, solver.dist.ranks):
        # the own perspective is the rank's full partition
        own2 = h2.perspectives[h2.rank]
        assert len(own2.nodes_global) == len(rp.nodes)
        # a deeper halo only grows each ghost perspective
        for owner, q in h2.perspectives.items():
            if owner == h2.rank:
                continue
            q4 = h4.perspectives[owner]
            assert set(q.elements_global) <= set(q4.elements_global)
        # every refresh send indexes the sender's own nodes
        for dest, idx in h2.sends.items():
            assert dest != h2.rank
            assert idx.max() < len(own2.nodes_global)
        # adds route partial sums into perspectives this rank holds
        for dst, src, di, si in h2.adds:
            assert dst in h2.perspectives and src in h2.perspectives
            assert len(di) == len(si) > 0


# ------------------------------------------------------ bitwise parity


@pytest.mark.parametrize("nranks", [1, 2, 4])
@pytest.mark.parametrize("k", [2, 3])
def test_fused_bitwise_identical_sim(nranks, k):
    mesh, parts, force = _problem(nranks)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(nranks))
    t_end = 12.5 * solver.dt  # 13 steps: exercises a partial window
    u_ref = solver.run(force, t_end)

    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(nranks))
    u = solver.run(force, t_end, steps_per_exchange=k)
    assert np.array_equal(u, u_ref)
    if nranks == 1:
        assert solver.last_fused["fallback"] == "no interfaces"
        assert solver.last_fused["steps_per_exchange"] == 1
    else:
        assert solver.last_fused["steps_per_exchange"] == k
        assert solver.last_fused["fallback"] is None


def test_fused_k1_is_the_plain_loop():
    mesh, parts, force = _problem(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 10.5 * solver.dt
    u_ref = solver.run(force, t_end)
    msgs_ref = sum(st.messages_sent for st in solver.world.stats)

    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    u = solver.run(force, t_end, steps_per_exchange=1)
    assert np.array_equal(u, u_ref)
    assert solver.last_fused["steps_per_exchange"] == 1
    # identical traffic too: k=1 takes the historical code path
    assert sum(st.messages_sent for st in solver.world.stats) == msgs_ref


def test_fused_proc_matches_sim_and_cuts_messages():
    mesh, parts, force = _problem(2)
    k = 4
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 15.5 * solver.dt  # 16 steps: windows divide evenly
    u_ref = solver.run(force, t_end)

    sim = SimWorld(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, sim)
    u_sim = solver.run(force, t_end, steps_per_exchange=k)
    assert np.array_equal(u_sim, u_ref)

    with ProcWorld(2) as unfused_world:
        solver = DistributedWaveSolver(mesh, MAT, parts, unfused_world)
        u1 = solver.run(force, t_end)
        msgs_unfused = sum(
            st.messages_sent for st in unfused_world.stats
        )
        exch_unfused = sum(st.exchanges for st in unfused_world.stats)
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        u_proc = solver.run(force, t_end, steps_per_exchange=k)
        msgs_fused = sum(st.messages_sent for st in world.stats)
        exch_fused = sum(st.exchanges for st in world.stats)
        # transports agree bit for bit, on state and on accounting
        assert np.array_equal(u_proc, u_ref)
        for st_p, st_s in zip(world.stats, sim.stats):
            assert st_p.as_tuple() == st_s.as_tuple()
            assert st_p.exchanges == st_s.exchanges
    assert np.array_equal(u1, u_ref)
    # 16 steps at k=4: exchange rounds drop by exactly 4x, and each
    # round is one message per directed neighbor pair (a fixed handful
    # of collective messages rides along in both runs)
    assert exch_unfused == 2 * 16 and exch_fused == 2 * 4
    assert msgs_unfused - msgs_fused == exch_unfused - exch_fused


# --------------------------------------------- checkpoints and faults


def test_fused_checkpoint_resume_bit_identical(tmp_path):
    mesh, parts, force = _problem(2)
    k = 4
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 12.5 * solver.dt  # 13 steps
    u_ref = solver.run(force, t_end, steps_per_exchange=k)

    d = str(tmp_path)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    # poison the state at the end of window [4, 8): the health check
    # trips before that window's checkpoint is written
    plan = FaultPlan([FaultSpec("nan", rank=1, step=7)])
    with pytest.raises(NumericalHealthError):
        solver.run(
            force, t_end, steps_per_exchange=k, checkpoint_dir=d,
            checkpoint_every=4, faults=plan, health_interval=1,
        )
    # only the window-boundary checkpoint exists (step 3, next_k=4)
    assert collective_latest_step(d, 2) == 3

    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    u = solver.run(
        force, t_end, steps_per_exchange=k, checkpoint_dir=d, resume=True
    )
    assert np.array_equal(u, u_ref)


def test_fused_resume_rejects_misaligned_boundary(tmp_path):
    mesh, parts, force = _problem(2)
    d = str(tmp_path)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 12.5 * solver.dt
    # unfused checkpoints every 5 steps -> latest resume index 10, not
    # a k=4 exchange boundary
    solver.run(force, t_end, checkpoint_dir=d, checkpoint_every=5)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    with pytest.raises(ValueError, match="exchange boundary"):
        solver.run(
            force, t_end, steps_per_exchange=4, checkpoint_dir=d,
            resume=True,
        )


def test_fused_proc_kill_recovery_bit_identical(tmp_path):
    mesh, parts, force = _problem(2)
    k = 4
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 15.5 * solver.dt  # 16 steps
    u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        # kill rank 1 at step 6 — mid-window [4, 8), after the window's
        # exchange already happened: recovery must rewind to the step-3
        # boundary checkpoint, not to step 6
        plan = FaultPlan([FaultSpec("kill", rank=1, step=6)])
        u = solver.run(
            force, t_end, steps_per_exchange=k, checkpoint_dir=d,
            checkpoint_every=4, faults=plan,
            retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns == 1
        assert np.array_equal(u, u_ref)


def test_env_fused_fault_matrix(tmp_path):
    """CI fused fault cell: ``REPRO_FAULTS`` x ProcWorld x
    ``steps_per_exchange=4`` must recover to the unfaulted bits."""
    k = 4
    plan = FaultPlan.from_env() or FaultPlan.parse("kill:rank=1,step=6")
    transport = os.environ.get("REPRO_FAULT_TRANSPORT", "proc")
    if transport != "proc":
        pytest.skip("fused fault matrix cell targets the process "
                    "transport")
    kinds = {s.kind for s in plan.specs}
    mesh, parts, force = _problem(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 15.5 * solver.dt
    u_ref = solver.run(force, t_end)
    if "nan" in kinds:
        # state poisoning happens at window boundaries; snap each NaN
        # spec to the end of its window and mirror it onto every rank
        # so no peer blocks on a failed one
        plan = FaultPlan(
            [
                FaultSpec("nan", rank=r, step=min(
                    (s.step // k + 1) * k - 1, 15))
                for s in plan.specs
                for r in range(2)
            ]
        )
    with ProcWorld(2, timeout=5.0) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        u = solver.run(
            force, t_end, steps_per_exchange=k,
            checkpoint_dir=str(tmp_path), checkpoint_every=4,
            faults=plan, health_interval=1,
            retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns >= 1
        assert np.array_equal(u, u_ref)


# ------------------------------------------------- knobs and the model


def test_fused_rejects_callback_and_bad_k():
    mesh, parts, force = _problem(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    with pytest.raises(ValueError, match="steps_per_exchange"):
        solver.run(force, 4.5 * solver.dt, steps_per_exchange=0)
    with pytest.raises(ValueError, match="callback"):
        solver.run(
            force, 4.5 * solver.dt, steps_per_exchange=2,
            callback=lambda k, t, u: None,
        )


def test_choose_steps_per_exchange_latency_tradeoff():
    mesh, parts, _ = _problem(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    dist = solver.dist
    # latency-dominated machine: fusing k steps amortizes alpha+gamma,
    # so a deeper halo wins despite the redundant recompute
    slow_net = MachineModel(
        "slow network", flop_rate=5e9, latency=5e-3,
        bandwidth=1e9, dispatch=5e-3,
    )
    best, times = choose_steps_per_exchange(
        dist, slow_net, candidates=(1, 2, 4)
    )
    assert best > 1
    assert times[best] < times[1]
    # free communication: fusing only adds flops, k=1 must win
    fast_net = MachineModel(
        "fast network", flop_rate=5e9, latency=1e-12, bandwidth=1e15,
    )
    best, times = choose_steps_per_exchange(
        dist, fast_net, candidates=(1, 2, 4)
    )
    assert best == 1
    # candidates past the horizon are dropped; ties break small
    best, times = choose_steps_per_exchange(
        dist, fast_net, candidates=(1, 2, 4, 8), nsteps=3
    )
    assert set(times) == {1, 2}


def test_fused_auto_picks_and_stays_bitwise(tmp_path):
    mesh, parts, force = _problem(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 10.5 * solver.dt
    u_ref = solver.run(force, t_end)

    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    u = solver.run(force, t_end, steps_per_exchange="auto")
    info = solver.last_fused
    assert info["requested"] == "auto"
    assert info["steps_per_exchange"] >= 1
    assert info["model_times"] and 1 in info["model_times"]
    # whatever the model picked, the trajectory is the same bits
    assert np.array_equal(u, u_ref)


def test_fused_lts_falls_back_to_unfused():
    from repro.materials import LayeredMaterial

    # soft basin over stiff bedrock: a genuinely multi-rate LTS plan
    layered = LayeredMaterial(
        [875.0], vs=[200.0, 1600.0], vp=[400.0, 3200.0],
        rho=[2000.0, 2000.0],
    )
    mesh = uniform_hex_mesh(4, L=1000.0)
    parts = (mesh.elem_centers[:, 2] > 500.0).astype(np.int64)
    force = PointForce(mesh.nnode // 2, mesh.nnode)

    solver = DistributedWaveSolver(mesh, layered, parts, SimWorld(2),
                                   lts=8)
    t_end = 16.5 * solver.dt
    u_ref = solver.run(force, t_end)

    solver = DistributedWaveSolver(mesh, layered, parts, SimWorld(2),
                                   lts=8)
    u = solver.run(force, t_end, steps_per_exchange=4)
    # the clustered rates own the exchange cadence: k clamps to 1 and
    # the clustered trajectory is untouched
    assert solver.last_fused["fallback"] == "lts"
    assert solver.last_fused["steps_per_exchange"] == 1
    assert np.array_equal(u, u_ref)
