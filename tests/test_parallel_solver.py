"""Distributed time stepping must reproduce the serial solver."""

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition, uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.parallel import DistributedWaveSolver, SimWorld
from repro.solver import ElasticWaveSolver
from repro.sources import MomentTensorSource
from repro.sources.fault import SourceCollection

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
L = 1000.0


def serial_reference(mesh, tree, forces, t_end):
    """Serial state u^{nsteps}: the callback reports the pre-update
    state, so run one extra step to observe the final state of a
    ``t_end`` distributed run."""
    solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
    nsteps = int(np.ceil(t_end / solver.dt))
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    solver.run(forces, (nsteps + 1) * solver.dt, callback=cb)
    return solver, out["u"]


@pytest.fixture(scope="module")
def problem():
    n = 8
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = extract_mesh(tree, L=L)
    src = MomentTensorSource(
        position=np.array([501.0, 501.0, 501.0]),
        moment=1e12 * np.eye(3),
        T=0.02,
        t0=0.1,
    )
    forces = SourceCollection(mesh, tree, [src])
    serial, u_ref = serial_reference(mesh, tree, forces, 0.3)
    return mesh, tree, forces, serial, u_ref


@pytest.mark.parametrize("nranks", [1, 2, 4, 6])
def test_distributed_matches_serial(problem, nranks):
    mesh, tree, forces, serial, u_ref = problem
    parts = rcb_partition(mesh.elem_centers, nranks)
    world = SimWorld(nranks)
    dist = DistributedWaveSolver(
        mesh, MAT, parts, world, dt=serial.dt
    )
    fbuf = np.zeros((mesh.nnode, 3))
    u = dist.run(lambda t: forces.forces_at(t, fbuf), 0.3)
    # the distributed trajectory IS the serial one (same arithmetic,
    # reordered only by the interface sums)
    np.testing.assert_allclose(u, u_ref, rtol=1e-9, atol=1e-14)


def test_distributed_traffic_scales_with_steps(problem):
    mesh, tree, forces, serial, _ = problem
    parts = rcb_partition(mesh.elem_centers, 4)
    fbuf = np.zeros((mesh.nnode, 3))

    def run_for(t_end):
        world = SimWorld(4)
        dist = DistributedWaveSolver(mesh, MAT, parts, world, dt=serial.dt)
        dist.run(lambda t: forces.forces_at(t, fbuf), t_end)
        return world.total_stats()

    s1 = run_for(0.1)
    s2 = run_for(0.2)
    assert s2.messages_sent > 1.5 * s1.messages_sent
    assert s2.bytes_sent > 1.5 * s1.bytes_sent


def test_rejects_nonconforming_mesh():
    def target(c, s):
        return np.where(np.all(c < 0.5, axis=1), 1 / 16, 1 / 8)

    from repro.octree import balance_octree

    tree = balance_octree(build_adaptive_octree(target, max_level=5))
    mesh = extract_mesh(tree, L=L)
    with pytest.raises(ValueError):
        DistributedWaveSolver(
            mesh, MAT, np.zeros(mesh.nelem, dtype=np.int64), SimWorld(1)
        )
