"""Tests for slip functions, moment tensors, and fault scenarios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sources import (
    FiniteFaultScenario,
    MomentTensorSource,
    double_couple_moment,
    dslip_dT,
    dslip_dt0,
    idealized_northridge,
    idealized_strike_slip,
    nodal_forces_for_point_source,
    slip_function,
    slip_rate,
)


class TestSlipFunction:
    def test_bounds_and_monotone(self):
        t = np.linspace(-1, 10, 500)
        g = slip_function(t, T=1.0, t0=2.0)
        assert np.all(g >= 0) and np.all(g <= 1)
        assert np.all(np.diff(g) >= -1e-15)
        assert g[t <= 1.0].max() == 0.0
        np.testing.assert_allclose(g[t >= 3.0], 1.0)

    def test_continuity_at_knots(self):
        T, t0 = 0.5, 1.4
        for tk in (T, T + t0 / 2, T + t0):
            lo = slip_function(tk - 1e-9, T, t0)
            hi = slip_function(tk + 1e-9, T, t0)
            np.testing.assert_allclose(lo, hi, atol=1e-7)

    def test_rate_is_triangle_with_unit_area(self):
        T, t0 = 1.0, 2.0
        t = np.linspace(0, 5, 100_001)
        v = slip_rate(t, T, t0)
        np.testing.assert_allclose(np.trapezoid(v, t), 1.0, rtol=1e-6)
        np.testing.assert_allclose(v.max(), 2.0 / t0, rtol=1e-3)

    def test_rate_matches_fd_of_g(self):
        T, t0 = 0.7, 1.3
        t = np.linspace(0.0, 3.0, 7)[1:-1] + 0.013
        eps = 1e-6
        fd = (slip_function(t + eps, T, t0) - slip_function(t - eps, T, t0)) / (
            2 * eps
        )
        np.testing.assert_allclose(slip_rate(t, T, t0), fd, atol=1e-6)

    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(0.1, 3.0),
        st.floats(0.2, 3.0),
        st.floats(0.01, 6.0),
    )
    def test_parameter_derivatives_match_fd(self, T, t0, t):
        eps = 1e-6
        # avoid the non-smooth knots
        for knot in (T, T + t0 / 2, T + t0):
            if abs(t - knot) < 1e-3:
                return
        fd_T = (
            slip_function(t, T + eps, t0) - slip_function(t, T - eps, t0)
        ) / (2 * eps)
        np.testing.assert_allclose(dslip_dT(t, T, t0), fd_T, atol=1e-5)
        fd_t0 = (
            slip_function(t, T, t0 + eps) - slip_function(t, T, t0 - eps)
        ) / (2 * eps)
        np.testing.assert_allclose(dslip_dt0(t, T, t0), fd_t0, atol=1e-5)


class TestMomentTensor:
    def test_symmetric_traceless_double_couple(self):
        M = double_couple_moment(30.0, 60.0, 45.0, 1e18)
        np.testing.assert_allclose(M, M.T, atol=1e3)
        np.testing.assert_allclose(np.trace(M), 0.0, atol=1e3)

    def test_magnitude(self):
        M = double_couple_moment(0.0, 90.0, 0.0, 2.0e18)
        # scalar moment = max eigenvalue for a double couple
        w = np.linalg.eigvalsh(M)
        np.testing.assert_allclose(w.max(), 2.0e18, rtol=1e-10)

    def test_vertical_strike_slip_structure(self):
        # strike 90 (fault along x), dip 90, rake 0: M_xy couple
        M = double_couple_moment(90.0, 90.0, 0.0, 1.0)
        assert abs(M[0, 1]) > 0.99
        assert abs(M[0, 0]) < 1e-12 and abs(M[2, 2]) < 1e-12


class TestPointSourceForces:
    def test_forces_sum_to_zero(self):
        """Dislocation forces are self-equilibrating (zero net force)."""
        from repro.mesh import uniform_hex_mesh
        from repro.octree.linear_octree import build_adaptive_octree

        tree = build_adaptive_octree(lambda c, s: np.full(len(c), 0.25), max_level=4)
        mesh = uniform_hex_mesh(4, L=1000.0)
        src = MomentTensorSource(
            position=np.array([510.0, 510.0, 510.0]),
            moment=double_couple_moment(90.0, 90.0, 0.0, 1e15),
            T=0.1,
            t0=0.5,
        )
        nodes, w = nodal_forces_for_point_source(mesh, tree, src)
        np.testing.assert_allclose(w.sum(axis=0), 0.0, atol=1e-3)
        assert np.abs(w).max() > 0

    def test_source_outside_mesh_raises(self):
        from repro.mesh import uniform_hex_mesh
        from repro.octree.linear_octree import build_adaptive_octree

        tree = build_adaptive_octree(lambda c, s: np.full(len(c), 0.25), max_level=4)
        mesh = uniform_hex_mesh(4, L=1000.0)
        src = MomentTensorSource(
            position=np.array([-5.0, 0.0, 0.0]),
            moment=np.eye(3),
            T=0.0,
            t0=1.0,
        )
        with pytest.raises(ValueError):
            nodal_forces_for_point_source(mesh, tree, src)


class TestScenarios:
    def test_northridge_basic(self):
        sc = idealized_northridge(L=80_000.0, n_strike=4, n_dip=3)
        assert sc.n_subfaults == 12
        assert sc.total_moment > 1e18  # a sizeable event
        # rupture delays grow away from the hypocenter
        Ts = np.array([s.T for s in sc.sources])
        # the subfault nearest the hypocenter breaks early
        assert Ts.min() < 1.5
        assert Ts.max() > Ts.min()
        assert sc.duration() > Ts.max()

    def test_northridge_in_box(self):
        sc = idealized_northridge(L=80_000.0)
        for s in sc.sources:
            assert np.all(s.position >= 0)
            assert np.all(s.position[:2] <= 80_000.0)
            assert s.position[2] > 0  # buried

    def test_strike_slip_vertical(self):
        sc = idealized_strike_slip(L=10_000.0, n_strike=4, n_dip=2)
        ys = np.array([s.position[1] for s in sc.sources])
        np.testing.assert_allclose(ys, ys[0])  # vertical plane along x
        for s in sc.sources:
            M = s.moment
            np.testing.assert_allclose(np.trace(M), 0.0, atol=1e-3)

    def test_scaled_fault_shrinks(self):
        a = idealized_northridge(L=80_000.0, scale=1.0)
        b = idealized_northridge(L=80_000.0, scale=0.5)
        assert b.total_moment < a.total_moment
