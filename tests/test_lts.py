"""Clustered local time stepping, end to end.

The guarantees under test (see :mod:`repro.solver.lts` and DESIGN.md):

* planning — power-of-two rate binning, the 2-to-1 neighbor invariant
  after smoothing, hanging-node constraint closures clamped to one
  rate, and the every-node-owned-once level partition;
* ``lts=off`` (and a trivial plan) is **bitwise identical** to the
  global-dt loops on every solver;
* the clustered schedule agrees with the global-dt reference within
  leapfrog accuracy on two-layer soft-over-stiff problems, serial
  scalar, serial elastic, and distributed;
* checkpoints are written only at sync boundaries and resume
  bit-identically, serial and distributed;
* both transports produce the same bits under LTS, ranks exchange
  interface sums only at the interface rate, and a rank killed in the
  middle of a coarse step recovers bit-identically from the last
  collective sync checkpoint.
"""

import os

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial, LayeredMaterial
from repro.mesh import extract_mesh, uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.parallel import DistributedWaveSolver, ProcWorld, SimWorld
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    NumericalHealthError,
    RetryPolicy,
)
from repro.io.seismogram import ReceiverArray
from repro.solver import (
    ElasticWaveSolver,
    RegularGridScalarWave,
    bin_rates,
    build_lts_plan,
    constraint_groups,
    smooth_rates,
)
from repro.solver.checkpoint import CheckpointManager
from repro.solver.lts import interp_theta, node_rates

#: soft basin (layer 0) over stiff bedrock below z = 875 m; the 8x
#: wave-speed ratio pins the global dt 8x below what the basin needs
LAYERED = LayeredMaterial(
    [875.0], vs=[200.0, 1600.0], vp=[400.0, 3200.0], rho=[2000.0, 2000.0]
)


class RickerForce:
    """Picklable vertical point Ricker wavelet (worker processes
    unpickle it by value; the width is chosen per-problem so even the
    coarsest cluster resolves it)."""

    def __init__(self, node: int, nnode: int, t0: float, sig: float):
        self.node = node
        self.nnode = nnode
        self.t0 = t0
        self.sig = sig

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        a = (t - self.t0) / self.sig
        b[self.node, 2] = 1e9 * (1.0 - 2.0 * a * a) * np.exp(-a * a)
        return b


# ------------------------------------------------------------- planning


def test_bin_rates_power_of_two():
    rates = bin_rates([1.0, 1.9, 2.0, 4.0, 100.0], max_rate=8)
    assert rates.tolist() == [1, 1, 2, 4, 8]
    # relative to the minimum: a common safety factor cancels
    assert np.array_equal(
        rates, bin_rates([0.5, 0.95, 1.0, 2.0, 50.0], max_rate=8)
    )


def test_bin_rates_validates_inputs():
    with pytest.raises(ValueError, match="power of two"):
        bin_rates([1.0, 2.0], max_rate=3)
    with pytest.raises(ValueError, match="empty"):
        bin_rates([])


def test_smooth_rates_two_to_one_invariant():
    # a rough random stable-dt field on a 2D grid: after smoothing no
    # element may run at more than twice the rate of any node it touches
    grid = RegularGridScalarWave((16, 12), 1.0, rho=1.0)
    rng = np.random.default_rng(7)
    elem_dt = np.exp(rng.uniform(0.0, 5.0, grid.nelem))
    rates = smooth_rates(grid.conn, bin_rates(elem_dt), grid.nnode)
    nmin = node_rates(grid.conn, rates, grid.nnode)
    assert np.all(rates <= 2 * nmin[grid.conn].min(axis=1))
    # smoothing only ever lowers rates
    assert np.all(rates <= bin_rates(elem_dt))


def test_constraint_groups_connected_components():
    groups = constraint_groups(
        {5: {1: 0.5, 2: 0.5}, 6: {2: 0.5, 3: 0.5}, 9: {7: 1.0}}
    )
    members = sorted(g.tolist() for g in groups)
    assert members == [[1, 2, 3, 5, 6], [7, 9]]


def test_smooth_rates_clamps_groups_to_common_rate():
    grid = RegularGridScalarWave((8, 8), 1.0, rho=1.0)
    elem_dt = np.ones(grid.nelem)
    elem_dt[: grid.nelem // 2] = 16.0
    group = np.array([0, grid.nnode - 1])  # opposite corners
    rates = smooth_rates(
        grid.conn, bin_rates(elem_dt), grid.nnode, groups=[group]
    )
    nmin = node_rates(grid.conn, rates, grid.nnode, groups=[group])
    assert nmin[group[0]] == nmin[group[1]]


def test_plan_levels_partition_nodes():
    grid = RegularGridScalarWave((16, 8), 1.0, rho=1.0)
    elem_dt = np.where(
        grid.elem_centers()[:, 1] > 6.0, 1.0, 8.0
    )
    plan = build_lts_plan(grid.conn, grid.nnode, dt=0.1, elem_dt=elem_dt)
    assert not plan.trivial
    # levels are coarsest-first and every node is owned exactly once
    lv_rates = [lv.rate for lv in plan.levels]
    assert lv_rates == sorted(lv_rates, reverse=True)
    assert sum(len(lv.own_nodes) for lv in plan.levels) == grid.nnode
    assert sum(plan.histogram().values()) == grid.nelem
    assert plan.theoretical_speedup() > 1.0
    # sync boundaries are the multiples of the coarsest rate
    r = plan.max_rate
    assert plan.sync_boundary(0) and plan.sync_boundary(3 * r)
    assert not plan.sync_boundary(r - 1)


def test_trivial_plan_on_uniform_material():
    grid = RegularGridScalarWave((8, 8), 1.0, rho=1.0)
    plan = build_lts_plan(
        grid.conn, grid.nnode, dt=0.1, elem_dt=np.ones(grid.nelem)
    )
    assert plan.trivial
    assert plan.theoretical_speedup() == 1.0


def test_interp_theta_brackets():
    # right after a coarse update theta = 0; at the half substep 1/2
    for r in (1, 2, 4):
        assert interp_theta(0, r) == 0.0
        assert interp_theta(r, r) == 0.5
        assert interp_theta(2 * r, r) == 0.0


# ------------------------------------------------------- scalar solver


def _scalar_two_layer(shape=(64, 32), nsteps=128):
    solver = RegularGridScalarWave(shape, 1.0, rho=1.0)
    v = np.where(solver.elem_centers()[:, 1] > 0.875 * shape[1], 8.0, 1.0)
    mu = v * v
    dt = solver.stable_dt(mu, safety=0.5)
    src = solver.node_index((shape[0] // 2, shape[1] // 4))
    buf = np.zeros(solver.nnode)

    def forcing(k):
        # wide enough that even the coarsest cluster resolves it
        t = k * dt
        a = (t - 0.45 * nsteps * dt) / (0.18 * nsteps * dt)
        buf[src] = dt * dt * (1.0 - 2.0 * a * a) * np.exp(-a * a)
        return buf

    return solver, mu, dt, forcing


def test_scalar_trivial_plan_bitwise():
    solver, _, dt, forcing = _scalar_two_layer()
    mu = np.full(solver.nelem, 4.0)  # uniform -> trivial plan
    a = solver.march(mu, forcing, 128, dt, store=False)
    b = solver.march(mu, forcing, 128, dt, store=False, lts=True)
    assert np.array_equal(a, b)


def test_scalar_lts_matches_global_within_leapfrog_accuracy():
    solver, mu, dt, forcing = _scalar_two_layer()
    plan = solver.lts_plan(mu)
    assert plan.max_rate == 8  # the 8x speed ratio shows up as clusters
    ref = solver.march(mu, forcing, 128, dt, store=False)
    out = solver.march(mu, forcing, 128, dt, store=False, lts=True)
    ref_n = np.linalg.norm(ref[1])
    assert ref_n > 0
    assert np.linalg.norm(out[1] - ref[1]) / ref_n < 0.1


def test_scalar_lts_checkpoint_resume_bitwise(tmp_path):
    solver, mu, dt, forcing = _scalar_two_layer()
    ref = solver.march(mu, forcing, 128, dt, store=False, lts=True)
    mgr = CheckpointManager(str(tmp_path), interval=48)
    full = solver.march(
        mu, forcing, 128, dt, store=False, lts=True, checkpoint=mgr
    )
    assert np.array_equal(full, ref)
    # snapshots land only on sync boundaries (multiples of max_rate)
    assert mgr.steps()
    assert all((s + 1) % 8 == 0 for s in mgr.steps())
    resumed = solver.march(
        mu, forcing, 128, dt, store=False, lts=True,
        checkpoint=mgr, resume=True,
    )
    assert np.array_equal(resumed, ref)


def test_scalar_lts_rejects_history_and_unsynced_nsteps():
    solver, mu, dt, forcing = _scalar_two_layer()
    with pytest.raises(ValueError, match="store"):
        solver.march(mu, forcing, 128, dt, store=True, lts=True)
    plan = solver.lts_plan(mu)
    with pytest.raises(ValueError, match="multiple of the coarsest"):
        solver.march(
            mu, forcing, plan.max_rate * 3 + 1, dt, store=False, lts=plan
        )


def test_scalar_lts_batch_matches_solo():
    solver, mu, dt, forcing = _scalar_two_layer(shape=(32, 16), nsteps=64)
    solo = solver.march(mu, forcing, 64, dt, store=False, lts=True)

    def forcing2(k):
        f = forcing(k)
        return np.stack([f, 0.5 * f], axis=1)

    pair = solver.march(
        mu, forcing2, 64, dt, store=False, lts=True, batch=2
    )
    assert np.array_equal(pair[:, :, 0], solo)


# ------------------------------------------------------ elastic solver


def _elastic_layered(n=8, *, damping_ratio=0.0):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = extract_mesh(tree, L=1000.0)
    solver = ElasticWaveSolver(
        mesh, tree, LAYERED, damping_ratio=damping_ratio
    )
    # shallow source in the soft (coarsest-cluster) basin, receivers
    # right above it: arrivals land well inside the marched window, and
    # the wavelet is wide enough for the rate-8 cluster to resolve
    src = int(
        np.argmin(
            np.linalg.norm(
                mesh.coords - np.array([500.0, 500.0, 125.0]), axis=1
            )
        )
    )
    force = RickerForce(
        src, mesh.nnode, t0=52 * solver.dt, sig=20 * solver.dt
    )
    rec = ReceiverArray(
        mesh, np.array([[500.0, 500.0, 0.0], [375.0, 375.0, 0.0]])
    )
    return mesh, solver, force, rec


def test_elastic_plan_clusters_the_basin():
    _, solver, _, _ = _elastic_layered()
    plan = solver.lts_plan()
    assert plan.max_rate == 8
    hist = plan.histogram()
    # the soft basin (7/8 of the elements) runs at the coarsest rate
    assert hist[8] > sum(n for r, n in hist.items() if r < 8)


def test_elastic_lts_off_bitwise_on_uniform_material():
    n = 4
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = extract_mesh(tree, L=1000.0)
    mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    solver = ElasticWaveSolver(mesh, tree, mat)
    force = RickerForce(
        mesh.nnode // 2, mesh.nnode, t0=10 * solver.dt, sig=4 * solver.dt
    )
    rec = ReceiverArray(mesh, np.array([[250.0, 250.0, 0.0]]))
    t_end = 23.5 * solver.dt
    ref = solver.run(force, t_end, receivers=rec)
    # uniform material -> trivial plan -> the global loop runs, bit
    # for bit, even with lts requested
    out = solver.run(force, t_end, receivers=rec, lts=True)
    assert np.array_equal(out.data, ref.data)


def test_elastic_lts_matches_global_within_leapfrog_accuracy():
    _, solver, force, rec = _elastic_layered()
    nsteps = 128
    t_end = (nsteps - 0.5) * solver.dt
    # displacement records: velocity would add a central-difference
    # penalty over the coarse cluster step on top of the scheme error
    ref = solver.run(force, t_end, receivers=rec, record="displacement")
    out = solver.run(
        force, t_end, receivers=rec, record="displacement", lts=True
    )
    n = min(ref.data.shape[-1], out.data.shape[-1])
    ref_n = np.linalg.norm(ref.data[..., :n])
    assert ref_n > 0
    err = np.linalg.norm(out.data[..., :n] - ref.data[..., :n]) / ref_n
    assert err < 0.1


def test_elastic_lts_checkpoint_resume_bitwise(tmp_path):
    # Rayleigh damping on: the per-level damping matvec cache rides
    # along in the snapshot and must restore bit-identically
    _, solver, force, rec = _elastic_layered(damping_ratio=0.02)
    nsteps = 128
    t_end = (nsteps - 0.5) * solver.dt
    ref = solver.run(force, t_end, receivers=rec, lts=8)
    mgr = CheckpointManager(str(tmp_path), interval=48)
    full = solver.run(
        force, t_end, receivers=rec, lts=8, checkpoint=mgr
    )
    assert np.array_equal(full.data, ref.data)
    assert all((s + 1) % 8 == 0 for s in mgr.steps())
    resumed = solver.run(
        force, t_end, receivers=rec, lts=8, checkpoint=mgr, resume=True
    )
    assert np.array_equal(resumed.data, ref.data)


def test_elastic_lts_batch_matches_solo():
    mesh, solver, force, rec = _elastic_layered()
    force2 = RickerForce(
        mesh.nnode // 3, mesh.nnode, t0=52 * solver.dt, sig=20 * solver.dt
    )
    t_end = 63.5 * solver.dt
    solo = [
        solver.run(f, t_end, receivers=rec, lts=True)
        for f in (force, force2)
    ]
    batch = solver.run_batch([force, force2], t_end, receivers=rec, lts=True)
    for got, want in zip(batch, solo):
        assert np.array_equal(got.data, want.data)


# --------------------------------------------------------- distributed


def _dist_lts_problem():
    """Two ranks split across the soft basin: the cut sits inside the
    coarse region, so ranks exchange only at the interface rate."""
    mesh = uniform_hex_mesh(4, L=1000.0)
    parts = (mesh.elem_centers[:, 2] > 500.0).astype(np.int64)
    src = int(
        np.argmin(
            np.linalg.norm(
                mesh.coords - np.array([500.0, 500.0, 250.0]), axis=1
            )
        )
    )
    return mesh, parts, src


def _dist_force(mesh, src, dt):
    return RickerForce(src, mesh.nnode, t0=20 * dt, sig=8 * dt)


def test_dist_lts_sim_vs_proc_bitwise():
    mesh, parts, src = _dist_lts_problem()
    sim = SimWorld(2)
    solver = DistributedWaveSolver(mesh, LAYERED, parts, sim, lts=8)
    force = _dist_force(mesh, src, solver.dt)
    t_end = 47.5 * solver.dt
    u_sim = solver.run(force, t_end)
    stats_sim = [s.as_tuple() for s in sim.stats]
    with ProcWorld(2) as proc:
        solver = DistributedWaveSolver(mesh, LAYERED, parts, proc, lts=8)
        u_proc = solver.run(force, t_end)
        stats_proc = [s.as_tuple() for s in proc.stats]
    assert np.abs(u_sim).max() > 0
    assert np.array_equal(u_sim, u_proc)
    assert stats_sim == stats_proc


def test_dist_lts_exchanges_only_at_interface_rate():
    mesh, parts, src = _dist_lts_problem()
    sim_g = SimWorld(2)
    solver = DistributedWaveSolver(mesh, LAYERED, parts, sim_g)
    force = _dist_force(mesh, src, solver.dt)
    t_end = 47.5 * solver.dt
    u_global = solver.run(force, t_end)
    msgs_global = sum(s.as_tuple()[0] for s in sim_g.stats)

    sim_l = SimWorld(2)
    solver = DistributedWaveSolver(mesh, LAYERED, parts, sim_l, lts=8)
    u_lts = solver.run(force, t_end)
    msgs_lts = sum(s.as_tuple()[0] for s in sim_l.stats)

    # the cut lies in rate >= 2 territory: at most half the handoffs
    # (plus the fixed setup messages) of the per-step global loop
    assert msgs_lts < msgs_global
    assert msgs_lts <= msgs_global // 2 + 8
    # and the clustered trajectory still tracks the global-dt one
    ref_n = np.linalg.norm(u_global)
    assert ref_n > 0
    assert np.linalg.norm(u_lts - u_global) / ref_n < 0.2


def test_dist_lts_resume_bit_identical(tmp_path):
    mesh, parts, src = _dist_lts_problem()
    solver = DistributedWaveSolver(mesh, LAYERED, parts, SimWorld(2), lts=8)
    force = _dist_force(mesh, src, solver.dt)
    t_end = 47.5 * solver.dt
    u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    solver = DistributedWaveSolver(mesh, LAYERED, parts, SimWorld(2), lts=8)
    u_full = solver.run(
        force, t_end, checkpoint_dir=d, checkpoint_every=20
    )
    assert np.array_equal(u_full, u_ref)
    solver = DistributedWaveSolver(mesh, LAYERED, parts, SimWorld(2), lts=8)
    u = solver.run(force, t_end, checkpoint_dir=d, resume=True)
    assert np.array_equal(u, u_ref)


def test_proc_lts_kill_mid_coarse_step_recovers_bitwise(tmp_path):
    mesh, parts, src = _dist_lts_problem()
    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, LAYERED, parts, clean, lts=8)
        force = _dist_force(mesh, src, solver.dt)
        t_end = 47.5 * solver.dt
        u_ref = solver.run(force, t_end)

    # step 18 is not a sync boundary: the kill lands in the middle of a
    # coarse step, and recovery rewinds to the last sync checkpoint
    plan = FaultPlan([FaultSpec("kill", rank=1, step=18)])
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, LAYERED, parts, world, lts=8)
        u = solver.run(
            force, t_end, checkpoint_dir=str(tmp_path), checkpoint_every=8,
            faults=plan, retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns == 1
        assert np.array_equal(u, u_ref)


# ------------------------------------------ CI fault-injection matrix


def test_env_fault_matrix_lts(tmp_path):
    """The ``lts=on`` cell of the CI fault matrix: ``REPRO_FAULTS``
    picks the fault, ``REPRO_FAULT_TRANSPORT`` the transport.  Defaults
    exercise a mid-coarse-step kill on the process transport."""
    plan = FaultPlan.from_env() or FaultPlan.parse("kill:rank=1,step=18")
    transport = os.environ.get("REPRO_FAULT_TRANSPORT", "proc")
    kinds = {s.kind for s in plan.specs}
    mesh, parts, src = _dist_lts_problem()

    if transport == "sim":
        if kinds - {"nan"}:
            pytest.skip("kill/channel faults need the process transport")
        solver = DistributedWaveSolver(
            mesh, LAYERED, parts, SimWorld(2), lts=8
        )
        force = _dist_force(mesh, src, solver.dt)
        with pytest.raises(NumericalHealthError):
            solver.run(
                force, 47.5 * solver.dt, faults=plan, health_interval=1
            )
        return

    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, LAYERED, parts, clean, lts=8)
        force = _dist_force(mesh, src, solver.dt)
        t_end = 47.5 * solver.dt
        u_ref = solver.run(force, t_end)
    if "nan" in kinds:
        # mirror NaN faults onto every rank so no peer blocks on a
        # failed one (they only fire at shared sync boundaries)
        plan = FaultPlan(
            [
                FaultSpec("nan", rank=r, step=s.step)
                for s in plan.specs
                for r in range(2)
            ]
        )
    with ProcWorld(2, timeout=5.0) as world:
        solver = DistributedWaveSolver(mesh, LAYERED, parts, world, lts=8)
        u = solver.run(
            force, t_end, checkpoint_dir=str(tmp_path), checkpoint_every=8,
            faults=plan, health_interval=1, retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns >= 1
        assert np.array_equal(u, u_ref)
