"""Tests for the 3D hexahedral elastic solver and the tet baseline."""

import numpy as np
import pytest

from repro.io.seismogram import ReceiverArray
from repro.io.snapshots import SnapshotRecorder
from repro.materials import HomogeneousMaterial
from repro.mesh import build_constraints, extract_mesh, uniform_hex_mesh
from repro.octree import balance_octree, build_adaptive_octree
from repro.solver import ElasticWaveSolver, TetWaveSolver
from repro.sources import MomentTensorSource, double_couple_moment
from repro.sources.fault import SourceCollection


L = 1000.0
# vp != 2 vs so the Stacey c1 coefficient is nonzero
MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


def make_uniform(n=8):
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=int(np.log2(n)) + 1
    )
    mesh = extract_mesh(tree, L=L)
    return tree, mesh


def make_refined():
    def target(c, s):
        return np.where(np.all(c < 0.5, axis=1), 1.0 / 16, 1.0 / 8)

    tree = balance_octree(build_adaptive_octree(target, max_level=5))
    mesh = extract_mesh(tree, L=L)
    return tree, mesh


def center_source(t0=0.05, rise=0.15, moment=1e12, kind="dc"):
    if kind == "dc":
        M = double_couple_moment(90.0, 90.0, 0.0, moment)
    else:  # explosion
        M = moment * np.eye(3)
    return MomentTensorSource(
        position=np.array([0.5 * L + 1.0, 0.5 * L + 1.0, 0.5 * L + 1.0]),
        moment=M,
        T=t0,
        t0=rise,
    )


class TestElasticSolver:
    def test_zero_source_stays_zero(self):
        tree, mesh = make_uniform(4)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        out = {}
        solver.run(
            lambda t, buf: None,
            10 * solver.dt,
            callback=lambda k, t, u: out.__setitem__("u", u),
        )
        assert np.all(out["u"] == 0)

    def test_dt_from_cfl(self):
        tree, mesh = make_uniform(8)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        h = L / 8
        assert 0 < solver.dt <= h / 2000.0

    def test_wave_reaches_receiver_at_right_time(self):
        """P-wave arrival at a known distance: travel time = d / vp."""
        tree, mesh = make_uniform(8)
        solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
        src = center_source(t0=0.02, rise=0.06, kind="explosion")
        forces = SourceCollection(mesh, tree, [src])
        rec = ReceiverArray(mesh, np.array([[500.0, 500.0, 0.0]]))  # surface
        seis = solver.run(forces, 0.6, receivers=rec)
        v = np.linalg.norm(seis.data[0], axis=0)
        # distance 500 m, vp 1800 -> arrival ~0.30 s after onset 0.02
        t_arr = seis.times[np.argmax(v > 0.05 * v.max())]
        assert 0.15 < t_arr < 0.45

    def test_stability_long_run(self):
        tree, mesh = make_uniform(4)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        forces = SourceCollection(mesh, tree, [center_source()])
        peak = {}

        def cb(k, t, u):
            peak["v"] = max(peak.get("v", 0.0), float(np.abs(u).max()))

        solver.run(forces, 2.0, callback=cb)
        assert np.isfinite(peak["v"])
        assert peak["v"] < 1e3  # no blowup

    def test_stability_with_hanging_nodes(self):
        tree, mesh = make_refined()
        solver = ElasticWaveSolver(mesh, tree, MAT)
        assert solver.constraints.n_hanging > 0
        forces = SourceCollection(
            mesh, tree, [center_source(moment=1e12)]
        )
        last = {}
        solver.run(forces, 1.0, callback=lambda k, t, u: last.__setitem__("u", u))
        assert np.isfinite(last["u"]).all()
        assert np.abs(last["u"]).max() < 1e3

    def test_hanging_interface_continuity(self):
        """During propagation the hanging values equal their constraint
        interpolation (u = B ubar holds by construction each step)."""
        tree, mesh = make_refined()
        info = build_constraints(tree, mesh)
        solver = ElasticWaveSolver(mesh, tree, MAT, constraints=info)
        forces = SourceCollection(mesh, tree, [center_source()])
        checks = []

        def cb(k, t, u):
            if k % 20 == 0 and np.abs(u).max() > 0:
                ubar = u[info.independent]
                checks.append(np.abs(info.B @ ubar - u).max() <= 1e-12)

        solver.run(forces, 0.5, callback=cb)
        assert checks and all(checks)

    @staticmethod
    def _velocity_decay(solver, forces, t_end=2.5):
        """Final/max ratio of the per-step increment norm.  (The
        dislocation leaves a permanent static field, so the displacement
        norm itself never vanishes — physics, not leakage.)"""
        prev = {"u": None}
        vn = []

        def cb(k, t, u):
            if prev["u"] is not None:
                vn.append(np.linalg.norm(u - prev["u"]))
            prev["u"] = u.copy()

        solver.run(forces, t_end, callback=cb)
        vn = np.array(vn)
        return vn[-1] / vn.max()

    def test_absorbing_boundary_drains_energy(self):
        tree, mesh = make_uniform(8)
        solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
        src = center_source(t0=0.02, rise=0.08, kind="explosion")
        forces = SourceCollection(mesh, tree, [src])
        assert self._velocity_decay(solver, forces) < 0.6

    def test_stacey_c1_stable_and_absorbing(self):
        tree, mesh = make_uniform(8)
        solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=True)
        assert solver.K_AB.nnz > 0
        src = center_source(t0=0.02, rise=0.08, kind="explosion")
        forces = SourceCollection(mesh, tree, [src])
        ratio = self._velocity_decay(solver, forces)
        assert np.isfinite(ratio)
        assert ratio < 0.6

    def test_rayleigh_damping_reduces_amplitude(self):
        tree, mesh = make_uniform(8)
        src = center_source(kind="dc")
        peaks = {}
        for name, xi in (("undamped", 0.0), ("damped", 0.1)):
            solver = ElasticWaveSolver(
                mesh, tree, MAT, damping_ratio=xi, damping_band=(0.5, 5.0)
            )
            forces = SourceCollection(mesh, tree, [src])
            rec = ReceiverArray(mesh, np.array([[500.0, 500.0, 0.0]]))
            seis = solver.run(forces, 0.8, receivers=rec)
            peaks[name] = np.abs(seis.data).max()
        assert peaks["damped"] < 0.9 * peaks["undamped"]

    def test_snapshot_recorder(self):
        tree, mesh = make_uniform(4)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        forces = SourceCollection(mesh, tree, [center_source()])
        surf = mesh.surface_nodes(2, 0)
        rec = SnapshotRecorder(surf, every=3)
        solver.run(forces, 0.4, snapshots=rec)
        frames = rec.as_array()
        assert frames.shape[1] == len(surf)
        assert frames.shape[0] >= 3
        assert frames.max() > 0

    def test_flop_accounting(self):
        tree, mesh = make_uniform(4)
        solver = ElasticWaveSolver(mesh, tree, MAT)
        solver.run(lambda t, buf: None, 10 * solver.dt)
        assert solver.flops.total > 0


class TestTetBaseline:
    def test_tet_runs_and_agrees_with_hex_at_low_frequency(self):
        """The paper's Figure 2.4 logic: both codes agree once both
        resolve the wavefield (here same mesh, low-passed)."""
        tree, mesh = make_uniform(8)
        src = center_source(t0=0.1, rise=0.5, kind="explosion")
        forces = SourceCollection(mesh, tree, [src])
        rec_pos = np.array([[500.0, 500.0, 0.0]])

        hexs = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
        rec1 = ReceiverArray(mesh, rec_pos)
        s_hex = hexs.run(forces, 1.5, receivers=rec1)

        tets = TetWaveSolver(mesh, MAT, dt=hexs.dt)
        rec2 = ReceiverArray(mesh, rec_pos)
        s_tet = tets.run(forces, 1.5, receivers=rec2)

        def corr(fc):
            a = s_hex.lowpassed(fc).data
            b = s_tet.lowpassed(fc).data
            return np.corrcoef(a.ravel(), b.ravel())[0, 1]

        # agreement within the resolved band, divergence above it —
        # the behaviour Figure 2.4 reports
        assert corr(0.8) > 0.9
        assert corr(3.0) < corr(0.8) - 0.3

    def test_tet_memory_overhead(self):
        """Paper: the hexahedral code needs ~an order of magnitude less
        memory than the (grid-point-based) tetrahedral code."""
        tree, mesh = make_uniform(8)
        hexs = ElasticWaveSolver(mesh, tree, MAT)
        tets = TetWaveSolver(mesh, MAT)
        ratio = tets.memory_bytes() / hexs.memory_bytes()
        assert ratio > 4.0

    def test_tet_stability(self):
        tree, mesh = make_uniform(4)
        tets = TetWaveSolver(mesh, MAT)
        forces = SourceCollection(mesh, tree, [center_source()])
        rec = ReceiverArray(mesh, np.array([[500.0, 500.0, 0.0]]))
        seis = tets.run(forces, 1.0, receivers=rec)
        assert np.isfinite(seis.data).all()
