"""Tests for the alternating joint (blind-deconvolution) inversion."""

import numpy as np
import pytest

from repro.inverse import (
    FaultLineSource2D,
    MaterialGrid,
    joint_invert,
)
from repro.inverse.fault_source import SourceParams
from repro.solver import RegularGridScalarWave


@pytest.fixture(scope="module")
def joint_setup():
    nx, nz = 24, 12
    h = 1.0 / 3.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1.0)
    grid = MaterialGrid((6, 3), (nx * h, nz * h))
    m_true = grid.sample(lambda p: (1.0 + 0.7 * (p[:, 1] > 2.0)) ** 2)
    fault = FaultLineSource2D(solver, ix=nx // 2, jz=range(3, 9))
    p_true = fault.hypocentral_params(
        hypo_j=6, rupture_velocity=2.0, u0=1.0, t0=0.5
    )
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = int(6.0 / dt)
    u = solver.march(
        mu_e, fault.forcing(mu_e, p_true, dt), nsteps, dt, store=True
    )
    rec = solver.surface_nodes()
    return solver, grid, fault, rec, u[:, rec], dt, nsteps, m_true, p_true


def test_joint_inversion_reduces_misfit_monotonically(joint_setup):
    solver, grid, fault, rec, data, dt, nsteps, m_true, p_true = joint_setup
    m0 = np.full(grid.n, float(np.mean(m_true)))
    p0 = SourceParams(
        u0=np.full(fault.ns, 0.8),
        t0=np.full(fault.ns, 0.7),
        T=p_true.T + 0.1,
    )
    res = joint_invert(
        solver, grid, fault, rec, data, dt, nsteps, m0, p0,
        outer_iterations=3, newton_per_block=4, cg_maxiter=15,
    )
    Js = [h["J_data"] for h in res.history]
    assert len(Js) == 6
    # each half-step cannot increase the data misfit (warm-started GN)
    assert all(b <= a * 1.001 for a, b in zip(Js, Js[1:]))
    assert Js[-1] < 0.1 * Js[0]


def test_joint_inversion_recovers_both_unknowns(joint_setup):
    solver, grid, fault, rec, data, dt, nsteps, m_true, p_true = joint_setup
    m0 = np.full(grid.n, float(np.mean(m_true)))
    p0 = SourceParams(
        u0=np.full(fault.ns, 0.8),
        t0=np.full(fault.ns, 0.7),
        T=p_true.T + 0.1,
    )
    res = joint_invert(
        solver, grid, fault, rec, data, dt, nsteps, m0, p0,
        outer_iterations=4, newton_per_block=5, cg_maxiter=20,
    )
    m_err = np.linalg.norm(res.m - m_true) / np.linalg.norm(m_true)
    m0_err = np.linalg.norm(m0 - m_true) / np.linalg.norm(m_true)
    assert m_err < 0.7 * m0_err
    # source recovered up to the inherent material/source trade-off —
    # blind deconvolution is non-unique (the paper: "even more
    # challenging"), so tolerances are looser than for Fig 3.3
    assert np.abs(res.p.u0 - p_true.u0).max() < 0.4
    assert np.abs(res.p.T - p_true.T).max() < 0.45
