"""Fault tolerance: crash-safe checkpoint/restart, worker failure
recovery, and the deterministic fault-injection harness.

The guarantees under test:

* durable checkpoints survive corruption (CRC-validated, atomic
  write-rename, fall back to the previous valid file);
* every resumable loop (serial elastic, scalar march, distributed
  solver on both transports, Gauss-Newton outer iterations) continues
  **bit-identically** from its latest checkpoint;
* the process transport detects dead / hung / erroring ranks, tears the
  pool down without leaking ``/dev/shm`` segments, and the distributed
  solver recovers by respawning and rewinding to the last collective
  checkpoint;
* injected faults (kill, corrupt, NaN) are deterministic, keyed on the
  recovery attempt, and surface as structured errors naming where the
  run went bad.
"""

import os
import time

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition, uniform_hex_mesh
from repro.octree import build_adaptive_octree
from repro.parallel import (
    DistributedWaveSolver,
    ProcWorld,
    SimWorld,
    TransportCorruption,
    WorkerFailure,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    NumericalHealthError,
    RetryPolicy,
    check_finite,
    should_check,
    validate_cfl,
)
from repro.solver import ElasticWaveSolver, RegularGridScalarWave
from repro.solver.checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    checkpoint_schedule,
    collective_latest_step,
    load_checkpoint,
    save_checkpoint,
)

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


class PointForce:
    """Picklable point force (worker processes unpickle it by value)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.02) / 0.008) ** 2))
        return b


class Interrupt(Exception):
    """Simulated crash raised from inside a run's callback."""


# ------------------------------------------------ checkpoint format


def test_run_checkpoint_roundtrip(tmp_path):
    path = str(tmp_path / "a.ckpt")
    arrays = {
        "u": np.arange(12, dtype=float).reshape(4, 3),
        "mask": np.array([1, 0, 1], dtype=np.int64),
    }
    meta = {"next_k": 7, "note": "hello"}
    nbytes = save_checkpoint(path, 6, arrays, meta)
    assert nbytes == os.path.getsize(path)
    ck = load_checkpoint(path)
    assert ck.step == 6
    assert ck.meta == meta
    assert ck.arrays["u"].dtype == np.float64
    np.testing.assert_array_equal(ck.arrays["u"], arrays["u"])
    np.testing.assert_array_equal(ck.arrays["mask"], arrays["mask"])
    # no stray temp file from the atomic write-rename
    assert not os.path.exists(path + ".tmp")


def test_checkpoint_rejects_corruption(tmp_path):
    path = str(tmp_path / "a.ckpt")
    save_checkpoint(path, 3, {"u": np.ones(8)})
    blob = bytearray(open(path, "rb").read())
    # flip a payload byte -> CRC mismatch
    flipped = bytearray(blob)
    flipped[-5] ^= 0xFF
    open(path, "wb").write(bytes(flipped))
    with pytest.raises(CheckpointCorruptError, match="CRC32"):
        load_checkpoint(path)
    # truncate mid-payload
    open(path, "wb").write(bytes(blob[:-16]))
    with pytest.raises(CheckpointCorruptError, match="truncated"):
        load_checkpoint(path)
    # wrong magic
    open(path, "wb").write(b"NOTACKPT" + bytes(blob[8:]))
    with pytest.raises(CheckpointCorruptError, match="magic"):
        load_checkpoint(path)
    # missing file
    with pytest.raises(CheckpointCorruptError, match="unreadable"):
        load_checkpoint(str(tmp_path / "missing.ckpt"))


def test_manager_prunes_and_skips_corrupt_latest(tmp_path):
    mgr = CheckpointManager(str(tmp_path), interval=5, keep=3)
    assert [k for k in range(20) if mgr.due(k)] == [4, 9, 14, 19]
    for step in (4, 9, 14, 19):
        mgr.save(step, {"u": np.full(4, float(step))}, {"next_k": step + 1})
    # keep=3: the oldest file is pruned
    assert mgr.steps() == [9, 14, 19]
    # corrupt the newest -> latest() falls back to the previous one
    blob = bytearray(open(mgr.path_for(19), "rb").read())
    blob[-1] ^= 0xFF
    open(mgr.path_for(19), "wb").write(bytes(blob))
    ck = mgr.latest()
    assert ck.step == 14
    assert ck.arrays["u"][0] == 14.0
    assert mgr.valid_steps() == [9, 14]


def test_collective_latest_step_intersects_ranks(tmp_path):
    d = str(tmp_path)
    for r, steps in [(0, (4, 9, 14)), (1, (4, 9))]:
        mgr = CheckpointManager(d, prefix=f"rank{r}")
        for s in steps:
            mgr.save(s, {"u": np.zeros(2)}, {"next_k": s + 1})
    # rank 1 never reached 14 -> the collective restart point is 9
    assert collective_latest_step(d, 2) == 9
    # a corrupt rank-1 file drops that step from the intersection
    blob = bytearray(open(os.path.join(d, "rank1_0000000009.ckpt"), "rb").read())
    blob[-1] ^= 0xFF
    open(os.path.join(d, "rank1_0000000009.ckpt"), "wb").write(bytes(blob))
    assert collective_latest_step(d, 2) == 4
    # a rank with no checkpoints at all -> no collective restart point
    assert collective_latest_step(d, 3) is None


def test_checkpoint_schedule_spends_spare_slot_on_final_pair():
    # the ceil-stride for (9, 4) places only 3 snapshots; the spare
    # slot buys the final restart pair at nsteps - 1
    assert checkpoint_schedule(9, 4) == [0, 3, 6, 8]
    # exact division uses every slot: no spare to spend
    assert checkpoint_schedule(100, 4) == [0, 25, 50, 75]
    # the budget is never exceeded and entries never pass nsteps - 1
    for nsteps, slots in [(9, 4), (100, 8), (7, 3), (10, 4)]:
        sched = checkpoint_schedule(nsteps, slots)
        assert len(sched) <= slots
        assert all(s <= nsteps - 1 for s in sched)
        assert sched == sorted(set(sched))


# ------------------------------------------------ fault-plan grammar


def test_fault_plan_parse_grammar():
    plan = FaultPlan.parse("kill:rank=1,step=40;corrupt:rank=0,step=3,attempt=1")
    assert [s.kind for s in plan.specs] == ["kill", "corrupt"]
    assert plan.specs[0].rank == 1 and plan.specs[0].step == 40
    assert plan.specs[1].attempt == 1
    # defaults: rank 0, attempt 0, any dest
    one = FaultPlan.parse("nan:step=5").specs[0]
    assert one.rank == 0 and one.attempt == 0 and one.dest is None
    assert FaultPlan.parse("delay:step=2,seconds=0.25").specs[0].seconds == 0.25
    assert not FaultPlan.parse("")
    with pytest.raises(ValueError):
        FaultPlan.parse("explode:step=1")
    with pytest.raises(ValueError):
        FaultPlan.parse("kill:rank")
    with pytest.raises(ValueError):
        FaultPlan.parse("kill:when=3")


def test_fault_plan_env_and_attempt_keying(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "nan:rank=2,step=7")
    plan = FaultPlan.from_env()
    assert plan.specs[0].rank == 2
    # attempt keying: the fault fires on attempt 0 only; the retried
    # plan (attempt 1) leaves the state alone
    state = np.zeros(4)
    plan.poison_state(2, 7, state)
    assert np.isnan(state[0])
    state = np.zeros(4)
    plan.retried().poison_state(2, 7, state)
    assert not np.isnan(state).any()
    assert FaultPlan.parse("corrupt:step=1").wants_crc()
    assert not FaultPlan.parse("kill:step=1").wants_crc()


# ------------------------------------------------ health guards


def test_check_finite_structured_error():
    check_finite(np.ones(5))  # finite: no raise
    bad = np.ones((3, 2))
    bad[1, 0] = np.inf
    with pytest.raises(NumericalHealthError) as ei:
        check_finite(bad, step=12, rank=3, field="u")
    assert ei.value.step == 12 and ei.value.rank == 3
    assert "step 12" in str(ei.value) and "rank 3" in str(ei.value)


def test_should_check_cadence():
    # every `interval` steps plus always the final step
    hits = [k for k in range(10) if should_check(k, 10, 4)]
    assert hits == [3, 7, 9]
    assert not any(should_check(k, 10, 0) for k in range(10))
    assert should_check(9, 10, 100)  # final step even with huge interval


def test_validate_cfl_rejects_unstable_dt():
    h = np.full(4, 100.0)
    vp = np.full(4, 1800.0)
    validate_cfl(0.01, h, vp)  # comfortably stable
    with pytest.raises(NumericalHealthError, match="CFL"):
        validate_cfl(1.0, h, vp)


def test_pcg_divergence_safeguard_returns_finite_direction():
    from repro.inverse.gauss_newton import _pcg

    g = np.array([1.0, -2.0, 0.5])
    d, iters = _pcg(
        lambda p: np.full_like(p, np.nan), g, tol=0.1, maxiter=10,
        precond=None,
    )
    assert np.all(np.isfinite(d))
    assert d @ g < 0  # still a descent direction
    assert iters == 1  # bailed out on the first poisoned product


# ------------------------------------------------ serial resume


def _small_elastic():
    n = 4
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=2
    )
    mesh = extract_mesh(tree, L=1000.0)
    solver = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
    return mesh, solver


def test_serial_elastic_resume_bit_identical(tmp_path):
    from repro.io.seismogram import ReceiverArray

    mesh, solver = _small_elastic()
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    rec = ReceiverArray(
        mesh, np.array([[250.0, 250.0, 0.0], [750.0, 500.0, 0.0]])
    )
    nsteps = 20
    t_end = (nsteps - 0.5) * solver.dt
    ref = solver.run(force, t_end, receivers=rec)

    mgr = CheckpointManager(str(tmp_path), interval=5)

    def crash(k, t, u):
        if k == 12:
            raise Interrupt

    with pytest.raises(Interrupt):
        solver.run(force, t_end, receivers=rec, checkpoint=mgr, callback=crash)
    # the crash at step 12 left checkpoints through step 9
    assert mgr.latest().step == 9
    seis = solver.run(force, t_end, receivers=rec, checkpoint=mgr, resume=True)
    assert np.array_equal(seis.data, ref.data)


def test_serial_nan_injection_names_step(tmp_path):
    _, solver = _small_elastic()
    force = PointForce(0, solver.nnode)
    plan = FaultPlan([FaultSpec("nan", rank=0, step=7)])
    with pytest.raises(NumericalHealthError) as ei:
        solver.run(
            force, 14.5 * solver.dt, faults=plan, health_interval=1
        )
    assert ei.value.step == 7


def test_scalar_march_resume_bit_identical(tmp_path):
    solver = RegularGridScalarWave((8, 4), 100.0, rho=1000.0)
    mu = np.full(solver.nelem, 2.0e9)
    dt = solver.stable_dt(mu)
    nsteps = 12
    f0 = np.zeros(solver.nnode)
    f0[solver.nnode // 2] = 1e6

    def forcing(k):
        return f0 if k < 3 else None

    ref = solver.march(mu, forcing, nsteps, dt, store=True)
    mgr = CheckpointManager(str(tmp_path), interval=4)

    def crash(k, x):
        if k == 10:
            raise Interrupt

    with pytest.raises(Interrupt):
        solver.march(
            mu, forcing, nsteps, dt, store=True, on_step=crash,
            checkpoint=mgr,
        )
    hist = solver.march(
        mu, forcing, nsteps, dt, store=True, checkpoint=mgr, resume=True
    )
    assert np.array_equal(hist, ref)


def test_scalar_march_nan_injection():
    solver = RegularGridScalarWave((8, 4), 100.0, rho=1000.0)
    mu = np.full(solver.nelem, 2.0e9)
    dt = solver.stable_dt(mu)
    plan = FaultPlan.parse("nan:step=5")
    with pytest.raises(NumericalHealthError) as ei:
        solver.march(
            mu, lambda k: None, 10, dt, faults=plan, health_interval=1
        )
    assert ei.value.step == 5 and ei.value.field == "x"


# ------------------------------------------------ Gauss-Newton resume


def _tiny_inverse_problem():
    from repro.inverse import (
        FaultLineSource2D,
        MaterialGrid,
        ScalarWaveInverseProblem,
        Shot,
    )

    nx, nz = 16, 8
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))
    m_true = grid.sample(lambda p: 2.0e9 + 1.5e9 * (p[:, 1] > 400.0))
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = 40
    shots = []
    for ix, hj in [(nx // 2, 4), (nx // 4, 3)]:
        fault = FaultLineSource2D(solver, ix=ix, jz=range(2, 6))
        params = fault.hypocentral_params(
            hypo_j=hj, rupture_velocity=2000.0, u0=1.0, t0=0.3
        )
        u = solver.march(
            mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
        )
        recn = solver.surface_nodes()[::2]
        shots.append(
            Shot(receivers=recn, data=u[:, recn], fault=fault,
                 source_params=params)
        )
    prob = ScalarWaveInverseProblem.multi_shot(solver, grid, shots, dt, nsteps)
    return prob, grid


@pytest.mark.parametrize("with_precond", [False, True])
def test_gauss_newton_resume_bit_identical(tmp_path, with_precond):
    from repro.inverse.gauss_newton import gauss_newton_cg
    from repro.inverse.precond import LBFGSPreconditioner

    prob, grid = _tiny_inverse_problem()
    m0 = np.full(grid.n, 2.5e9)

    def precond():
        return LBFGSPreconditioner(grid.n, memory=5) if with_precond else None

    ref = gauss_newton_cg(
        prob, m0, max_newton=3, cg_maxiter=6, precond=precond()
    )

    # interrupted run: stop after one outer iteration, checkpointing
    # every accepted iterate (including the L-BFGS curvature pairs)
    mgr = CheckpointManager(str(tmp_path), interval=1, prefix="gn")
    gauss_newton_cg(
        prob, m0, max_newton=1, cg_maxiter=6, precond=precond(),
        checkpoint=mgr,
    )
    res = gauss_newton_cg(
        prob, m0, max_newton=3, cg_maxiter=6, precond=precond(),
        checkpoint=mgr, resume=True,
    )
    assert np.array_equal(res.m, ref.m)
    assert res.objective == ref.objective
    # the resumed history continues the interrupted one
    assert [h["J"] for h in res.history] == [h["J"] for h in ref.history]


# ------------------------------------------------ distributed: SimWorld


def _dist_problem():
    mesh = uniform_hex_mesh(4)
    parts = rcb_partition(mesh.elem_centers, 2)
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    return mesh, parts, force


def test_simworld_resume_bit_identical(tmp_path):
    mesh, parts, force = _dist_problem()
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    t_end = 24.5 * solver.dt
    u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))

    def crash(k, t, u):
        if k == 15:
            raise Interrupt

    with pytest.raises(Interrupt):
        solver.run(
            force, t_end, callback=crash, checkpoint_dir=d,
            checkpoint_every=6,
        )
    assert collective_latest_step(d, 2) == 11
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    u = solver.run(force, t_end, checkpoint_dir=d, resume=True)
    assert np.array_equal(u, u_ref)


def test_simworld_nan_injection_names_rank():
    mesh, parts, force = _dist_problem()
    solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
    plan = FaultPlan([FaultSpec("nan", rank=1, step=9)])
    with pytest.raises(NumericalHealthError) as ei:
        solver.run(force, 20.5 * solver.dt, faults=plan, health_interval=1)
    assert ei.value.rank == 1 and ei.value.step == 9


# ------------------------------------------------ distributed: ProcWorld


def test_proc_kill_detected_and_pool_torn_down():
    mesh, parts, force = _dist_problem()
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        plan = FaultPlan([FaultSpec("kill", rank=1, step=6)])
        # no checkpointing -> not recoverable: the failure surfaces
        with pytest.raises(WorkerFailure) as ei:
            solver.run(force, 20.5 * solver.dt, faults=plan)
        assert ei.value.fatal
        assert 1 in ei.value.ranks
        assert "exit code 173" in str(ei.value)
        # the pool is torn down...
        assert world._closed
        assert not any(p.is_alive() for p in world._procs)
        # ...and respawn restores a working pool
        world.respawn()
        assert world.respawns == 1
        u = solver.run(force, 20.5 * solver.dt)
        assert np.all(np.isfinite(u))


def test_proc_kill_recovery_bit_identical(tmp_path):
    mesh, parts, force = _dist_problem()
    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, MAT, parts, clean)
        t_end = 24.5 * solver.dt
        u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        plan = FaultPlan([FaultSpec("kill", rank=1, step=13)])
        u = solver.run(
            force, t_end, checkpoint_dir=d, checkpoint_every=5,
            faults=plan, retry=RetryPolicy(backoff=0.0),
        )
        # rank 1 was killed at step 13, the pool respawned, and the run
        # rewound to the collective checkpoint at step 9 — the recovered
        # trajectory is the uninterrupted one, bit for bit
        assert world.respawns == 1
        assert np.array_equal(u, u_ref)


def test_proc_nan_recovery_bit_identical(tmp_path):
    mesh, parts, force = _dist_problem()
    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, MAT, parts, clean)
        t_end = 24.5 * solver.dt
        u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    # poison both ranks at the same step so neither blocks waiting on a
    # failed peer (program errors leave the pool up; the recovery loop
    # still respawns to flush channel residue)
    plan = FaultPlan(
        [FaultSpec("nan", rank=0, step=12), FaultSpec("nan", rank=1, step=12)]
    )
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        u = solver.run(
            force, t_end, checkpoint_dir=d, checkpoint_every=5,
            faults=plan, health_interval=1, retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns == 1
        assert np.array_equal(u, u_ref)


def test_proc_corrupt_payload_recovery(tmp_path):
    mesh, parts, force = _dist_problem()
    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, MAT, parts, clean)
        t_end = 24.5 * solver.dt
        u_ref = solver.run(force, t_end)

    d = str(tmp_path)
    # rank 0's step-8 boundary send is corrupted after its CRC: rank 1's
    # receive raises TransportCorruption; rank 0 then blocks on its own
    # receive until the (short) channel timeout — both surface in one
    # WorkerFailure and the run recovers from the step-4 checkpoint
    plan = FaultPlan([FaultSpec("corrupt", rank=0, step=8)])
    with ProcWorld(2, timeout=3.0) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        u = solver.run(
            force, t_end, checkpoint_dir=d, checkpoint_every=5,
            faults=plan, retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns >= 1
        assert np.array_equal(u, u_ref)


def test_channel_crc_catches_corruption_directly():
    # unit-level: a corrupted payload fails the receiver's CRC check
    import multiprocessing as mp

    ctx = mp.get_context()
    from repro.parallel.transport import _Channel

    ch = _Channel(ctx, 1024, timeout=1.0)
    ch.send(np.arange(8, dtype=float), tag=5)
    np.testing.assert_array_equal(ch.recv(5), np.arange(8, dtype=float))
    ch.send(np.arange(8, dtype=float), tag=5, corrupt=True)
    with pytest.raises(TransportCorruption):
        ch.recv(5)


def test_no_leaked_shm_segments_after_failure():
    def shm_names():
        try:
            return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
        except FileNotFoundError:  # non-Linux: nothing to check
            return set()

    before = shm_names()
    mesh, parts, force = _dist_problem()
    with ProcWorld(2) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        plan = FaultPlan([FaultSpec("kill", rank=0, step=4)])
        with pytest.raises(WorkerFailure):
            solver.run(force, 20.5 * solver.dt, faults=plan)
    time.sleep(0.1)  # let the resource tracker settle
    leaked = shm_names() - before
    assert not leaked, f"leaked /dev/shm segments: {leaked}"


def test_hang_detection_and_heartbeat():
    with ProcWorld(2, hang_timeout=1.0, heartbeat_interval=0.1) as world:
        # a rank that goes silent past hang_timeout is declared hung
        with pytest.raises(WorkerFailure) as ei:
            world.run_spmd(_sleepy_program, [None, 2.5])
        assert ei.value.fatal and "hung" in str(ei.value)
        # a rank that works just as long but heartbeats stays alive
        world.respawn()
        out = world.run_spmd(_heartbeat_program, [None, 1.5])
        assert out == [0, 1]


def _sleepy_program(comm, payload):
    if payload is not None:
        time.sleep(payload)  # silent: no sends, no heartbeats
    return comm.rank


def _heartbeat_program(comm, payload):
    if payload is not None:
        deadline = time.perf_counter() + payload
        k = 0
        while time.perf_counter() < deadline:
            time.sleep(0.05)
            comm.heartbeat(k)
            k += 1
    return comm.rank


# ------------------------------------------ CI fault-injection matrix


def test_env_fault_matrix(tmp_path):
    """Driven by the CI matrix: ``REPRO_FAULTS`` picks the fault,
    ``REPRO_FAULT_TRANSPORT`` the transport.  Defaults exercise a NaN
    fault on the in-process transport."""
    plan = FaultPlan.from_env() or FaultPlan.parse("nan:rank=0,step=7")
    transport = os.environ.get("REPRO_FAULT_TRANSPORT", "sim")
    kinds = {s.kind for s in plan.specs}
    mesh, parts, force = _dist_problem()

    if transport == "sim":
        if kinds - {"nan"}:
            pytest.skip("kill/channel faults need the process transport")
        solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
        with pytest.raises(NumericalHealthError):
            solver.run(
                force, 20.5 * solver.dt, faults=plan, health_interval=1
            )
        return

    # process transport: every fault kind recovers to the unfaulted bits
    with ProcWorld(2) as clean:
        solver = DistributedWaveSolver(mesh, MAT, parts, clean)
        t_end = 24.5 * solver.dt
        u_ref = solver.run(force, t_end)
    if "nan" in kinds:
        # mirror single-rank NaN faults onto every rank so no peer is
        # left blocking on a failed one (see the recovery test above)
        plan = FaultPlan(
            [
                FaultSpec("nan", rank=r, step=s.step)
                for s in plan.specs
                for r in range(2)
            ]
        )
    with ProcWorld(2, timeout=5.0) as world:
        solver = DistributedWaveSolver(mesh, MAT, parts, world)
        u = solver.run(
            force, t_end, checkpoint_dir=str(tmp_path), checkpoint_every=5,
            faults=plan, health_interval=1, retry=RetryPolicy(backoff=0.0),
        )
        assert world.respawns >= 1
        assert np.array_equal(u, u_ref)
