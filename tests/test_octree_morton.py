"""Unit and property tests for Morton codes and octant arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    MAX_COORD,
    MAX_LEVEL,
    contract3,
    dilate3,
    is_ancestor,
    morton_decode,
    morton_encode,
    octant_anchor,
    octant_children,
    octant_parent,
    octant_size,
    pack_key,
    unpack_key,
)

coords = st.integers(min_value=0, max_value=MAX_COORD - 1)


def test_dilate_contract_known_values():
    assert int(dilate3(np.uint64(0b1))) == 0b1
    assert int(dilate3(np.uint64(0b11))) == 0b1001
    assert int(dilate3(np.uint64(0b101))) == 0b1000001
    assert int(contract3(np.uint64(0b1001))) == 0b11


def test_morton_known_small_values():
    # Morton order of the 8 children of the root, in (x, y, z) order
    assert int(morton_encode(0, 0, 0)) == 0
    assert int(morton_encode(1, 0, 0)) == 1
    assert int(morton_encode(0, 1, 0)) == 2
    assert int(morton_encode(1, 1, 0)) == 3
    assert int(morton_encode(0, 0, 1)) == 4
    assert int(morton_encode(1, 1, 1)) == 7


@given(coords, coords, coords)
def test_morton_roundtrip(x, y, z):
    code = morton_encode(x, y, z)
    xx, yy, zz = morton_decode(code)
    assert (int(xx), int(yy), int(zz)) == (x, y, z)


def test_morton_roundtrip_vectorized():
    rng = np.random.default_rng(0)
    pts = rng.integers(0, MAX_COORD, size=(1000, 3))
    codes = morton_encode(pts[:, 0], pts[:, 1], pts[:, 2])
    x, y, z = morton_decode(codes)
    np.testing.assert_array_equal(np.stack([x, y, z], axis=1), pts)


def test_morton_is_z_order_within_octant():
    # all codes inside an octant form a contiguous range
    for (ax, ay, az, lvl) in [(0, 0, 0, MAX_LEVEL - 2), (4, 8, 12, MAX_LEVEL - 2)]:
        size = int(octant_size(lvl))
        xs, ys, zs = np.meshgrid(*[np.arange(size)] * 3, indexing="ij")
        codes = morton_encode(ax + xs.ravel(), ay + ys.ravel(), az + zs.ravel())
        codes = np.sort(codes)
        base = int(morton_encode(ax, ay, az))
        np.testing.assert_array_equal(codes, np.arange(base, base + size**3))


@given(coords, coords, coords, st.integers(min_value=0, max_value=MAX_LEVEL))
def test_pack_unpack_roundtrip(x, y, z, level):
    size = int(octant_size(level))
    x, y, z = (x // size) * size, (y // size) * size, (z // size) * size
    key = pack_key(morton_encode(x, y, z), level)
    m, l = unpack_key(key)
    assert int(l) == level
    xx, yy, zz = morton_decode(m)
    assert (int(xx), int(yy), int(zz)) == (x, y, z)


def test_pack_key_sorts_morton_major():
    k1 = pack_key(np.uint64(5), np.uint64(31))
    k2 = pack_key(np.uint64(6), np.uint64(0))
    assert int(k1) < int(k2)


@given(coords, coords, coords, st.integers(min_value=1, max_value=MAX_LEVEL))
def test_parent_of_child(x, y, z, level):
    size = int(octant_size(level))
    x, y, z = (x // size) * size, (y // size) * size, (z // size) * size
    key = pack_key(morton_encode(x, y, z), level)
    parent = octant_parent(key)
    children = octant_children(parent)
    assert int(key) in set(int(c) for c in np.atleast_1d(children).ravel())


def test_children_tile_parent_and_stay_sorted():
    key = pack_key(morton_encode(0, 0, 0), 2)
    kids = np.atleast_1d(octant_children(key)).ravel()
    assert len(kids) == 8
    assert np.all(np.diff(kids.astype(np.uint64)) > 0)
    x, y, z, lvl = octant_anchor(kids)
    assert np.all(lvl == 3)
    sz = int(octant_size(3))
    vol = len(kids) * sz**3
    assert vol == int(octant_size(2)) ** 3


def test_is_ancestor():
    root = pack_key(morton_encode(0, 0, 0), 0)
    kid = np.atleast_1d(octant_children(root)).ravel()[3]
    grandkid = np.atleast_1d(octant_children(kid)).ravel()[0]
    assert bool(is_ancestor(root, kid))
    assert bool(is_ancestor(root, grandkid))
    assert bool(is_ancestor(kid, grandkid))
    assert not bool(is_ancestor(grandkid, kid))
    assert not bool(is_ancestor(kid, kid))


def test_parent_of_root_raises():
    root = pack_key(morton_encode(0, 0, 0), 0)
    with pytest.raises(ValueError):
        octant_parent(root)


def test_children_beyond_max_level_raises():
    deepest = pack_key(morton_encode(0, 0, 0), MAX_LEVEL)
    with pytest.raises(ValueError):
        octant_children(deepest)
