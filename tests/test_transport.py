"""Process transport == simulated transport, message for message.

The tentpole guarantee of the shared-memory transport: running the
distributed solver over real worker processes produces the *same bits*
as the in-process simulation — trajectories compare with
``np.array_equal`` and the per-rank traffic statistics are identical —
so every correctness test of the simulated path covers the process
path, and every measured byte/message count means the same thing on
both.
"""

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.mesh import rcb_partition, uniform_hex_mesh
from repro.parallel import (
    DistributedWaveSolver,
    ProcWorld,
    SimWorld,
    binomial_rounds,
    measure_transport,
)
from repro.parallel.transport import attach_shared_array, create_shared_array
from repro.solver.checkpoint import checkpoint_schedule

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)


class PointForce:
    """Picklable point force (worker processes unpickle it by value)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t: float, out: np.ndarray | None = None) -> np.ndarray:
        # (t) for the distributed solver, (t, out) for the serial one
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.02) / 0.008) ** 2))
        return b


def _run_on(world, mesh, parts, force, nsteps):
    solver = DistributedWaveSolver(mesh, MAT, parts, world)
    # the half-step offset keeps ceil(t_end / dt) at exactly nsteps
    # under float roundoff
    u = solver.run(force, (nsteps - 0.5) * solver.dt)
    return u, [s.as_tuple() for s in world.stats]


@pytest.mark.parametrize("nranks", [2, 4])
def test_transports_bit_identical(nranks):
    mesh = uniform_hex_mesh(4)
    parts = rcb_partition(mesh.elem_centers, nranks)
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    sim = SimWorld(nranks)
    u_sim, stats_sim = _run_on(sim, mesh, parts, force, 25)
    with ProcWorld(nranks) as proc:
        u_proc, stats_proc = _run_on(proc, mesh, parts, force, 25)
    assert np.abs(u_sim).max() > 0  # the wave actually propagated
    assert np.array_equal(u_sim, u_proc)
    assert stats_sim == stats_proc


def test_proc_solver_matches_serial():
    from repro.octree import build_adaptive_octree
    from repro.mesh import extract_mesh
    from repro.solver import ElasticWaveSolver

    n = 8
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = extract_mesh(tree, L=1000.0)
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    serial = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
    nsteps = 20
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    # half-step offsets keep ceil(t_end / dt) unambiguous under float
    # roundoff: exactly nsteps + 1 serial steps, nsteps distributed
    serial.run(force, (nsteps + 0.5) * serial.dt, callback=cb)

    parts = rcb_partition(mesh.elem_centers, 4)
    with ProcWorld(4) as proc:
        solver = DistributedWaveSolver(mesh, MAT, parts, proc, dt=serial.dt)
        u_proc = solver.run(force, (nsteps - 0.5) * serial.dt)
    ref = np.abs(out["u"]).max()
    assert ref > 0
    np.testing.assert_allclose(u_proc, out["u"], rtol=1e-9, atol=1e-12 * ref)


def test_allreduce_equivalent_across_transports():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    sim = SimWorld(5)
    got_sim = sim.allreduce(values)
    with ProcWorld(5) as proc:
        got_proc = proc.allreduce(values)
        stats_proc = [s.as_tuple() for s in proc.stats]
    assert got_sim == got_proc == 15.0
    stats_sim = [s.as_tuple() for s in sim.stats]
    assert stats_sim == stats_proc
    # binomial tree: every rank is a child exactly once -> at most
    # log2ceil(P) + 1 sends per rank, not the P of a gather-to-root
    for msgs, _, _ in stats_sim:
        assert msgs <= int(np.ceil(np.log2(5))) + 1


def test_binomial_rounds_cover_every_rank_once():
    for p in (1, 2, 3, 5, 8, 13):
        children = [c for rnd in binomial_rounds(p) for c, _ in rnd]
        assert sorted(children) == list(range(1, p))


def _boom_program(comm, payload):
    # module-level: rank programs cross the worker pipe by pickle
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.rank


def test_worker_error_propagates():
    with ProcWorld(2) as world:
        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            world.run_spmd(_boom_program, [None, None])
        # the world survives a failed program
        assert world.allreduce([1.0, 1.0]) == 2.0


def test_shared_array_roundtrip():
    shm, view = create_shared_array((7, 3))
    try:
        view[:] = np.arange(21.0).reshape(7, 3)
        shm2, view2 = attach_shared_array(shm.name, (7, 3))
        assert np.array_equal(view2, view)
        del view2
        shm2.close()
    finally:
        del view
        shm.close()
        shm.unlink()


def test_measure_transport_sane():
    with ProcWorld(2) as world:
        meas = measure_transport(world, sizes=(64, 1024), repeats=5)
    assert meas["alpha"] > 0
    assert meas["beta"] > 0
    assert meas["gamma"] >= 0
    # one (median round time) sample per (size, burst) configuration
    assert len(meas["samples"]) == 2 * 2
    for nbytes, burst, seconds in meas["samples"]:
        assert nbytes in (64, 1024)
        assert burst in (1, 2)
        assert seconds > 0


def test_callback_rejected_on_process_transport():
    mesh = uniform_hex_mesh(4)
    parts = rcb_partition(mesh.elem_centers, 2)
    force = PointForce(0, mesh.nnode)
    with ProcWorld(2) as proc:
        solver = DistributedWaveSolver(mesh, MAT, parts, proc, dt=1e-3)
        with pytest.raises(ValueError, match="callback"):
            solver.run(force, 5e-3, callback=lambda k, t, u: None)


# --------------------------------------------- checkpoint_schedule edges


def test_checkpoint_schedule_more_slots_than_steps():
    # nsteps < slots: stride collapses to 1, one snapshot per step,
    # never more snapshots than steps
    sched = checkpoint_schedule(3, 10)
    assert sched == [0, 1, 2]


def test_checkpoint_schedule_single_slot():
    # slots == 1: only the initial state is stored; the backward sweep
    # recomputes the whole trajectory from step 0
    assert checkpoint_schedule(100, 1) == [0]
    assert checkpoint_schedule(1, 1) == [0]


def test_checkpoint_schedule_degenerate_and_invalid():
    assert checkpoint_schedule(0, 4) == [0]
    with pytest.raises(ValueError):
        checkpoint_schedule(10, 0)
