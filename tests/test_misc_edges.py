"""Remaining edge-case coverage across packages."""

import numpy as np
import pytest

from repro.core import ForwardSimulation
from repro.etree import EtreeDatabase
from repro.materials import HomogeneousMaterial
from repro.mesh import uniform_hex_mesh
from repro.octree import MAX_COORD, MAX_LEVEL, build_adaptive_octree
from repro.octree.linear_octree import LinearOctree
from repro.solver import RegularGridScalarWave


class TestOctreeEdges:
    def test_single_leaf_root_tree(self):
        t = build_adaptive_octree(lambda c, s: np.full(len(c), 2.0), max_level=3)
        assert len(t) == 1
        assert int(t.levels[0]) == 0
        assert t.covered_volume() == MAX_COORD**3
        idx = t.locate(np.array([[5, 5, 5]]))
        assert idx[0] == 0

    def test_empty_linear_octree(self):
        t = LinearOctree(np.array([], dtype=np.uint64))
        t.validate()
        assert len(t) == 0
        assert t.covered_volume() == 0

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            build_adaptive_octree(
                lambda c, s: np.full(len(c), 1.0), max_level=MAX_LEVEL + 1
            )
        with pytest.raises(ValueError):
            build_adaptive_octree(
                lambda c, s: np.full(len(c), 1.0), max_level=2, min_level=3
            )


class TestEtreeDatabaseEdges:
    def test_dtype_mismatch_on_reopen(self, tmp_path):
        p = str(tmp_path / "d.etree")
        db = EtreeDatabase(p)  # 16-byte OctantRecord
        db.insert(1, (1.0, 2.0, 3.0, 0))
        db.close()
        with pytest.raises(ValueError):
            EtreeDatabase(p, np.dtype([("x", "<f8"), ("y", "<f8"), ("z", "<f8")]))

    def test_scan_arrays_empty_range(self, tmp_path):
        with EtreeDatabase(str(tmp_path / "e.etree")) as db:
            db.insert(100, (1.0, 2.0, 3.0, 0))
            keys, recs = db.scan_arrays(0, 50)
            assert len(keys) == 0
            assert len(recs) == 0

    def test_delete_through_database(self, tmp_path):
        with EtreeDatabase(str(tmp_path / "f.etree")) as db:
            db.insert(7, (1.0, 2.0, 3.0, 0))
            assert db.delete(7)
            assert not db.delete(7)
            assert 7 not in db


class TestScalarWaveEdges:
    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            RegularGridScalarWave((8,), 1.0, 1000.0)

    def test_node_index_out_of_range(self):
        s = RegularGridScalarWave((4, 4), 1.0, 1000.0)
        with pytest.raises(ValueError):
            s.node_index((10, 0))

    def test_elem_centers_inside_box(self):
        s = RegularGridScalarWave((5, 3), 2.0, 1000.0)
        c = s.elem_centers()
        assert c[:, 0].max() < 10.0 and c[:, 1].max() < 6.0
        assert c.min() > 0.0


class TestForwardSimulationEdges:
    def test_default_damping_band_scales_with_fmax(self):
        mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
        sim = ForwardSimulation(
            mat, L=2000.0, fmax=2.0, max_level=3, h_min=500.0,
            damping_ratio=0.05,
        )
        # Rayleigh operators were built (band defaulted to fmax-scaled)
        assert sim.solver.Kb is not None
        assert sim.solver.m_alpha.max() > 0

    def test_run_without_receivers_returns_no_seismograms(self):
        from repro.sources import idealized_strike_slip

        mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
        sim = ForwardSimulation(mat, L=2000.0, fmax=1.0, max_level=3,
                                h_min=500.0)
        sc = idealized_strike_slip(L=2000.0, n_strike=2, n_dip=1)
        result = sim.run(sc, t_end=4 * sim.dt)
        assert result.seismograms is None
        assert result.n_grid_points == sim.mesh.nnode


class TestMeshEdges:
    def test_uniform_hex_mesh_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            uniform_hex_mesh(5)

    def test_boundary_faces_empty_on_interior_query(self):
        mesh = uniform_hex_mesh(2, L=1.0)
        # every element touches some boundary on a 2x2x2 mesh; check
        # counts are exactly one face layer per side
        for axis in range(3):
            for side in (0, 1):
                idx, faces = mesh.boundary_faces(axis, side)
                assert len(idx) == 4
