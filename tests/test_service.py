"""Simulation service: artifact cache, warm engine, coalescing.

The service tentpole's contracts, pinned:

* **Key stability** — a :class:`SimulationSpec`'s artifact key is a
  pure function of its content: bitwise-equal specs share a key, any
  perturbed field (including a single material-model scalar) changes
  it.
* **Bit identity** — a warm (memory-hit), disk-warm (CRC-verified
  load), or coalesced (batched-column) run produces exactly the bits
  of a cold solo run; caching and coalescing are invisible to the
  numbers.
* **Corruption rejection** — a flipped byte anywhere in a disk
  artifact is detected (CRC/header) and the entry is rebuilt, never
  served.
* **Pool hygiene** — the engine's persistent worker pools shut down
  and re-attach explicitly without leaking ``/dev/shm`` segments, on
  both transports.

Plus the satellite caches: the keyed fold LRU in the element kernels
and the process-wide transport-calibration memo.
"""

import os
import time

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition
from repro.octree import build_adaptive_octree
from repro.parallel import (
    DistributedWaveSolver,
    ProcWorld,
    SimWorld,
    calibrate_transport,
    clear_transport_calibration,
)
from repro.parallel.transport import _SHM_REGISTRY
from repro.service import (
    ArtifactCache,
    CacheCorruptError,
    CoalescingScheduler,
    Engine,
    ForwardRequest,
    SimulationSpec,
    artifact_key,
    fingerprint,
    load_artifact,
    save_artifact,
)
from repro.solver import ElasticWaveSolver
from repro.sources import idealized_northridge, idealized_strike_slip

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)

SPEC_KW = dict(
    material=MAT,
    L=8000.0,
    fmax=0.4,
    box_frac=(1, 1, 0.5),
    max_level=3,
)


def make_spec(**overrides) -> SimulationSpec:
    kw = dict(SPEC_KW)
    kw.update(overrides)
    return SimulationSpec(**kw)


RECEIVERS = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])


# ---------------------------------------------------------------- keys


def test_fingerprint_is_stable_and_content_sensitive():
    a = {"x": 1.0, "arr": np.arange(4.0), "nested": (1, [2, 3], None)}
    b = {"nested": (1, [2, 3], None), "arr": np.arange(4.0), "x": 1.0}
    assert fingerprint(a) == fingerprint(b)  # dict order is irrelevant
    c = {"x": 1.0, "arr": np.arange(4.0), "nested": (1, [2, 4], None)}
    assert fingerprint(a) != fingerprint(c)
    # dtype and shape are identity, not just bytes
    assert fingerprint(np.zeros(4)) != fingerprint(np.zeros(4, np.float32))
    assert fingerprint(np.zeros((2, 2))) != fingerprint(np.zeros(4))
    # floats hash by exact value
    assert fingerprint(0.1) != fingerprint(0.1 + 1e-16)
    assert artifact_key(a=1, b=2) == artifact_key(b=2, a=1)


def test_spec_key_stable_across_instances():
    assert make_spec().key == make_spec().key
    # a materially identical model object hashes equal too
    mat2 = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    assert make_spec().key == make_spec(material=mat2).key


@pytest.mark.parametrize(
    "override",
    [
        {"fmax": 0.401},
        {"L": 8001.0},
        {"max_level": 4},
        {"points_per_wavelength": 9.0},
        {"h_min": 1.0},
        {"damping_ratio": 0.01},
        {"stacey_c1": False},
        {"cfl_safety": 0.45},
        {"lts": 4},
        {"dtype": "float32"},
        {"material": HomogeneousMaterial(vs=1000.1, vp=1800.0, rho=2000.0)},
    ],
)
def test_spec_key_sensitive_to_every_field(override):
    assert make_spec().key != make_spec(**override).key


# ------------------------------------------------------- warm bit identity


@pytest.fixture(scope="module")
def warm_engine():
    eng = Engine()
    yield eng
    eng.close()


def test_warm_hit_is_bitwise_identical(warm_engine):
    spec = make_spec()
    scenario = idealized_strike_slip(L=spec.L)
    t_end = 15 * warm_engine.simulation(spec).dt
    cold_stats = warm_engine.stats()
    a = warm_engine.submit(spec, scenario, t_end, receivers=RECEIVERS)
    b = warm_engine.submit(spec, scenario, t_end, receivers=RECEIVERS)
    assert warm_engine.stats()["hits"] > cold_stats["hits"]
    assert np.array_equal(a.seismograms.data, b.seismograms.data)
    # and identical to a cold, cache-free library run
    direct = spec.build().run(scenario, t_end, receivers=RECEIVERS)
    assert np.array_equal(a.seismograms.data, direct.seismograms.data)


# ------------------------------------------------------------ disk tier


def test_disk_tier_roundtrip_bit_identity(tmp_path):
    spec = make_spec()
    scenario = idealized_northridge(L=spec.L)
    with Engine(disk_dir=str(tmp_path)) as eng:
        sim = eng.simulation(spec)
        t_end = 12 * sim.dt
        ref = eng.submit(spec, scenario, t_end, receivers=RECEIVERS)
        assert eng.stats()["misses"] == 1
    # a fresh engine (new-process stand-in) must serve the artifact
    # from disk and reproduce the run bit-for-bit
    with Engine(disk_dir=str(tmp_path)) as fresh:
        got = fresh.submit(spec, scenario, t_end, receivers=RECEIVERS)
        st = fresh.stats()
        assert st["disk_hits"] == 1 and st["misses"] == 0
        assert got.seismograms.dt == ref.seismograms.dt
        assert np.array_equal(got.seismograms.data, ref.seismograms.data)


def test_save_load_artifact_validates(tmp_path):
    path = str(tmp_path / "a.artifact")
    payload = {"arr": np.arange(10.0), "x": 3}
    save_artifact(path, "k" * 40, payload)
    back = load_artifact(path, key="k" * 40)
    assert np.array_equal(back["arr"], payload["arr"])
    with pytest.raises(CacheCorruptError):
        load_artifact(path, key="wrong" * 8)  # served under another key


@pytest.mark.parametrize("offset", [0, 5, 30, -10])
def test_disk_corruption_rejected(tmp_path, offset):
    path = str(tmp_path / "a.artifact")
    save_artifact(path, "k" * 40, {"arr": np.arange(64.0)})
    data = bytearray(open(path, "rb").read())
    data[offset] ^= 0x40  # flip one bit: magic, header, or payload
    with open(path, "wb") as f:
        f.write(bytes(data))
    with pytest.raises(CacheCorruptError):
        load_artifact(path, key="k" * 40)


def test_cache_rebuilds_after_corruption(tmp_path):
    cache = ArtifactCache(2, disk_dir=str(tmp_path))
    builds = []

    def build():
        builds.append(1)
        return {"v": np.arange(8.0)}

    cache.get_or_build("deadbeef", build)
    files = os.listdir(tmp_path)
    assert len(files) == 1
    fpath = tmp_path / files[0]
    raw = bytearray(fpath.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    fpath.write_bytes(bytes(raw))
    # a fresh cache over the same dir must detect, drop, and rebuild
    fresh = ArtifactCache(2, disk_dir=str(tmp_path))
    out = fresh.get_or_build("deadbeef", build)
    assert np.array_equal(out["v"], np.arange(8.0))
    assert len(builds) == 2
    assert fresh.stats()["corrupt_rejections"] == 1
    # the corrupt file was replaced by a valid one
    again = ArtifactCache(2, disk_dir=str(tmp_path))
    again.get_or_build("deadbeef", build)
    assert len(builds) == 2 and again.stats()["disk_hits"] == 1


def test_lru_eviction_bounds_memory():
    cache = ArtifactCache(2)
    for i in range(4):
        cache.put(f"k{i}", i)
    assert len(cache) == 2
    assert "k0" not in cache and "k3" in cache
    assert cache.stats()["evictions"] == 2


# ----------------------------------------------------------- coalescing


def test_coalesced_columns_bitwise_equal_solo(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    t_end = 12 * sim.dt
    scenarios = [
        idealized_strike_slip(L=spec.L),
        idealized_northridge(L=spec.L),
        idealized_strike_slip(L=spec.L),
    ]
    requests = [
        ForwardRequest(spec, sc, t_end, receivers=RECEIVERS)
        for sc in scenarios
    ]
    with CoalescingScheduler(
        warm_engine, max_batch=len(requests), max_wait=30.0
    ) as sched:
        coalesced = sched.map_wait(requests)
        stats = sched.stats()
    assert stats["batches"] == 1  # all three shared one fused loop
    assert stats["coalesced"] == 2
    for sc, seis in zip(scenarios, coalesced):
        solo = warm_engine.submit(spec, sc, t_end, receivers=RECEIVERS)
        assert np.array_equal(seis.data, solo.seismograms.data)


def test_incompatible_requests_do_not_coalesce(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    scenario = idealized_strike_slip(L=spec.L)
    requests = [
        ForwardRequest(spec, scenario, 10 * sim.dt, receivers=RECEIVERS),
        ForwardRequest(spec, scenario, 11 * sim.dt, receivers=RECEIVERS),
    ]
    assert requests[0].group_key() != requests[1].group_key()
    with CoalescingScheduler(
        warm_engine, max_batch=4, max_wait=30.0
    ) as sched:
        futures = [sched.submit(r) for r in requests]
        sched.flush()
        results = [f.result() for f in futures]
        assert sched.stats()["batches"] == 2
    for req, seis in zip(requests, results):
        solo = warm_engine.submit(
            req.spec, req.scenario, req.t_end, receivers=req.receivers
        )
        assert np.array_equal(seis.data, solo.seismograms.data)


def test_scheduler_rejects_after_close(warm_engine):
    sched = CoalescingScheduler(warm_engine)
    sched.close()
    with pytest.raises(RuntimeError):
        sched.submit(
            ForwardRequest(make_spec(), None, 0.1)
        )


# ------------------------------------------------- pools & transports


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: nothing to check
        return set()


class PointForce:
    """Picklable point force (worker processes unpickle it by value)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        # (t) for the distributed solver, (t, out) for the serial one
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.02) / 0.008) ** 2))
        return b


def _dist_problem():
    n = 4
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=2
    )
    mesh = extract_mesh(tree, L=1000.0)
    force = PointForce(mesh.nnode // 2, mesh.nnode)
    parts = rcb_partition(mesh.elem_centers, 2)
    return mesh, tree, force, parts


def test_pool_shutdown_reattach_no_shm_leak():
    before = _shm_names()
    engine = Engine()
    world = engine.pool(2)
    assert engine.pool(2) is world  # same key -> same pool
    mesh, tree, forces, parts = _dist_problem()
    solver = DistributedWaveSolver(mesh, MAT, parts, world, dt=1e-4)
    u1 = solver.run(forces, 10.5e-4)
    engine.close()  # explicit park between traffic bursts
    assert world.closed
    assert _SHM_REGISTRY == {}
    # re-attach: the engine hands back a running pool and the run
    # reproduces the pre-shutdown bits
    world2 = engine.pool(2)
    solver = DistributedWaveSolver(mesh, MAT, parts, world2, dt=1e-4)
    u2 = solver.run(forces, 10.5e-4)
    assert np.array_equal(u1, u2)
    engine.close()
    time.sleep(0.1)  # let the resource tracker settle
    assert _SHM_REGISTRY == {}
    assert not (_shm_names() - before), "leaked /dev/shm segments"


def test_ensure_running_revives_closed_and_dead_worlds():
    world = ProcWorld(2)
    try:
        world.close()
        assert world.closed
        world.ensure_running()
        assert not world.closed
        out = world.run_spmd(_rank_program, [None, None])
        assert out == [0, 1]
    finally:
        world.close()


def _rank_program(comm, payload):
    return comm.rank


def test_distributed_bitwise_on_both_transports_via_pool():
    """Warm-pool reruns must be *bit-identical* on both transports
    (the service's reuse contract), and both transports must agree
    with the serial solver up to interface-sum reordering."""
    mesh, tree, force, parts = _dist_problem()
    serial = ElasticWaveSolver(mesh, tree, MAT, stacey_c1=False)
    t_end = 10.5 * serial.dt
    nsteps = int(np.ceil(t_end / serial.dt))
    out = {}

    def cb(k, t, u):
        if k == nsteps:
            out["u"] = u.copy()

    serial.run(force, (nsteps + 1) * serial.dt, callback=cb)
    u_ref = out["u"]

    dist = DistributedWaveSolver(
        mesh, MAT, parts, SimWorld(2), dt=serial.dt
    )
    u_sim = dist.run(force, t_end)
    assert np.array_equal(u_sim, dist.run(force, t_end))  # rerun: same bits
    np.testing.assert_allclose(u_sim, u_ref, rtol=1e-9, atol=1e-14)

    engine = Engine()
    try:
        world = engine.pool(2)
        dist = DistributedWaveSolver(mesh, MAT, parts, world, dt=serial.dt)
        u_proc = dist.run(force, t_end)
        # the two transports run the identical rank arithmetic
        assert np.array_equal(u_proc, u_sim)
        # pooled reuse: a second run on the same warm world is
        # bit-identical too
        assert np.array_equal(dist.run(force, t_end), u_proc)
    finally:
        engine.close()


# ------------------------------------------------- calibration memo


def test_transport_calibration_is_memoized():
    clear_transport_calibration()
    with ProcWorld(2) as world:
        t0 = time.perf_counter()
        first = calibrate_transport(world, sizes=(64,), repeats=2)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        second = calibrate_transport(world, sizes=(64,), repeats=2)
        warm = time.perf_counter() - t0
        assert second == first
        assert warm < cold  # dictionary lookup, not a ping-pong
        # the memo survives the world: an equivalent fresh pool of the
        # same shape reuses the measurement process-wide
        refreshed = calibrate_transport(
            world, sizes=(64,), repeats=2, refresh=True
        )
        assert set(refreshed) == set(first)
    with ProcWorld(2) as world2:
        assert calibrate_transport(world2, sizes=(64,), repeats=2) in (
            first,
            refreshed,
        )
    clear_transport_calibration()


# ------------------------------------------------- keyed fold LRU


def test_fold_lru_restores_folds_bitwise():
    from repro.backend import get_backend
    from repro.mesh import uniform_hex_mesh

    mesh = uniform_hex_mesh(2, L=1.0)
    K_ref = np.eye(8) + 0.25
    rng = np.random.default_rng(7)
    coef_a = rng.random(mesh.nelem) + 1.0
    coef_b = rng.random(mesh.nelem) + 2.0
    u = rng.standard_normal(mesh.nnode)
    out = np.empty(mesh.nnode)

    kern = get_backend().element_kernel(mesh.conn, (K_ref,), mesh.nnode)
    ref = {}
    for name, coef in [("a", coef_a), ("b", coef_b)]:
        fresh = get_backend().element_kernel(
            mesh.conn, (K_ref,), mesh.nnode
        )
        ref[name] = fresh.matvec(u, np.empty(mesh.nnode), coefs=(coef,)).copy()

    # alternate materials: every revisit must restore the folded data
    # from the LRU (a hit), and the product must be bitwise the fresh
    # kernel's
    for name, coef in [("a", coef_a), ("b", coef_b)] * 3:
        got = kern.matvec(u, out, coefs=(coef,))
        assert np.array_equal(got, ref[name])
    info = kern.fold_cache_info()
    assert info["misses"] == 2  # one real fold per material
    assert info["hits"] == 4  # every alternation after that restored
    assert info["entries"] == 2


def test_fold_lru_eviction_and_capacity():
    from repro.backend import get_backend
    from repro.mesh import uniform_hex_mesh

    mesh = uniform_hex_mesh(2, L=1.0)
    kern = get_backend().element_kernel(
        mesh.conn, (np.eye(8),), mesh.nnode
    )
    u = np.ones(mesh.nnode)
    out = np.empty(mesh.nnode)
    slots = kern.fold_cache_slots
    coefs = [np.full(mesh.nelem, 1.0 + i) for i in range(slots + 2)]
    for c in coefs:
        kern.matvec(u, out, coefs=(c,))
    info = kern.fold_cache_info()
    assert info["entries"] == slots  # bounded
    assert info["misses"] == slots + 2
    # the oldest entries were evicted: revisiting them refolds...
    kern.matvec(u, out, coefs=(coefs[0],))
    assert kern.fold_cache_info()["misses"] == slots + 3
    # ...while the newest survive: revisiting one is a hit
    kern.matvec(u, out, coefs=(coefs[-1],))
    assert kern.fold_cache_info()["hits"] == 1


def test_fold_mru_fast_path_not_counted_as_lru_hit():
    from repro.backend import get_backend
    from repro.mesh import uniform_hex_mesh

    mesh = uniform_hex_mesh(2, L=1.0)
    kern = get_backend().element_kernel(
        mesh.conn, (np.eye(8),), mesh.nnode
    )
    u = np.ones(mesh.nnode)
    out = np.empty(mesh.nnode)
    c = np.full(mesh.nelem, 2.0)
    for _ in range(5):  # the steady state of every time loop
        kern.matvec(u, out, coefs=(c,))
    info = kern.fold_cache_info()
    assert info == {
        "slots": kern.fold_cache_slots,
        "entries": 1,
        "hits": 0,
        "misses": 1,
        "folds": 1,
    }
