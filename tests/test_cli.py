"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


def test_estimate_outputs_json(capsys):
    rc = main(
        [
            "estimate",
            "--L", "10000", "--fmax", "0.5", "--vs-min", "400",
        ]
    )
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["elements"] > 0
    assert out["work"] > out["elements"]


def test_mesh_command(tmp_path, capsys):
    rc = main(
        [
            "mesh",
            "--L", "8000", "--fmax", "0.25", "--vs-min", "400",
            "--h-min", "250",
            "--workdir", str(tmp_path / "db"),
            "--max-level", "5", "--blocks", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "elements" in out and "node db" in out
    assert (tmp_path / "db" / "elements.etree").exists()


def test_forward_command_writes_npz(tmp_path, capsys):
    out_file = tmp_path / "run.npz"
    rc = main(
        [
            "forward",
            "--L", "2000", "--fmax", "1.0", "--vs-min", "500",
            "--h-min", "250", "--max-level", "4",
            "--t-end", "0.5",
            "--receivers", "[[1000, 1000, 0]]",
            "--out", str(out_file),
        ]
    )
    assert rc == 0
    assert out_file.exists()
    archive = np.load(out_file)
    assert archive["data"].shape[0] == 1
    assert np.isfinite(archive["data"]).all()
    assert "PGV" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
