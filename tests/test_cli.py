"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


def test_estimate_outputs_json(capsys):
    rc = main(
        [
            "estimate",
            "--L", "10000", "--fmax", "0.5", "--vs-min", "400",
        ]
    )
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["elements"] > 0
    assert out["work"] > out["elements"]


def test_mesh_command(tmp_path, capsys):
    rc = main(
        [
            "mesh",
            "--L", "8000", "--fmax", "0.25", "--vs-min", "400",
            "--h-min", "250",
            "--workdir", str(tmp_path / "db"),
            "--max-level", "5", "--blocks", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "elements" in out and "node db" in out
    assert (tmp_path / "db" / "elements.etree").exists()


def test_forward_command_writes_npz(tmp_path, capsys):
    out_file = tmp_path / "run.npz"
    rc = main(
        [
            "forward",
            "--L", "2000", "--fmax", "1.0", "--vs-min", "500",
            "--h-min", "250", "--max-level", "4",
            "--t-end", "0.5",
            "--receivers", "[[1000, 1000, 0]]",
            "--out", str(out_file),
        ]
    )
    assert rc == 0
    assert out_file.exists()
    archive = np.load(out_file)
    assert archive["data"].shape[0] == 1
    assert np.isfinite(archive["data"]).all()
    assert "PGV" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_submit_serve_roundtrip(tmp_path, capsys):
    spool, out_dir = str(tmp_path / "spool"), str(tmp_path / "out")
    spec_args = [
        "--L", "8000", "--fmax", "0.15", "--vs-min", "400",
        "--max-level", "3", "--t-end", "1.0",
        "--receivers", "[[4000, 4000, 0]]",
    ]
    assert main(["submit", "--spool", spool] + spec_args) == 0
    assert main(["submit", "--spool", spool] + spec_args) == 0
    out = capsys.readouterr().out
    # equal specs advertise one shared artifact key
    keys = {line.split("artifact key ")[1] for line in out.splitlines()}
    assert len(keys) == 1

    rc = main(
        [
            "serve", "--spool", spool, "--out-dir", out_dir,
            "--max-wait", "2.0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "served 2 request(s) (0 failed) in 1 batch(es)" in out
    a = np.load(out_dir + "/req-000000.npz")
    b = np.load(out_dir + "/req-000001.npz")
    # coalesced columns of one fused loop: identical requests,
    # identical bits
    assert np.array_equal(a["data"], b["data"])
    # the spool files were retired, not deleted
    assert sorted(
        f for f in (tmp_path / "spool" / "done").iterdir()
    )
    # an empty spool drains as a no-op
    assert main(["serve", "--spool", spool, "--out-dir", out_dir]) == 0


SPEC_ARGS = [
    "--L", "8000", "--fmax", "0.15", "--vs-min", "400",
    "--max-level", "3", "--t-end", "1.0",
    "--receivers", "[[4000, 4000, 0]]",
]


def test_serve_quarantines_torn_spool_json(tmp_path, capsys):
    spool, out_dir = str(tmp_path / "spool"), str(tmp_path / "out")
    assert main(["submit", "--spool", spool] + SPEC_ARGS) == 0
    # a torn write (crashed submitter, partial copy): must not wedge
    # the drain or poison the valid request alongside it
    (tmp_path / "spool" / "req-000099.json").write_text(
        '{"id": "req-000099", "spec": {'
    )
    rc = main(
        [
            "serve", "--spool", spool, "--out-dir", out_dir,
            "--max-wait", "2.0",
        ]
    )
    assert rc == 1
    assert "QUARANTINED" in capsys.readouterr().out
    # the valid request was still served and retired
    assert (tmp_path / "out" / "req-000000.npz").exists()
    assert (tmp_path / "spool" / "done" / "req-000000.json").exists()
    # the torn one sits in quarantine with a parse report
    q = tmp_path / "spool" / "quarantine"
    assert (q / "req-000099.json").exists()
    report = json.loads((q / "req-000099.report.json").read_text())
    assert report["stage"] == "parse"
    assert report["attempts"] == 1
    # exactly-once disposition: nothing pending anywhere
    assert not list((tmp_path / "spool").glob("req-*.json"))
    assert not list((tmp_path / "spool" / "inflight").glob("req-*"))


def test_serve_replays_claimed_inflight_requests(tmp_path, capsys):
    # a predecessor claimed the request into inflight/ and was killed
    # mid-solve; a restarted serve replays it to done/ exactly once
    spool = str(tmp_path / "spool")
    assert main(["submit", "--spool", spool] + SPEC_ARGS) == 0
    inflight = tmp_path / "spool" / "inflight"
    inflight.mkdir()
    (tmp_path / "spool" / "req-000000.json").rename(
        inflight / "req-000000.json"
    )
    rc = main(
        [
            "serve", "--spool", spool,
            "--out-dir", str(tmp_path / "out"), "--max-wait", "2.0",
        ]
    )
    assert rc == 0
    assert (tmp_path / "out" / "req-000000.npz").exists()
    assert (tmp_path / "spool" / "done" / "req-000000.json").exists()
    assert not list(inflight.glob("req-*"))


def test_serve_injected_fault_retries_then_serves(tmp_path, monkeypatch, capsys):
    # a one-shot NaN injection fails attempt 1; the drain's retry
    # pass advances the fault plan and attempt 2 runs clean
    monkeypatch.setenv("REPRO_FAULTS", "nan:rank=0,step=1")
    spool = str(tmp_path / "spool")
    assert main(["submit", "--spool", spool] + SPEC_ARGS) == 0
    rc = main(
        [
            "serve", "--spool", spool,
            "--out-dir", str(tmp_path / "out"), "--max-wait", "2.0",
        ]
    )
    assert rc == 0
    assert "will retry" in capsys.readouterr().out
    assert (tmp_path / "out" / "req-000000.npz").exists()
    assert (tmp_path / "spool" / "done" / "req-000000.json").exists()


def test_serve_quarantines_at_max_attempts(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAULTS", "nan:rank=0,step=1")
    spool = str(tmp_path / "spool")
    assert main(["submit", "--spool", spool] + SPEC_ARGS) == 0
    rc = main(
        [
            "serve", "--spool", spool,
            "--out-dir", str(tmp_path / "out"),
            "--max-wait", "2.0", "--max-attempts", "1",
        ]
    )
    assert rc == 1
    q = tmp_path / "spool" / "quarantine"
    assert (q / "req-000000.json").exists()
    report = json.loads((q / "req-000000.report.json").read_text())
    assert report["stage"] == "solve"
    assert report["attempts"] == 1
    assert report["error_type"] == "PoisonedRequestError"
    assert not list((tmp_path / "spool" / "inflight").glob("req-*"))
