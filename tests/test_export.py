"""Observability: request tracing, metric exporters, live status, and
the flight recorder.

The contracts under test:

* **Quantiles** — histograms report exact p50/p95/p99 under the
  sample cap and bounded-error bucket estimates beyond it.
* **Ring buffer** — the span event stream keeps the *most recent* N
  events, counts evictions, and surfaces the count in every export.
* **Trace propagation** — a request's trace id survives the
  scheduler's coalescing window, the engine dispatch, both transports
  (piggybacked on the ProcWorld pipe protocol), and a mid-run rank
  kill + respawn — stitching back into one per-request trace.
* **Exporters** — Prometheus text and JSONL snapshots render the same
  registry; the status file is atomic; the flight recorder dumps a
  usable postmortem on worker failure and health violations.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.materials import HomogeneousMaterial
from repro.mesh import rcb_partition, uniform_hex_mesh
from repro.parallel import DistributedWaveSolver, ProcWorld, SimWorld
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    NumericalHealthError,
    RetryPolicy,
    check_finite,
)
from repro.service import (
    CoalescingScheduler,
    Engine,
    ForwardRequest,
    SimulationSpec,
)
from repro.sources import idealized_northridge, idealized_strike_slip
from repro.telemetry.export import (
    MetricsJsonlExporter,
    StatusFile,
    arm_flight_recorder,
    flight_dump,
    prometheus_text,
    stitch_trace,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Tracer

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)

SPEC_KW = dict(
    material=MAT,
    L=8000.0,
    fmax=0.4,
    box_frac=(1, 1, 0.5),
    max_level=3,
)

RECEIVERS = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    telemetry.reset()
    arm_flight_recorder(None)
    yield
    telemetry.disable()
    telemetry.reset()
    arm_flight_recorder(None)


# ----------------------------------------------------------- quantiles


class TestHistogramQuantiles:
    def test_exact_quantiles_small_population(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(
            float(np.percentile(np.arange(1.0, 101.0), 50))
        )
        assert h.quantile(0.95) == pytest.approx(
            float(np.percentile(np.arange(1.0, 101.0), 95))
        )

    def test_as_dict_carries_percentiles(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert d["p50"] == 2.0
        assert "p95" in d and "p99" in d
        assert Histogram("empty").as_dict().get("p50") is None

    def test_bucketed_beyond_cap_bounded_error(self):
        h = Histogram("lat")
        n = Histogram.EXACT_CAP + 1000
        rng = np.random.RandomState(7)
        xs = rng.lognormal(0.0, 2.0, size=n)
        for v in xs:
            h.observe(v)
        assert h.buckets is not None and not h.samples
        assert h.n == n
        for q in (0.5, 0.95, 0.99):
            est = h.quantile(q)
            true = float(np.quantile(xs, q))
            # log2 buckets: estimate within one bucket (factor ~2)
            assert true / 2.1 <= est <= true * 2.1
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_quantile_bounds_checked(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        assert Histogram("empty").quantile(0.5) == 0.0


# --------------------------------------------------------- ring buffer


class TestEventRing:
    def test_ring_keeps_most_recent_and_counts_drops(self):
        tr = Tracer(max_events=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.events) == 4
        assert tr.dropped_events == 6
        # ring semantics: the survivors are the LAST four spans
        names = [node.name for node, *_ in tr.events]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_dump_surfaces_drop_count_and_metric(self, tmp_path):
        telemetry.enable(max_events=3)
        for i in range(8):
            with telemetry.span("work"):
                pass
        path = str(tmp_path / "t.jsonl")
        telemetry.dump_jsonl(path)
        recs = [json.loads(l) for l in open(path)]
        meta = next(r for r in recs if r["type"] == "meta")
        assert meta["dropped_events"] == 5
        dropped = next(
            r for r in recs
            if r["type"] == "metric"
            and r["name"] == "telemetry.events.dropped"
        )
        assert dropped["value"] == 5

    def test_no_drop_counter_when_nothing_dropped(self, tmp_path):
        telemetry.enable()
        with telemetry.span("work"):
            pass
        telemetry.sync_dropped_counter()
        assert "telemetry.events.dropped" not in telemetry.metrics()


# ------------------------------------------------------- trace context


class TestTraceContext:
    def test_ids_unique_and_pid_scoped(self):
        a, b = telemetry.new_trace_id(), telemetry.new_trace_id()
        assert a != b
        assert a.startswith(f"t{os.getpid():x}-")

    def test_context_nesting_restores(self):
        assert telemetry.get_trace_context() is None
        with telemetry.trace_context("outer"):
            assert telemetry.get_trace_context() == "outer"
            with telemetry.trace_context("inner"):
                assert telemetry.get_trace_context() == "inner"
            assert telemetry.get_trace_context() == "outer"
        assert telemetry.get_trace_context() is None

    def test_events_tagged_with_active_trace(self):
        tr = telemetry.enable()
        with telemetry.trace_context("t-req"):
            with telemetry.span("solve"):
                pass
        with telemetry.span("untraced"):
            pass
        tags = {node.name: trace for node, _, _, trace in tr.events}
        assert tags == {"solve": "t-req", "untraced": None}

    def test_record_event_and_stitch_links(self):
        tr = telemetry.enable()
        with telemetry.trace_context("t-batch"):
            with telemetry.span("solve"):
                pass
        tr.record_event(
            ("queue",), 0.0, 0.5, trace_id="t-req", counters={"batch": 2}
        )
        tr.record_event(("other",), 0.0, 0.1, trace_id="t-unrelated")
        tr.link_trace("t-req", "t-batch")
        st = stitch_trace("t-req", tr)
        paths = {e["path"] for e in st["events"]}
        assert paths == {"queue", "solve"}  # linked batch pulled in
        assert st["linked"] == ["t-batch"]
        assert st["duration"] > 0.0
        # the aggregate tree absorbed the post-hoc interval
        agg = {a["path"]: a for a in tr.aggregates()}
        assert agg["queue"]["seconds"] == 0.5
        assert agg["queue"]["counters"]["batch"] == 2

    def test_dump_jsonl_emits_trace_links(self, tmp_path):
        tr = telemetry.enable()
        with telemetry.trace_context("t-1"):
            with telemetry.span("a"):
                pass
        tr.link_trace("t-1", "t-0")
        path = str(tmp_path / "t.jsonl")
        telemetry.dump_jsonl(path)
        recs = [json.loads(l) for l in open(path)]
        ev = next(r for r in recs if r["type"] == "event")
        assert ev["trace"] == "t-1"
        link = next(r for r in recs if r["type"] == "trace_link")
        assert link == {
            "type": "trace_link", "trace": "t-1", "parent": "t-0",
        }


# ----------------------------------------------------------- exporters


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").add(7)
        reg.gauge("service.cache.hit_ratio").set(0.75)
        h = reg.histogram("service.latency.total")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        text = prometheus_text(reg, include_spans=False)
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 7" in text
        assert "repro_service_cache_hit_ratio 0.75" in text
        assert 'repro_service_latency_total{quantile="0.5"} 0.2' in text
        assert "repro_service_latency_total_count 3" in text
        assert "repro_service_latency_total_sum" in text

    def test_span_totals_rendered_from_tracer(self):
        telemetry.enable()
        with telemetry.span("dist.run"):
            pass
        text = prometheus_text()
        assert 'repro_span_calls_total{path="dist.run"} 1' in text

    def test_write_prometheus_atomic(self, tmp_path):
        telemetry.enable()
        telemetry.count("x", 3)
        path = str(tmp_path / "prom.txt")
        telemetry.write_prometheus(path)
        assert "repro_x_total 3" in open(path).read()
        assert not os.path.exists(path + f".tmp.{os.getpid()}")


class TestJsonlExporter:
    def test_export_appends_snapshots(self, tmp_path):
        telemetry.enable()
        telemetry.count("reqs", 2)
        path = str(tmp_path / "m.jsonl")
        exp = MetricsJsonlExporter(path)
        exp.export()
        telemetry.count("reqs", 3)
        exp.export(extra={"drain": 1})
        recs = [json.loads(l) for l in open(path)]
        assert [r["seq"] for r in recs] == [0, 1]
        assert recs[0]["metrics"]["reqs"]["value"] == 2
        assert recs[1]["metrics"]["reqs"]["value"] == 5
        assert recs[1]["drain"] == 1

    def test_interval_gating(self, tmp_path):
        exp = MetricsJsonlExporter(str(tmp_path / "m.jsonl"), interval=3600)
        assert exp.maybe_export() is True
        assert exp.maybe_export() is False


class TestStatusFile:
    def test_write_read_roundtrip(self, tmp_path):
        st = StatusFile(str(tmp_path / "status.json"))
        st.write({"served": 4, "queue": {"open_windows": []}})
        snap = st.read()
        assert snap["served"] == 4
        assert snap["pid"] == os.getpid()
        assert snap["ts"] > 0
        assert not any(
            f.startswith("status.json.tmp")
            for f in os.listdir(str(tmp_path))
        )

    def test_read_missing_or_torn_is_none(self, tmp_path):
        st = StatusFile(str(tmp_path / "nope.json"))
        assert st.read() is None
        with open(st.path, "w") as f:
            f.write('{"torn": ')
        assert st.read() is None


class TestFlightRecorder:
    def test_dump_contains_tail_and_metrics(self, tmp_path):
        telemetry.enable()
        telemetry.count("resilience.worker_failures")
        with telemetry.trace_context("t-9"):
            with telemetry.span("dist.run"):
                pass
        rec = arm_flight_recorder(str(tmp_path / "flight"), max_events=8)
        path = rec.dump("worker_failure: rank 1 dead")
        recs = [json.loads(l) for l in open(path)]
        meta = recs[0]
        assert meta["type"] == "flight_meta"
        assert "rank 1 dead" in meta["reason"]
        assert meta["telemetry_enabled"] is True
        kinds = {r["type"] for r in recs}
        assert {"event", "metric"} <= kinds
        ev = next(r for r in recs if r["type"] == "event")
        assert ev["trace"] == "t-9"

    def test_flight_dump_module_gate(self, tmp_path):
        assert flight_dump("nothing armed") is None
        arm_flight_recorder(str(tmp_path))
        p = flight_dump("armed now")
        assert p is not None and os.path.exists(p)

    def test_health_violation_dumps(self, tmp_path):
        arm_flight_recorder(str(tmp_path / "flight"))
        bad = np.array([1.0, np.nan, 3.0])
        with pytest.raises(NumericalHealthError):
            check_finite(bad, step=12, rank=0)
        dumps = os.listdir(str(tmp_path / "flight"))
        assert len(dumps) == 1
        meta = json.loads(open(
            os.path.join(str(tmp_path / "flight"), dumps[0])
        ).readline())
        assert "numerical_health" in meta["reason"]
        assert "step 12" in meta["reason"]


# ------------------------------------------- service request tracing


class TestServiceTracing:
    def test_coalesced_requests_get_stitched_traces(self):
        telemetry.enable()
        spec = SimulationSpec(**SPEC_KW)
        s1 = idealized_strike_slip(L=spec.L)
        s2 = idealized_northridge(L=spec.L)
        with Engine() as engine:
            sim = engine.simulation(spec)
            t_end = 10.5 * sim.dt
            sched = CoalescingScheduler(
                engine, max_batch=4, max_wait=0.2
            )
            with sched:
                r1 = ForwardRequest(spec, s1, t_end, receivers=RECEIVERS)
                r2 = ForwardRequest(spec, s2, t_end, receivers=RECEIVERS)
                f1, f2 = sched.submit(r1), sched.submit(r2)
                f1.result(), f2.result()
            assert sched.stats()["batches"] == 1  # they coalesced
        tr = telemetry.current_tracer()
        assert r1.trace_id is not None and r2.trace_id is not None
        assert r1.trace_id != r2.trace_id
        # both link to the same batch trace
        assert tr.trace_links[r1.trace_id] == tr.trace_links[r2.trace_id]
        # latency histograms: per-request queue/total, per-batch solve
        reg = telemetry.metrics()
        assert reg["service.latency.total"].n == 2
        assert reg["service.latency.queue"].n == 2
        assert reg["service.latency.solve"].n == 1
        assert reg["service.batch_size"].quantile(0.5) == 2.0
        # stitching a request pulls in the shared solve spans
        st = stitch_trace(r1.trace_id, tr)
        paths = {e["path"] for e in st["events"]}
        assert "service.request/queue" in paths
        assert any("service.dispatch" in p for p in paths)
        assert st["linked"] == [tr.trace_links[r1.trace_id]]
        # the sibling request's own events are NOT pulled in
        assert not any(
            e["trace"] == r2.trace_id for e in st["events"]
        )

    def test_queue_snapshot_reports_window_occupancy(self):
        telemetry.enable()
        spec = SimulationSpec(**SPEC_KW)
        scen = idealized_strike_slip(L=spec.L)
        with Engine() as engine:
            sim = engine.simulation(spec)
            sched = CoalescingScheduler(
                engine, max_batch=8, max_wait=30.0
            )
            try:
                sched.submit(
                    ForwardRequest(spec, scen, 5.5 * sim.dt)
                )
                snap = sched.queue_snapshot()
                assert len(snap["open_windows"]) == 1
                w = snap["open_windows"][0]
                assert w["pending"] == 1 and w["max_batch"] == 8
                assert 0.0 < w["window_remaining"] <= 30.0
            finally:
                sched.close()

    def test_disabled_scheduler_mints_no_traces(self):
        spec = SimulationSpec(**SPEC_KW)
        scen = idealized_strike_slip(L=spec.L)
        with Engine() as engine:
            sim = engine.simulation(spec)
            with CoalescingScheduler(engine, max_wait=0.0) as sched:
                req = ForwardRequest(spec, scen, 5.5 * sim.dt)
                sched.submit(req).result()
        assert req.trace_id is None
        assert not telemetry.enabled()


# --------------------------------------------- distributed trace tags


def _dist_problem():
    mesh = uniform_hex_mesh(4)
    parts = rcb_partition(mesh.elem_centers, 2)
    return mesh, parts


class _PointForce:
    """Picklable point force for worker processes."""

    def __init__(self, node, nnode):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        if out is None:
            out = np.zeros((self.nnode, 3))
        else:
            out.fill(0.0)
        out[self.node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return out


class TestDistributedTraceTags:
    def test_simworld_timelines_carry_trace(self):
        telemetry.enable()
        mesh, parts = _dist_problem()
        force = _PointForce(mesh.nnode // 2, mesh.nnode)
        solver = DistributedWaveSolver(mesh, MAT, parts, SimWorld(2))
        with telemetry.trace_context("t-sim"):
            solver.run(force, 8.5 * solver.dt)
        assert solver.last_timeline is not None
        assert all(
            r.trace_id == "t-sim" for r in solver.last_timeline.ranks
        )
        recs = solver.last_timeline.span_records()
        assert all(r["trace"] == "t-sim" for r in recs)

    def test_procworld_trace_crosses_pipe_protocol(self):
        telemetry.enable()
        mesh, parts = _dist_problem()
        force = _PointForce(mesh.nnode // 2, mesh.nnode)
        with ProcWorld(2) as world:
            solver = DistributedWaveSolver(mesh, MAT, parts, world)
            with telemetry.trace_context("t-proc"):
                solver.run(force, 8.5 * solver.dt)
        # the trace id travelled master -> worker pipe -> timeline
        # payload -> master, across process boundaries
        assert all(
            r.trace_id == "t-proc" for r in solver.last_timeline.ranks
        )

    def test_payload_roundtrip_preserves_trace(self):
        from repro.telemetry import RankTimeline

        tl = RankTimeline(1, 3, trace_id="t-x")
        tl2 = RankTimeline.from_payload(tl.to_payload())
        assert tl2.trace_id == "t-x"
        # absent field stays None (older payloads)
        tl3 = RankTimeline.from_payload(
            {"rank": 0, "nsteps": 2, "durations": np.zeros((2, 5))}
        )
        assert tl3.trace_id is None


class TestTraceSurvivesKillRecovery:
    def test_killed_rank_respawn_yields_complete_trace(self, tmp_path):
        """A fault-injected request still produces one stitched trace:
        per-rank timelines tagged with the request id after respawn,
        plus a recovery annotation and a flight-recorder artifact."""
        telemetry.enable()
        flight_dir = str(tmp_path / "flight")
        arm_flight_recorder(flight_dir)
        mesh, parts = _dist_problem()
        force = _PointForce(mesh.nnode // 2, mesh.nnode)
        d = str(tmp_path / "ckpt")
        with ProcWorld(2) as world:
            solver = DistributedWaveSolver(mesh, MAT, parts, world)
            plan = FaultPlan([FaultSpec("kill", rank=1, step=13)])
            with telemetry.trace_context("t-faulted"):
                solver.run(
                    force, 24.5 * solver.dt, checkpoint_dir=d,
                    checkpoint_every=5, faults=plan,
                    retry=RetryPolicy(backoff=0.0),
                )
            assert world.respawns == 1
        # the respawned ranks' timelines still carry the request trace
        assert all(
            r.trace_id == "t-faulted"
            for r in solver.last_timeline.ranks
        )
        # the recovery window is annotated into the same trace
        tr = telemetry.current_tracer()
        recovery = [
            (node, t0, dt, trace)
            for node, t0, dt, trace in tr.events
            if node.name == "recovery"
        ]
        assert len(recovery) == 1
        assert recovery[0][3] == "t-faulted"
        agg = {a["path"]: a for a in tr.aggregates()}
        assert agg["dist.run/recovery"]["count"] == 1
        # the stitched request trace covers solve + recovery
        st = stitch_trace(
            "t-faulted", tr,
            extra_records=solver.last_timeline.span_records(),
        )
        assert "dist.run/recovery" in {e["path"] for e in st["events"]}
        assert len(st["rank_spans"]) > 0
        # and the flight recorder captured the failure
        dumps = os.listdir(flight_dir)
        assert len(dumps) == 1
        meta = json.loads(
            open(os.path.join(flight_dir, dumps[0])).readline()
        )
        assert "worker_failure" in meta["reason"]
        assert meta["trace_context"] == "t-faulted"


# --------------------------------------------------- per-drain scoping


class TestPerDrainCacheScope:
    def test_stats_since_baseline(self):
        from repro.service import ArtifactCache

        cache = ArtifactCache(capacity=4)
        cache.get_or_build("k1", lambda: "a1")  # miss + build
        cache.get_or_build("k1", lambda: "a1")  # hit
        base = cache.counters()
        # second "drain": two hits, one miss
        cache.get_or_build("k1", lambda: "a1")
        cache.get_or_build("k1", lambda: "a1")
        cache.get_or_build("k2", lambda: "a2")
        drain = cache.stats_since(base)
        assert (drain["hits"], drain["misses"]) == (2, 1)
        assert drain["hit_rate"] == pytest.approx(2 / 3)
        # lifetime stats unaffected
        life = cache.stats()
        assert (life["hits"], life["misses"]) == (3, 2)

    def test_drain_section_in_report_text(self):
        from repro.telemetry import PerfReport

        r = PerfReport(
            service={
                "hits": 10, "misses": 2, "entries": 3,
                "build_seconds": 1.0,
                "drain": {"hits": 1, "misses": 1,
                          "build_seconds": 0.5, "hit_rate": 0.5},
            }
        )
        text = r.as_text()
        assert "this drain: 1/2 hits (50%)" in text

    def test_latency_quantile_section_renders(self):
        from repro.telemetry import PerfReport

        reg = MetricsRegistry()
        h = reg.histogram("service.latency.total")
        for v in (0.1, 0.2, 0.3, 0.4):
            h.observe(v)
        text = PerfReport(metrics=reg.as_dict()).as_text()
        assert "service latency quantiles" in text
        assert "total" in text
        # absent without latency histograms
        assert "quantiles" not in PerfReport().as_text()


# ----------------------------------------------- disabled-path safety


class TestDisabledPath:
    def test_trace_context_works_without_tracer(self):
        assert not telemetry.enabled()
        with telemetry.trace_context("t-off"):
            assert telemetry.get_trace_context() == "t-off"
            with telemetry.span("noop"):
                pass  # null span, no tracer to record into
        assert telemetry.get_trace_context() is None

    def test_observe_gated(self):
        telemetry.observe("service.latency.total", 1.0)
        assert "service.latency.total" not in telemetry.metrics()

    def test_stitch_without_tracer_is_empty(self):
        st = stitch_trace("t-any", None)
        assert st["events"] == [] and st["duration"] == 0.0
