"""Adjoint-gradient exactness and GN Hessian properties.

These are the tests the whole inversion rests on: the discrete adjoint
must reproduce finite differences of the objective to near roundoff,
for every parameter class (material, u0, t0, T), with every term on
(absorbing-boundary mu-coupling, fault mu-coupling, TV, barrier).
"""

import numpy as np
import pytest

from repro.inverse import (
    FaultLineSource2D,
    MaterialGrid,
    ScalarWaveInverseProblem,
    SourceInverseProblem,
    TotalVariation,
)
from repro.inverse.fault_source import SourceParams
from repro.solver import RegularGridScalarWave


@pytest.fixture(scope="module")
def setup2d():
    nx, nz = 16, 8
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))

    def mu_true_fn(pts):
        return 2.0e9 + 1.5e9 * (pts[:, 1] > 400.0)

    m_true = grid.sample(mu_true_fn)
    fault = FaultLineSource2D(solver, ix=nx // 2, jz=range(2, 6))
    params = fault.hypocentral_params(
        hypo_j=4, rupture_velocity=2000.0, u0=1.0, t0=0.3
    )
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = 120
    u = solver.march(
        mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
    )
    rec = solver.surface_nodes()[::2]
    data = u[:, rec]
    return solver, grid, fault, params, rec, data, dt, nsteps, m_true


def fd_check(objective, x0, g, indices, eps, rtol):
    for i in indices:
        xp = x0.copy()
        xp[i] += eps
        xm = x0.copy()
        xm[i] -= eps
        fd = (objective(xp) - objective(xm)) / (2 * eps)
        assert abs(fd - g[i]) <= rtol * max(abs(fd), 1e-30), (
            f"component {i}: adjoint {g[i]:.8e} vs FD {fd:.8e}"
        )


class TestMaterialGradient:
    def test_gradient_matches_fd_plain(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        m0 = np.full(grid.n, 2.5e9)
        g, J, _ = prob.gradient(m0)
        fd_check(
            lambda m: prob.objective(m)[0],
            m0,
            g,
            [0, 3, 7, grid.n - 1],
            eps=2.5e5,
            rtol=1e-5,
        )

    def test_gradient_matches_fd_with_tv_and_barrier(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
            reg=TotalVariation(grid, beta=1e-12, eps=1e6),
            barrier_gamma=1e-4, mu_min=1e8,
        )
        rng = np.random.default_rng(0)
        m0 = 2.5e9 + 2e8 * rng.standard_normal(grid.n)
        g, J, _ = prob.gradient(m0)
        fd_check(
            lambda m: prob.objective(m)[0],
            m0,
            g,
            [1, 5, 10],
            eps=2.5e5,
            rtol=1e-4,
        )

    def test_zero_residual_zero_data_gradient(self, setup2d):
        """At the true model the data gradient vanishes."""
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        g, J, _ = prob.gradient(m_true)
        assert J < 1e-20
        assert np.abs(g).max() < 1e-15

    def test_nonpositive_modulus_rejected(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        with pytest.raises(FloatingPointError):
            prob.forward(np.full(grid.n, -1.0))


class TestGaussNewtonHessian:
    def test_symmetric_and_psd(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        m0 = np.full(grid.n, 2.2e9)
        _, _, state = prob.gradient(m0)
        rng = np.random.default_rng(1)
        v = rng.standard_normal(grid.n) * 1e8
        w = rng.standard_normal(grid.n) * 1e8
        Hv = prob.gn_hessvec(v, state)
        Hw = prob.gn_hessvec(w, state)
        np.testing.assert_allclose(w @ Hv, v @ Hw, rtol=1e-10)
        assert v @ Hv >= 0
        assert w @ Hw >= 0

    def test_gn_matches_fd_hessian_at_exact_fit(self, setup2d):
        """At zero residual the GN Hessian IS the full Hessian, so
        ``H v ~ (g(m + e v) - g(m - e v)) / 2e``."""
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        _, _, state = prob.gradient(m_true)
        rng = np.random.default_rng(2)
        v = rng.standard_normal(grid.n)
        v /= np.linalg.norm(v)
        Hv = prob.gn_hessvec(v, state)
        eps = 2e4
        gp, _, _ = prob.gradient(m_true + eps * v)
        gm, _, _ = prob.gradient(m_true - eps * v)
        fd = (gp - gm) / (2 * eps)
        np.testing.assert_allclose(Hv, fd, rtol=2e-3, atol=1e-18)

    def test_linearity(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, _ = setup2d
        prob = ScalarWaveInverseProblem(
            solver, grid, rec, data, dt, nsteps, fault=fault,
            source_params=params,
        )
        _, _, state = prob.gradient(np.full(grid.n, 2.2e9))
        rng = np.random.default_rng(3)
        v, w = rng.standard_normal((2, grid.n))
        Hvw = prob.gn_hessvec(2.0 * v - 3.0 * w, state)
        np.testing.assert_allclose(
            Hvw,
            2.0 * prob.gn_hessvec(v, state) - 3.0 * prob.gn_hessvec(w, state),
            rtol=1e-8,
            atol=1e-20,
        )


class TestSourceGradient:
    def test_gradient_matches_fd_all_parameter_classes(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        mu_e = grid.to_elements(solver) @ m_true
        sp = SourceInverseProblem(
            solver, fault, mu_e, rec, data, dt, nsteps,
            beta_u0=1e-4, beta_t0=1e-4, beta_T=1e-4,
        )
        p0 = SourceParams(
            np.full(fault.ns, 0.9),
            np.full(fault.ns, 0.35),
            params.T + 0.04,
        )
        x0 = p0.pack()
        g, J, _ = sp.gradient(x0)
        # indices across u0 (0..3), t0 (4..7), T (8..11)
        fd_check(
            lambda x: sp.objective(x)[0],
            x0,
            g,
            [0, 2, 5, 7, 9, 11],
            eps=1e-6,
            rtol=1e-5,
        )

    def test_source_gn_symmetric(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        mu_e = grid.to_elements(solver) @ m_true
        sp = SourceInverseProblem(solver, fault, mu_e, rec, data, dt, nsteps)
        x0 = SourceParams(
            np.full(fault.ns, 0.9), np.full(fault.ns, 0.35), params.T
        ).pack()
        _, _, state = sp.gradient(x0)
        rng = np.random.default_rng(4)
        v, w = rng.standard_normal((2, 3 * fault.ns))
        np.testing.assert_allclose(
            w @ sp.gn_hessvec(v, state),
            v @ sp.gn_hessvec(w, state),
            rtol=1e-9,
        )

    def test_exact_fit_zero_gradient(self, setup2d):
        solver, grid, fault, params, rec, data, dt, nsteps, m_true = setup2d
        mu_e = grid.to_elements(solver) @ m_true
        sp = SourceInverseProblem(solver, fault, mu_e, rec, data, dt, nsteps)
        g, J, _ = sp.gradient(params.pack())
        assert J < 1e-20
        assert np.abs(g).max() < 1e-14
