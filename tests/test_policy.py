"""Service resilience policy: the failure paths, pinned.

What PR 10 guarantees, each with a test:

* **Poison isolation** — a coalesced batch with 1 (or 2) NaN-poisoned
  members fails *only* the culprits with
  :class:`PoisonedRequestError`; every innocent future resolves with
  bits identical to a solo run, and the bisection uses at most the
  log₂ solve bound.
* **Admission control** — a bounded queue sheds the overflow request
  with :class:`ShedError` before enqueueing anything.
* **Deadlines** — a request that ages out in the queue is rejected at
  dispatch (no solver time spent); one whose batch outlives it is
  rejected at demux.
* **Retry + breaker** — transient :class:`WorkerFailure` retries
  through :class:`RetryPolicy`; repeated failures trip the breaker,
  which fast-fails queued and new work, then half-opens on a probe.
* **Close cannot hang callers** — a wedged engine at ``close`` leaves
  every pending future cancelled, not forgotten.
"""

import threading
import time
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np
import pytest

from repro.materials import HomogeneousMaterial
from repro.parallel.transport import WorkerFailure
from repro.resilience.health import NumericalHealthError
from repro.resilience.recovery import RetryPolicy
from repro.service import (
    CircuitBreaker,
    CircuitOpenError,
    CoalescingScheduler,
    DeadlineExceeded,
    Engine,
    ForwardRequest,
    PoisonedRequestError,
    ServicePolicy,
    ShedError,
    SimulationSpec,
)
from repro.sources import idealized_strike_slip

MAT = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)

SPEC_KW = dict(
    material=MAT,
    L=8000.0,
    fmax=0.4,
    box_frac=(1, 1, 0.5),
    max_level=3,
)

RECEIVERS = np.array([[4000.0, 4000.0, 0.0], [2000.0, 3000.0, 0.0]])


def make_spec(**overrides) -> SimulationSpec:
    kw = dict(SPEC_KW)
    kw.update(overrides)
    return SimulationSpec(**kw)


def poisoned_scenario(L):
    """A strike-slip scenario whose first source carries a NaN moment
    tensor — its forcing poisons the shared state block and trips the
    solver's finite-health check."""
    sc = idealized_strike_slip(L=L)
    sc.sources[0].moment = sc.sources[0].moment * np.nan
    return sc


@pytest.fixture(scope="module")
def warm_engine():
    eng = Engine()
    yield eng
    eng.close()


# ------------------------------------------------------ stub machinery


class _StubSpec:
    """Grouping key stand-in — the stub engine never builds it."""

    key = "stub-spec"


class StubEngine:
    """Engine double: scripted results/exceptions, optional blocking.

    ``script`` is a callable invoked per ``submit_batch`` call (after
    ``calls`` is bumped); raise inside it to fail the batch.  ``gate``
    is an optional :class:`threading.Event` the engine waits on
    before touching the script — the hook the close/breaker-drain
    tests use to hold a batch in flight."""

    def __init__(self, script=None, gate=None):
        self.calls = 0
        self.script = script
        self.gate = gate

    def submit_batch(
        self, spec, scenarios, t_end, *, receivers=None, record="velocity"
    ):
        self.calls += 1
        if self.gate is not None:
            self.gate.wait()
        if self.script is not None:
            self.script(self.calls)
        return [f"result-{i}" for i in range(len(scenarios))]

    def close(self):
        pass


def _req(t_end=1.0, **kw):
    return ForwardRequest(_StubSpec(), object(), t_end, **kw)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.002)


# -------------------------------------------------- poisoned batches


def test_one_poisoned_member_is_isolated(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    t_end = 12 * sim.dt
    scenarios = [
        poisoned_scenario(spec.L),
        idealized_strike_slip(L=spec.L),
        idealized_strike_slip(L=spec.L, slip=0.5),
        idealized_strike_slip(L=spec.L, rise_time=1.5),
    ]
    sched = CoalescingScheduler(
        warm_engine,
        max_batch=len(scenarios),
        max_wait=30.0,
        policy=ServicePolicy(retry=None),
    )
    futures = [
        sched.submit(
            ForwardRequest(
                spec, sc, t_end,
                receivers=RECEIVERS, request_id=f"req-{i}",
            )
        )
        for i, sc in enumerate(scenarios)
    ]
    sched.flush()
    # the culprit fails alone, structurally
    err = futures[0].exception()
    assert isinstance(err, PoisonedRequestError)
    assert err.request_id == "req-0"
    assert isinstance(err.__cause__, NumericalHealthError)
    # every innocent resolves bitwise-identical to a solo run
    for i in (1, 2, 3):
        seis = futures[i].result()
        solo = warm_engine.submit(
            spec, scenarios[i], t_end, receivers=RECEIVERS
        )
        assert np.array_equal(seis.data, solo.seismograms.data)
    # log2 bound: B=4 with one culprit costs 2*log2(B)+1 = 5 solves
    stats = sched.stats()
    assert stats["solves"] == 5
    assert stats["poisoned"] == 1
    assert stats["bisections"] == 2
    sched.close()


def test_two_poisoned_members_are_both_isolated(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    t_end = 12 * sim.dt
    scenarios = [
        poisoned_scenario(spec.L),
        idealized_strike_slip(L=spec.L),
        idealized_strike_slip(L=spec.L, slip=0.5),
        poisoned_scenario(spec.L),
    ]
    sched = CoalescingScheduler(
        warm_engine,
        max_batch=len(scenarios),
        max_wait=30.0,
        policy=ServicePolicy(retry=None),
    )
    futures = [
        sched.submit(
            ForwardRequest(
                spec, sc, t_end,
                receivers=RECEIVERS, request_id=f"req-{i}",
            )
        )
        for i, sc in enumerate(scenarios)
    ]
    sched.flush()
    for i in (0, 3):
        err = futures[i].exception()
        assert isinstance(err, PoisonedRequestError)
        assert err.request_id == f"req-{i}"
    for i in (1, 2):
        seis = futures[i].result()
        solo = warm_engine.submit(
            spec, scenarios[i], t_end, receivers=RECEIVERS
        )
        assert np.array_equal(seis.data, solo.seismograms.data)
    # culprits in opposite halves: worst case 2B-1 = 7 solves
    stats = sched.stats()
    assert stats["solves"] == 7
    assert stats["poisoned"] == 2
    sched.close()


def test_bisect_disabled_fails_whole_batch(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    t_end = 12 * sim.dt
    scenarios = [
        poisoned_scenario(spec.L),
        idealized_strike_slip(L=spec.L),
    ]
    sched = CoalescingScheduler(
        warm_engine,
        max_batch=2,
        max_wait=30.0,
        policy=ServicePolicy(bisect=False, retry=None),
    )
    futures = [
        sched.submit(ForwardRequest(spec, sc, t_end, receivers=RECEIVERS))
        for sc in scenarios
    ]
    sched.flush()
    # pre-policy blast radius: both futures fail, one solve
    assert all(
        isinstance(f.exception(), PoisonedRequestError) for f in futures
    )
    assert sched.stats()["solves"] == 1
    sched.close()


# ----------------------------------------------- deadlines & shedding


def test_expired_request_rejected_before_solve(warm_engine):
    spec = make_spec()
    sim = warm_engine.simulation(spec)
    t_end = 12 * sim.dt
    sched = CoalescingScheduler(
        warm_engine, max_batch=2, max_wait=30.0,
        policy=ServicePolicy(retry=None),
    )
    dead = sched.submit(
        ForwardRequest(
            spec, idealized_strike_slip(L=spec.L), t_end,
            receivers=RECEIVERS, request_id="dead",
            deadline=time.monotonic() - 0.001,
        )
    )
    live = sched.submit(
        ForwardRequest(
            spec, idealized_strike_slip(L=spec.L), t_end,
            receivers=RECEIVERS, request_id="live",
        )
    )
    sched.flush()
    err = dead.exception()
    assert isinstance(err, DeadlineExceeded)
    assert err.stage == "dispatch"
    assert err.request_id == "dead"
    assert live.result() is not None  # batchmate unharmed
    stats = sched.stats()
    assert stats["deadline_expired"] == 1
    assert stats["solves"] == 1  # the expired request cost nothing
    sched.close()


def test_deadline_checked_again_at_demux():
    def slow(_calls):
        time.sleep(0.25)

    eng = StubEngine(script=slow)
    sched = CoalescingScheduler(
        eng, max_batch=1, max_wait=0.0,
        policy=ServicePolicy(retry=None),
    )
    f = sched.submit(_req(deadline=time.monotonic() + 0.05))
    err = f.exception(timeout=5)
    assert isinstance(err, DeadlineExceeded)
    assert err.stage == "demux"
    sched.close()


def test_policy_mints_deadline_at_submit():
    eng = StubEngine()
    sched = CoalescingScheduler(
        eng, max_batch=4, max_wait=30.0,
        policy=ServicePolicy(deadline=60.0, retry=None),
    )
    r = _req()
    sched.submit(r)
    assert r.deadline is not None
    assert 55.0 < r.deadline - time.monotonic() <= 60.0
    sched.flush()
    sched.close()


def test_queue_at_capacity_sheds():
    eng = StubEngine()
    sched = CoalescingScheduler(
        eng, max_batch=10, max_wait=30.0,
        policy=ServicePolicy(max_queue_depth=2, retry=None),
    )
    f1 = sched.submit(_req())
    f2 = sched.submit(_req())
    with pytest.raises(ShedError) as ei:
        sched.submit(_req())
    assert ei.value.depth == 2
    assert ei.value.limit == 2
    assert sched.stats()["shed"] == 1
    sched.flush()
    # the admitted requests were untouched by the shed
    assert f1.result() == "result-0"
    assert f2.result() == "result-1"
    sched.close()


# ------------------------------------------------- retry & breaker


def test_transient_worker_failure_retries():
    def flaky(calls):
        if calls <= 2:
            raise WorkerFailure("transient rank death", ranks=[1])

    eng = StubEngine(script=flaky)
    sched = CoalescingScheduler(
        eng, max_batch=1, max_wait=0.0,
        policy=ServicePolicy(
            retry=RetryPolicy(max_retries=2, backoff=0.001)
        ),
    )
    f = sched.submit(_req())
    assert f.result(timeout=10) == "result-0"
    assert eng.calls == 3
    stats = sched.stats()
    assert stats["retries"] == 2
    assert stats["breaker"] == "closed"
    sched.close()


def test_breaker_trips_fast_fails_and_half_opens():
    failing = [True]

    def script(_calls):
        if failing[0]:
            raise WorkerFailure("pool died", fatal=True)

    eng = StubEngine(script=script)
    sched = CoalescingScheduler(
        eng, max_batch=1, max_wait=0.0,
        policy=ServicePolicy(
            retry=None, breaker_threshold=2, breaker_cooldown=0.2
        ),
    )
    for _ in range(2):
        f = sched.submit(_req())
        with pytest.raises(WorkerFailure):
            f.result(timeout=10)
    # two consecutive pool failures: breaker open, submit fast-fails
    assert sched.stats()["breaker"] == "open"
    with pytest.raises(CircuitOpenError) as ei:
        sched.submit(_req())
    assert ei.value.retry_after > 0.0
    calls_while_open = eng.calls
    # cooldown elapses, the pool heals: the next submission is the
    # probe, and its success closes the breaker
    time.sleep(0.25)
    failing[0] = False
    f = sched.submit(_req())
    assert f.result(timeout=10) == "result-0"
    assert eng.calls == calls_while_open + 1
    assert sched.stats()["breaker"] == "closed"
    sched.close()


def test_breaker_trip_drains_queued_requests():
    gate = threading.Event()

    def script(_calls):
        raise WorkerFailure("pool died", fatal=True)

    eng = StubEngine(script=script, gate=gate)
    sched = CoalescingScheduler(
        eng, max_batch=1, max_wait=0.0,
        policy=ServicePolicy(retry=None, breaker_threshold=1),
    )
    f1 = sched.submit(_req(t_end=1.0))
    _wait_for(lambda: eng.calls == 1)  # f1 is in flight (blocked)
    f2 = sched.submit(_req(t_end=2.0))  # queued behind it
    gate.set()
    with pytest.raises(WorkerFailure):
        f1.result(timeout=10)
    # the single failure tripped the breaker, which drained the queue
    # with fast errors instead of feeding it to a dead pool
    with pytest.raises(CircuitOpenError):
        f2.result(timeout=10)
    assert eng.calls == 1
    sched.close()


# ---------------------------------------------------- close & waits


def test_close_cancels_stuck_futures():
    gate = threading.Event()
    eng = StubEngine(gate=gate)
    sched = CoalescingScheduler(eng, max_batch=1, max_wait=0.0)
    f = sched.submit(_req())
    _wait_for(lambda: eng.calls == 1)
    # the engine is wedged: close's join times out and the pending
    # future is cancelled rather than leaking a forever-block
    sched.close(timeout=0.2)
    with pytest.raises(CancelledError):
        f.result(timeout=5)
    # un-wedge; the scheduler thread must exit without raising on
    # the already-cancelled future
    gate.set()
    sched._thread.join(timeout=5)
    assert not sched._thread.is_alive()


def test_map_wait_timeout():
    gate = threading.Event()
    eng = StubEngine(gate=gate)
    sched = CoalescingScheduler(eng, max_batch=1, max_wait=0.0)
    with pytest.raises(FuturesTimeoutError):
        sched.map_wait([_req()], timeout=0.2)
    gate.set()
    sched.close()


# ------------------------------------------------------ unit pieces


def test_circuit_breaker_state_machine():
    clock = [0.0]
    br = CircuitBreaker(2, 10.0, clock=lambda: clock[0])
    assert br.allow()
    assert br.record_failure() is False
    assert br.record_failure() is True  # threshold reached
    assert br.state == "open"
    assert not br.allow()
    assert br.retry_after() == pytest.approx(10.0)
    clock[0] = 11.0
    assert br.state == "half_open"
    assert br.allow()  # the probe
    assert br.record_failure() is True  # probe failed: reopen
    assert not br.allow()
    clock[0] = 25.0
    assert br.allow()
    br.record_success()
    assert br.state == "closed"
    assert br.allow()


def test_retry_policy_call():
    policy = RetryPolicy(max_retries=2, backoff=0.0)
    attempts = []
    state = {"calls": 0}

    def flaky():
        state["calls"] += 1
        if state["calls"] <= 2:
            raise ValueError("transient")
        return 7

    assert policy.call(
        flaky, retry_on=(ValueError,),
        on_retry=lambda a, e: attempts.append(a),
    ) == 7
    assert state["calls"] == 3
    assert attempts == [1, 2]

    # exhausting the budget re-raises the last failure
    def always():
        state["calls"] += 1
        raise ValueError("permanent")

    state["calls"] = 0
    with pytest.raises(ValueError):
        policy.call(always, retry_on=(ValueError,))
    assert state["calls"] == 3  # 1 try + 2 retries

    # non-matching exceptions propagate immediately
    state["calls"] = 0

    def wrong():
        state["calls"] += 1
        raise KeyError("not transient")

    with pytest.raises(KeyError):
        policy.call(wrong, retry_on=(ValueError,))
    assert state["calls"] == 1
