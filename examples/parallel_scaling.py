"""Parallel execution: distributed time stepping and the machine model.

Demonstrates the paper's Section 2.4 machinery at laptop scale:

1. run the explicit solver distributed over simulated MPI ranks and
   verify the trajectory matches the serial solver exactly;
2. show the measured per-rank work/communication profile;
3. model the AlphaServer scalability of the same mesh (a mini
   Table 2.1).

Run:  python examples/parallel_scaling.py
"""

import numpy as np

from repro.materials import HomogeneousMaterial
from repro.mesh import extract_mesh, rcb_partition
from repro.octree import build_adaptive_octree
from repro.parallel import DistributedWaveSolver, SimWorld, predict_scalability
from repro.parallel.perfmodel import format_table
from repro.physics import lame_from_velocities
from repro.solver import ElasticWaveSolver
from repro.sources import MomentTensorSource
from repro.sources.fault import SourceCollection


def main():
    L, n = 1000.0, 8
    mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=4
    )
    mesh = extract_mesh(tree, L=L)
    src = MomentTensorSource(
        position=np.array([501.0, 501.0, 501.0]),
        moment=1e12 * np.eye(3),
        T=0.02,
        t0=0.1,
    )
    forces = SourceCollection(mesh, tree, [src])

    # serial reference (stop one step early: the callback reports the
    # pre-update state)
    serial = ElasticWaveSolver(mesh, tree, mat, stacey_c1=False)
    nsteps = int(np.ceil(0.3 / serial.dt))
    ref = {}
    serial.run(
        forces,
        (nsteps + 1) * serial.dt,
        callback=lambda k, t, u: ref.__setitem__("u", u.copy())
        if k == nsteps
        else None,
    )

    print(f"mesh: {mesh.nelem} elements, {mesh.nnode} grid points")
    for nranks in (2, 4, 8):
        parts = rcb_partition(mesh.elem_centers, nranks)
        world = SimWorld(nranks)
        dist = DistributedWaveSolver(mesh, mat, parts, world, dt=serial.dt)
        fbuf = np.zeros((mesh.nnode, 3))
        u = dist.run(lambda t: forces.forces_at(t, fbuf), 0.3)
        err = np.abs(u - ref["u"]).max() / max(np.abs(ref["u"]).max(), 1e-30)
        stats = world.total_stats()
        print(
            f"  {nranks} ranks: max deviation from serial {err:.2e}; "
            f"{stats.messages_sent:,} messages, "
            f"{stats.bytes_sent / 1e6:.2f} MB exchanged, "
            f"{stats.flops / 1e9:.2f} Gflop executed"
        )

    # machine-model scalability of a larger mesh (mini Table 2.1)
    big = extract_mesh(
        build_adaptive_octree(lambda c, s: np.full(len(c), 1 / 32),
                              max_level=6),
        L=L,
    )
    vs, vp, rho = mat.query(big.elem_centers)
    lam, mu = lame_from_velocities(vs, vp, rho)
    rows = [
        predict_scalability(big, lam, mu, p, model_name="demo")
        for p in (1, 4, 16, 64)
    ]
    print("\nAlphaServer machine-model scalability of a "
          f"{big.nnode:,}-point mesh:")
    print(format_table(rows))


if __name__ == "__main__":
    main()
