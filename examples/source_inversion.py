"""Invert the earthquake source from surface records.

The paper's Figure 3.3 experiment: with the basin structure known,
recover the rupture's dislocation amplitude u0(x), rise time t0(x), and
delay time T(x) along the fault from antiplane surface records — the
delay-time profile reveals the rupture propagation speed.

Run:  python examples/source_inversion.py
"""

import numpy as np

from repro.core import AntiplaneSetup, SourceInversion
from repro.inverse.fault_source import SourceParams


def vs_section(pts):
    vs = np.full(len(pts), 1.8)
    vs = np.where(pts[:, 1] > 5.0, 2.5, vs)
    return vs


def main():
    setup = AntiplaneSetup(
        vs_section,
        lengths=(20.0, 10.0),
        wave_shape=(40, 20),
        fault_x_frac=0.5,
        fault_depth_frac=(0.2, 0.8),
        rupture_velocity=2.0,
        u0=1.0,
        t0=1.0,
        n_receivers=24,
        t_end=16.0,
    )
    pt = setup.params_true
    print(
        f"target rupture: {setup.fault.ns} fault segments, "
        f"u0 = {pt.u0[0]:.2f} m, rise time {pt.t0[0]:.2f} s, rupture "
        f"velocity 2.0 km/s encoded in T(x)"
    )

    inv = SourceInversion(setup)
    p0 = SourceParams(
        u0=np.full(setup.fault.ns, 1.4),
        t0=np.full(setup.fault.ns, 1.5),
        T=np.full(setup.fault.ns, float(np.mean(pt.T))),
    )
    print("\ninverting (Gauss-Newton-CG, Tikhonov on each field)...")
    p_hat, res = inv.run(p_init=p0, max_newton=25, cg_maxiter=40,
                         verbose=True)

    print("\n depth(km)    u0_hat  u0_true    t0_hat  t0_true     T_hat   T_true")
    for d, a, b, c, e, f, g in zip(
        setup.fault.depths, p_hat.u0, pt.u0, p_hat.t0, pt.t0, p_hat.T, pt.T
    ):
        print(
            f"  {d:8.2f}  {a:8.3f} {b:8.3f}  {c:8.3f} {e:8.3f}  "
            f"{f:8.3f} {g:8.3f}"
        )

    # the recovered delay-time slope gives the rupture velocity
    dz = np.diff(setup.fault.depths)
    dT = np.abs(np.diff(p_hat.T))
    vr = float(np.median(dz[dT > 1e-6] / dT[dT > 1e-6]))
    print(f"\nrecovered rupture velocity ~ {vr:.2f} km/s (target 2.0)")
    print(
        f"total wave-equation solves: {inv.problem.n_wave_solves} — the "
        "inverse problem costs hundreds of forward simulations (paper "
        "Section 4)"
    )


if __name__ == "__main__":
    main()
