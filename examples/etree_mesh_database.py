"""Generate an out-of-core mesh database with the etree method.

The paper's Section 2.3 workflow: construct a wavelength-adaptive
octree straight into an on-disk B-tree, enforce the 2-to-1 constraint
with local (blocked) balancing, and derive the element and node
databases — "the limit on the largest mesh size ... is extended to the
available disk space, instead of the size of the memory".

Run:  python examples/etree_mesh_database.py
"""

import os
import tempfile

import numpy as np

from repro.etree import EtreeDatabase, generate_mesh_database
from repro.etree.pipeline import ElementRecord, HANGING_FLAG, NodeRecord
from repro.materials import SyntheticBasinModel


def main():
    workdir = os.path.join(tempfile.gettempdir(), "repro_etree_example")
    L = 80_000.0
    material = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=250.0)

    result = generate_mesh_database(
        workdir,
        material,
        L=L,
        fmax=0.1,
        max_level=7,
        box_frac=(1, 1, 0.5),
        h_min=L / 2**7,
        blocks_per_axis=4,
        cache_pages=64,  # tiny cache: the mesh lives on disk
    )
    print("etree pipeline (construct -> balance -> transform):")
    print(f"  unbalanced octants: {result.n_octants_unbalanced:,}")
    print(f"  elements          : {result.n_elements:,}")
    print(f"  grid points       : {result.n_nodes:,}")
    print(f"  hanging points    : {result.n_hanging:,}")
    print(f"  construct {result.construct_seconds:.2f} s | balance "
          f"{result.balance_seconds:.2f} s | transform "
          f"{result.transform_seconds:.2f} s")
    for step, st in result.io_stats.items():
        print(f"  {step:<9}: {st['page_reads']:,} page reads, "
              f"{st['page_writes']:,} page writes")
    sizes = {
        name: os.path.getsize(p) / 1e6
        for name, p in (
            ("octants", result.octant_path),
            ("balanced", result.balanced_path),
            ("elements", result.element_path),
            ("nodes", result.node_path),
        )
    }
    print("  on-disk sizes (MB):", {k: f"{v:.1f}" for k, v in sizes.items()})

    # query the databases like an application would
    with EtreeDatabase(result.element_path, ElementRecord) as edb:
        k, rec = next(edb.scan())
        print(
            f"\nfirst element record: key={k}, nodes={rec['nodes'][:4]}..., "
            f"vs={rec['vs']:.0f} m/s, level={rec['level']}"
        )
    with EtreeDatabase(result.node_path, NodeRecord) as ndb:
        hang = 0
        for _, rec in ndb.scan():
            if rec["flags"] & HANGING_FLAG:
                hang += 1
        print(f"node database: {len(ndb):,} nodes, {hang:,} hanging "
              "(with interpolation stencils stored per record)")


if __name__ == "__main__":
    main()
