"""Quickstart: simulate an earthquake in a small synthetic basin.

Demonstrates the high-level API end-to-end in under a minute:

1. define a basin velocity model;
2. build a wavelength-adaptive octree hexahedral mesh;
3. rupture an idealized strike-slip fault;
4. record surface seismograms and look at basic ground-motion facts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ForwardSimulation
from repro.materials import SyntheticBasinModel
from repro.sources import idealized_strike_slip


def main():
    L = 16_000.0  # 16 km box
    material = SyntheticBasinModel(
        L=L, depth=8_000.0, vs_min=400.0,
        basin_center=(0.5 * L, 0.5 * L),
        basin_radii=(0.35 * L, 0.3 * L, 0.08 * L),
    )

    sim = ForwardSimulation(
        material,
        L=L,
        fmax=0.5,  # resolve up to 0.5 Hz
        box_frac=(1, 1, 0.5),
        max_level=6,
        h_min=250.0,
        damping_ratio=0.03,  # Rayleigh attenuation for soft soils
        damping_band=(0.05, 0.5),
    )
    print("mesh:", sim.mesh_summary())
    print(
        "uniform grid at the finest element size would need "
        f"{sim.uniform_equivalent_grid_points():,} points "
        f"({sim.uniform_equivalent_grid_points() / sim.mesh.nnode:.0f}x "
        "the adaptive mesh)"
    )

    scenario = idealized_strike_slip(
        L=L, n_strike=6, n_dip=3, rise_time=0.8, slip=1.0
    )
    print(
        f"source: {scenario.n_subfaults} subfaults, total moment "
        f"{scenario.total_moment:.2e} N m, rupture lasts "
        f"{scenario.duration():.1f} s"
    )

    # receivers: a line across the basin on the free surface
    xs = np.linspace(0.2 * L, 0.8 * L, 7)
    receivers = np.stack(
        [xs, np.full_like(xs, 0.5 * L), np.zeros_like(xs)], axis=1
    )
    result = sim.run(scenario, t_end=12.0, receivers=receivers,
                     snapshot_every=25)

    seis = result.seismograms
    pgv = np.abs(seis.data).max(axis=(1, 2))  # peak ground velocity
    print("\nstation   x(km)   PGV(m/s)")
    for i, (x, v) in enumerate(zip(xs, pgv)):
        print(f"  REC{i}   {x / 1000.0:6.1f}   {v:8.4f}")
    basin_center_pgv = pgv[len(pgv) // 2]
    edge_pgv = pgv[0]
    print(
        f"\nbasin-center vs edge PGV ratio: "
        f"{basin_center_pgv / edge_pgv:.2f} (sediments amplify motion)"
    )
    print(f"snapshots recorded: {result.snapshots.as_array().shape}")


if __name__ == "__main__":
    main()
