"""Invert the shear-wave structure of a basin cross-section.

The paper's Section 3.2 experiment at laptop scale: synthesize antiplane
records from a layered target section with a slow basin lens, then
recover the material from the free-surface records alone by multiscale
Gauss-Newton-CG with total-variation regularization, starting from a
homogeneous guess.

Run:  python examples/basin_inversion.py
"""

import numpy as np

from repro.core import AntiplaneSetup, MaterialInversion


def vs_target(pts):
    """Target section (km/s): three layers + a slow surface lens."""
    x, z = pts[:, 0], pts[:, 1]
    vs = np.full(len(pts), 1.5)
    vs = np.where(z > 3.0, 2.1, vs)
    vs = np.where(z > 7.0, 2.8, vs)
    lens = ((x - 7.0) / 4.0) ** 2 + (z / 2.0) ** 2 < 1.0
    return np.where(lens, 1.0, vs)


def ascii_section(grid, m):
    """Render a vs field (library helper; surface on top)."""
    from repro.io import render_section

    vs = np.sqrt(np.maximum(np.asarray(m), 0.0))
    return render_section(grid, vs, vmin=0.8, vmax=3.0)


def main():
    setup = AntiplaneSetup(
        vs_target,
        lengths=(20.0, 10.0),
        wave_shape=(48, 24),
        fault_x_frac=0.6,
        fault_depth_frac=(0.3, 0.8),
        rupture_velocity=2.2,
        t0=0.7,
        n_receivers=32,
        t_end=16.0,
        noise=0.05,
        seed=0,
    )
    print(
        f"pseudo-observed data: {len(setup.receivers)} receivers x "
        f"{setup.nsteps + 1} samples (5% noise), "
        f"wave grid {setup.solver.shape}"
    )

    inversion = MaterialInversion(setup, beta_tv=3e-6)
    result = inversion.run(
        n_levels=4, newton_per_level=8, cg_maxiter=30, m_init=3.0,
        verbose=True,
    )
    print("\nrelative model error per continuation level:")
    for (shape, gn), err in zip(
        result.multiscale.levels, result.model_errors
    ):
        print(
            f"  grid {shape}: error {err:.3f}, J {gn.objective:.3e}, "
            f"{gn.newton_iterations} Newton / {gn.total_cg_iterations} CG"
        )

    grid = result.multiscale.grid_final
    m_true = grid.sample(setup.mu_target_fn)
    print("\ntarget vs structure (surface at top, digits ~ km/s x2.9):")
    print(ascii_section(grid, m_true))
    print("\ninverted vs structure:")
    print(ascii_section(grid, result.m_final))


if __name__ == "__main__":
    main()
