"""Scaled Northridge scenario in the synthetic Greater-LA basin.

The workload of the paper's Section 2 at laptop scale: the idealized
blind-thrust source rupturing under a soft sedimentary basin, with
wavelength-adaptive octree meshing, Rayleigh attenuation, Stacey
absorbing boundaries, and free-surface snapshots.  Prints the
ground-motion pattern facts Figure 2.5 shows: rupture directivity and
basin amplification.

Run:  python examples/northridge_forward.py
"""

import numpy as np

from repro.core import ForwardSimulation
from repro.materials import SyntheticBasinModel
from repro.sources import idealized_northridge


def main():
    L = 80_000.0
    material = SyntheticBasinModel(L=L, depth=40_000.0, vs_min=400.0)

    sim = ForwardSimulation(
        material,
        L=L,
        fmax=0.0625,  # scaled from the paper's 1 Hz production runs
        box_frac=(1, 1, 0.5),
        max_level=6,
        h_min=1250.0,
        damping_ratio=0.03,
        damping_band=(0.00625, 0.0625),
    )
    summary = sim.mesh_summary()
    print("LA-basin mesh:")
    for k, v in summary.items():
        print(f"  {k}: {v}")

    scenario = idealized_northridge(L=L, n_strike=6, n_dip=4, rise_time=2.0)
    print(
        f"\nNorthridge-like source: strike {scenario.strike_deg}, "
        f"dip {scenario.dip_deg}, rake {scenario.rake_deg}, "
        f"{scenario.n_subfaults} subfaults, M0 = {scenario.total_moment:.2e} N m"
    )

    # stations: epicentral, forward-directivity, backward, basin, rock
    epi = scenario.hypocenter[:2]
    st = np.deg2rad(scenario.strike_deg)
    e_strike = np.array([np.sin(st), np.cos(st)])
    stations = {
        "epicentral": np.array([*epi, 0.0]),
        "forward-directivity": np.array([*(epi + 25_000 * e_strike), 0.0]),
        "backward": np.array([*(epi - 25_000 * e_strike), 0.0]),
        "basin-center": np.array([0.55 * L, 0.45 * L, 0.0]),
        "rock-site": np.array([0.08 * L, 0.08 * L, 0.0]),
    }
    names = list(stations)
    positions = np.stack([np.clip(stations[n], 0, L - 1) for n in names])
    result = sim.run(
        scenario, t_end=40.0, receivers=positions, snapshot_every=50
    )
    seis = result.seismograms
    print(f"\nsimulated {result.nsteps} steps of 40 s at dt={sim.dt:.3f} s")
    print("\nstation               PGV (m/s)")
    pgv = np.abs(seis.data).max(axis=(1, 2))
    for n, v in zip(names, pgv):
        print(f"  {n:<20} {v:8.4f}")
    print(
        f"\nforward/backward directivity ratio: "
        f"{pgv[1] / max(pgv[2], 1e-12):.2f}"
    )
    print(
        f"basin/rock amplification          : "
        f"{pgv[3] / max(pgv[4], 1e-12):.2f}"
    )
    frames = result.snapshots.as_array()
    print(f"\n{frames.shape[0]} surface snapshots recorded; "
          f"wavefield peak {frames.max():.3e} m")


if __name__ == "__main__":
    main()
