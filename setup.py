"""Legacy setup shim: the environment has no `wheel` package, so editable
installs must go through `pip install -e . --no-build-isolation
--no-use-pep517` (see README). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
