"""Clustered local time stepping (LTS) for the multiscale octree mesh.

The wavelength-adaptive mesh spans huge element-size (and wave-speed)
ratios, yet a single leapfrog ``dt`` is pinned by the *smallest* stable
element, so stiff/coarse elements step far below their own limit.
Rate-binned LTS groups elements into power-of-two step clusters
``dt_k = 2^k * dt`` and advances each cluster at its own rate: the fine
clusters substep while the coarse ones hold, with time-interpolated
values at cluster boundaries.  On a 2-to-1 balanced octree the binned
rates need only one smoothing pass to inherit the same invariant —
elements sharing a grid point differ by at most one rate level — which
is exactly what makes the interpolation second-order and local.

This module holds the mesh-side planning: per-element rate binning
(:func:`bin_rates`), the 2-to-1 rate smoothing (:func:`smooth_rates`,
with optional equal-rate node groups for hanging-node constraint
closures), and the per-level execution plan (:class:`LTSPlan` /
:func:`build_lts_plan`) the solvers drive their clustered-leapfrog
schedules from.

Schedule contract (shared by every solver; see DESIGN.md):

* One loop over **fine step indices** ``j``; level ``c`` (rate ``r_c``)
  fires when ``j % r_c == 0``, and levels fire **coarsest first**
  within one index.
* When level ``c`` fires at ``j``, its own nodes and every same-or-
  finer-rate neighbor hold the exact state at time ``j*dt``; each
  coarser (rate ``2 r_c``) neighbor is bracketed by its
  ``(x_prev, x_cur)`` pair and is evaluated by linear interpolation
  ``(1-theta) x_prev + theta x_cur`` with
  ``theta = (j mod 2 r_c) / (2 r_c)`` (0 or 1/2) — coarsest-first
  ordering guarantees the bracket exists.
* All nodes are synchronized at multiples of the coarsest rate — the
  only indices where checkpoints are taken (and the only ones a resume
  may start from).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LTSLevel",
    "LTSPlan",
    "bin_rates",
    "build_lts_plan",
    "constraint_groups",
    "node_rates",
    "smooth_rates",
]

#: default cap on the coarsest-to-finest step ratio; beyond ~32 the
#: remaining work in the coarse clusters is negligible and deeper
#: hierarchies only add interpolation overhead
DEFAULT_MAX_RATE = 32


def bin_rates(elem_dt, *, max_rate: int = DEFAULT_MAX_RATE) -> np.ndarray:
    """Per-element power-of-two step rates from per-element stable
    steps: ``r_e = 2^floor(log2(dt_e / min(dt_e)))``, clipped to
    ``max_rate``.

    Rates are **relative to the minimum** stable step, so element ``e``
    marching at ``r_e * dt`` keeps exactly the safety margin of the
    global-dt run (any common safety factor cancels out of the ratio).
    """
    elem_dt = np.asarray(elem_dt, dtype=float)
    if elem_dt.size == 0:
        raise ValueError("empty mesh")
    max_rate = int(max_rate)
    if max_rate < 1 or (max_rate & (max_rate - 1)):
        raise ValueError(f"max_rate must be a power of two, got {max_rate}")
    ratio = elem_dt / np.min(elem_dt)
    levels = np.floor(np.log2(np.maximum(ratio, 1.0))).astype(np.int64)
    return np.minimum(1 << levels, max_rate)


def _group_min(values: np.ndarray, groups) -> None:
    """Clamp ``values`` to the per-group minimum, in place.  ``groups``
    is a sequence of node-index arrays (disjoint equal-rate closures)."""
    for g in groups:
        values[g] = values[g].min()


def node_rates(conn, rates, nnode: int, *, groups=None) -> np.ndarray:
    """Per-node rates induced by element rates: each grid point steps
    at the rate of its *fastest* (finest) adjacent element, so its
    residual row is complete whenever it updates.  Nodes in an
    equal-rate ``group`` share the group minimum (the hanging-node
    projection couples them into one update)."""
    conn = np.asarray(conn)
    rates = np.asarray(rates)
    nmin = np.full(nnode, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(nmin, conn.ravel(), np.repeat(rates, conn.shape[1]))
    if groups:
        _group_min(nmin, groups)
    return nmin


def smooth_rates(conn, rates, nnode: int, *, groups=None) -> np.ndarray:
    """Enforce the 2-to-1 rate invariant: every element's rate is at
    most twice the rate of any node it touches (equivalently, elements
    sharing a grid point differ by at most one power-of-two level).

    Iterates ``r_e <- min(r_e, 2 * min_n node_rate(n))`` to a fixpoint;
    rates only decrease, so the loop terminates.  ``groups`` (disjoint
    node-index arrays, e.g. hanging-node constraint closures) are
    forced to a common node rate at every sweep, which keeps the
    hanging-node projection block-diagonal across levels."""
    conn = np.asarray(conn)
    rates = np.asarray(rates).copy()
    while True:
        nmin = node_rates(conn, rates, nnode, groups=groups)
        capped = np.minimum(rates, 2 * nmin[conn].min(axis=1))
        if np.array_equal(capped, rates):
            return rates
        rates = capped


@dataclass
class LTSLevel:
    """One rate cluster of the plan.

    ``elems`` holds the cluster's own elements followed by the *halo* —
    rate-``2r`` elements touching a rate-``r`` node, whose rows the
    cluster needs for its residuals (``n_own_elems`` marks the split).
    ``own_nodes`` are the grid points this level updates;
    ``interp_nodes`` the coarser (rate ``2r``) points in the cluster's
    connectivity whose values are time-interpolated around each matvec.
    """

    rate: int
    elems: np.ndarray
    n_own_elems: int
    own_nodes: np.ndarray
    interp_nodes: np.ndarray


@dataclass
class LTSPlan:
    """Clustered-leapfrog execution plan for one (mesh, material, dt).

    ``levels`` are ordered **coarsest first** — the firing order inside
    one fine index.  ``trivial`` plans (a single rate-1 cluster) carry
    no speedup; solvers fall back to their global loop, which keeps
    ``lts=on`` bitwise-identical to ``lts=off`` on unclustered models.
    """

    dt: float
    elem_rate: np.ndarray
    node_rate: np.ndarray
    levels: list[LTSLevel] = field(default_factory=list)

    @property
    def nelem(self) -> int:
        return len(self.elem_rate)

    @property
    def min_rate(self) -> int:
        return int(self.levels[-1].rate)

    @property
    def max_rate(self) -> int:
        return int(self.levels[0].rate)

    @property
    def trivial(self) -> bool:
        return len(self.levels) == 1 and self.levels[0].rate == 1

    def histogram(self) -> dict[int, int]:
        """Cluster histogram ``{rate: element count}`` (own elements
        only — halo elements are counted at their home rate)."""
        return {int(lv.rate): int(lv.n_own_elems) for lv in self.levels}

    def theoretical_speedup(self) -> float:
        """Element-update work ratio of the global-dt loop over the
        clustered loop: ``nelem / sum_c(|E_c| / r_c)``.  Halo elements
        are charged to every cluster that applies them, so this is the
        honest (overlap-included) bound the benchmark compares against.
        """
        work = sum(len(lv.elems) / lv.rate for lv in self.levels)
        return self.nelem / work

    def sync_boundary(self, j: int) -> bool:
        """True when fine index ``j`` is a full synchronization point
        (all nodes hold the state at ``j*dt``) — the only indices where
        checkpoints may be written or a resume may start."""
        return j % self.max_rate == 0

    def as_dict(self) -> dict:
        return {
            "dt": float(self.dt),
            "levels": len(self.levels),
            "min_rate": self.min_rate,
            "max_rate": self.max_rate,
            "histogram": {str(k): v for k, v in self.histogram().items()},
            "theoretical_speedup": self.theoretical_speedup(),
        }


def build_lts_plan(
    conn,
    nnode: int,
    *,
    dt: float,
    elem_dt=None,
    rates=None,
    max_rate: int = DEFAULT_MAX_RATE,
    groups=None,
) -> LTSPlan:
    """Build the clustered plan from per-element stable steps.

    Either ``elem_dt`` (per-element stable steps, binned and smoothed
    here) or pre-smoothed ``rates`` (the distributed solver bins
    globally, clamps rank boundaries, and hands each rank its slice)
    must be given.  ``groups`` are disjoint node-index arrays forced to
    a common rate (hanging-node constraint closures).
    """
    conn = np.asarray(conn)
    if rates is None:
        if elem_dt is None:
            raise ValueError("need elem_dt or rates")
        rates = smooth_rates(
            conn, bin_rates(elem_dt, max_rate=max_rate), nnode, groups=groups
        )
    else:
        rates = np.asarray(rates)
    nrate = node_rates(conn, rates, nnode, groups=groups)

    levels = []
    for r in sorted(np.unique(rates).tolist(), reverse=True):
        own = np.nonzero(rates == r)[0]
        # halo: one-coarser elements whose rows the r-rate nodes need
        halo_mask = (rates == 2 * r) & (nrate[conn] == r).any(axis=1)
        elems = np.concatenate([own, np.nonzero(halo_mask)[0]])
        enodes = np.unique(conn[elems])
        levels.append(
            LTSLevel(
                rate=int(r),
                elems=elems,
                n_own_elems=len(own),
                own_nodes=enodes[nrate[enodes] == r],
                interp_nodes=enodes[nrate[enodes] == 2 * r],
            )
        )
    # a level can end up owning no grid points (every node of its
    # elements touches a finer element); firing it would waste a matvec
    # that updates nothing — drop it, its elements already ride along
    # as halo of the next finer level
    levels = [lv for lv in levels if len(lv.own_nodes)]
    plan = LTSPlan(dt=float(dt), elem_rate=rates, node_rate=nrate,
                   levels=levels)
    # every grid point is owned by exactly one level (the levels are
    # keyed by the distinct element rates, and a node's rate is the min
    # over its adjacent elements, so it always names an existing level)
    assert sum(len(lv.own_nodes) for lv in levels) == nnode
    return plan


def constraint_groups(masters: dict) -> list[np.ndarray]:
    """Equal-rate node groups from hanging-node constraint closures.

    The hanging-node projection ``B^T A B`` couples each hanging point
    to its masters, so those nodes must update together: every
    connected component of the (hanging, master) relation becomes one
    group, which :func:`smooth_rates` clamps to a common rate.  That
    keeps each bar (independent) dof's support inside a single rate
    cluster, so the projection splits into independent per-level
    blocks.  ``masters`` is ``HangingNodeInfo.masters`` — the ragged
    ``{hanging: {master: weight}}`` map."""
    parent: dict[int, int] = {}

    def find(a: int) -> int:
        root = a
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    for i, stencil in masters.items():
        ri = find(int(i))
        for jnode in stencil:
            parent[find(int(jnode))] = ri
    comps: dict[int, list[int]] = {}
    for a in parent:
        comps.setdefault(find(a), []).append(a)
    return [
        np.array(sorted(members), dtype=np.int64)
        for members in comps.values()
        if len(members) > 1
    ]


def interp_theta(j: int, rate: int) -> float:
    """Interpolation weight for a rate-``2*rate`` neighbor at fine
    index ``j``: 0 right after the coarse update (its ``x_prev`` *is*
    the state at ``j*dt``), 1/2 at the half-way substep."""
    return (j % (2 * rate)) / (2.0 * rate)
