"""Wave propagation solvers.

:class:`ElasticWaveSolver` is the paper's production code path: explicit
central differences on octree hexahedral meshes with lumped mass,
diagonal/off-diagonal splitting of the damping terms (eq. 2.4), Stacey
absorbing boundaries, Rayleigh attenuation, and the hanging-node
projection ``B^T A B ubar = B^T b`` (eq. 2.5) that keeps the update
explicit.

:class:`TetWaveSolver` is the earlier linear-tetrahedra baseline used
for verification (Figure 2.4).

:class:`RegularGridScalarWave` is the dimension-generic scalar wave
substrate of the inverse problem (2D antiplane and 3D scalar).

:mod:`repro.solver.lts` plans clustered local time stepping — rate-
binned power-of-two step clusters with a 2-to-1 neighbor invariant —
which every solver takes through its ``lts=`` knob.
"""

from repro.solver.wave_solver import ElasticWaveSolver
from repro.solver.tet_solver import TetWaveSolver
from repro.solver.scalarwave import RegularGridScalarWave, batched_forcing
from repro.solver.checkpoint import checkpoint_schedule
from repro.solver.lts import (
    LTSPlan,
    bin_rates,
    build_lts_plan,
    constraint_groups,
    smooth_rates,
)

__all__ = [
    "ElasticWaveSolver",
    "LTSPlan",
    "TetWaveSolver",
    "RegularGridScalarWave",
    "batched_forcing",
    "bin_rates",
    "build_lts_plan",
    "checkpoint_schedule",
    "constraint_groups",
    "smooth_rates",
]
