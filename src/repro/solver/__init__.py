"""Wave propagation solvers.

:class:`ElasticWaveSolver` is the paper's production code path: explicit
central differences on octree hexahedral meshes with lumped mass,
diagonal/off-diagonal splitting of the damping terms (eq. 2.4), Stacey
absorbing boundaries, Rayleigh attenuation, and the hanging-node
projection ``B^T A B ubar = B^T b`` (eq. 2.5) that keeps the update
explicit.

:class:`TetWaveSolver` is the earlier linear-tetrahedra baseline used
for verification (Figure 2.4).

:class:`RegularGridScalarWave` is the dimension-generic scalar wave
substrate of the inverse problem (2D antiplane and 3D scalar).
"""

from repro.solver.wave_solver import ElasticWaveSolver
from repro.solver.tet_solver import TetWaveSolver
from repro.solver.scalarwave import RegularGridScalarWave, batched_forcing
from repro.solver.checkpoint import checkpoint_schedule

__all__ = [
    "ElasticWaveSolver",
    "TetWaveSolver",
    "RegularGridScalarWave",
    "batched_forcing",
    "checkpoint_schedule",
]
