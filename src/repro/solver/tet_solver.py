"""Linear tetrahedral baseline wave solver (the group's earlier code).

Grid-point-based data structures: the per-element 12x12 stiffness
matrices are stored explicitly (constant-gradient linear tets have no
shared reference matrix across the mixed shapes of the 6-tet split), so
memory per grid point is roughly an order of magnitude above the
hexahedral code — the comparison the paper reports.

Absorbing boundaries use the viscous (Lysmer) damping terms only;
central-difference time stepping matches the hexahedral solver.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.backend import get_backend
from repro.fem.tet_element import tet_elastic_stiffness, tet_lumped_mass
from repro.io.seismogram import ReceiverArray, Seismograms
from repro.mesh.hexmesh import HexMesh
from repro.mesh.tetmesh import TetMesh, hex_to_tet_mesh
from repro.physics.cfl import stable_timestep
from repro.physics.elastic import lame_from_velocities
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.solver.wave_solver import DEFAULT_ABSORBING
from repro.util.flops import FlopCounter


class TetWaveSolver:
    """Explicit elastodynamics on the 6-tets-per-hex baseline mesh."""

    def __init__(
        self,
        mesh: HexMesh,
        material,
        *,
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        dt: float | None = None,
        cfl_safety: float = 0.5,
    ):
        self.hexmesh = mesh
        self.tet: TetMesh = hex_to_tet_mesh(mesh)
        centers = self.tet.coords[self.tet.conn].mean(axis=1)
        vs, vp, rho = material.query(centers)
        lam, mu = lame_from_velocities(vs, vp, rho)
        self.Ke = tet_elastic_stiffness(self.tet.coords, self.tet.conn, lam, mu)
        self.m = tet_lumped_mass(self.tet.coords, self.tet.conn, rho, self.tet.nnode)
        # boundary damping reuses the hex faces (shared nodes)
        faces = []
        hvs, hvp, hrho = material.query(mesh.elem_centers)
        hlam, hmu = lame_from_velocities(hvs, hvp, hrho)
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            coeffs = stacey_coefficients(hlam[idx], hmu[idx], hrho[idx])
            faces.append((fnodes, mesh.elem_h[idx], axis, side, coeffs))
        self.C_diag, _ = stacey_boundary_matrices(
            faces, mesh.nnode, include_c1=False
        )
        hmin = mesh.elem_h.min() / 2.0  # shortest tet edge scale
        self.dt = dt if dt is not None else stable_timestep(
            np.full(self.tet.nelem, hmin), vp, safety=cfl_safety
        )
        self._dof = (
            self.tet.conn[:, :, None] * 3 + np.arange(3)[None, None, :]
        ).reshape(self.tet.nelem, 12)
        self._dof_flat = self._dof.ravel()
        # per-element dense matrices: the varying-matrix kernel (no
        # shared reference matrix exists for the 6-tet split)
        self._kernel = get_backend().varmat_kernel(
            self.tet.conn, self.Ke, self.tet.nnode, ncomp=3
        )
        self.flops = FlopCounter()

    @property
    def nnode(self) -> int:
        return self.tet.nnode

    def memory_bytes(self) -> int:
        n = self.Ke.nbytes  # dominant: per-element dense stiffness
        n += self.tet.conn.nbytes
        n += self._kernel.workspace_bytes()
        n += 8 * 3 * self.nnode * 6  # u_prev, u, u_next, r, tmp, fbuf
        n += self.m.nbytes + self.C_diag.nbytes
        return n

    def matvec(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            out = np.empty((self.nnode, 3))
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        self._kernel.matvec(
            np.ascontiguousarray(u).reshape(-1), out.reshape(-1)
        )
        # kernel-provided count (dense per-element apply + scatter adds)
        self.flops.add("stiffness", self._kernel.flops_per_matvec)
        return out

    def run(
        self,
        forces,
        t_end: float,
        *,
        receivers: ReceiverArray | None = None,
        record: str = "velocity",
    ) -> Seismograms | None:
        dt = self.dt
        dt2 = dt * dt
        nsteps = int(np.ceil(t_end / dt))
        nnode = self.nnode
        m = self.m[:, None]
        # hoisted invariants and preallocated buffers: the loop is
        # fully in-place, matching the hexahedral solver
        m2 = 2.0 * m
        inv_A = 1.0 / (m + 0.5 * dt * self.C_diag)
        prev_coef = -m + 0.5 * dt * self.C_diag
        u_prev = np.zeros((nnode, 3))
        u = np.zeros((nnode, 3))
        u_next = np.zeros((nnode, 3))
        r = np.empty((nnode, 3))
        tmp = np.empty((nnode, 3))
        if hasattr(forces, "forces_at"):
            force_fn = lambda t, out: forces.forces_at(t, out)
        else:
            force_fn = forces
        fbuf = np.zeros((nnode, 3))
        data = receivers.allocate(3, nsteps) if receivers is not None else None
        for k in range(nsteps):
            t = k * dt
            self.matvec(u, out=tmp)
            np.multiply(m2, u, out=r)
            np.multiply(tmp, dt2, out=tmp)
            np.subtract(r, tmp, out=r)
            np.multiply(prev_coef, u_prev, out=tmp)
            np.add(r, tmp, out=r)
            b = force_fn(t, fbuf)
            if b is not None:
                np.multiply(b, dt2, out=tmp)
                np.add(r, tmp, out=r)
            np.multiply(r, inv_A, out=u_next)
            if receivers is not None:
                if record == "velocity":
                    data[:, :, k] = (
                        u_next[receivers.nodes] - u_prev[receivers.nodes]
                    ) / (2 * dt)
                else:
                    data[:, :, k] = u[receivers.nodes]
            u_prev, u, u_next = u, u_next, u_prev
        if receivers is None:
            return None
        return Seismograms(
            data=data, dt=dt, kind=record, positions=receivers.positions
        )
