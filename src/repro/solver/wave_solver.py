"""Explicit octree hexahedral elastic wave solver (paper eq. 2.4-2.5).

The semi-discrete system is

    ``M u'' + (C_AB + alpha M + beta K) u' + (K + K_AB) u = b``

with lumped mass ``M``, elementwise Rayleigh coefficients
``(alpha, beta)``, and Stacey absorbing boundary matrices ``C_AB``
(lumped) and ``K_AB`` (sparse ``c1`` coupling).  Central differences
with the diagonal/off-diagonal splitting of eq. (2.4) give the explicit
update; hanging-node continuity is restored each step by the projection
``B^T A B ubar = B^T b`` of eq. (2.5), which preserves diagonality.

Per step the solver performs one stiffness matvec (plus one
``beta``-weighted matvec when attenuation is on, with the previous
step's product cached), a sparse boundary product, and vector updates —
work linear in the number of grid points, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.backend import spmv_acc, spmv_into
from repro.fem.assembly import ElasticOperator, lumped_mass
from repro.fem.damping import rayleigh_coefficients
from repro.io.seismogram import ReceiverArray, Seismograms
from repro.io.snapshots import SnapshotRecorder
from repro.mesh.hanging import HangingNodeInfo, build_constraints
from repro.mesh.hexmesh import HexMesh
from repro.octree.linear_octree import LinearOctree
from repro.physics.cfl import elem_stable_dt, stable_timestep
from repro.physics.elastic import lame_from_velocities
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.resilience import (
    DEFAULT_HEALTH_INTERVAL,
    check_finite,
    should_check,
    validate_cfl,
)
from repro.solver.checkpoint import CheckpointManager
from repro.solver.lts import (
    DEFAULT_MAX_RATE,
    LTSPlan,
    build_lts_plan,
    constraint_groups,
)
from repro.util.flops import FlopCounter

from repro import telemetry

#: absorbing boundary planes: all four sides plus the bottom;
#: the free surface is (2, 0) — the z = 0 plane
DEFAULT_ABSORBING = ((0, 0), (0, 1), (1, 0), (1, 1), (2, 1))


class ElasticWaveSolver:
    """Explicit elastodynamics on an octree hexahedral mesh.

    Parameters
    ----------
    mesh / tree:
        The mesh and the balanced octree it came from (for constraints
        and source location).
    material:
        Object with ``query(points_m) -> (vs, vp, rho)``.
    damping_ratio:
        Target Rayleigh damping ratio (0 disables attenuation).
    damping_band:
        ``(f_min, f_max)`` Hz band for the least-squares Rayleigh fit.
    absorbing:
        Iterable of ``(axis, side)`` absorbing planes.
    stacey_c1:
        Include the tangential-derivative ``c1`` terms of Stacey's
        condition (False = Lysmer viscous boundary).
    dt:
        Time step; defaults to the CFL-stable step.
    constraints:
        Precomputed :class:`HangingNodeInfo` (else built here).
    """

    def __init__(
        self,
        mesh: HexMesh,
        tree: LinearOctree,
        material,
        *,
        damping_ratio: float = 0.0,
        damping_band: tuple[float, float] = (0.1, 1.0),
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        stacey_c1: bool = True,
        dt: float | None = None,
        cfl_safety: float = 0.5,
        constraints: HangingNodeInfo | None = None,
        lts: int | bool = 0,
    ):
        self.mesh = mesh
        self.tree = tree
        vs, vp, rho = material.query(mesh.elem_centers)
        lam, mu = lame_from_velocities(vs, vp, rho)
        self.lam, self.mu, self.rho = lam, mu, rho
        self.vs, self.vp = np.asarray(vs, float), np.asarray(vp, float)
        h = mesh.elem_h

        self.K = ElasticOperator(mesh.conn, h, lam, mu, mesh.nnode)
        self.m = lumped_mass(mesh.conn, h, rho, mesh.nnode)  # (nnode,)

        # Rayleigh attenuation, fit per element over the band
        if damping_ratio > 0:
            alpha_e, beta_e = rayleigh_coefficients(
                np.full(mesh.nelem, float(damping_ratio)), *damping_band
            )
            self.Kb = ElasticOperator(
                mesh.conn, h, lam * beta_e, mu * beta_e, mesh.nnode
            )
            #: hoisted out of the time loop: the diagonal is a full
            #: O(nelem) scatter, constant across steps
            self.Kb_diag = self.Kb.diagonal()
            self.m_alpha = lumped_mass(mesh.conn, h, rho * alpha_e, mesh.nnode)
            self._beta_e = beta_e
        else:
            self.Kb = None
            self.Kb_diag = None
            self.m_alpha = np.zeros(mesh.nnode)
            self._beta_e = None

        # Stacey absorbing boundaries
        faces = []
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            coeffs = stacey_coefficients(lam[idx], mu[idx], rho[idx])
            faces.append((fnodes, mesh.elem_h[idx], axis, side, coeffs))
        self.C_diag, self.K_AB = stacey_boundary_matrices(
            faces, mesh.nnode, include_c1=stacey_c1
        )
        self._has_kab = self.K_AB.nnz > 0

        # hanging-node constraints
        self.constraints = (
            constraints
            if constraints is not None
            else build_constraints(tree, mesh)
        )
        B = self.constraints.B
        self.B = B.tocsr()
        self.BT = B.T.tocsr()

        self.dt = dt if dt is not None else stable_timestep(
            h, vp, safety=cfl_safety
        )
        dt_ = self.dt
        # LHS diagonal of eq. (2.4)
        A = (self.m + 0.5 * dt_ * self.m_alpha)[:, None] + 0.5 * dt_ * self.C_diag
        if self.Kb is not None:
            A = A + 0.5 * dt_ * self.Kb_diag
        self.A = A
        # row-sum (lumped) projection of the diagonal LHS: hanging-node
        # mass is distributed to the masters by the constraint weights,
        # which conserves mass and "preserves the diagonality of A"
        self.A_bar = self.BT @ A
        self._inv_A_bar = 1.0 / self.A_bar
        # c1 coupling pre-scaled by -dt^2 so the time loop accumulates
        # it into the residual with one sparse product, no temporaries
        self._K_AB_mdt2 = (self.K_AB * (-(dt_**2))).tocsr()
        self.flops = FlopCounter()
        #: default clustered-LTS setting for run/run_batch: 0/False =
        #: global dt, True = LTS at DEFAULT_MAX_RATE, an int = the
        #: max-rate cap (power of two)
        self.lts = lts
        self._lts_plan_cache = None
        self._lts_exec_cache = None

    @property
    def nnode(self) -> int:
        return self.mesh.nnode

    def memory_bytes(self) -> int:
        """Solver working-set estimate (the paper's ~10x hex-vs-tet
        memory claim is measured from this and the tet counterpart):
        everything the solver actually holds — connectivity, kernel
        workspace, state/force/scratch buffers, LHS diagonals, and the
        sparse boundary/constraint structures."""
        n = 0
        n += self.mesh.conn.nbytes
        n += 8 * (2 * self.mesh.nelem)  # material coefficient vectors
        n += self.K.workspace_bytes()  # gather/scatter plan + buffers
        # time-loop vectors: u_prev, u, u_next, r, Ku, tmp, fbuf
        nvec = 7
        if self.Kb is not None:
            n += self.Kb.workspace_bytes()
            n += self.Kb_diag.nbytes
            nvec += 2  # kb_u, kb_u_prev caches
        n += 8 * 3 * self.nnode * nvec
        n += self.m.nbytes + self.m_alpha.nbytes
        n += self.A.nbytes + self.A_bar.nbytes + self._inv_A_bar.nbytes
        n += self.C_diag.nbytes
        for S in (self.K_AB, self._K_AB_mdt2, self.B, self.BT):
            n += S.data.nbytes + S.indices.nbytes + S.indptr.nbytes
        n += 8 * 3 * self.A_bar.shape[0]  # projected residual buffer
        return n

    # ----------------------------------------------- local time stepping

    def lts_plan(self, *, max_rate: int = DEFAULT_MAX_RATE) -> LTSPlan:
        """Clustered-LTS plan for this solver's mesh/material: the
        per-element stable steps are binned into power-of-two rate
        clusters, 2-to-1 smoothed, with hanging-node constraint
        closures clamped to a common rate (the projection then splits
        into independent per-level blocks)."""
        c = self._lts_plan_cache
        if c is not None and c[0] == max_rate:
            return c[1]
        plan = build_lts_plan(
            self.mesh.conn,
            self.nnode,
            dt=self.dt,
            elem_dt=elem_stable_dt(self.mesh.elem_h, self.vp, safety=1.0),
            max_rate=max_rate,
            groups=constraint_groups(self.constraints.masters),
        )
        self._lts_plan_cache = (max_rate, plan)
        return plan

    def _lts_exec(self, plan: LTSPlan) -> list[dict]:
        """Static per-level execution state for the clustered loop: a
        stiffness (and Rayleigh) operator over the cluster's elements
        (own + one-coarser halo), the cluster-step diagonals restricted
        to its own nodes, the per-level hanging-node projection block,
        and the own-row slice of the Stacey ``c1`` coupling prescaled
        by ``-dt_c^2``.  Cached on the plan object."""
        c = self._lts_exec_cache
        if c is not None and c[0] is plan:
            return c[1]
        conn, h = self.mesh.conn, self.mesh.elem_h
        # bar (independent) dof -> rate of its constraint closure; the
        # closures are rate-clamped, so each bar column's support lives
        # entirely inside one level
        col_rate = plan.node_rate[self.constraints.independent]
        levels = []
        for lv in plan.levels:
            e = lv.elems
            own = lv.own_nodes
            dtc = lv.rate * self.dt
            K_c = ElasticOperator(
                conn[e], h[e], self.lam[e], self.mu[e], self.nnode
            )
            Kb_c = None
            if self.Kb is not None:
                be = self._beta_e[e]
                Kb_c = ElasticOperator(
                    conn[e], h[e], self.lam[e] * be, self.mu[e] * be,
                    self.nnode,
                )
            A_c = (self.m[own] + 0.5 * dtc * self.m_alpha[own])[:, None] \
                + 0.5 * dtc * self.C_diag[own]
            if self.Kb_diag is not None:
                A_c = A_c + 0.5 * dtc * self.Kb_diag[own]
            cols = np.nonzero(col_rate == lv.rate)[0]
            B_c = self.B[own][:, cols].tocsr()
            BT_c = B_c.T.tocsr()
            own_dofs = (own[:, None] * 3 + np.arange(3)).ravel()
            kab = (self.K_AB[own_dofs] * (-(dtc * dtc))).tocsr()
            levels.append(
                {
                    "rate": lv.rate,
                    "dtc": dtc,
                    "dtc2": dtc * dtc,
                    "hdc": 0.5 * dtc,
                    "own": own,
                    "interp": lv.interp_nodes,
                    "K": K_c,
                    "Kb": Kb_c,
                    "kb_diag": (
                        None if self.Kb_diag is None else self.Kb_diag[own]
                    ),
                    "m2": 2.0 * self.m[own],
                    "prev_coef": (0.5 * dtc * self.m_alpha[own]
                                  - self.m[own])[:, None]
                    + 0.5 * dtc * self.C_diag[own],
                    "B": B_c,
                    "BT": BT_c,
                    "inv_A_bar": 1.0 / (BT_c @ A_c),
                    "kab": kab if kab.nnz else None,
                }
            )
        self._lts_exec_cache = (plan, levels)
        return levels

    @staticmethod
    def _lts_receiver_slots(levels: list[dict], receivers) -> list[tuple]:
        """Per-level receiver membership: each receiver node is owned
        by exactly one level; returns ``(receiver idx, position of the
        node inside the level's own-node array)`` pairs per level."""
        slots = []
        for lev in levels:
            own = lev["own"]
            nodes = receivers.nodes
            pos = np.searchsorted(own, nodes)
            pos_c = np.minimum(pos, max(len(own) - 1, 0))
            mask = (pos < len(own)) & (own[pos_c] == nodes)
            ridx = np.nonzero(mask)[0]
            slots.append((ridx, pos[ridx]))
        return slots

    @staticmethod
    def _lts_fill_receiver_gaps(data, levels, slots, nsteps: int) -> None:
        """Receivers owned by a coarse cluster are sampled at its own
        cadence; linearly interpolate the unrecorded columns so every
        trace comes back on the fine-step time axis."""
        cols = np.arange(nsteps, dtype=float)
        for lev, (ridx, _) in zip(levels, slots):
            rate = lev["rate"]
            if rate == 1 or not len(ridx):
                continue
            filled = np.arange(0, nsteps, rate)
            fcols = filled.astype(float)
            for i in ridx:
                for comp in range(data.shape[1]):
                    data[i, comp, :] = np.interp(
                        cols, fcols, data[i, comp, filled]
                    )

    def _lts_dispatch(self, lts, t_end: float) -> tuple[LTSPlan | None, int]:
        """Resolve the effective LTS setting for a run: returns the
        non-trivial plan (or None for the global loop) and ``nsteps``.
        The march must end on a sync boundary (all nodes at the same
        time), so ``nsteps`` is rounded **up** to the next multiple of
        the coarsest cluster rate — a few extra steps past ``t_end``,
        never fewer."""
        lts = self.lts if lts is None else lts
        nsteps = int(np.ceil(t_end / self.dt))
        if not lts:
            return None, nsteps
        if isinstance(lts, LTSPlan):
            plan = lts
        else:
            cap = DEFAULT_MAX_RATE if lts is True else int(lts)
            plan = self.lts_plan(max_rate=cap)
        if plan.trivial:
            return None, nsteps
        r_max = plan.max_rate
        return plan, -(-nsteps // r_max) * r_max

    def _run_lts(
        self,
        forces,
        nsteps: int,
        plan: LTSPlan,
        *,
        receivers=None,
        record="velocity",
        checkpoint=None,
        resume=False,
        faults=None,
        health_interval=DEFAULT_HEALTH_INTERVAL,
    ) -> Seismograms | None:
        """Clustered-leapfrog march (schedule contract in
        :mod:`repro.solver.lts`): one loop over fine indices, each
        cluster fires when its rate divides the index, coarsest first,
        reading time-interpolated values at its one-coarser halo.
        Checkpoints (and fault/health probes) happen only at sync
        boundaries — multiples of the coarsest rate, where every node
        holds the state at the same time."""
        dt = self.dt
        nnode = self.nnode
        levels = self._lts_exec(plan)
        r_min, r_max = plan.min_rate, plan.max_rate
        u_prev = np.zeros((nnode, 3))
        u = np.zeros((nnode, 3))
        Ku = np.empty((nnode, 3))
        Kbu = np.empty((nnode, 3)) if self.Kb is not None else None
        fbuf = np.zeros((nnode, 3))
        if hasattr(forces, "forces_at"):
            force_fn = lambda t, out: forces.forces_at(t, out)
        else:
            force_fn = forces
        # per-level runtime buffers (own-node sized; the loop below is
        # allocation-free) and firing counters
        rt = []
        for lev in levels:
            n_own = len(lev["own"])
            ncols = lev["B"].shape[1]
            ni = len(lev["interp"])
            rt.append(
                {
                    "r": np.empty((n_own, 3)),
                    "tmp": np.empty((n_own, 3)),
                    "u_own": np.empty((n_own, 3)),
                    "up_own": np.empty((n_own, 3)),
                    "unew": np.empty((n_own, 3)),
                    "rbar": np.empty((ncols, 3)),
                    "kb_prev": (
                        np.zeros((n_own, 3)) if self.Kb is not None else None
                    ),
                    "kb_new": (
                        np.empty((n_own, 3)) if self.Kb is not None else None
                    ),
                    "sv": np.empty((ni, 3)),
                    "iv": np.empty((ni, 3)),
                    "fired": 0,
                }
            )
        data = receivers.allocate(3, nsteps) if receivers is not None else None
        slots = (
            self._lts_receiver_slots(levels, receivers)
            if receivers is not None
            else [(np.zeros(0, dtype=np.int64),) * 2] * len(levels)
        )
        if health_interval:
            validate_cfl(dt, self.mesh.elem_h, self.vp)
        k0 = 0
        if resume and checkpoint is not None:
            ck = checkpoint.latest()
            if ck is not None:
                u_prev[:] = ck.arrays["u_prev"]
                u[:] = ck.arrays["u"]
                for i, st in enumerate(rt):
                    key = f"kb_prev_{i}"
                    if st["kb_prev"] is not None and key in ck.arrays:
                        st["kb_prev"][:] = ck.arrays[key]
                if data is not None and "rec_data" in ck.arrays:
                    prefix = ck.arrays["rec_data"]
                    data[:, :, : prefix.shape[2]] = prefix
                k0 = int(ck.meta["next_k"])
                if k0 % r_max:
                    raise ValueError(
                        f"LTS resume index {k0} is not a sync boundary "
                        f"(coarsest rate {r_max})"
                    )
        last_sync_saved = k0
        if telemetry.enabled():
            telemetry.gauge(
                "elastic.cfl_margin",
                stable_timestep(self.mesh.elem_h, self.vp, safety=1.0) / dt,
            )
            telemetry.gauge(
                "elastic.lts_theoretical_speedup", plan.theoretical_speedup()
            )
        with telemetry.span("elastic.run_lts") as _run:
            _run.add("nsteps", nsteps)
            _run.add("nnode", nnode)
            _run.add("levels", len(levels))
            _run.add("max_rate", r_max)
            for j in range(k0, nsteps, r_min):
                t = j * dt
                b = force_fn(t, fbuf)
                for lev, st, (ridx, rpos) in zip(levels, rt, slots):
                    rate = lev["rate"]
                    if j % rate:
                        continue
                    st["fired"] += 1
                    interp = lev["interp"]
                    ni = len(interp)
                    if ni:
                        # overwrite the one-coarser halo with its time-
                        # interpolated value for the matvecs, restore
                        # right after (the coarse pair brackets j*dt;
                        # theta is 0 or 1/2 — see lts.interp_theta)
                        sv, iv = st["sv"], st["iv"]
                        np.take(u, interp, axis=0, out=sv)
                        np.take(u_prev, interp, axis=0, out=iv)
                        if j % (2 * rate):  # theta = 1/2
                            np.add(iv, sv, out=iv)
                            np.multiply(iv, 0.5, out=iv)
                        u[interp] = iv
                    lev["K"].matvec(u, out=Ku)
                    if lev["Kb"] is not None:
                        lev["Kb"].matvec(u, out=Kbu)
                    own = lev["own"]
                    r, tmp = st["r"], st["tmp"]
                    # r = 2M u - dt_c^2 (K + K_AB) u~  (own rows)
                    np.take(Ku, own, axis=0, out=r)
                    np.multiply(r, -lev["dtc2"], out=r)
                    np.take(u, own, axis=0, out=st["u_own"])
                    np.multiply(lev["m2"][:, None], st["u_own"], out=tmp)
                    np.add(r, tmp, out=r)
                    if lev["kab"] is not None:
                        spmv_acc(lev["kab"], u.reshape(-1), r.reshape(-1))
                    if ni:
                        u[interp] = sv
                    if lev["Kb"] is not None:
                        hdc = lev["hdc"]
                        np.take(Kbu, own, axis=0, out=st["kb_new"])
                        np.multiply(st["kb_new"], hdc, out=tmp)
                        np.subtract(r, tmp, out=r)
                        np.multiply(lev["kb_diag"], st["u_own"], out=tmp)
                        np.multiply(tmp, hdc, out=tmp)
                        np.add(r, tmp, out=r)
                        np.multiply(st["kb_prev"], hdc, out=tmp)
                        np.add(r, tmp, out=r)
                        st["kb_prev"], st["kb_new"] = (
                            st["kb_new"], st["kb_prev"],
                        )
                    np.take(u_prev, own, axis=0, out=st["up_own"])
                    np.multiply(lev["prev_coef"], st["up_own"], out=tmp)
                    np.add(r, tmp, out=r)
                    if b is not None:
                        np.take(b, own, axis=0, out=tmp)
                        np.multiply(tmp, lev["dtc2"], out=tmp)
                        np.add(r, tmp, out=r)
                    # per-level hanging-node projection (block of 2.5)
                    spmv_into(lev["BT"], r, st["rbar"])
                    np.multiply(st["rbar"], lev["inv_A_bar"], out=st["rbar"])
                    spmv_into(lev["B"], st["rbar"], st["unew"])
                    if data is not None and len(ridx):
                        # sampled at the cluster's own cadence (column
                        # j); gaps are interpolated after the loop
                        if record == "velocity":
                            data[ridx, :, j] = (
                                st["unew"][rpos] - st["up_own"][rpos]
                            ) / (2.0 * lev["dtc"])
                        else:
                            data[ridx, :, j] = st["u_own"][rpos]
                    u_prev[own] = st["u_own"]
                    u[own] = st["unew"]
                s = j + r_min
                if s % r_max == 0:  # sync: all nodes hold u(s * dt)
                    if faults is not None:
                        faults.poison_state(0, s - 1, u)
                    if health_interval and should_check(
                        s - 1, nsteps, health_interval
                    ):
                        check_finite(u, step=s - 1, field="u")
                    if (
                        checkpoint is not None
                        and checkpoint.interval > 0
                        and s // checkpoint.interval
                        > last_sync_saved // checkpoint.interval
                    ):
                        arrays = {"u_prev": u_prev, "u": u}
                        for i, st in enumerate(rt):
                            if st["kb_prev"] is not None:
                                arrays[f"kb_prev_{i}"] = st["kb_prev"]
                        if data is not None:
                            arrays["rec_data"] = data[:, :, :s]
                        checkpoint.save(
                            s - 1, arrays, {"next_k": s, "lts_rate": r_max}
                        )
                        last_sync_saved = s
            flops = 0
            for lev, st in zip(levels, rt):
                per = lev["K"].flops_per_matvec
                if lev["Kb"] is not None:
                    per += lev["Kb"].flops_per_matvec
                flops += st["fired"] * (per + 12 * len(lev["own"]))
                _run.add(f"fired_r{lev['rate']}", st["fired"])
            _run.add("flops", flops)
            self.flops.add("stiffness", flops)
        if receivers is None:
            return None
        self._lts_fill_receiver_gaps(data, levels, slots, nsteps)
        return Seismograms(
            data=data, dt=dt, kind=record, positions=receivers.positions
        )

    def _run_batch_lts(
        self,
        forces: Sequence,
        nsteps: int,
        plan: LTSPlan,
        *,
        receivers=None,
        record="velocity",
    ) -> list[Seismograms] | None:
        """Batched clustered-leapfrog march: same schedule as
        :meth:`_run_lts` over ``(nnode, 3, B)`` state blocks — one
        level-3 per-cluster ``matmat`` and multi-vector CSR products
        per firing instead of ``B`` of each."""
        Bn = len(forces)
        dt = self.dt
        nnode = self.nnode
        levels = self._lts_exec(plan)
        r_min, r_max = plan.min_rate, plan.max_rate
        u_prev = np.zeros((nnode, 3, Bn))
        u = np.zeros((nnode, 3, Bn))
        Ku = np.empty((nnode, 3, Bn))
        Kbu = np.empty((nnode, 3, Bn)) if self.Kb is not None else None
        force_fns = [
            (lambda t, out, fc=fc: fc.forces_at(t, out))
            if hasattr(fc, "forces_at") else fc
            for fc in forces
        ]
        fbuf = np.zeros((nnode, 3, Bn))
        fcol = np.zeros((nnode, 3))
        col_live = np.zeros(Bn, dtype=bool)
        rt = []
        for lev in levels:
            n_own = len(lev["own"])
            ncols = lev["B"].shape[1]
            ni = len(lev["interp"])
            rt.append(
                {
                    "r": np.empty((n_own, 3, Bn)),
                    "tmp": np.empty((n_own, 3, Bn)),
                    "u_own": np.empty((n_own, 3, Bn)),
                    "up_own": np.empty((n_own, 3, Bn)),
                    "unew": np.empty((n_own, 3, Bn)),
                    "rbar": np.empty((ncols, 3, Bn)),
                    "kb_prev": (
                        np.zeros((n_own, 3, Bn))
                        if self.Kb is not None else None
                    ),
                    "kb_new": (
                        np.empty((n_own, 3, Bn))
                        if self.Kb is not None else None
                    ),
                    "sv": np.empty((ni, 3, Bn)),
                    "iv": np.empty((ni, 3, Bn)),
                    "fired": 0,
                }
            )
        if receivers is None:
            recs = None
        elif isinstance(receivers, ReceiverArray):
            recs = [receivers] * Bn
        else:
            recs = list(receivers)
            if len(recs) != Bn:
                raise ValueError("need one receiver array per scenario")
        data = (
            [ra.allocate(3, nsteps) for ra in recs]
            if recs is not None else None
        )
        slots = (
            [self._lts_receiver_slots(levels, ra) for ra in recs]
            if recs is not None else None
        )
        with telemetry.span("elastic.run_batch_lts") as _run:
            _run.add("nsteps", nsteps)
            _run.add("nnode", nnode)
            _run.add("batch", Bn)
            _run.add("levels", len(levels))
            for j in range(0, nsteps, r_min):
                t = j * dt
                live = False
                for b, fn in enumerate(force_fns):
                    fb = fn(t, fcol)
                    if fb is None:
                        if col_live[b]:
                            fbuf[:, :, b] = 0.0
                            col_live[b] = False
                    else:
                        fbuf[:, :, b] = fb
                        col_live[b] = True
                        live = True
                for li, (lev, st) in enumerate(zip(levels, rt)):
                    rate = lev["rate"]
                    if j % rate:
                        continue
                    st["fired"] += 1
                    interp = lev["interp"]
                    ni = len(interp)
                    if ni:
                        sv, iv = st["sv"], st["iv"]
                        np.take(u, interp, axis=0, out=sv)
                        np.take(u_prev, interp, axis=0, out=iv)
                        if j % (2 * rate):  # theta = 1/2
                            np.add(iv, sv, out=iv)
                            np.multiply(iv, 0.5, out=iv)
                        u[interp] = iv
                    lev["K"].matmat(u, out=Ku)
                    if lev["Kb"] is not None:
                        lev["Kb"].matmat(u, out=Kbu)
                    own = lev["own"]
                    n_own = len(own)
                    r, tmp = st["r"], st["tmp"]
                    np.take(Ku, own, axis=0, out=r)
                    np.multiply(r, -lev["dtc2"], out=r)
                    np.take(u, own, axis=0, out=st["u_own"])
                    np.multiply(
                        lev["m2"][:, None, None], st["u_own"], out=tmp
                    )
                    np.add(r, tmp, out=r)
                    if lev["kab"] is not None:
                        spmv_acc(
                            lev["kab"],
                            u.reshape(3 * nnode, Bn),
                            r.reshape(3 * n_own, Bn),
                        )
                    if ni:
                        u[interp] = sv
                    if lev["Kb"] is not None:
                        hdc = lev["hdc"]
                        np.take(Kbu, own, axis=0, out=st["kb_new"])
                        np.multiply(st["kb_new"], hdc, out=tmp)
                        np.subtract(r, tmp, out=r)
                        np.multiply(
                            lev["kb_diag"][:, :, None], st["u_own"], out=tmp
                        )
                        np.multiply(tmp, hdc, out=tmp)
                        np.add(r, tmp, out=r)
                        np.multiply(st["kb_prev"], hdc, out=tmp)
                        np.add(r, tmp, out=r)
                        st["kb_prev"], st["kb_new"] = (
                            st["kb_new"], st["kb_prev"],
                        )
                    np.take(u_prev, own, axis=0, out=st["up_own"])
                    np.multiply(
                        lev["prev_coef"][:, :, None], st["up_own"], out=tmp
                    )
                    np.add(r, tmp, out=r)
                    if live:
                        np.take(fbuf, own, axis=0, out=tmp)
                        np.multiply(tmp, lev["dtc2"], out=tmp)
                        np.add(r, tmp, out=r)
                    ncols = lev["B"].shape[1]
                    spmv_into(
                        lev["BT"],
                        r.reshape(n_own, 3 * Bn),
                        st["rbar"].reshape(ncols, 3 * Bn),
                    )
                    np.multiply(
                        st["rbar"], lev["inv_A_bar"][:, :, None],
                        out=st["rbar"],
                    )
                    spmv_into(
                        lev["B"],
                        st["rbar"].reshape(ncols, 3 * Bn),
                        st["unew"].reshape(n_own, 3 * Bn),
                    )
                    if data is not None:
                        for b in range(Bn):
                            ridx, rpos = slots[b][li]
                            if not len(ridx):
                                continue
                            if record == "velocity":
                                data[b][ridx, :, j] = (
                                    st["unew"][rpos, :, b]
                                    - st["up_own"][rpos, :, b]
                                ) / (2.0 * lev["dtc"])
                            else:
                                data[b][ridx, :, j] = st["u_own"][rpos, :, b]
                    u_prev[own] = st["u_own"]
                    u[own] = st["unew"]
            flops = 0
            for lev, st in zip(levels, rt):
                per = lev["K"].flops_per_matmat(Bn)
                if lev["Kb"] is not None:
                    per += lev["Kb"].flops_per_matmat(Bn)
                flops += st["fired"] * (per + 12 * len(lev["own"]) * Bn)
            _run.add("flops", flops)
            self.flops.add("stiffness", flops)
        if recs is None:
            return None
        for b in range(Bn):
            self._lts_fill_receiver_gaps(data[b], levels, slots[b], nsteps)
        return [
            Seismograms(
                data=data[b], dt=dt, kind=record,
                positions=recs[b].positions,
            )
            for b in range(Bn)
        ]

    def run(
        self,
        forces: Callable[[float, np.ndarray], np.ndarray] | object,
        t_end: float,
        *,
        receivers: ReceiverArray | None = None,
        snapshots: SnapshotRecorder | None = None,
        record: str = "velocity",
        callback: Callable[[int, float, np.ndarray], None] | None = None,
        checkpoint: CheckpointManager | None = None,
        resume: bool = False,
        faults=None,
        health_interval: int = DEFAULT_HEALTH_INTERVAL,
        lts: int | bool | LTSPlan | None = None,
    ) -> Seismograms | None:
        """March the wave equation from rest to ``t_end``.

        ``forces`` is either a callable ``forces(t, out) -> (nnode, 3)``
        or a :class:`repro.sources.fault.SourceCollection`.

        Resilience: a :class:`~repro.solver.checkpoint.CheckpointManager`
        durably snapshots the leapfrog restart pair (plus the cached
        Rayleigh matvec and the recorded seismogram prefix) every
        ``checkpoint.interval`` steps; ``resume=True`` restarts from the
        latest valid snapshot instead of rest, reproducing the
        uninterrupted run bit for bit (the update depends only on the
        two previous states and the deterministic forcing).  Snapshot
        recorders only see steps after the resume point.
        ``health_interval`` arms the NaN/Inf sentinel (every that many
        steps plus the final one) and re-validates the CFL bound up
        front; 0 disables both.  ``faults`` takes a
        :class:`~repro.resilience.FaultPlan` (state poisoning only in
        serial runs).

        ``lts`` overrides the solver's clustered local-time-stepping
        setting for this run (None = use the ``lts=`` knob from the
        constructor).  A trivial plan — every element in the rate-1
        cluster — falls back to this global loop, so ``lts`` enabled on
        an unclustered model stays bitwise-identical to ``lts`` off.
        Snapshot recorders and per-step callbacks need the full state
        at every step and are not supported under LTS.
        """
        plan, nsteps = self._lts_dispatch(lts, t_end)
        if plan is not None:
            if snapshots is not None or callback is not None:
                raise ValueError(
                    "snapshots/callback need the full state every step; "
                    "run with lts=0 (they are unsupported under LTS)"
                )
            return self._run_lts(
                forces, nsteps, plan,
                receivers=receivers, record=record, checkpoint=checkpoint,
                resume=resume, faults=faults,
                health_interval=health_interval,
            )
        dt = self.dt
        dt2 = dt * dt
        hd = 0.5 * dt
        nnode = self.nnode
        m = self.m[:, None]
        m_alpha = self.m_alpha[:, None]
        # hoisted loop invariants: 2M for the leading term and the full
        # u^{k-1} coefficient (mass, Rayleigh alpha, boundary damping)
        m2 = 2.0 * m
        prev_coef = (hd * m_alpha - m) + hd * self.C_diag
        # preallocated state and scratch buffers; the loop below is
        # in-place throughout — no per-step O(nnode) heap allocations
        u_prev = np.zeros((nnode, 3))
        u = np.zeros((nnode, 3))
        u_next = np.zeros((nnode, 3))
        r = np.empty((nnode, 3))
        Ku = np.empty((nnode, 3))
        tmp = np.empty((nnode, 3))
        r_bar = np.empty((self.A_bar.shape[0], 3))
        if hasattr(forces, "forces_at"):
            force_fn = lambda t, out: forces.forces_at(t, out)
        else:
            force_fn = forces
        fbuf = np.zeros((nnode, 3))

        data = receivers.allocate(3, nsteps) if receivers is not None else None
        kb_u_prev = np.zeros((nnode, 3))  # beta K u^{k-1}, cached
        kb_u = np.empty((nnode, 3))

        if health_interval:
            validate_cfl(dt, self.mesh.elem_h, self.vp)
        k0 = 0
        if resume and checkpoint is not None:
            ck = checkpoint.latest()
            if ck is not None:
                u_prev[:] = ck.arrays["u_prev"]
                u[:] = ck.arrays["u"]
                if "kb_u_prev" in ck.arrays:
                    kb_u_prev[:] = ck.arrays["kb_u_prev"]
                if data is not None and "rec_data" in ck.arrays:
                    prefix = ck.arrays["rec_data"]
                    data[:, :, : prefix.shape[2]] = prefix
                k0 = int(ck.meta["next_k"])

        # telemetry: one is-None gate per step region when disabled
        # (literal span names, no kwargs — no hot-loop allocations)
        tel_on = telemetry.enabled()
        flops_K = self.K.flops_per_matvec
        flops_Kb = 0 if self.Kb is None else self.Kb.flops_per_matvec
        if tel_on:
            telemetry.gauge(
                "elastic.cfl_margin",
                stable_timestep(self.mesh.elem_h, self.vp, safety=1.0)
                / dt,
            )
        with telemetry.span("elastic.run") as _run:
            _run.add("nsteps", nsteps)
            _run.add("nnode", nnode)
            for k in range(k0, nsteps):
                t = k * dt
                with telemetry.span("stiffness") as _s:
                    self.K.matvec(u, out=Ku)
                    _s.add("flops", flops_K)
                    _s.add("elements", self.K.nelem)
                self.flops.add("stiffness", flops_K)
                np.multiply(m2, u, out=r)
                np.multiply(Ku, dt2, out=Ku)
                np.subtract(r, Ku, out=r)
                if self._has_kab:
                    # r += (-dt^2 K_AB) u, prescaled at setup
                    spmv_acc(self._K_AB_mdt2, u.reshape(-1), r.reshape(-1))
                if self.Kb is not None:
                    with telemetry.span("damping") as _s:
                        self.Kb.matvec(u, out=kb_u)
                        _s.add("flops", flops_Kb)
                    self.flops.add("stiffness", flops_Kb)
                    # r -= (dt/2)(Kb u - diag(Kb) u) + (dt/2) Kb u^{k-1}
                    np.multiply(kb_u, hd, out=tmp)
                    np.subtract(r, tmp, out=r)
                    np.multiply(self.Kb_diag, u, out=tmp)
                    np.multiply(tmp, hd, out=tmp)
                    np.add(r, tmp, out=r)
                    np.multiply(kb_u_prev, hd, out=tmp)
                    np.add(r, tmp, out=r)
                    kb_u_prev, kb_u = kb_u, kb_u_prev
                np.multiply(prev_coef, u_prev, out=tmp)
                np.add(r, tmp, out=r)
                b = force_fn(t, fbuf)
                if b is not None:
                    np.multiply(b, dt2, out=tmp)
                    np.add(r, tmp, out=r)
                # hanging-node projection keeps the update explicit (2.5)
                with telemetry.span("update") as _s:
                    spmv_into(self.BT, r, r_bar)
                    np.multiply(r_bar, self._inv_A_bar, out=r_bar)
                    spmv_into(self.B, r_bar, u_next)
                    _s.add("flops", 12 * nnode)
                self.flops.add("update", 12 * nnode)
                if tel_on:
                    # displacement "energy" proxy — drift shows up as
                    # unbounded growth of this per-step series
                    telemetry.sample(
                        "elastic.u2", float(np.vdot(u_next, u_next)), step=k
                    )
                    telemetry.sample_alloc(step=k)

                if receivers is not None:
                    if record == "velocity":
                        data[:, :, k] = (
                            u_next[receivers.nodes] - u_prev[receivers.nodes]
                        ) / (2.0 * dt)
                    else:
                        data[:, :, k] = u[receivers.nodes]
                if snapshots is not None:
                    snapshots.maybe_record(k, t, u)
                if callback is not None:
                    callback(k, t, u)
                u_prev, u, u_next = u, u_next, u_prev
                # u is now x^{k+1}, u_prev is x^k — the restart pair
                if faults is not None:
                    faults.poison_state(0, k, u)
                if health_interval and should_check(k, nsteps, health_interval):
                    check_finite(u, step=k, field="u")
                if checkpoint is not None and checkpoint.due(k):
                    arrays = {"u_prev": u_prev, "u": u}
                    if self.Kb is not None:
                        arrays["kb_u_prev"] = kb_u_prev
                    if data is not None:
                        arrays["rec_data"] = data[:, :, : k + 1]
                    checkpoint.save(k, arrays, {"next_k": k + 1})

        if receivers is None:
            return None
        return Seismograms(
            data=data, dt=dt, kind=record, positions=receivers.positions
        )

    def run_batch(
        self,
        forces: Sequence[Callable[[float, np.ndarray], np.ndarray] | object],
        t_end: float,
        *,
        receivers: ReceiverArray | Sequence[ReceiverArray] | None = None,
        record: str = "velocity",
        callback: Callable[[int, float, np.ndarray], None] | None = None,
        lts: int | bool | LTSPlan | None = None,
        faults=None,
        health_interval: int = DEFAULT_HEALTH_INTERVAL,
    ) -> list[Seismograms] | None:
        """March ``B = len(forces)`` scenarios at once from rest.

        One fused time loop advances the whole ensemble: states are
        ``(nnode, 3, B)`` blocks, the stiffness runs as a single
        level-3 :meth:`ElasticOperator.matmat`, the Stacey ``c1``
        coupling and the hanging-node projection run as multi-vector
        CSR products over all ``3 B`` columns, and the diagonal
        updates broadcast — so the per-step Python dispatch and every
        indirect-addressing pass are paid once per step instead of
        once per scenario.  Scenario ``b``'s trajectory is
        bit-identical to ``run(forces[b], t_end)`` (identical
        summation orders throughout; a scenario idle at a step
        contributes a zero forcing column, equal under ``==``).

        ``receivers`` is a single shared :class:`ReceiverArray` or one
        per scenario; ``callback(k, t, u)`` sees the full
        ``(nnode, 3, B)`` block.  Returns one :class:`Seismograms` per
        scenario (None without receivers).

        ``faults``/``health_interval`` mirror :meth:`run`: the fused
        state block is checked for non-finite values every
        ``health_interval`` steps (and at the final step), raising
        :class:`~repro.resilience.health.NumericalHealthError` — one
        poisoned column fails the whole fused loop, which is exactly
        the signal the service scheduler's bisection isolates.  The
        LTS path keeps its own sync-boundary checks and ignores
        ``faults``.
        """
        plan, nsteps = self._lts_dispatch(lts, t_end)
        if plan is not None:
            if callback is not None:
                raise ValueError(
                    "callback needs the full state every step; run with "
                    "lts=0 (it is unsupported under LTS)"
                )
            return self._run_batch_lts(
                forces, nsteps, plan, receivers=receivers, record=record
            )
        Bn = len(forces)
        dt = self.dt
        dt2 = dt * dt
        hd = 0.5 * dt
        nnode = self.nnode
        if health_interval:
            validate_cfl(dt, self.mesh.elem_h, self.vp)
        # broadcast the per-node/per-dof diagonals over the batch axis
        m = self.m[:, None, None]
        m_alpha = self.m_alpha[:, None, None]
        m2 = 2.0 * m
        prev_coef = (hd * m_alpha - m) + hd * self.C_diag[:, :, None]
        inv_A_bar = self._inv_A_bar[:, :, None]
        kb_diag = None if self.Kb_diag is None else self.Kb_diag[:, :, None]
        nbar = self.A_bar.shape[0]
        u_prev = np.zeros((nnode, 3, Bn))
        u = np.zeros((nnode, 3, Bn))
        u_next = np.zeros((nnode, 3, Bn))
        r = np.empty((nnode, 3, Bn))
        Ku = np.empty((nnode, 3, Bn))
        tmp = np.empty((nnode, 3, Bn))
        r_bar = np.empty((nbar, 3, Bn))
        force_fns = [
            (lambda t, out, fc=fc: fc.forces_at(t, out))
            if hasattr(fc, "forces_at") else fc
            for fc in forces
        ]
        fbuf = np.zeros((nnode, 3, Bn))
        fcol = np.zeros((nnode, 3))  # contiguous per-scenario scratch
        col_live = np.zeros(Bn, dtype=bool)  # column nonzero in fbuf

        if receivers is None:
            recs = None
        elif isinstance(receivers, ReceiverArray):
            recs = [receivers] * Bn
        else:
            recs = list(receivers)
            if len(recs) != Bn:
                raise ValueError("need one receiver array per scenario")
        data = (
            [ra.allocate(3, nsteps) for ra in recs]
            if recs is not None else None
        )
        kb_u_prev = np.zeros((nnode, 3, Bn))
        kb_u = np.empty((nnode, 3, Bn))

        # batched flop counts come from the kernel's own accounting so
        # they cannot drift from the 1-RHS numbers (satellite of the
        # telemetry rework; previously multiplied by Bn by hand here)
        flops_K = self.K.flops_per_matmat(Bn)
        flops_Kb = 0 if self.Kb is None else self.Kb.flops_per_matmat(Bn)
        with telemetry.span("elastic.run_batch") as _run:
            _run.add("nsteps", nsteps)
            _run.add("nnode", nnode)
            _run.add("batch", Bn)
            for k in range(nsteps):
                t = k * dt
                with telemetry.span("stiffness") as _s:
                    self.K.matmat(u, out=Ku)
                    _s.add("flops", flops_K)
                    _s.add("elements", self.K.nelem)
                self.flops.add("stiffness", flops_K)
                np.multiply(m2, u, out=r)
                np.multiply(Ku, dt2, out=Ku)
                np.subtract(r, Ku, out=r)
                if self._has_kab:
                    spmv_acc(
                        self._K_AB_mdt2,
                        u.reshape(3 * nnode, Bn),
                        r.reshape(3 * nnode, Bn),
                    )
                if self.Kb is not None:
                    with telemetry.span("damping") as _s:
                        self.Kb.matmat(u, out=kb_u)
                        _s.add("flops", flops_Kb)
                    self.flops.add("stiffness", flops_Kb)
                    np.multiply(kb_u, hd, out=tmp)
                    np.subtract(r, tmp, out=r)
                    np.multiply(kb_diag, u, out=tmp)
                    np.multiply(tmp, hd, out=tmp)
                    np.add(r, tmp, out=r)
                    np.multiply(kb_u_prev, hd, out=tmp)
                    np.add(r, tmp, out=r)
                    kb_u_prev, kb_u = kb_u, kb_u_prev
                np.multiply(prev_coef, u_prev, out=tmp)
                np.add(r, tmp, out=r)
                live = False
                for b, fn in enumerate(force_fns):
                    fb = fn(t, fcol)
                    if fb is None:
                        # a column goes quiet: zero it once, then skip
                        # the fill until the source speaks again (the
                        # content is zero either way, so bit-identity
                        # holds)
                        if col_live[b]:
                            fbuf[:, :, b] = 0.0
                            col_live[b] = False
                    else:
                        fbuf[:, :, b] = fb
                        col_live[b] = True
                        live = True
                if live:
                    np.multiply(fbuf, dt2, out=tmp)
                    np.add(r, tmp, out=r)
                with telemetry.span("update") as _s:
                    spmv_into(
                        self.BT,
                        r.reshape(nnode, 3 * Bn),
                        r_bar.reshape(nbar, 3 * Bn),
                    )
                    np.multiply(r_bar, inv_A_bar, out=r_bar)
                    spmv_into(
                        self.B,
                        r_bar.reshape(nbar, 3 * Bn),
                        u_next.reshape(nnode, 3 * Bn),
                    )
                    _s.add("flops", 12 * nnode * Bn)
                self.flops.add("update", 12 * nnode * Bn)

                if recs is not None:
                    for b, ra in enumerate(recs):
                        if record == "velocity":
                            data[b][:, :, k] = (
                                u_next[ra.nodes, :, b] - u_prev[ra.nodes, :, b]
                            ) / (2.0 * dt)
                        else:
                            data[b][:, :, k] = u[ra.nodes, :, b]
                if callback is not None:
                    callback(k, t, u)
                u_prev, u, u_next = u, u_next, u_prev
                if faults is not None:
                    faults.poison_state(0, k, u)
                if health_interval and should_check(
                    k, nsteps, health_interval
                ):
                    check_finite(u, step=k, field="u")

        if recs is None:
            return None
        return [
            Seismograms(data=data[b], dt=dt, kind=record, positions=recs[b].positions)
            for b in range(Bn)
        ]
