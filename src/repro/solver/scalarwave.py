"""Dimension-generic regular-grid scalar wave solver (paper Section 3).

The inverse problem's state equation is

    ``rho u'' - div(mu grad u) = f``

on a rectangular box: free surface on top (``z = 0``), first-order
absorbing boundaries ``mu du/dn = -sqrt(rho mu) u'`` on the sides and
bottom.  Discretization: multilinear elements on a regular grid (2D
antiplane cross-sections or the 3D scalar case of Table 3.1), lumped
mass, central differences — the same machinery as the 3D forward code.

The class exposes the *operator pieces* the discrete adjoint needs:

* ``apply_K(mu, u)``        — stiffness action for per-element ``mu``;
* ``damping_diag(mu)``      — lumped absorbing damping (depends on mu);
* ``K_material_gradient``   — per-element ``lam^T (dK/dmu_e) u``;
* ``C_material_gradient``   — per-element ``lam^T (dC/dmu_e) w``;
* ``march``                 — the shared leapfrog driver used by the
  forward, adjoint, and incremental (Gauss-Newton) sweeps, which are
  all the same dissipative recurrence.

The leapfrog convention (states ``x^0 .. x^N``, ``x^0 = x^1 = 0``):

    ``A+ x^{k+1} = (2 M - dt^2 K) x^k - A- x^{k-1} + f^k``,
    ``A+- = M +- (dt/2) C``,  for k = 1 .. N-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.backend import get_backend
from repro.backend.sparse_ops import ScatterPlan
from repro.fem.scalar_element import scalar_stiffness_reference
from repro.physics.cfl import elem_stable_dt
from repro.resilience import check_finite, should_check
from repro.solver.checkpoint import CheckpointManager
from repro.solver.lts import DEFAULT_MAX_RATE, LTSPlan, build_lts_plan

from repro import telemetry

#: boundary classification helpers: (axis, side) pairs
Plane = tuple[int, int]


class RegularGridScalarWave:
    """Scalar wave substrate on a regular grid.

    Parameters
    ----------
    shape:
        Elements per axis, e.g. ``(nx, nz)`` or ``(nx, ny, nz)``.  The
        last axis is depth (z, pointing down).
    h:
        Grid spacing (meters), equal in all axes.
    rho:
        Density (scalar; the paper's inversion assumes known density).
    absorbing:
        Absorbing planes; default all but the top.
    """

    def __init__(
        self,
        shape: Sequence[int],
        h: float,
        rho: float,
        *,
        absorbing: Sequence[Plane] | None = None,
    ):
        self.shape = tuple(int(n) for n in shape)
        self.d = len(self.shape)
        if self.d not in (2, 3):
            raise ValueError("2D or 3D only")
        self.h = float(h)
        self.rho = float(rho)
        self.node_shape = tuple(n + 1 for n in self.shape)
        self.nnode = int(np.prod(self.node_shape))
        self.nelem = int(np.prod(self.shape))
        self.K_ref = scalar_stiffness_reference(self.d)
        self.conn = self._build_conn()
        self._conn_flat = self.conn.ravel()
        # lumped mass: rho h^d / 2^d per corner
        nn = 1 << self.d
        self.m = np.bincount(
            self._conn_flat,
            weights=np.full(self.nelem * nn, self.rho * self.h**self.d / nn),
            minlength=self.nnode,
        )
        if absorbing is None:
            absorbing = [
                (a, s) for a in range(self.d) for s in (0, 1)
            ]
            absorbing.remove((self.d - 1, 0))  # free surface on top
        self.absorbing = tuple(absorbing)
        self._boundary = [self._boundary_face(a, s) for (a, s) in self.absorbing]
        # planned scatters replacing the per-sweep np.add.at passes:
        # concatenating the absorbing planes preserves the sequential
        # per-plane accumulation order (the plan's stable sort keeps
        # slots ascending within each destination), so every result is
        # bitwise identical to the np.add.at original
        nfc = 1 << (self.d - 1)
        if self._boundary:
            self._bnd_elems = np.ascontiguousarray(
                np.concatenate([e for e, _ in self._boundary])
            )
            self._bnd_fnodes = np.ascontiguousarray(
                np.concatenate([fn for _, fn in self._boundary], axis=0)
            )
        else:
            self._bnd_elems = np.zeros(0, dtype=np.int64)
            self._bnd_fnodes = np.zeros((0, nfc), dtype=np.int64)
        self._bnd_node_plan = ScatterPlan(self._bnd_fnodes.ravel(), self.nnode)
        self._bnd_node_ones = np.ones(self._bnd_node_plan.nnz)
        self._bnd_elem_plan = ScatterPlan(self._bnd_elems, self.nelem)
        self._bnd_elem_ones = np.ones(self._bnd_elem_plan.nnz)
        self._conn_plan = ScatterPlan(self._conn_flat, self.nnode)
        self._conn_ones = np.ones(self._conn_plan.nnz)
        # single-entry cache of the hoisted march invariants (see
        # _march_coeffs): forward/adjoint/incremental sweeps of one
        # gradient or Hessian-vector evaluation share the same iterate
        self._coeff_cache = None
        # single-entry caches for the clustered-LTS plan and its
        # per-level execution state (kernels, coefficient slices,
        # substep buffers) — one forward model is marched many times
        # on the same material iterate
        self._lts_plan_cache = None
        self._lts_exec_cache = None
        # fused stiffness kernel (coefficients vary per call: the
        # inversion sweeps evaluate many material iterates)
        self._kernel = get_backend().element_kernel(
            self.conn, (self.K_ref,), self.nnode
        )
        self._coef = np.empty(self.nelem)

    # --------------------------------------------------------------- grid

    def _build_conn(self) -> np.ndarray:
        grids = np.meshgrid(
            *[np.arange(n) for n in self.shape], indexing="ij"
        )
        base = np.stack([g.ravel() for g in grids], axis=1)  # (nelem, d)
        nn = 1 << self.d
        conn = np.empty((self.nelem, nn), dtype=np.int64)
        for k in range(nn):
            corner = base + np.array(
                [(k >> a) & 1 for a in range(self.d)], dtype=np.int64
            )
            conn[:, k] = np.ravel_multi_index(
                tuple(corner.T), self.node_shape
            )
        return conn

    def node_coords(self) -> np.ndarray:
        """Physical node coordinates ``(nnode, d)`` (z down)."""
        grids = np.meshgrid(
            *[np.arange(n + 1) for n in self.shape], indexing="ij"
        )
        return np.stack([g.ravel() for g in grids], axis=1) * self.h

    def elem_centers(self) -> np.ndarray:
        grids = np.meshgrid(*[np.arange(n) for n in self.shape], indexing="ij")
        return (np.stack([g.ravel() for g in grids], axis=1) + 0.5) * self.h

    def node_index(self, multi: Sequence[int]) -> int:
        return int(np.ravel_multi_index(tuple(multi), self.node_shape))

    def surface_nodes(self) -> np.ndarray:
        """Node indices on the free surface (z = 0)."""
        idx = np.arange(self.nnode).reshape(self.node_shape)
        return idx[..., 0].ravel() if self.d >= 2 else idx

    def _boundary_face(self, axis: int, side: int):
        """(elem_ids, face_node_ids) of a boundary plane."""
        eidx = np.arange(self.nelem).reshape(self.shape)
        sl = [slice(None)] * self.d
        sl[axis] = 0 if side == 0 else self.shape[axis] - 1
        elems = eidx[tuple(sl)].ravel()
        local = [k for k in range(1 << self.d) if ((k >> axis) & 1) == side]
        return elems, self.conn[np.ix_(elems, local)]

    # ----------------------------------------------------------- operators

    def apply_K(
        self, mu: np.ndarray, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Stiffness action ``K(mu) u`` for per-element ``mu``.

        ``u`` may be a single state ``(nnode,)`` or a scenario batch
        ``(nnode, B)`` (each column advanced by one level-3 kernel
        call, bit-identical to the serial apply).  Pass a preallocated
        ``out`` to make the call allocation-free.  The kernels index
        flat memory, so ``u`` must be C-contiguous — asserted here
        instead of silently copied (the old ``np.ascontiguousarray``
        hid a full-state copy per call for strided inputs)."""
        np.multiply(
            np.asarray(mu, dtype=float), self.h ** (self.d - 2),
            out=self._coef,
        )
        u = np.asarray(u, dtype=float)
        if not u.flags.c_contiguous:
            raise ValueError(
                "u must be C-contiguous (copy strided views once at the "
                "call site, outside the time loop)"
            )
        if out is None:
            out = np.empty(u.shape)
        if u.ndim == 2:
            self._kernel.matmat(u, out, coefs=(self._coef,))
        else:
            self._kernel.matvec(u, out, coefs=(self._coef,))
        return out

    def K_diagonal(self, mu: np.ndarray) -> np.ndarray:
        np.multiply(
            np.asarray(mu, dtype=float), self.h ** (self.d - 2),
            out=self._coef,
        )
        return self._kernel.diagonal(np.empty(self.nnode), coefs=(self._coef,))

    def K_material_gradient(
        self, u: np.ndarray, lam: np.ndarray
    ) -> np.ndarray:
        """Per-element ``lam^T (dK/dmu_e) u = h^{d-2} lam_e^T K_ref u_e``."""
        U = u[self.conn]
        L = lam[self.conn]
        return self.h ** (self.d - 2) * np.einsum(
            "ei,ij,ej->e", L, self.K_ref, U
        )

    def K_material_gradient_batch(
        self, u: np.ndarray, lam: np.ndarray
    ) -> np.ndarray:
        """Time-batched :meth:`K_material_gradient`: ``u``/``lam`` have
        shape ``(nt, nnode)`` — or ``(nt, nnode, B)`` for shot batches,
        contracted over time *and* shots; returns the per-element sum."""
        U = u[:, self.conn]
        L = lam[:, self.conn]
        if u.ndim == 3:
            return self.h ** (self.d - 2) * np.einsum(
                "teib,ij,tejb->e", L, self.K_ref, U
            )
        return self.h ** (self.d - 2) * np.einsum(
            "tei,ij,tej->e", L, self.K_ref, U
        )

    def C_material_gradient_batch(
        self, w: np.ndarray, lam: np.ndarray, mu: np.ndarray
    ) -> np.ndarray:
        """Time-batched :meth:`C_material_gradient` (summed over time).

        ``w``/``lam`` may be ``(nt, nnode)`` or shot-batched
        ``(nt, nnode, B)`` (contracted over time, components *and*
        shots — the multi-shot gradient accumulation)."""
        mu = np.asarray(mu, dtype=float)
        g = np.zeros(self.nelem)
        if not len(self._bnd_elems):
            return g
        ww = self.h ** (self.d - 1) / (1 << (self.d - 1))
        fnodes = self._bnd_fnodes
        dcdmu = 0.5 * np.sqrt(self.rho / mu[self._bnd_elems]) * ww
        if w.ndim == 3:
            contrib = np.einsum(
                "tsfb,tsfb->s", lam[:, fnodes], w[:, fnodes]
            )
        else:
            contrib = np.einsum("tsf,tsf->s", lam[:, fnodes], w[:, fnodes])
        self._bnd_elem_plan.scatter_acc(
            self._bnd_elem_ones, dcdmu * contrib, g
        )
        return g

    def damping_diag(self, mu: np.ndarray) -> np.ndarray:
        """Lumped absorbing damping: ``sqrt(rho mu_e) * h^{d-1} / 2^{d-1}``
        per face corner, accumulated over absorbing planes."""
        mu = np.asarray(mu, dtype=float)
        C = np.zeros(self.nnode)
        if not len(self._bnd_elems):
            return C
        w = self.h ** (self.d - 1) / (1 << (self.d - 1))
        c = np.sqrt(self.rho * mu[self._bnd_elems]) * w
        self._bnd_node_plan.scatter_acc(
            self._bnd_node_ones,
            np.repeat(c, self._bnd_fnodes.shape[1]),
            C,
        )
        return C

    def volume_damping_diag(self, alpha: np.ndarray) -> np.ndarray:
        """Lumped mass-proportional (Rayleigh ``alpha M``) attenuation:
        per-element damping ratios deposit ``alpha_e rho h^d / 2^d`` at
        each corner.  Linear in ``alpha`` (so its material derivative is
        the constant lumping stencil)."""
        alpha = np.asarray(alpha, dtype=float)
        nn = 1 << self.d
        w = self.rho * self.h**self.d / nn
        out = np.zeros(self.nnode)
        self._conn_plan.scatter_acc(
            self._conn_ones, np.repeat(alpha * w, nn), out
        )
        return out

    def alpha_material_gradient_batch(
        self, w_field: np.ndarray, adj: np.ndarray
    ) -> np.ndarray:
        """Per-element ``sum_t adj^T (dC/dalpha_e) w`` for time-batched
        nodal fields ``(nt, nnode)`` or shot batches ``(nt, nnode, B)``."""
        nn = 1 << self.d
        lump = self.rho * self.h**self.d / nn
        spec = "tefb,tefb->e" if adj.ndim == 3 else "tef,tef->e"
        contrib = np.einsum(
            spec, adj[:, self.conn], w_field[:, self.conn]
        )
        return lump * contrib

    def damping_diag_perturbation(
        self, mu: np.ndarray, dmu: np.ndarray
    ) -> np.ndarray:
        """Directional derivative of :meth:`damping_diag`:
        ``(dC/dmu) dmu`` as a nodal diagonal."""
        mu = np.asarray(mu, dtype=float)
        dmu = np.asarray(dmu, dtype=float)
        out = np.zeros(self.nnode)
        if not len(self._bnd_elems):
            return out
        w = self.h ** (self.d - 1) / (1 << (self.d - 1))
        e = self._bnd_elems
        dc = 0.5 * np.sqrt(self.rho / mu[e]) * w * dmu[e]
        self._bnd_node_plan.scatter_acc(
            self._bnd_node_ones,
            np.repeat(dc, self._bnd_fnodes.shape[1]),
            out,
        )
        return out

    def C_material_gradient(
        self, w_field: np.ndarray, lam: np.ndarray, mu: np.ndarray
    ) -> np.ndarray:
        """Per-element ``lam^T (dC/dmu_e) w`` (nonzero only on absorbing
        boundary elements): ``dC/dmu_e = 0.5 sqrt(rho/mu_e) * lumping``."""
        mu = np.asarray(mu, dtype=float)
        g = np.zeros(self.nelem)
        if not len(self._bnd_elems):
            return g
        w = self.h ** (self.d - 1) / (1 << (self.d - 1))
        fnodes = self._bnd_fnodes
        dcdmu = 0.5 * np.sqrt(self.rho / mu[self._bnd_elems]) * w
        contrib = np.sum(lam[fnodes] * w_field[fnodes], axis=1)
        self._bnd_elem_plan.scatter_acc(
            self._bnd_elem_ones, dcdmu * contrib, g
        )
        return g

    def plane_wave_injection(
        self,
        mu: np.ndarray,
        incident_velocity: Callable[[np.ndarray], np.ndarray],
        dt: float,
        *,
        axis: int | None = None,
        side: int = 1,
    ) -> Callable[[int], np.ndarray]:
        """Forcing that injects a plane wave through an absorbing face.

        With a Lysmer dashpot on the boundary, an incident wave of
        particle velocity ``v_inc(t)`` entering through face
        ``(axis, side)`` is realized by the standard traction
        ``2 sqrt(rho mu) v_inc`` applied on the face (the factor 2
        compensates the dashpot absorbing half of it).  Used by the
        layer-over-halfspace verification against the Haskell transfer
        function.

        Returns a ``forcing(k)`` callable for :meth:`march` (includes
        the ``dt^2`` scaling).
        """
        axis = self.d - 1 if axis is None else axis
        if (axis, side) not in self.absorbing:
            raise ValueError("plane waves must enter through an absorbing face")
        mu = np.asarray(mu, dtype=float)
        elems, fnodes = self._boundary[self.absorbing.index((axis, side))]
        w = self.h ** (self.d - 1) / (1 << (self.d - 1))
        coef = 2.0 * np.sqrt(self.rho * mu[elems]) * w  # per face element
        # the accumulated per-node amplitude is time-invariant: fold the
        # scatter into one bincount here and scale it per step (the old
        # np.add.at per call was pure waste)
        amp_node = np.bincount(
            fnodes.ravel(),
            weights=dt**2 * np.repeat(coef, fnodes.shape[1]),
            minlength=self.nnode,
        )
        buf = np.zeros(self.nnode)  # reused: march only reads it

        def forcing(k: int) -> np.ndarray | None:
            v = float(incident_velocity(k * dt))
            if v == 0.0:
                return None
            np.multiply(amp_node, v, out=buf)
            return buf

        return forcing

    # ---------------------------------------------------------- leapfrog

    def stable_dt(self, mu: np.ndarray, *, safety: float = 0.5) -> float:
        vmax = float(np.sqrt(np.max(mu) / self.rho))
        return safety * self.h / (vmax * np.sqrt(self.d))

    def _march_coeffs(self, mu, dt: float, alpha):
        """Hoisted leapfrog invariants ``(inv_a_plus, a_minus)`` with a
        single-entry cache keyed on the material iterate: the forward,
        adjoint, and incremental sweeps of one gradient or
        Gauss-Newton Hv evaluation all run on the *same* ``mu``, so
        recomputing the damping diagonal and the LHS inverse for each
        sweep (2x per CG iteration) was pure rework."""
        mu = np.asarray(mu, dtype=float)
        alpha = None if alpha is None else np.asarray(alpha, dtype=float)
        c = self._coeff_cache
        if (
            c is not None
            and c[2] == dt
            and np.array_equal(c[0], mu)
            and (c[1] is None) == (alpha is None)
            and (c[1] is None or np.array_equal(c[1], alpha))
        ):
            return c[3], c[4]
        C = self.damping_diag(mu)
        if alpha is not None:
            C = C + self.volume_damping_diag(alpha)
        inv_a_plus = 1.0 / (self.m + 0.5 * dt * C)
        a_minus = self.m - 0.5 * dt * C
        self._coeff_cache = (
            mu.copy(),
            None if alpha is None else alpha.copy(),
            dt,
            inv_a_plus,
            a_minus,
        )
        return inv_a_plus, a_minus

    # ----------------------------------------------- local time stepping

    def lts_plan(self, mu: np.ndarray, *, max_rate: int = DEFAULT_MAX_RATE
                 ) -> LTSPlan:
        """Clustered-LTS plan for material ``mu``: per-element stable
        steps (uniform ``h``, wave speed ``sqrt(mu_e/rho)``) binned
        into power-of-two rate clusters and 2-to-1 smoothed.  Cached on
        the material iterate (the inverse sweeps re-march one ``mu``
        many times)."""
        mu = np.asarray(mu, dtype=float)
        c = self._lts_plan_cache
        if c is not None and c[1] == max_rate and np.array_equal(c[0], mu):
            return c[2]
        limits = elem_stable_dt(
            np.full(self.nelem, self.h), np.sqrt(mu / self.rho),
            safety=1.0, dim=self.d,
        )
        plan = build_lts_plan(
            self.conn, self.nnode, dt=0.0, elem_dt=limits, max_rate=max_rate
        )
        self._lts_plan_cache = (mu.copy(), max_rate, plan)
        return plan

    def _lts_exec(self, plan, mu, dt, alpha, batch):
        """Per-level execution state: a fused stiffness kernel over the
        cluster's elements (own + halo), the cluster-step leapfrog
        diagonals restricted to its own nodes, and preallocated substep
        buffers — so the clustered loop stays allocation-free.  Single-
        entry cache keyed on (plan, material, dt, batch)."""
        c = self._lts_exec_cache
        alpha = None if alpha is None else np.asarray(alpha, dtype=float)
        if (
            c is not None
            and c[0] is plan
            and c[2] == dt
            and c[4] == batch
            and np.array_equal(c[1], mu)
            and (c[3] is None) == (alpha is None)
            and (c[3] is None or np.array_equal(c[3], alpha))
        ):
            return c[5]
        C = self.damping_diag(mu)
        if alpha is not None:
            C = C + self.volume_damping_diag(alpha)
        backend = get_backend()
        coef_all = np.asarray(mu, dtype=float) * self.h ** (self.d - 2)
        levels = []
        for lv in plan.levels:
            dtc = lv.rate * dt
            own = lv.own_nodes
            shp = (len(own),) if batch is None else (len(own), batch)
            ishp = (
                (len(lv.interp_nodes),)
                if batch is None
                else (len(lv.interp_nodes), batch)
            )

            def _diag(v):
                return v if batch is None else v[:, None]

            levels.append(
                {
                    "rate": lv.rate,
                    "dtc2": dtc * dtc,
                    "rc2": float(lv.rate) ** 2,
                    "own": own,
                    "interp": lv.interp_nodes,
                    "kernel": backend.element_kernel(
                        self.conn[lv.elems], (self.K_ref,), self.nnode
                    ),
                    "coef": np.ascontiguousarray(coef_all[lv.elems]),
                    "m2": _diag(2.0 * self.m[own]),
                    "inv_ap": _diag(1.0 / (self.m[own] + 0.5 * dtc * C[own])),
                    "a_minus": _diag(self.m[own] - 0.5 * dtc * C[own]),
                    "xo": np.empty(shp),
                    "xpo": np.empty(shp),
                    "ko": np.empty(shp),
                    "fo": np.empty(shp),
                    "sv": np.empty(ishp),
                    "iv": np.empty(ishp),
                    "fired": 0,
                }
            )
        self._lts_exec_cache = (
            plan, np.asarray(mu, dtype=float).copy(), dt, alpha, batch, levels
        )
        return levels

    def _march_lts(
        self, mu, forcing, nsteps, dt, plan, *,
        batch=None, alpha=None, checkpoint=None, resume=False,
        faults=None, health_interval=0,
    ) -> np.ndarray:
        """Clustered-leapfrog march (see :mod:`repro.solver.lts` for
        the schedule contract): one loop over fine indices; each level
        fires when its rate divides the index, coarsest first, reading
        time-interpolated values at its coarse halo.  Returns the final
        ``(2, nnode)`` restart pair (``store`` histories are a global-
        loop feature).  Unlike the global march — which posits
        ``x^1 = 0`` and starts at ``k = 1`` — every level takes its
        first step at index 0, so ``forcing(0)`` is applied; sources
        quiet at ``t = 0`` (the standard case) see identical startups.

        Checkpoints are written only at **sync boundaries** (fine
        indices that are multiples of the coarsest rate, where every
        node holds the state at the same time): whenever the manager's
        cadence came due since the last sync snapshot, the restart pair
        is saved there, and a resume restarts from it bit-identically.
        """
        shape = (self.nnode,) if batch is None else (self.nnode, int(batch))
        levels = self._lts_exec(plan, mu, dt, alpha, batch)
        x_prev = np.zeros(shape)
        x = np.zeros(shape)
        Kx = np.empty(shape)
        r_min, r_max = plan.min_rate, plan.max_rate
        if nsteps % r_max:
            raise ValueError(
                f"nsteps = {nsteps} must be a multiple of the coarsest "
                f"cluster rate {r_max} so the march ends synchronized"
            )
        k0 = 0
        if resume and checkpoint is not None:
            ck = checkpoint.latest()
            if ck is not None:
                x_prev[:] = ck.arrays["x_prev"]
                x[:] = ck.arrays["x"]
                k0 = int(ck.meta["next_k"])
                if k0 % r_max:
                    raise ValueError(
                        f"LTS resume index {k0} is not a sync boundary "
                        f"(coarsest rate {r_max})"
                    )
        last_sync_saved = k0
        with telemetry.span("scalar.march_lts") as _m:
            for j in range(k0, nsteps, r_min):
                f = forcing(j)
                for lev in levels:
                    rate = lev["rate"]
                    if j % rate:
                        continue
                    lev["fired"] += 1
                    interp = lev["interp"]
                    ni = len(interp)
                    if ni:
                        # overwrite the coarse halo with its time-
                        # interpolated value, apply, then restore
                        sv, iv = lev["sv"], lev["iv"]
                        np.take(x, interp, axis=0, out=sv)
                        np.take(x_prev, interp, axis=0, out=iv)
                        if j % (2 * rate):  # theta = 1/2
                            np.add(iv, sv, out=iv)
                            np.multiply(iv, 0.5, out=iv)
                        x[interp] = iv
                    if batch is None:
                        lev["kernel"].matvec(x, Kx, coefs=(lev["coef"],))
                    else:
                        lev["kernel"].matmat(x, Kx, coefs=(lev["coef"],))
                    if ni:
                        x[interp] = sv
                    own = lev["own"]
                    xo, xpo, ko = lev["xo"], lev["xpo"], lev["ko"]
                    np.take(x, own, axis=0, out=xo)
                    np.take(x_prev, own, axis=0, out=xpo)
                    np.take(Kx, own, axis=0, out=ko)
                    # r = 2M x - dt_c^2 K x~ - A- x_prev + r_c^2 f
                    np.multiply(ko, lev["dtc2"], out=ko)
                    np.multiply(lev["m2"], xo, out=lev["fo"])
                    np.subtract(lev["fo"], ko, out=ko)
                    np.multiply(lev["a_minus"], xpo, out=lev["fo"])
                    np.subtract(ko, lev["fo"], out=ko)
                    if f is not None:
                        # forcing(j) is dt^2-prescaled by convention;
                        # the cluster step dt_c = r dt scales it by r^2
                        np.take(f, own, axis=0, out=lev["fo"])
                        np.multiply(lev["fo"], lev["rc2"], out=lev["fo"])
                        np.add(ko, lev["fo"], out=ko)
                    np.multiply(ko, lev["inv_ap"], out=ko)
                    x_prev[own] = xo
                    x[own] = ko
                s = j + r_min
                if s % r_max == 0:  # sync boundary: all nodes at s*dt
                    if faults is not None:
                        faults.poison_state(0, s - 1, x)
                    if health_interval and should_check(
                        s - 1, nsteps, health_interval
                    ):
                        check_finite(x, step=s - 1, field="x")
                    if (
                        checkpoint is not None
                        and checkpoint.interval > 0
                        and s // checkpoint.interval
                        > last_sync_saved // checkpoint.interval
                    ):
                        checkpoint.save(
                            s - 1, {"x_prev": x_prev, "x": x},
                            {"next_k": s, "lts_rate": r_max},
                        )
                        last_sync_saved = s
            flops = 0
            for lev in levels:
                per = (
                    lev["kernel"].flops_per_matvec
                    if batch is None
                    else lev["kernel"].flops_per_matmat(batch)
                )
                flops += lev["fired"] * (
                    per + 6 * len(lev["own"]) * (1 if batch is None else batch)
                )
                _m.add(f"fired_r{lev['rate']}", lev["fired"])
            _m.add("flops", flops)
        return np.stack([x_prev, x])

    def march(
        self,
        mu: np.ndarray,
        forcing: Callable[[int], np.ndarray | None],
        nsteps: int,
        dt: float,
        *,
        store: bool = True,
        on_step: Callable[[int, np.ndarray], None] | None = None,
        x0: np.ndarray | None = None,
        x1: np.ndarray | None = None,
        alpha: np.ndarray | None = None,
        batch: int | None = None,
        checkpoint: CheckpointManager | None = None,
        resume: bool = False,
        faults=None,
        health_interval: int = 0,
        lts: int | bool | LTSPlan | None = None,
    ) -> np.ndarray | None:
        """Run the leapfrog ``A+ x^{k+1} = (2M - dt^2 K) x^k - A- x^{k-1}
        + f^k``; ``forcing(k)`` supplies ``f^k`` (may be None).

        Starts from rest unless initial states ``(x0, x1)`` are given
        (used by verification tests and checkpoint restarts).  ``alpha``
        adds per-element mass-proportional attenuation.  Returns the
        state history ``(nsteps + 1, nnode)`` when ``store``, else the
        final two states stacked as ``(2, nnode)``.

        ``batch=B`` advances ``B`` scenarios at once: states are
        ``(nnode, B)`` column blocks, ``forcing(k)`` returns
        ``(nnode, B)`` (or None), initial states are 2D, and the
        history gains a trailing batch axis.  All B columns share one
        fused leapfrog loop — one level-3 stiffness application and
        one set of broadcast diagonal updates per step instead of B of
        each — and every column is bit-identical to the corresponding
        serial march (same summation orders throughout; see
        :func:`batched_forcing` for stacking per-scenario forcings).
        ``batch`` may also be inferred from a 2D ``x0``/``x1``.

        Resilience (all opt-in, default off — the inverse sweeps call
        march thousands of times): ``checkpoint`` durably snapshots the
        restart pair (and the stored-history prefix) on the manager's
        cadence; ``resume=True`` restarts from the latest valid
        snapshot, bit-identical to the uninterrupted march.
        ``health_interval`` arms the NaN/Inf sentinel; ``faults`` takes
        a :class:`~repro.resilience.FaultPlan` (state poisoning).
        """
        if lts:
            if isinstance(lts, LTSPlan):
                plan = lts
            else:
                cap = DEFAULT_MAX_RATE if lts is True else int(lts)
                # all nodes must be synchronized when the march ends,
                # so the coarsest rate must divide nsteps: cap by the
                # largest power of two that does
                cap = min(cap, nsteps & -nsteps)
                plan = self.lts_plan(mu, max_rate=cap)
            if not plan.trivial:
                if (
                    store
                    or on_step is not None
                    or x0 is not None
                    or x1 is not None
                ):
                    raise ValueError(
                        "lts marches run from rest with store=False (no "
                        "history storage, on_step callbacks, or initial "
                        "states)"
                    )
                return self._march_lts(
                    mu, forcing, nsteps, dt, plan,
                    batch=batch, alpha=alpha, checkpoint=checkpoint,
                    resume=resume, faults=faults,
                    health_interval=health_interval,
                )
        if batch is None and x0 is not None and np.ndim(x0) == 2:
            batch = np.shape(x0)[1]
        if batch is None and x1 is not None and np.ndim(x1) == 2:
            batch = np.shape(x1)[1]
        shape = (self.nnode,) if batch is None else (self.nnode, int(batch))
        inv_a_plus, a_minus = self._march_coeffs(mu, dt, alpha)
        # hoisted invariants: 2M, the inverse LHS diagonal (division ->
        # multiply in the loop), and dt^2; for a batch the per-node
        # diagonals broadcast as column vectors over all B columns
        m2 = 2.0 * self.m
        if batch is not None:
            m2 = m2[:, None]
            inv_a_plus = inv_a_plus[:, None]
            a_minus = a_minus[:, None]
        dt2 = dt * dt
        # per-call state/scratch buffers (march stays reentrant); the
        # steady-state loop itself is in-place with buffer rotation —
        # zero per-step O(nnode) allocations

        def _state(xi):
            if xi is None:
                return np.zeros(shape)
            xi = np.asarray(xi, dtype=float)
            if xi.shape != shape:
                raise ValueError(f"initial state must be {shape}, got {xi.shape}")
            return xi.copy()

        x_prev = _state(x0)
        x = _state(x1)
        x_next = np.empty(shape)
        r = np.empty(shape)
        Kx = np.empty(shape)
        hist = np.zeros((nsteps + 1, *shape)) if store else None
        k0 = 1
        if resume and checkpoint is not None:
            ck = checkpoint.latest()
            if ck is not None:
                x_prev[:] = ck.arrays["x_prev"]
                x[:] = ck.arrays["x"]
                k0 = int(ck.meta["next_k"])
                if store and "hist" in ck.arrays:
                    prefix = ck.arrays["hist"]
                    hist[: prefix.shape[0]] = prefix
        if k0 == 1:  # fresh start (not a mid-run resume)
            if store:
                hist[0] = x_prev
                hist[1] = x
            if on_step is not None:
                on_step(0, x_prev)
                on_step(1, x)
        # one span per march (not per step: the inverse sweeps call
        # march thousands of times); flops attributed in aggregate from
        # the kernel's own per-apply count
        with telemetry.span("scalar.march") as _m:
            for k in range(k0, nsteps):
                f = forcing(k)
                self.apply_K(mu, x, out=Kx)
                np.multiply(m2, x, out=r)
                np.multiply(Kx, dt2, out=Kx)
                np.subtract(r, Kx, out=r)
                np.multiply(a_minus, x_prev, out=Kx)
                np.subtract(r, Kx, out=r)
                if f is not None:
                    np.add(r, f, out=r)
                np.multiply(r, inv_a_plus, out=x_next)
                if store:
                    hist[k + 1] = x_next
                if on_step is not None:
                    on_step(k + 1, x_next)
                x_prev, x, x_next = x, x_next, x_prev
                # x is now x^{k+1}, x_prev is x^k — the restart pair
                if faults is not None:
                    faults.poison_state(0, k, x)
                if health_interval and should_check(k, nsteps, health_interval):
                    check_finite(x, step=k, field="x")
                if checkpoint is not None and checkpoint.due(k):
                    arrays = {"x_prev": x_prev, "x": x}
                    if store:
                        arrays["hist"] = hist[: k + 2]
                    checkpoint.save(k, arrays, {"next_k": k + 1})
            napply = max(nsteps - k0, 0)
            _m.add("steps", napply)
            _m.add(
                "flops",
                napply
                * (
                    self._kernel.flops_per_matvec
                    if batch is None
                    else self._kernel.flops_per_matmat(batch)
                )
                + napply * 6 * int(np.prod(shape)),
            )
        if store:
            return hist
        return np.stack([x_prev, x])


def batched_forcing(
    columns: Sequence[Callable[[int], np.ndarray | None] | None],
    nnode: int,
) -> Callable[[int], np.ndarray | None]:
    """Stack per-scenario ``forcing(k)`` callables into the single
    ``(nnode, B)`` block forcing a batched :meth:`march` consumes.

    A scenario whose callable is None (or returns None at a step)
    contributes a zero column — adding zero leaves the other columns'
    trajectories bit-identical to their serial runs (``np.array_equal``;
    a ``-0.0`` may flip sign bit, which compares equal).  The block
    buffer is reused across steps, matching march's read-only forcing
    contract."""
    cols = list(columns)
    B = len(cols)
    buf = np.zeros((nnode, B))
    col_live = np.zeros(B, dtype=bool)  # column nonzero in buf

    def forcing(k: int) -> np.ndarray | None:
        live = False
        for b, fn in enumerate(cols):
            f = None if fn is None else fn(k)
            if f is None:
                # zero the column once on the live -> quiet transition,
                # then skip the fill while the source stays silent
                if col_live[b]:
                    buf[:, b] = 0.0
                    col_live[b] = False
            else:
                buf[:, b] = f
                col_live[b] = True
                live = True
        return buf if live else None

    return forcing
