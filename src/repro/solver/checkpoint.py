"""Algorithmic checkpointing for the adjoint sweep (Griewank [21]).

The adjoint wave equation is solved backward in time and needs the
forward states in reverse order.  Storing all of them costs O(N) memory;
checkpointing trades recomputation for storage: with ``c`` checkpoint
slots, the forward states are re-generated segment by segment from the
stored snapshots during the backward sweep.

:func:`checkpoint_schedule` returns the snapshot steps; the leapfrog
needs *two* consecutive states per snapshot to restart, which the
scheduler accounts for.
"""

from __future__ import annotations

import numpy as np


def checkpoint_schedule(nsteps: int, slots: int) -> list[int]:
    """Steps at which to store (two-state) snapshots.

    Uniform placement: with ``slots`` snapshots the backward sweep
    recomputes at most ``ceil(nsteps / slots)`` forward steps per
    segment, giving the classic memory/recompute trade-off.
    """
    if slots < 1:
        raise ValueError("need at least one checkpoint slot")
    if nsteps < 1:
        return [0]
    stride = max(1, int(np.ceil(nsteps / slots)))
    return list(range(0, nsteps, stride))


class CheckpointedStates:
    """Replays forward states backward from snapshots.

    Parameters
    ----------
    step_fn:
        ``step_fn(k, x_prev, x) -> x_next`` advancing the forward
        recurrence from states ``(x^{k-1}, x^k)`` to ``x^{k+1}``
        (i.e. evaluated with the step-``k`` forcing, ``k >= 1``).
    snapshots:
        dict ``s -> (x^s, x^{s+1})`` — consecutive state pairs captured
        during the forward sweep at :func:`checkpoint_schedule` steps.
        A snapshot at 0 (``(x^0, x^1)``, both zero for a from-rest run)
        makes every state reachable.
    nsteps:
        Final step index N (states x^0 .. x^N exist).
    """

    def __init__(self, step_fn, snapshots: dict, nsteps: int):
        self.step_fn = step_fn
        self.snapshots = snapshots
        self.nsteps = nsteps
        self._cache: dict[int, np.ndarray] = {}
        self.recomputed_steps = 0

    def state(self, k: int) -> np.ndarray:
        """Forward state ``x^k``, recomputing from the nearest earlier
        snapshot when not cached."""
        if k in self._cache:
            return self._cache[k]
        starts = [s for s in self.snapshots if s <= k]
        if not starts:
            raise KeyError(f"no snapshot at or before step {k}")
        s = max(starts)
        x_prev, x = self.snapshots[s]
        self._cache = {s: x_prev, s + 1: x}
        kk = s + 1
        while kk < k:
            x_next = self.step_fn(kk, x_prev, x)
            self.recomputed_steps += 1
            x_prev, x = x, x_next
            kk += 1
            self._cache[kk] = x
        return self._cache[k]
