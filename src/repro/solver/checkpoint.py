"""Checkpointing: in-memory adjoint snapshots and durable run restarts.

Two related mechanisms live here:

* **Algorithmic checkpointing** for the adjoint sweep (Griewank [21]):
  the adjoint wave equation is solved backward in time and needs the
  forward states in reverse order.  Storing all of them costs O(N)
  memory; checkpointing trades recomputation for storage
  (:func:`checkpoint_schedule` + :class:`CheckpointedStates`).  The
  leapfrog needs *two* consecutive states per snapshot to restart,
  which the scheduler accounts for.

* **Durable checkpoint/restart** for crash recovery: the
  :class:`RunCheckpoint` disk format (versioned header, CRC32-verified
  state arrays, atomic write-rename) and the :class:`CheckpointManager`
  that schedules, prunes, and scans them.  The solvers snapshot the
  leapfrog restart pair (plus any carried recurrences) every
  ``interval`` steps and resume **bit-identically** from the latest
  valid file — the explicit update depends only on the two previous
  states and the (deterministic) forcing, so restoring them reproduces
  the uninterrupted trajectory exactly.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry


def checkpoint_schedule(nsteps: int, slots: int) -> list[int]:
    """Steps at which to store (two-state) snapshots.

    Uniform placement: with ``slots`` snapshots the backward sweep
    recomputes at most ``ceil(nsteps / slots)`` forward steps per
    segment, giving the classic memory/recompute trade-off.

    When the uniform placement leaves slots to spare (the ceil-stride
    can generate fewer snapshots than requested), one spare slot is
    spent on the final restart pair at ``nsteps - 1``: the backward
    sweep's *first* accesses are the late states ``x^N, x^{N-1}, ...``,
    and a snapshot holding ``(x^{N-1}, x^N)`` makes them free instead
    of costing a full final-segment replay.  The schedule never exceeds
    ``slots`` entries and every entry is ``<= max(nsteps - 1, 0)``.
    """
    if slots < 1:
        raise ValueError("need at least one checkpoint slot")
    if nsteps < 1:
        return [0]
    stride = max(1, int(np.ceil(nsteps / slots)))
    sched = list(range(0, nsteps, stride))
    if len(sched) < slots and sched[-1] != nsteps - 1:
        sched.append(nsteps - 1)
    return sched


class CheckpointedStates:
    """Replays forward states backward from snapshots.

    Parameters
    ----------
    step_fn:
        ``step_fn(k, x_prev, x) -> x_next`` advancing the forward
        recurrence from states ``(x^{k-1}, x^k)`` to ``x^{k+1}``
        (i.e. evaluated with the step-``k`` forcing, ``k >= 1``).
    snapshots:
        dict ``s -> (x^s, x^{s+1})`` — consecutive state pairs captured
        during the forward sweep at :func:`checkpoint_schedule` steps.
        A snapshot at 0 (``(x^0, x^1)``, both zero for a from-rest run)
        makes every state reachable.
    nsteps:
        Final step index N (states x^0 .. x^N exist).
    """

    def __init__(self, step_fn, snapshots: dict, nsteps: int):
        self.step_fn = step_fn
        self.snapshots = snapshots
        self.nsteps = nsteps
        self._cache: dict[int, np.ndarray] = {}
        self.recomputed_steps = 0

    def state(self, k: int) -> np.ndarray:
        """Forward state ``x^k``, recomputing from the nearest earlier
        snapshot when not cached."""
        if k in self._cache:
            return self._cache[k]
        starts = [s for s in self.snapshots if s <= k]
        if not starts:
            raise KeyError(f"no snapshot at or before step {k}")
        s = max(starts)
        x_prev, x = self.snapshots[s]
        self._cache = {s: x_prev, s + 1: x}
        kk = s + 1
        while kk < k:
            x_next = self.step_fn(kk, x_prev, x)
            self.recomputed_steps += 1
            x_prev, x = x, x_next
            kk += 1
            self._cache[kk] = x
        return self._cache[k]


# ------------------------------------------------ durable checkpoints

#: file magic + format version; bump the version on layout changes so
#: stale files are rejected instead of misread
_MAGIC = b"RPROCKPT"
_VERSION = 1


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed validation (bad magic/version, truncated
    payload, or CRC32 mismatch).  :meth:`CheckpointManager.latest`
    skips such files and falls back to the previous valid one."""


@dataclass
class RunCheckpoint:
    """One restart point of a time loop or outer iteration.

    ``step`` is the last completed step/iteration; ``arrays`` holds the
    named state arrays (e.g. the leapfrog restart pair); ``meta`` is a
    small JSON-able dict (``next_k``, RNG state, iteration counters...).
    """

    step: int
    arrays: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)


def save_checkpoint(path: str, step: int, arrays: dict,
                    meta: dict | None = None) -> int:
    """Write a :class:`RunCheckpoint` durably; returns bytes written.

    Layout: 8-byte magic, uint32 version, uint32 header length, JSON
    header (step, meta, array table with dtype/shape/nbytes/CRC32),
    then the raw array payloads back to back.  The file is written to
    ``path + ".tmp"``, fsynced, and atomically renamed over ``path`` —
    a crash mid-write leaves the previous checkpoint intact, never a
    half-written one under the live name.
    """
    entries = []
    blobs = []
    for name, arr in arrays.items():
        a = np.ascontiguousarray(arr)
        blob = a.tobytes()
        entries.append(
            {
                "name": str(name),
                "dtype": a.dtype.str,
                "shape": list(a.shape),
                "nbytes": len(blob),
                "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            }
        )
        blobs.append(blob)
    header = json.dumps(
        {"step": int(step), "meta": meta or {}, "arrays": entries},
        sort_keys=True,
    ).encode()
    tmp = path + ".tmp"
    with telemetry.span("ckpt.save"):
        with open(tmp, "wb") as f:
            f.write(_MAGIC)
            f.write(struct.pack("<II", _VERSION, len(header)))
            f.write(header)
            for blob in blobs:
                f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    nbytes = len(_MAGIC) + 8 + len(header) + sum(len(b) for b in blobs)
    telemetry.count("resilience.checkpoints_written")
    telemetry.count("resilience.checkpoint_bytes", nbytes)
    return nbytes


def load_checkpoint(path: str) -> RunCheckpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointCorruptError` on any validation failure —
    wrong magic or version, truncated file, or a CRC32 mismatch on any
    state array."""
    with telemetry.span("ckpt.load"):
        try:
            with open(path, "rb") as f:
                magic = f.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise CheckpointCorruptError(
                        f"{path}: bad magic {magic!r}"
                    )
                version, hlen = struct.unpack("<II", f.read(8))
                if version != _VERSION:
                    raise CheckpointCorruptError(
                        f"{path}: unsupported version {version}"
                    )
                try:
                    header = json.loads(f.read(hlen).decode())
                except (UnicodeDecodeError, json.JSONDecodeError) as e:
                    raise CheckpointCorruptError(
                        f"{path}: unreadable header ({e})"
                    ) from e
                arrays = {}
                for ent in header["arrays"]:
                    blob = f.read(ent["nbytes"])
                    if len(blob) != ent["nbytes"]:
                        raise CheckpointCorruptError(
                            f"{path}: truncated payload for "
                            f"{ent['name']!r}"
                        )
                    if (zlib.crc32(blob) & 0xFFFFFFFF) != ent["crc32"]:
                        raise CheckpointCorruptError(
                            f"{path}: CRC32 mismatch on {ent['name']!r}"
                        )
                    arrays[ent["name"]] = np.frombuffer(
                        blob, dtype=np.dtype(ent["dtype"])
                    ).reshape(ent["shape"]).copy()
        except OSError as e:
            raise CheckpointCorruptError(f"{path}: unreadable ({e})") from e
    return RunCheckpoint(
        step=int(header["step"]), arrays=arrays, meta=header["meta"]
    )


class CheckpointManager:
    """Schedules, writes, prunes, and scans durable checkpoints.

    Parameters
    ----------
    directory:
        Where the checkpoint files live (created on first save).
    interval:
        Snapshot cadence in steps: :meth:`due` is true once every
        ``interval`` completed steps.  ``0`` disables periodic saves
        (the manager can still :meth:`save` explicitly).
    keep:
        Retain this many most-recent checkpoints; older files are
        pruned after each save (2+ tolerates a corrupt latest file).
    prefix:
        Filename prefix — per-rank managers in the distributed solver
        use ``rank{r}`` so one directory holds the collective set.
    """

    def __init__(self, directory: str, interval: int = 0, *,
                 keep: int = 3, prefix: str = "ckpt"):
        self.directory = str(directory)
        self.interval = int(interval)
        self.keep = max(int(keep), 1)
        self.prefix = str(prefix)

    def due(self, step: int) -> bool:
        """True when a snapshot is due after completing step ``step``
        (0-based: with ``interval = 5``, due at steps 4, 9, 14, ...)."""
        return self.interval > 0 and (step + 1) % self.interval == 0

    def path_for(self, step: int) -> str:
        return os.path.join(
            self.directory, f"{self.prefix}_{int(step):010d}.ckpt"
        )

    def save(self, step: int, arrays: dict, meta: dict | None = None) -> str:
        """Durably write the checkpoint for ``step`` and prune old
        files; returns the path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(step)
        save_checkpoint(path, step, arrays, meta)
        self._prune()
        return path

    def steps(self) -> list[int]:
        """Steps with a checkpoint file on disk, ascending (existence
        only — validation happens at load time)."""
        if not os.path.isdir(self.directory):
            return []
        out = []
        suffix = ".ckpt"
        pre = self.prefix + "_"
        for name in os.listdir(self.directory):
            if name.startswith(pre) and name.endswith(suffix):
                try:
                    out.append(int(name[len(pre):-len(suffix)]))
                except ValueError:
                    continue
        return sorted(out)

    def latest(self) -> RunCheckpoint | None:
        """The most recent *valid* checkpoint, or None.  Files that
        fail validation (CRC, truncation) are skipped, so a crash that
        corrupted the newest file falls back to the one before it."""
        for step in reversed(self.steps()):
            try:
                ck = load_checkpoint(self.path_for(step))
            except CheckpointCorruptError:
                continue
            telemetry.count("resilience.restores")
            return ck
        return None

    def load_step(self, step: int) -> RunCheckpoint:
        """Load the checkpoint for exactly ``step`` (validating CRCs)."""
        ck = load_checkpoint(self.path_for(step))
        telemetry.count("resilience.restores")
        return ck

    def valid_steps(self) -> list[int]:
        """Steps whose files fully validate, ascending.  Used by the
        distributed recovery to intersect per-rank sets into the last
        *collective* checkpoint."""
        out = []
        for step in self.steps():
            try:
                load_checkpoint(self.path_for(step))
            except CheckpointCorruptError:
                continue
            out.append(step)
        return out

    def _prune(self) -> None:
        for step in self.steps()[: -self.keep]:
            try:
                os.remove(self.path_for(step))
            except OSError:
                pass


def collective_latest_step(directory: str, nranks: int,
                           interval: int = 0) -> int | None:
    """Latest step for which **every** rank's checkpoint validates —
    the restart point of a distributed recovery (a rank that died
    mid-save must not drag the others onto a step it never reached).
    Returns None when no common valid step exists."""
    common = None
    for r in range(nranks):
        mgr = CheckpointManager(directory, interval, prefix=f"rank{r}")
        steps = set(mgr.valid_steps())
        common = steps if common is None else (common & steps)
        if not common:
            return None
    return max(common)
