"""High-level public API.

* :class:`ForwardSimulation` — octree-meshed elastic earthquake
  simulation of a basin: one call from material model + source scenario
  to seismograms and snapshots (paper Section 2).
* :class:`MaterialInversion` — 2D antiplane (or 3D scalar) shear-modulus
  inversion with multiscale continuation (paper Section 3.2, Fig 3.2).
* :class:`SourceInversion` — fault source-parameter inversion
  (paper Fig 3.3).
"""

from repro.core.simulation import ForwardSimulation, ForwardResult
from repro.core.inversion import (
    AntiplaneSetup,
    MaterialInversion,
    SourceInversion,
)

__all__ = [
    "ForwardSimulation",
    "ForwardResult",
    "AntiplaneSetup",
    "MaterialInversion",
    "SourceInversion",
]
