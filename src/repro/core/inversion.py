"""High-level inversion drivers for 2D antiplane basin sections.

:class:`AntiplaneSetup` builds the paper's Section 3.2 experiment: a
vertical cross-section with a known density, a vertical strike-slip
fault trace, surface receivers, and pseudo-observed data synthesized
from a *target* shear-velocity model (plus optional noise — the paper
adds 5%).  :class:`MaterialInversion` and :class:`SourceInversion` run
the corresponding inverse problems on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.inverse.fault_source import FaultLineSource2D, SourceParams
from repro.inverse.gauss_newton import GNResult, gauss_newton_cg
from repro.inverse.multiscale import MultiscaleResult, multiscale_invert
from repro.inverse.parametrization import MaterialGrid
from repro.inverse.problem import ScalarWaveInverseProblem
from repro.inverse.source_inversion import SourceInverseProblem
from repro.solver.scalarwave import RegularGridScalarWave


class AntiplaneSetup:
    """A 2D antiplane inverse-crime experiment (paper Section 3.2).

    Units are km / s / km-s^-1; with ``rho = 1`` the shear modulus is
    numerically ``vs^2``, which keeps the parameter scale O(1).

    Parameters
    ----------
    vs_target:
        Vectorized target shear velocity (km/s) over points ``(n, 2)``
        (x, depth) in km — the "Target" panel of Figure 3.2.
    lengths:
        Section extent (width, depth) in km (paper: ~40 x 20 km).
    wave_shape:
        Wave-grid elements per axis.
    fault_x_frac / fault_depth_frac:
        Horizontal position of the vertical fault trace and the depth
        range of the rupture, as fractions.
    n_receivers:
        Uniformly spaced free-surface receivers (paper: 64 and 16).
    t_end:
        Record length (s).
    noise:
        Relative amplitude of added Gaussian noise (paper: 5%).
    """

    def __init__(
        self,
        vs_target: Callable[[np.ndarray], np.ndarray],
        *,
        lengths: tuple[float, float] = (40.0, 20.0),
        wave_shape: tuple[int, int] = (64, 32),
        fault_x_frac: float = 0.5,
        fault_depth_frac: tuple[float, float] = (0.25, 0.75),
        hypo_frac: float = 0.5,
        rupture_velocity: float = 2.0,
        u0: float = 1.0,
        t0: float = 0.5,
        n_receivers: int = 64,
        t_end: float = 20.0,
        noise: float = 0.0,
        seed: int = 0,
    ):
        if wave_shape[0] * lengths[1] != wave_shape[1] * lengths[0]:
            raise ValueError("wave_shape must match the section aspect ratio")
        self.lengths = lengths
        h = lengths[0] / wave_shape[0]
        self.solver = RegularGridScalarWave(wave_shape, h, rho=1.0)
        self.vs_target = vs_target
        self.mu_target_fn = lambda pts: np.asarray(vs_target(pts)) ** 2

        ix = int(round(fault_x_frac * wave_shape[0]))
        j1 = int(round(fault_depth_frac[0] * wave_shape[1]))
        j2 = int(round(fault_depth_frac[1] * wave_shape[1]))
        self.fault = FaultLineSource2D(self.solver, ix=ix, jz=range(j1, j2))
        hypo_j = int(round(hypo_frac * (j1 + j2) / 2 + (1 - hypo_frac) * j1))
        hypo_j = min(max(hypo_j, j1), j2 - 1)
        self.params_true = self.fault.hypocentral_params(
            hypo_j=hypo_j,
            rupture_velocity=rupture_velocity,
            u0=u0,
            t0=t0,
        )

        # target material on the element grid (exact, not interpolated)
        self.mu_true_e = self.mu_target_fn(self.solver.elem_centers())
        self.dt = self.solver.stable_dt(self.mu_true_e)
        self.nsteps = int(round(t_end / self.dt))

        surface = self.solver.surface_nodes()
        n_receivers = min(n_receivers, len(surface))
        idx = np.unique(
            np.round(np.linspace(0, len(surface) - 1, n_receivers)).astype(int)
        )
        self.receivers = surface[idx]

        u = self.solver.march(
            self.mu_true_e,
            self.fault.forcing(self.mu_true_e, self.params_true, self.dt),
            self.nsteps,
            self.dt,
            store=True,
        )
        self.clean_data = u[:, self.receivers]
        rng = np.random.default_rng(seed)
        scale = noise * np.abs(self.clean_data).max()
        self.data = self.clean_data + scale * rng.standard_normal(
            self.clean_data.shape
        )

    def material_grids(self, n_levels: int) -> list[MaterialGrid]:
        """Dyadic material grid sequence (paper: 1x1 ... 257x257 nodes;
        here cells double per level keeping the section aspect)."""
        grids = []
        for l in range(n_levels):
            nx = 2**l * 2
            nz = max(1, nx * int(self.lengths[1]) // int(self.lengths[0]))
            grids.append(MaterialGrid((nx, nz), self.lengths))
        return grids


@dataclass
class MaterialInversionResult:
    multiscale: MultiscaleResult
    model_errors: list
    setup: AntiplaneSetup

    @property
    def m_final(self) -> np.ndarray:
        return self.multiscale.m_final


class MaterialInversion:
    """Multiscale shear-modulus inversion on an antiplane setup.

    ``freq_continuation`` optionally lists a low-pass cutoff (Hz) per
    continuation level — coarse levels then only see the smoothed
    residual, the paper's "grid and frequency continuation".  Use
    ``None`` entries for unfiltered levels.
    """

    def __init__(
        self,
        setup: AntiplaneSetup,
        *,
        beta_tv: float = 1e-6,
        barrier_gamma: float = 1e-8,
        mu_min: float = 0.05,
        freq_continuation: list | None = None,
    ):
        self.setup = setup
        self.beta_tv = beta_tv
        self.barrier_gamma = barrier_gamma
        self.mu_min = mu_min
        self.freq_continuation = freq_continuation

    def make_problem(
        self, grid: MaterialGrid, level: int = -1
    ) -> ScalarWaveInverseProblem:
        from repro.inverse.problem import gaussian_time_kernel

        s = self.setup
        smoother = None
        if (
            self.freq_continuation is not None
            and 0 <= level < len(self.freq_continuation)
            and self.freq_continuation[level] is not None
        ):
            smoother = gaussian_time_kernel(
                s.dt, self.freq_continuation[level]
            )
        return ScalarWaveInverseProblem(
            s.solver,
            grid,
            s.receivers,
            s.data,
            s.dt,
            s.nsteps,
            fault=s.fault,
            source_params=s.params_true,
            barrier_gamma=self.barrier_gamma,
            mu_min=self.mu_min,
            residual_smoother=smoother,
        )

    def run(
        self,
        n_levels: int = 4,
        *,
        m_init: float | None = None,
        newton_per_level: int = 6,
        cg_maxiter: int = 30,
        verbose: bool = False,
    ) -> MaterialInversionResult:
        s = self.setup
        grids = s.material_grids(n_levels)
        if m_init is None:
            m_init = float(np.mean(s.mu_true_e))
        errors = []

        def cb(li, grid, m, result):
            m_ref = grid.sample(s.mu_target_fn)
            errors.append(
                float(np.linalg.norm(m - m_ref) / np.linalg.norm(m_ref))
            )

        ms = multiscale_invert(
            self.make_problem,
            grids,
            m_init,
            beta_tv=self.beta_tv,
            newton_per_level=newton_per_level,
            cg_maxiter=cg_maxiter,
            verbose=verbose,
            level_callback=cb,
        )
        return MaterialInversionResult(
            multiscale=ms, model_errors=errors, setup=s
        )

    def predicted_waveform(
        self, m: np.ndarray, grid: MaterialGrid, node: int
    ) -> np.ndarray:
        """Velocity history at an arbitrary node for a model — the
        non-receiver comparison of Figure 3.2b."""
        s = self.setup
        mu_e = grid.to_elements(s.solver) @ m
        u = s.solver.march(
            mu_e,
            s.fault.forcing(mu_e, s.params_true, s.dt),
            s.nsteps,
            s.dt,
            store=True,
        )
        return np.gradient(u[:, node], s.dt)


class SourceInversion:
    """Fault source-parameter inversion (Figure 3.3) with the material
    fixed at the target."""

    def __init__(
        self,
        setup: AntiplaneSetup,
        *,
        beta_u0: float = 1e-6,
        beta_t0: float = 1e-6,
        beta_T: float = 1e-6,
        barrier_gamma: float = 1e-9,
    ):
        s = setup
        self.setup = s
        self.problem = SourceInverseProblem(
            s.solver,
            s.fault,
            s.mu_true_e,
            s.receivers,
            s.data,
            s.dt,
            s.nsteps,
            beta_u0=beta_u0,
            beta_t0=beta_t0,
            beta_T=beta_T,
            barrier_gamma=barrier_gamma,
        )

    def run(
        self,
        p_init: SourceParams | None = None,
        *,
        max_newton: int = 15,
        cg_maxiter: int = 30,
        verbose: bool = False,
        callback=None,
    ) -> tuple[SourceParams, GNResult]:
        s = self.setup
        if p_init is None:
            p_init = SourceParams(
                u0=np.full(s.fault.ns, 1.0),
                t0=np.full(s.fault.ns, 1.0),
                T=np.full(s.fault.ns, float(np.mean(s.params_true.T))),
            )
        res = gauss_newton_cg(
            self.problem,
            p_init.pack(),
            max_newton=max_newton,
            cg_maxiter=cg_maxiter,
            verbose=verbose,
            callback=callback,
        )
        return SourceParams.unpack(res.m), res
