"""One-call forward earthquake simulation.

Wires the full paper pipeline: wavelength-adaptive octree (h = vs /
(N_lambda f_max)), 2-to-1 balancing, hexahedral mesh extraction with
hanging-node constraints, material sampling, explicit solve with Stacey
boundaries and optional Rayleigh attenuation, receivers and snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.io.seismogram import ReceiverArray, Seismograms
from repro.io.snapshots import SnapshotRecorder
from repro.mesh.hanging import HangingNodeInfo, build_constraints
from repro.mesh.hexmesh import HexMesh, extract_mesh, wavelength_target
from repro.octree.balance import balance_octree
from repro.octree.linear_octree import LinearOctree, build_adaptive_octree
from repro.solver.wave_solver import ElasticWaveSolver
from repro.sources.fault import SourceCollection


@dataclass
class ForwardResult:
    """Everything a forward run produces."""

    seismograms: Seismograms | None
    snapshots: SnapshotRecorder | None
    mesh: HexMesh
    tree: LinearOctree
    solver: ElasticWaveSolver
    nsteps: int

    @property
    def n_grid_points(self) -> int:
        return self.mesh.nnode

    @property
    def n_elements(self) -> int:
        return self.mesh.nelem


class ForwardSimulation:
    """Basin-scale forward earthquake modeling.

    Parameters
    ----------
    material:
        Material model with ``query(points_m) -> (vs, vp, rho)``.
    L:
        Physical edge of the root cube (meters).
    fmax:
        Highest resolved frequency (Hz); drives the octree refinement.
    box_frac:
        Meshed box as fractions of the cube (power-of-two denominators),
        e.g. ``(1, 1, 3/8)`` for an 80 x 80 x 30 km basin in an 80 km
        cube.
    points_per_wavelength:
        ``N_lambda`` (paper: 10).
    max_level / h_min:
        Caps on refinement (``h_min`` in meters) for scaled-down runs.
    damping_ratio / damping_band:
        Rayleigh attenuation target and fit band.
    stacey_c1:
        Full Stacey condition (vs. Lysmer-only damping).
    lts:
        Clustered local time stepping (``0``/``False`` = off, ``True``
        = on with the default rate cap, an int = the cap); see
        :mod:`repro.solver.lts`.

    Examples
    --------
    >>> from repro.materials import SyntheticBasinModel
    >>> from repro.sources import idealized_northridge
    >>> sim = ForwardSimulation(SyntheticBasinModel(L=8000.0, depth=4000.0,
    ...                         vs_min=400.0), L=8000.0, fmax=0.5,
    ...                         box_frac=(1, 1, 0.5), max_level=5)
    >>> # result = sim.run(idealized_northridge(L=8000.0), t_end=10.0)
    """

    def __init__(
        self,
        material,
        *,
        L: float,
        fmax: float,
        box_frac: Sequence[float] = (1.0, 1.0, 1.0),
        points_per_wavelength: float = 10.0,
        max_level: int = 7,
        h_min: float = 0.0,
        damping_ratio: float = 0.0,
        damping_band: tuple[float, float] | None = None,
        stacey_c1: bool = True,
        cfl_safety: float = 0.5,
        lts: int | bool = 0,
    ):
        self.material = material
        self.L = float(L)
        self.fmax = float(fmax)
        self.box_frac = tuple(box_frac)

        target = wavelength_target(
            lambda pts: material.query(pts)[0],
            L=self.L,
            fmax=self.fmax,
            points_per_wavelength=points_per_wavelength,
            h_min=h_min,
        )
        tree = build_adaptive_octree(
            target, max_level=max_level, box_frac=self.box_frac
        )
        self.tree = balance_octree(tree)
        self.mesh = extract_mesh(self.tree, L=self.L, box_frac=self.box_frac)
        self.constraints = build_constraints(self.tree, self.mesh)
        band = damping_band or (0.1 * self.fmax, self.fmax)
        self.solver = ElasticWaveSolver(
            self.mesh,
            self.tree,
            material,
            damping_ratio=damping_ratio,
            damping_band=band,
            stacey_c1=stacey_c1,
            cfl_safety=cfl_safety,
            constraints=self.constraints,
            lts=lts,
        )

    @property
    def dt(self) -> float:
        return self.solver.dt

    def mesh_summary(self) -> dict:
        """Mesh statistics in the shape the paper reports."""
        levels, counts = np.unique(self.mesh.elem_level, return_counts=True)
        return {
            "elements": self.mesh.nelem,
            "grid_points": self.mesh.nnode,
            "hanging_points": self.constraints.n_hanging,
            "levels": dict(zip(levels.tolist(), counts.tolist())),
            "h_min_m": float(self.mesh.elem_h.min()),
            "h_max_m": float(self.mesh.elem_h.max()),
            "dt_s": self.dt,
        }

    def uniform_equivalent_grid_points(self) -> int:
        """Grid points a uniform mesh at the finest h would need — the
        paper's ~2000x multiresolution savings headline."""
        hmin = int(self.mesh.elem_size.min())
        from repro.octree.morton import MAX_COORD

        per_axis = [int(b) // hmin + 1 for b in self.mesh.box_ticks]
        return int(np.prod([float(p) for p in per_axis]))

    def run(
        self,
        scenario,
        t_end: float,
        *,
        receivers: np.ndarray | None = None,
        snapshot_every: int = 0,
        record: str = "velocity",
        checkpoint=None,
        resume: bool = False,
        health_interval: int | None = None,
        lts: int | bool | None = None,
        faults=None,
    ) -> ForwardResult:
        """Simulate a rupture scenario.

        ``scenario`` is a :class:`FiniteFaultScenario` (or anything with
        ``.sources``); ``receivers`` are surface positions (meters).
        ``checkpoint`` (a :class:`~repro.solver.checkpoint
        .CheckpointManager`) enables durable snapshots; ``resume=True``
        restarts from the latest valid one, bit-identical to an
        uninterrupted run.
        """
        forces = SourceCollection(self.mesh, self.tree, scenario.sources)
        rec = (
            ReceiverArray(self.mesh, receivers)
            if receivers is not None
            else None
        )
        snaps = None
        if snapshot_every > 0:
            surf = self.mesh.surface_nodes(2, 0)
            snaps = SnapshotRecorder(surf, every=snapshot_every)
        extra = {}
        if health_interval is not None:
            extra["health_interval"] = health_interval
        if lts is not None:
            extra["lts"] = lts
        if faults is not None:
            extra["faults"] = faults
        seis = self.solver.run(
            forces,
            t_end,
            receivers=rec,
            snapshots=snaps,
            record=record,
            checkpoint=checkpoint,
            resume=resume,
            **extra,
        )
        return ForwardResult(
            seismograms=seis,
            snapshots=snaps,
            mesh=self.mesh,
            tree=self.tree,
            solver=self.solver,
            nsteps=int(np.ceil(t_end / self.dt)),
        )
