"""Closed-form solutions for verification (paper Section 2.5 / Fig 2.2).

The paper verifies the hexahedral code against a closed-form solution
for a layer over a halfspace and against the earlier tetrahedral code.
We verify against (a) the exact 1D SH layer-over-halfspace response
(Haskell transfer matrix) and plane-interface reflection/transmission
coefficients, and (b) the 3D homogeneous full-space Green's function
for a point force (Stokes solution, Aki & Richards eq. 4.23).
"""

from repro.analytic.layer_halfspace import (
    layer_halfspace_transfer,
    sh_reflection_transmission,
    fundamental_frequency,
)
from repro.analytic.greens import stokes_point_force

__all__ = [
    "layer_halfspace_transfer",
    "sh_reflection_transmission",
    "fundamental_frequency",
    "stokes_point_force",
]
