"""Stokes solution: point force in a homogeneous elastic full space.

Aki & Richards (2002), eq. 4.23: for a point force ``F(t) e_j`` at the
origin,

    ``u_i(x, t) = 1/(4 pi rho) [ (3 g_i g_j - d_ij)/r^3 * int_{r/vp}^{r/vs} tau F(t - tau) dtau
                  + g_i g_j / (vp^2 r) F(t - r/vp)
                  - (g_i g_j - d_ij) / (vs^2 r) F(t - r/vs) ]``

with ``g = x / r``.  The near-field integral is evaluated numerically
with trapezoid quadrature on the same time lattice as the force.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def stokes_point_force(
    x: np.ndarray,
    t: np.ndarray,
    force: Callable[[np.ndarray], np.ndarray],
    direction: np.ndarray,
    *,
    rho: float,
    vp: float,
    vs: float,
    nquad: int = 200,
) -> np.ndarray:
    """Displacement time series ``(len(t), 3)`` at receiver ``x``.

    ``force(t)`` is the (vectorized) force magnitude, assumed zero for
    ``t <= 0``; ``direction`` the unit force direction.
    """
    x = np.asarray(x, dtype=float)
    t = np.asarray(t, dtype=float)
    e = np.asarray(direction, dtype=float)
    e = e / np.linalg.norm(e)
    r = float(np.linalg.norm(x))
    if r == 0:
        raise ValueError("receiver at the source point")
    g = x / r
    gg_e = g * (g @ e)  # (g_i g_j) F_j direction factors
    near_dir = 3.0 * gg_e - e
    p_dir = gg_e
    s_dir = -(gg_e - e)

    # near-field integral int_{r/vp}^{r/vs} tau F(t - tau) dtau
    taus = np.linspace(r / vp, r / vs, nquad)
    Ft = force(t[:, None] - taus[None, :])
    near = np.trapezoid(taus[None, :] * Ft, taus, axis=1)

    out = (
        near_dir[None, :] * (near / r**3)[:, None]
        + p_dir[None, :] * (force(t - r / vp) / (vp**2 * r))[:, None]
        + s_dir[None, :] * (force(t - r / vs) / (vs**2 * r))[:, None]
    )
    return out / (4.0 * np.pi * rho)
