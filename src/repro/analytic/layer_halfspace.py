"""1D SH response of a layer over a halfspace (Haskell matrix).

For a vertically incident SH wave of unit displacement amplitude in the
halfspace, the free-surface displacement amplitude of a single soft
layer (thickness ``H``, velocity ``vs1``, density ``rho1``) over a
halfspace (``vs2``, ``rho2``) is

    ``A(f) = 2 / | cos(k1 H) + i (Z1/Z2) sin(k1 H) |``

with ``k1 = 2 pi f / vs1`` and impedances ``Z = rho vs`` — the standard
site-amplification result; resonances sit at ``f = (2n+1) vs1 / (4H)``.
"""

from __future__ import annotations

import numpy as np


def sh_reflection_transmission(
    rho1: float, vs1: float, rho2: float, vs2: float
) -> tuple[float, float]:
    """Displacement reflection/transmission coefficients for an SH wave
    in medium 1 hitting a plane interface with medium 2 at normal
    incidence: ``R = (Z1 - Z2)/(Z1 + Z2)``, ``T = 2 Z1/(Z1 + Z2)``."""
    z1, z2 = rho1 * vs1, rho2 * vs2
    return (z1 - z2) / (z1 + z2), 2.0 * z1 / (z1 + z2)


def layer_halfspace_transfer(
    f: np.ndarray, H: float, vs1: float, rho1: float, vs2: float, rho2: float
) -> np.ndarray:
    """Surface amplification relative to the incident-wave amplitude."""
    f = np.asarray(f, dtype=float)
    k1 = 2.0 * np.pi * f * H / vs1
    imp = (rho1 * vs1) / (rho2 * vs2)
    return 2.0 / np.abs(np.cos(k1) + 1j * imp * np.sin(k1))


def fundamental_frequency(H: float, vs1: float) -> float:
    """Quarter-wavelength resonance ``f0 = vs1 / (4H)``."""
    return vs1 / (4.0 * H)
