"""CFL-limited explicit time step.

The multiresolution mesh is wavelength-adaptive, so (paper Section 2)
the Courant limit is of the order of the step needed for accuracy —
this is why adaptive meshes also pay off in time-step count.

Besides the global step, this module exposes the **per-element** stable
step (:func:`elem_stable_dt`) that the clustered local-time-stepping
plan bins into power-of-two rate groups, and the run-start CFL guard
(:func:`validate_cfl`) that names the offending element when a ``dt``
computed for a different mesh or material slips through.
"""

from __future__ import annotations

import numpy as np


def elem_stable_dt(h, vp, *, safety: float = 0.5, dim: int = 3) -> np.ndarray:
    """Per-element explicit stable step for lumped multilinear
    elements: ``dt_e = safety * h_e / (vp_e * sqrt(dim))``.

    The elementwise version of :func:`stable_timestep`; its minimum is
    the global step, and the elementwise *ratios* to that minimum are
    what the LTS rate binning groups into power-of-two clusters."""
    h = np.asarray(h, dtype=float)
    vp = np.asarray(vp, dtype=float)
    if h.size == 0:
        raise ValueError("empty mesh")
    return safety * (h / vp) / np.sqrt(dim)


def stable_timestep(h, vp, *, safety: float = 0.5, dim: int = 3) -> float:
    """Explicit central-difference stable step for lumped trilinear
    elements: ``dt = safety * min(h / vp) / sqrt(dim)``.

    ``h`` and ``vp`` are per-element arrays; the minimum ratio over the
    mesh governs (the finest/softest element).
    """
    return float(np.min(elem_stable_dt(h, vp, safety=safety, dim=dim)))


#: single-entry cache of the per-element stability ratios, keyed on the
#: *identity* of the (h, vp) arrays: the solvers hold these arrays for
#: their lifetime and re-validate on every run, so recomputing the
#: elementwise division (O(nelem)) per validation was pure rework
_cfl_cache: tuple | None = None


def _limiting_element(h, vp, dim: int):
    """(argmin element, its unit-safety stable dt, min over elements)
    with a single-entry identity-keyed cache."""
    global _cfl_cache
    c = _cfl_cache
    if c is not None and c[0] is h and c[1] is vp and c[2] == dim:
        return c[3], c[4]
    ratios = elem_stable_dt(h, vp, safety=1.0, dim=dim)
    idx = int(np.argmin(ratios))
    entry = (idx, float(ratios[idx]))
    _cfl_cache = (h, vp, dim, *entry)
    return entry


def validate_cfl(dt: float, h, vp, *, safety_max: float = 1.0,
                 dim: int = 3) -> None:
    """Re-validate ``dt`` against the CFL stability bound (paper eq.
    2.6 regime).  Raises when the step exceeds ``safety_max`` times the
    stable step — i.e. only for genuinely unstable configurations, not
    for aggressive-but-legal safety factors.  The error names the
    limiting element and its local stable step, so an out-of-range
    ``dt`` points at the mesh/material cell that pins the bound."""
    from repro import telemetry
    from repro.resilience.health import NumericalHealthError

    idx, local_limit = _limiting_element(h, vp, dim)
    limit = safety_max * local_limit
    if dt > limit * (1.0 + 1e-12):
        telemetry.count("resilience.health_violations")
        raise NumericalHealthError(
            f"dt = {dt:.6g} s exceeds the CFL-stable step {limit:.6g} s "
            f"(limiting element {idx}: local stable dt {local_limit:.6g} s "
            f"at safety 1); the explicit update will diverge"
        )
