"""CFL-limited explicit time step.

The multiresolution mesh is wavelength-adaptive, so (paper Section 2)
the Courant limit is of the order of the step needed for accuracy —
this is why adaptive meshes also pay off in time-step count.
"""

from __future__ import annotations

import numpy as np


def stable_timestep(h, vp, *, safety: float = 0.5, dim: int = 3) -> float:
    """Explicit central-difference stable step for lumped trilinear
    elements: ``dt = safety * min(h / vp) / sqrt(dim)``.

    ``h`` and ``vp`` are per-element arrays; the minimum ratio over the
    mesh governs (the finest/softest element).
    """
    h = np.asarray(h, dtype=float)
    vp = np.asarray(vp, dtype=float)
    if h.size == 0:
        raise ValueError("empty mesh")
    return float(safety * np.min(h / vp) / np.sqrt(dim))
