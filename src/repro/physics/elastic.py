"""Lamé moduli and seismic wave speeds."""

from __future__ import annotations

import numpy as np


def lame_from_velocities(vs, vp, rho) -> tuple[np.ndarray, np.ndarray]:
    """``(lambda, mu)`` from wave speeds and density.

    ``mu = rho vs^2``; ``lambda = rho (vp^2 - 2 vs^2)``.  Raises if the
    velocities imply a negative lambda (``vp < sqrt(2) vs``), which is
    unphysical for an isotropic elastic solid.
    """
    vs = np.asarray(vs, dtype=float)
    vp = np.asarray(vp, dtype=float)
    rho = np.asarray(rho, dtype=float)
    mu = rho * vs**2
    lam = rho * (vp**2 - 2.0 * vs**2)
    if np.any(lam < 0):
        raise ValueError("vp < sqrt(2) vs implies negative lambda")
    return lam, mu


def velocities_from_lame(lam, mu, rho) -> tuple[np.ndarray, np.ndarray]:
    """``(vs, vp)`` from Lamé moduli and density."""
    lam = np.asarray(lam, dtype=float)
    mu = np.asarray(mu, dtype=float)
    rho = np.asarray(rho, dtype=float)
    return np.sqrt(mu / rho), np.sqrt((lam + 2.0 * mu) / rho)
