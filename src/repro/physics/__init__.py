"""Continuum physics: elastic moduli, absorbing boundaries, stability.

Implements the model of paper Section 2.1 — Navier's equation of linear
elastodynamics with longitudinal velocity ``vp = sqrt((lambda+2mu)/rho)``
and shear velocity ``vs = sqrt(mu/rho)`` — plus Stacey's local absorbing
boundary condition and the CFL-limited explicit time step.
"""

from repro.physics.elastic import (
    lame_from_velocities,
    velocities_from_lame,
)
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.physics.cfl import elem_stable_dt, stable_timestep, validate_cfl

__all__ = [
    "lame_from_velocities",
    "velocities_from_lame",
    "stacey_boundary_matrices",
    "stacey_coefficients",
    "stable_timestep",
    "elem_stable_dt",
    "validate_cfl",
]
