"""Stacey's absorbing boundary condition (paper Section 2.1).

On a truncation face with outward normal ``n`` and tangents ``t1, t2``:

    ``S n = [[-d1 d/dt,  c1 d/dt1,  c1 d/dt2],
             [-c1 d/dt1, -d2 d/dt,  0       ],
             [-c1 d/dt2,  0,        -d2 d/dt]] (u_n, u_t1, u_t2)``

with ``c1 = -2 mu + sqrt(mu (lambda + 2 mu))``,
``d1 = sqrt(rho (lambda + 2 mu))`` (plane-wave impedance of P waves) and
``d2 = sqrt(rho mu)`` (impedance of S waves).  Discretizing the
boundary term of the weak form produces a (lumped) damping matrix
``C_AB`` from the ``d`` terms and a sparse first-order coupling matrix
``K_AB`` from the ``c1`` terms.  Both are local in space and time —
"particularly important for large-scale parallel implementation".

Dropping the ``c1`` terms recovers the classic Lysmer-Kuhlemeyer viscous
boundary (exact for normal incidence), exposed via ``include_c1=False``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.sparse as sp

from repro.fem.shape import gauss_points_weights, shape_functions, shape_gradients


def stacey_coefficients(lam, mu, rho):
    """``(d1, d2, c1)`` per boundary element."""
    lam = np.asarray(lam, dtype=float)
    mu = np.asarray(mu, dtype=float)
    rho = np.asarray(rho, dtype=float)
    d1 = np.sqrt(rho * (lam + 2.0 * mu))
    d2 = np.sqrt(rho * mu)
    c1 = -2.0 * mu + np.sqrt(mu * (lam + 2.0 * mu))
    return d1, d2, c1


@lru_cache(maxsize=None)
def _face_gradient_reference(axis: int) -> np.ndarray:
    """``G[i, j] = int_[0,1]^2 N_i dN_j/dxi_axis`` on the reference quad."""
    pts, w = gauss_points_weights(2, n=2)
    N = shape_functions(pts, 2)
    g = shape_gradients(pts, 2)
    return np.einsum("q,qi,qj->ij", w, N, g[:, :, axis])


def stacey_boundary_matrices(
    faces: list[tuple[np.ndarray, np.ndarray, int, np.ndarray]],
    nnode: int,
    *,
    include_c1: bool = True,
) -> tuple[np.ndarray, sp.csr_matrix]:
    """Build the absorbing-boundary damping and coupling matrices.

    Parameters
    ----------
    faces:
        One entry per absorbing boundary plane:
        ``(face_nodes, h, axis, side, (d1, d2, c1))`` where
        ``face_nodes`` is ``(nface, 4)`` global node indices of the
        boundary quads (in the mesh's 2D Morton corner order within the
        plane), ``h`` their physical edge lengths ``(nface,)``, ``axis``
        the normal axis, ``side`` 0/1 for the min/max plane (fixing the
        outward normal direction), and the coefficient arrays are per
        face.
    nnode:
        Total grid points; returned shapes are ``(nnode, 3)`` and
        ``(3 nnode, 3 nnode)``.

    Returns
    -------
    (C_diag, K_AB):
        ``C_diag`` — lumped damping per node and component (multiplies
        velocity); ``K_AB`` — sparse coupling from the ``c1`` tangential
        derivative terms (zero matrix when ``include_c1=False``).
    """
    C = np.zeros((nnode, 3))
    rows, cols, vals = [], [], []
    for face_nodes, h, axis, side, (d1, d2, c1) in faces:
        sign = 1.0 if side == 1 else -1.0  # u_n = sign * u_axis
        face_nodes = np.asarray(face_nodes)
        h = np.asarray(h, dtype=float)
        nface = len(face_nodes)
        if nface == 0:
            continue
        area4 = h**2 / 4.0  # lumped quarter-area per face node
        tangents = [a for a in range(3) if a != axis]
        # damping: d1 on the normal component, d2 on the tangentials
        np.add.at(C[:, axis], face_nodes.ravel(), np.repeat(d1 * area4, 4))
        for t in tangents:
            np.add.at(C[:, t], face_nodes.ravel(), np.repeat(d2 * area4, 4))
        if not include_c1:
            continue
        # c1 coupling: -c1 (du_t/dt) paired with v_n and +c1 (du_n/dt)
        # paired with v_t (signs from moving the boundary term of the
        # weak form to the left-hand side)
        for k, t in enumerate(tangents):
            G = _face_gradient_reference(k)  # int N_i dN_j/dxi_k, scale h
            # K[(i,axis),(j,t)] += -c1 * h * G[i,j]
            # K[(i,t),(j,axis)] += +c1 * h * G[i,j]
            coef = sign * c1 * h  # (nface,)
            gi = face_nodes[:, :, None] * 3  # base dof of node i
            gj = face_nodes[:, None, :] * 3
            blk = coef[:, None, None] * G[None, :, :]
            rows.append((gi + axis).repeat(4, axis=2).ravel())
            cols.append((gj + t).repeat(4, axis=1).ravel())
            vals.append(-blk.ravel())
            rows.append((gi + t).repeat(4, axis=2).ravel())
            cols.append((gj + axis).repeat(4, axis=1).ravel())
            vals.append(blk.ravel())
    if rows:
        K_AB = sp.coo_matrix(
            (
                np.concatenate(vals),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(3 * nnode, 3 * nnode),
        ).tocsr()
    else:
        K_AB = sp.csr_matrix((3 * nnode, 3 * nnode))
    return C, K_AB
