"""Command-line interface.

Six subcommands mirror the library's main workflows:

* ``forward``  — basin earthquake simulation to a seismogram archive;
* ``mesh``     — etree mesh-database generation (construct/balance/
  transform) with the accounting Figure 2.1 reports;
* ``estimate`` — mesh-size / work projection for a target frequency
  (the paper's 8x-per-octave scaling law);
* ``profile``  — instrumented forward + multi-shot inversion runs
  (serial and on both distributed transports) that emit JSONL traces
  and Table-2.1-style :class:`~repro.telemetry.PerfReport` summaries;
* ``submit``   — spool a forward request for the simulation service;
* ``serve``    — drain the spool through a warm
  :class:`~repro.service.Engine` behind a
  :class:`~repro.service.CoalescingScheduler` (requests sharing one
  basin coalesce into one fused batched time loop).

Examples
--------
::

    python -m repro.cli estimate --L 80000 --depth-frac 0.5 --fmax 1.0 \
        --vs-min 100
    python -m repro.cli forward --L 16000 --fmax 0.5 --t-end 10 \
        --out /tmp/run.npz
    python -m repro.cli mesh --L 80000 --fmax 0.1 --workdir /tmp/meshdb
    python -m repro.cli profile --out-dir /tmp/profile --workers 2
    python -m repro.cli submit --spool /tmp/spool --L 8000 --fmax 0.4 \
        --t-end 2.0
    python -m repro.cli serve --spool /tmp/spool --out-dir /tmp/results
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np


def _add_material_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--L", type=float, required=True, help="box edge (m)")
    p.add_argument(
        "--depth-frac",
        type=float,
        default=0.5,
        help="meshed depth as a fraction of L (power-of-two denominator)",
    )
    p.add_argument("--vs-min", type=float, default=400.0,
                   help="minimum basin shear velocity (m/s)")
    p.add_argument("--fmax", type=float, required=True,
                   help="highest resolved frequency (Hz)")
    p.add_argument("--ppw", type=float, default=10.0,
                   help="grid points per wavelength")
    p.add_argument("--h-min", type=float, default=0.0,
                   help="element size floor (m) for scaled-down runs")


def _material(args):
    from repro.materials import SyntheticBasinModel

    return SyntheticBasinModel(
        L=args.L, depth=args.depth_frac * args.L, vs_min=args.vs_min
    )


def cmd_estimate(args) -> int:
    from repro.mesh import estimate_mesh_size

    est = estimate_mesh_size(
        _material(args),
        L=args.L,
        fmax=args.fmax,
        box_frac=(1, 1, args.depth_frac),
        points_per_wavelength=args.ppw,
        h_min=args.h_min,
    )
    print(json.dumps({k: float(v) for k, v in est.items()}, indent=2))
    return 0


def cmd_mesh(args) -> int:
    from repro.etree import generate_mesh_database

    result = generate_mesh_database(
        args.workdir,
        _material(args),
        L=args.L,
        fmax=args.fmax,
        points_per_wavelength=args.ppw,
        max_level=args.max_level,
        box_frac=(1, 1, args.depth_frac),
        h_min=args.h_min,
        blocks_per_axis=args.blocks,
    )
    print(f"elements     : {result.n_elements:,}")
    print(f"grid points  : {result.n_nodes:,}")
    print(f"hanging      : {result.n_hanging:,}")
    print(
        f"times (s)    : construct {result.construct_seconds:.2f} | "
        f"balance {result.balance_seconds:.2f} | "
        f"transform {result.transform_seconds:.2f}"
    )
    print(f"element db   : {result.element_path}")
    print(f"node db      : {result.node_path}")
    return 0


def cmd_forward(args) -> int:
    from repro.core import ForwardSimulation
    from repro.solver.checkpoint import CheckpointManager
    from repro.sources import idealized_northridge, idealized_strike_slip

    sim = ForwardSimulation(
        _material(args),
        L=args.L,
        fmax=args.fmax,
        box_frac=(1, 1, args.depth_frac),
        points_per_wavelength=args.ppw,
        max_level=args.max_level,
        h_min=args.h_min,
        damping_ratio=args.damping,
        lts=args.lts,
    )
    summary = sim.mesh_summary()
    print(f"mesh: {summary['elements']:,} elements, "
          f"{summary['grid_points']:,} points, dt = {summary['dt_s']:.4f} s")
    if args.lts:
        plan = sim.solver.lts_plan(max_rate=args.lts)
        hist = ", ".join(
            f"{r}x: {n}" for r, n in sorted(plan.histogram().items())
        )
        print(f"lts: clusters {hist}, theoretical speedup "
              f"{plan.theoretical_speedup():.2f}x")
    scenario = (
        idealized_northridge(L=args.L)
        if args.scenario == "northridge"
        else idealized_strike_slip(L=args.L)
    )
    if args.receivers:
        rec = np.array(json.loads(args.receivers), dtype=float)
    else:
        xs = np.linspace(0.2, 0.8, 5) * args.L
        rec = np.stack([xs, np.full_like(xs, 0.5 * args.L),
                        np.zeros_like(xs)], axis=1)
    ckpt = None
    if args.checkpoint_dir:
        ckpt = CheckpointManager(
            args.checkpoint_dir, args.checkpoint_every, prefix="forward"
        )
    result = sim.run(
        scenario,
        t_end=args.t_end,
        receivers=rec,
        checkpoint=ckpt,
        resume=args.resume,
    )
    seis = result.seismograms
    pgv = np.abs(seis.data).max(axis=(1, 2))
    for i, v in enumerate(pgv):
        print(f"  receiver {i}: PGV {v:.4f} m/s")
    if args.out:
        np.savez_compressed(
            args.out,
            data=seis.data,
            dt=seis.dt,
            kind=seis.kind,
            positions=seis.positions,
        )
        print(f"seismograms written to {args.out}")
    return 0


class _ProfilePointForce:
    """Picklable Gaussian point force for the profiled distributed runs
    (worker processes unpickle the force function)."""

    def __init__(self, node: int, nnode: int):
        self.node = node
        self.nnode = nnode

    def __call__(self, t, out=None):
        b = np.zeros((self.nnode, 3)) if out is None else out
        b.fill(0.0)
        b[self.node, 2] = 1e9 * np.exp(-(((t - 0.05) / 0.02) ** 2))
        return b


def _parse_steps_per_exchange(raw) -> "int | str":
    """``--steps-per-exchange`` value: a positive int or ``auto``."""
    if isinstance(raw, int):
        return raw
    text = str(raw).strip().lower()
    if text == "auto":
        return "auto"
    try:
        k = int(text)
    except ValueError:
        raise SystemExit(
            f"--steps-per-exchange must be a positive integer or 'auto', "
            f"got {raw!r}"
        )
    if k < 1:
        raise SystemExit("--steps-per-exchange must be >= 1")
    return k


def _profile_forward(args, out_dir: str) -> list:
    """Serial elastic baseline + distributed runs on both transports,
    all under one trace.  Writes ``forward.trace.jsonl`` (including the
    per-rank timeline spans) and one PerfReport per transport.

    With ``--lts`` the material becomes a soft-basin-over-stiff-bedrock
    layering (a uniform one yields a single rate cluster), the serial
    solve runs twice — global dt, then clustered — and every report
    gains an LTS section with theoretical vs achieved speedup; the
    distributed runs execute clustered too, so the rank-pair traffic
    shows the reduced interface-handoff cadence.
    """
    from repro import telemetry
    from repro.materials import HomogeneousMaterial, LayeredMaterial
    from repro.mesh import extract_mesh, rcb_partition
    from repro.octree import build_adaptive_octree
    from repro.parallel import DistributedWaveSolver, ProcWorld, SimWorld
    from repro.solver import ElasticWaveSolver
    from repro.util.timing import Timer

    n = args.size
    lts = getattr(args, "lts", 0)
    if lts:
        # soft basin over stiff bedrock: the wave-speed contrast is
        # what spreads elements across step-rate clusters
        mat = LayeredMaterial(
            [875.0], vs=[200.0, 1600.0], vp=[400.0, 3200.0],
            rho=[2000.0, 2000.0],
        )
    else:
        mat = HomogeneousMaterial(vs=1000.0, vp=1800.0, rho=2000.0)
    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=int(np.log2(n))
    )
    mesh = extract_mesh(tree, L=1000.0)
    force = _ProfilePointForce(mesh.nnode // 2, mesh.nnode)

    telemetry.enable()
    serial = ElasticWaveSolver(mesh, tree, mat, stacey_c1=False)
    dt = serial.dt
    t_end = (args.steps - 0.5) * dt
    with Timer() as t_serial:
        serial.run(force, t_end)
    print(f"forward: {mesh.nelem} elements, {args.steps} steps, "
          f"serial {t_serial.seconds:.3f}s")

    lts_info = None
    if lts:
        with Timer() as t_lts:
            serial.run(force, t_end, lts=lts)
        plan = serial.lts_plan(max_rate=lts)
        lts_info = plan.as_dict()
        lts_info["achieved_speedup"] = (
            t_serial.seconds / t_lts.seconds if t_lts.seconds > 0 else None
        )
        print(f"forward lts: {t_lts.seconds:.3f}s "
              f"(theoretical {plan.theoretical_speedup():.2f}x, "
              f"achieved {t_serial.seconds / t_lts.seconds:.2f}x)")

    nw = args.workers
    spx = _parse_steps_per_exchange(getattr(args, "steps_per_exchange", "1"))
    parts = (
        rcb_partition(mesh.elem_centers, nw)
        if nw > 1
        else np.zeros(mesh.nelem, dtype=np.int64)
    )
    runs = []
    solver = DistributedWaveSolver(
        mesh, mat, parts, SimWorld(nw), dt=dt, lts=lts
    )
    with Timer() as t_run:
        solver.run(force, t_end, steps_per_exchange=spx)
    runs.append(
        ("sim", solver.world, solver.last_timeline, t_run.seconds,
         solver.last_fused)
    )
    with ProcWorld(nw) as world:
        solver = DistributedWaveSolver(
            mesh, mat, parts, world, dt=dt, lts=lts
        )
        with Timer() as t_run:
            solver.run(force, t_end, steps_per_exchange=spx)
        runs.append(
            ("proc", world, solver.last_timeline, t_run.seconds,
             solver.last_fused)
        )
        if solver.last_fused:
            print(
                "forward fused: steps_per_exchange="
                f"{solver.last_fused['steps_per_exchange']} "
                f"(requested {solver.last_fused['requested']})"
            )

    reports = []
    extra = []
    for name, world, timeline, seconds, fused_info in runs:
        report = telemetry.PerfReport.collect(
            tracer=telemetry.current_tracer(),
            world=world,
            timeline=timeline,
            flops=serial.flops,
            metrics=telemetry.metrics(),
            baseline_seconds=t_serial.seconds,
            parallel_seconds=seconds,
            nranks=nw,
            lts=lts_info,
            fused=fused_info,
            title=f"forward elastic, {name} transport, P={nw}",
        )
        reports.append(report)
        if timeline is not None:
            for rec in timeline.span_records():
                extra.append({**rec, "transport": name})
        base = os.path.join(out_dir, f"forward_{name}")
        with open(base + ".perfreport.txt", "w") as f:
            f.write(report.as_text() + "\n")
        with open(base + ".perfreport.json", "w") as f:
            json.dump(report.as_dict(), f, indent=2)
    nlines = telemetry.dump_jsonl(
        os.path.join(out_dir, "forward.trace.jsonl"), extra_records=extra
    )
    print(f"forward trace: {nlines} records -> "
          f"{os.path.join(out_dir, 'forward.trace.jsonl')}")
    return reports


def _profile_inverse(args, out_dir: str):
    """Small multi-shot scalar inversion under a fresh trace; writes
    ``inverse.trace.jsonl`` and its PerfReport."""
    from repro import telemetry
    from repro.inverse import (
        FaultLineSource2D,
        MaterialGrid,
        ScalarWaveInverseProblem,
        Shot,
    )
    from repro.inverse.gauss_newton import gauss_newton_cg
    from repro.solver import RegularGridScalarWave
    from repro.solver.checkpoint import CheckpointManager
    from repro.util.timing import Timer

    telemetry.enable(fresh=True)
    nx, nz = 16, 8
    h = 100.0
    solver = RegularGridScalarWave((nx, nz), h, rho=1000.0)
    grid = MaterialGrid((4, 2), (nx * h, nz * h))
    m_true = grid.sample(lambda p: 2.0e9 + 1.5e9 * (p[:, 1] > 400.0))
    mu_e = grid.to_elements(solver) @ m_true
    dt = solver.stable_dt(np.full(solver.nelem, m_true.max()))
    nsteps = args.steps * 4
    shots = []
    for ix, hj in [(nx // 2, 4), (nx // 4, 3)]:
        fault = FaultLineSource2D(solver, ix=ix, jz=range(2, 6))
        params = fault.hypocentral_params(
            hypo_j=hj, rupture_velocity=2000.0, u0=1.0, t0=0.3
        )
        u = solver.march(
            mu_e, fault.forcing(mu_e, params, dt), nsteps, dt, store=True
        )
        rec = solver.surface_nodes()[::2]
        shots.append(Shot(receivers=rec, data=u[:, rec], fault=fault,
                          source_params=params))
    prob = ScalarWaveInverseProblem.multi_shot(solver, grid, shots, dt, nsteps)
    ckpt = CheckpointManager(
        os.path.join(out_dir, "gn_ckpt"), interval=1, prefix="gn"
    )
    with Timer() as t_inv:
        res = gauss_newton_cg(
            prob,
            np.full(grid.n, 2.5e9),
            max_newton=3,
            cg_maxiter=8,
            checkpoint=ckpt,
            resume=args.resume,
        )
    print(f"inversion: {len(shots)} shots, {res.newton_iterations} Newton / "
          f"{res.total_cg_iterations} CG iterations, "
          f"{prob.n_wave_solves} wave solves, {t_inv.seconds:.3f}s")
    report = telemetry.PerfReport.collect(
        tracer=telemetry.current_tracer(),
        metrics=telemetry.metrics(),
        title=f"multi-shot inversion ({len(shots)} shots)",
    )
    base = os.path.join(out_dir, "inverse")
    with open(base + ".perfreport.txt", "w") as f:
        f.write(report.as_text() + "\n")
    with open(base + ".perfreport.json", "w") as f:
        json.dump(report.as_dict(), f, indent=2)
    nlines = telemetry.dump_jsonl(base + ".trace.jsonl")
    print(f"inverse trace: {nlines} records -> {base}.trace.jsonl")
    return report


_SPEC_FIELDS = (
    "L", "depth_frac", "vs_min", "fmax", "ppw", "h_min", "max_level"
)


def _request_spec(args) -> dict:
    """The spool-file spec dict for a submitted request (plain floats
    and ints — the JSON the service rebuilds a SimulationSpec from)."""
    return {
        "L": float(args.L),
        "depth_frac": float(args.depth_frac),
        "vs_min": float(args.vs_min),
        "fmax": float(args.fmax),
        "ppw": float(args.ppw),
        "h_min": float(args.h_min),
        "max_level": int(args.max_level),
    }


def _spec_from_dict(d: dict):
    """Rebuild the :class:`~repro.service.SimulationSpec` a spool file
    names.  Field-for-field deterministic, so two spool files with
    equal spec dicts hash to one artifact key and share a build."""
    from repro.materials import SyntheticBasinModel
    from repro.service import SimulationSpec

    material = SyntheticBasinModel(
        L=d["L"], depth=d["depth_frac"] * d["L"], vs_min=d["vs_min"]
    )
    return SimulationSpec(
        material=material,
        L=d["L"],
        fmax=d["fmax"],
        box_frac=(1, 1, d["depth_frac"]),
        points_per_wavelength=d["ppw"],
        max_level=d["max_level"],
        h_min=d["h_min"],
    )


def _scenario_from_name(name: str, L: float):
    from repro.sources import idealized_northridge, idealized_strike_slip

    return (
        idealized_northridge(L=L)
        if name == "northridge"
        else idealized_strike_slip(L=L)
    )


def cmd_submit(args) -> int:
    """Spool one forward request for a (possibly already running)
    ``repro serve`` process.  The write is atomic (tmp + rename), so a
    concurrently draining server never sees a torn file."""
    os.makedirs(args.spool, exist_ok=True)
    spec = _request_spec(args)
    if args.receivers:
        receivers = json.loads(args.receivers)
    else:
        xs = np.linspace(0.2, 0.8, 5) * args.L
        receivers = np.stack(
            [xs, np.full_like(xs, 0.5 * args.L), np.zeros_like(xs)], axis=1
        ).tolist()
    # ids stay unique across drain generations: count retired requests
    # in done/ too, so a later submit never reuses (and a later serve
    # never overwrites) an earlier request's output file
    lifecycle_dirs = [args.spool] + [
        os.path.join(args.spool, d)
        for d in ("done", "inflight", "quarantine")
    ]
    existing = [
        f
        for d in lifecycle_dirs
        if os.path.isdir(d)
        for f in os.listdir(d)
        if f.startswith("req-") and f.endswith(".json")
    ]
    req_id = f"req-{len(existing):06d}"
    while any(
        os.path.exists(os.path.join(d, req_id + ".json"))
        for d in lifecycle_dirs
    ):
        req_id = f"req-{int(req_id[4:]) + 1:06d}"
    request = {
        "id": req_id,
        "spec": spec,
        "scenario": args.scenario,
        "t_end": float(args.t_end),
        "receivers": receivers,
    }
    path = os.path.join(args.spool, req_id + ".json")
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(request, f, indent=2)
    os.replace(tmp, path)
    key = _spec_from_dict(spec).key
    print(f"spooled {path}  (artifact key {key[:12]}…)")
    return 0


def _serve_status_payload(
    engine, scheduler, served, failed, drain, *, quarantined=0
):
    """The live-state dict ``repro serve`` publishes for ``repro top``:
    counts, window occupancy, cache tiers, latency quantiles, and the
    per-rank phase split of the most recent distributed run."""
    from repro import telemetry

    reg = telemetry.metrics()
    latency = {}
    for name in reg.names():
        if name.startswith("service.latency."):
            h = reg[name]
            if getattr(h, "n", 0):
                latency[name[len("service.latency."):]] = {
                    "n": h.n,
                    "p50": h.quantile(0.50),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                    "max": h.max,
                }
    per_rank = None
    for sim in list(engine.cache._mem.values()):
        tl = getattr(getattr(sim, "solver", None), "last_timeline", None)
        if tl is not None:
            per_rank = tl.summary()["per_rank"]
            break
    return {
        "served": served,
        "failed": failed,
        "quarantined": quarantined,
        "queue": scheduler.queue_snapshot(),
        "scheduler": scheduler.stats(),
        "cache": engine.cache.stats(),
        "drain": drain,
        "pools": engine.stats()["pools"],
        "latency": latency,
        "per_rank": per_rank,
    }


def cmd_serve(args) -> int:
    """Drain the spool through a warm engine, crash-safely.

    Each pass *claims* every pending ``req-*.json`` by atomic rename
    into ``<spool>/inflight/`` (the at-least-once journal: a SIGKILL
    at any instant leaves each request in exactly one directory),
    submits all of them to the coalescing scheduler (requests naming
    the same basin, horizon, and record coalesce into one fused
    batch), writes one ``.npz`` seismogram archive per request, and
    retires the spool file to ``<spool>/done``.  A restarted server
    replays whatever a crashed predecessor left in ``inflight/`` —
    idempotent, because results are rebuilt from the same
    content-addressed artifacts.  Requests that fail
    ``--max-attempts`` times (or whose spool file cannot be parsed)
    move to ``<spool>/quarantine/`` with a failure-report JSON
    instead of wedging the drain loop.  With ``--watch`` the server
    polls for new requests until interrupted; the default is one
    drain pass (empty spool = no-op), which is what the CI smoke
    drives.

    Resilience knobs: ``--max-queue-depth`` sheds excess submissions,
    ``--deadline`` expires queued requests, ``--no-bisect`` disables
    poisoned-batch isolation (see
    :class:`~repro.service.policy.ServicePolicy`).

    Observability: ``--status-file`` publishes live state for ``repro
    top``; ``--prometheus``/``--metrics-jsonl`` export the metric
    registry; ``--trace-out`` dumps the request-stitched span trace.
    Any of these flags turns telemetry on for the process.
    """
    import time as _time

    from repro import telemetry
    from repro.resilience.faults import FaultPlan
    from repro.service import (
        CoalescingScheduler,
        Engine,
        ForwardRequest,
        ServicePolicy,
    )

    os.makedirs(args.spool, exist_ok=True)
    os.makedirs(args.out_dir, exist_ok=True)
    done_dir = os.path.join(args.spool, "done")
    inflight_dir = os.path.join(args.spool, "inflight")
    quarantine_dir = os.path.join(args.spool, "quarantine")
    for d in (done_dir, inflight_dir, quarantine_dir):
        os.makedirs(d, exist_ok=True)

    exporting = bool(
        args.status_file or args.prometheus
        or args.metrics_jsonl or args.trace_out
    )
    if exporting and not telemetry.enabled():
        telemetry.enable()
    status = (
        telemetry.StatusFile(args.status_file)
        if args.status_file else None
    )
    jsonl = (
        telemetry.MetricsJsonlExporter(args.metrics_jsonl)
        if args.metrics_jsonl else None
    )

    policy = ServicePolicy(
        max_queue_depth=args.max_queue_depth,
        deadline=args.deadline if args.deadline > 0 else None,
        bisect=not args.no_bisect,
        max_attempts=args.max_attempts,
    )
    fault_plan = FaultPlan.from_env()
    engine = Engine(
        capacity=args.capacity, disk_dir=args.cache_dir,
        faults=fault_plan,
    )
    scheduler = CoalescingScheduler(
        engine, max_batch=args.max_batch, max_wait=args.max_wait,
        policy=policy,
    )
    served = failed = quarantined = 0
    drain = None
    traces = []

    def publish():
        if status is not None:
            status.write(
                _serve_status_payload(
                    engine, scheduler, served, failed, drain,
                    quarantined=quarantined,
                )
            )
        if jsonl is not None:
            jsonl.export()
        if args.prometheus:
            telemetry.write_prometheus(args.prometheus)

    def _attempts_path(fname):
        return os.path.join(inflight_dir, fname + ".attempts")

    def _read_attempts(fname):
        try:
            with open(_attempts_path(fname)) as f:
                return int(f.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def _bump_attempts(fname):
        n = _read_attempts(fname) + 1
        path = _attempts_path(fname)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            f.write(str(n))
        os.replace(tmp, path)
        return n

    def _quarantine(fname, report):
        """Move an inflight request to quarantine/ with a failure
        report; removes its attempts sidecar.  The request leaves the
        drain loop permanently — exactly-once disposition."""
        nonlocal quarantined
        src = os.path.join(inflight_dir, fname)
        if os.path.exists(src):
            os.replace(src, os.path.join(quarantine_dir, fname))
        try:
            os.remove(_attempts_path(fname))
        except OSError:
            pass
        report = {"file": fname, "ts": _time.time(), **report}
        rpath = os.path.join(
            quarantine_dir, fname[:-len(".json")] + ".report.json"
        )
        tmp = rpath + ".tmp"
        with open(tmp, "w") as f:
            json.dump(report, f, indent=2)
        os.replace(tmp, rpath)
        quarantined += 1
        telemetry.count("service.quarantined")
        print(
            f"  {fname[:-len('.json')]}: QUARANTINED "
            f"({report.get('stage')}: {report.get('error')})"
        )

    try:
        while True:
            # claim: atomic rename out of the spool root — after this
            # instant the request is journalled in inflight/ and will
            # be replayed by any restart
            for fname in sorted(os.listdir(args.spool)):
                if fname.startswith("req-") and fname.endswith(".json"):
                    os.replace(
                        os.path.join(args.spool, fname),
                        os.path.join(inflight_dir, fname),
                    )
            progressed = False
            while True:  # attempt loop: converges in <= max_attempts
                claimed = sorted(
                    f for f in os.listdir(inflight_dir)
                    if f.startswith("req-") and f.endswith(".json")
                )
                if not claimed:
                    break
                progressed = True
                batch = []
                drain_base = engine.cache.counters()
                for fname in claimed:
                    fpath = os.path.join(inflight_dir, fname)
                    attempts = _bump_attempts(fname)
                    if attempts > 1:
                        telemetry.count("service.replayed")
                    try:
                        with open(fpath) as f:
                            req = json.load(f)
                        spec = _spec_from_dict(req["spec"])
                        request = ForwardRequest(
                            spec,
                            _scenario_from_name(
                                req.get("scenario", "strike-slip"),
                                spec.L,
                            ),
                            float(req["t_end"]),
                            receivers=(
                                np.asarray(req["receivers"], dtype=float)
                                if req.get("receivers")
                                else None
                            ),
                            record=req.get("record", "velocity"),
                            request_id=req["id"],
                        )
                    except Exception as e:
                        # torn/corrupt spool JSON (or a bad spec):
                        # unservable no matter how often we retry
                        _quarantine(fname, {
                            "id": fname[:-len(".json")],
                            "stage": "parse",
                            "error": str(e),
                            "error_type": type(e).__name__,
                            "attempts": attempts,
                        })
                        failed += 1
                        continue
                    try:
                        future = scheduler.submit(request)
                    except Exception as e:  # shed / breaker open
                        from concurrent.futures import Future as _F
                        future = _F()
                        future.set_exception(e)
                    batch.append((fname, req, request, future))
                still_failing = False
                for fname, req, request, future in batch:
                    out = os.path.join(
                        args.out_dir, req["id"] + ".npz"
                    )
                    try:
                        seis = future.result()
                    except Exception as e:  # keep serving the rest
                        attempts = _read_attempts(fname)
                        if attempts >= policy.max_attempts:
                            _quarantine(fname, {
                                "id": req["id"],
                                "stage": "solve",
                                "error": str(e),
                                "error_type": type(e).__name__,
                                "attempts": attempts,
                                "trace_id": request.trace_id,
                            })
                            failed += 1
                        else:
                            still_failing = True
                            print(
                                f"  {req['id']}: attempt {attempts} "
                                f"failed ({e}); will retry"
                            )
                        continue
                    if seis is not None:
                        # ends in .npz so savez does not append one
                        tmp = out + ".tmp.npz"
                        np.savez_compressed(
                            tmp,
                            data=seis.data,
                            dt=seis.dt,
                            kind=seis.kind,
                            positions=seis.positions,
                        )
                        os.replace(tmp, out)
                        print(f"  {req['id']}: {out}")
                    if request.trace_id is not None:
                        traces.append((req["id"], request.trace_id))
                    served += 1
                    os.replace(
                        os.path.join(inflight_dir, fname),
                        os.path.join(done_dir, fname),
                    )
                    try:
                        os.remove(_attempts_path(fname))
                    except OSError:
                        pass
                # per-drain cache scope: hit ratios of THIS drain,
                # not the engine's lifetime totals
                drain = engine.cache.stats_since(drain_base)
                if fault_plan is not None:
                    # advance one-shot faults so a retry pass runs
                    # clean — mirrors the solver's own recovery loop
                    fault_plan = fault_plan.retried()
                    engine.faults = fault_plan
                if not still_failing:
                    break
            publish()
            if not args.watch:
                break
            if not progressed:
                _time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    finally:
        scheduler.close()
        engine.close()
        publish()

    stats = engine.stats()
    sched = scheduler.stats()
    print(
        f"served {served} request(s) ({failed} failed) in "
        f"{sched['batches']} batch(es), mean width "
        f"{sched['mean_batch']:.2f}, max {sched['max_batch_observed']}"
    )
    if quarantined:
        print(
            f"quarantine: {quarantined} request(s) -> {quarantine_dir}"
        )
    print(
        f"artifact cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({stats['entries']} live, {stats['disk_hits']} from disk)"
    )
    if args.trace_out and telemetry.enabled():
        extra = [
            {"type": "request_trace", "request": rid, "trace": tid}
            for rid, tid in traces
        ]
        for sim in list(engine.cache._mem.values()):
            tl = getattr(
                getattr(sim, "solver", None), "last_timeline", None
            )
            if tl is not None:
                extra.extend(tl.span_records())
        n = telemetry.dump_jsonl(args.trace_out, extra_records=extra)
        print(f"trace: {n} records -> {args.trace_out}")
    if args.report:
        service = {**stats, **sched, "quarantined": quarantined}
        if drain is not None:
            service["drain"] = drain
        report = telemetry.PerfReport.collect(
            metrics=telemetry.metrics(),
            service=service,
            title="simulation service drain",
        )
        print()
        print(report.as_text())
    return 1 if failed else 0


def cmd_top(args) -> int:
    """Live service view: renders the status file ``repro serve
    --status-file`` publishes.  One shot by default; ``--watch``
    refreshes every ``--poll`` seconds until interrupted."""
    import time as _time

    from repro import telemetry

    status = telemetry.StatusFile(args.status_file)

    def render() -> bool:
        snap = status.read()
        if snap is None:
            print(f"no status at {args.status_file} (is serve running "
                  "with --status-file?)")
            return False
        age = _time.time() - snap.get("ts", 0.0)
        lines = [
            f"repro serve  pid {snap.get('pid', '?')}  "
            f"(status age {age:.1f}s)",
            f"  served {snap.get('served', 0)} "
            f"({snap.get('failed', 0)} failed)",
        ]
        sched = snap.get("scheduler") or {}
        rb = {
            k: sched.get(k, 0)
            for k in ("shed", "deadline_expired", "poisoned", "retries")
        }
        rb["quarantined"] = snap.get("quarantined", 0)
        breaker = sched.get("breaker", "disabled")
        if any(rb.values()) or breaker not in ("disabled", "closed"):
            lines.append(
                f"  robustness: shed {rb['shed']}, expired "
                f"{rb['deadline_expired']}, poisoned {rb['poisoned']}, "
                f"retries {rb['retries']}, quarantined "
                f"{rb['quarantined']}, breaker {breaker}"
            )
        q = snap.get("queue") or {}
        windows = q.get("open_windows") or []
        busy = "dispatching" if q.get("dispatching") else "idle"
        lines.append(
            f"  windows: {len(windows)} open, {busy}"
        )
        for w in windows:
            lines.append(
                f"    {w['pending']}/{w['max_batch']} pending, "
                f"{w['window_remaining'] * 1e3:.0f} ms remaining"
            )
        c = snap.get("cache") or {}
        lines.append(
            f"  cache: {c.get('entries', 0)}/{c.get('capacity', 0)} "
            f"entries, {c.get('hits', 0)} hits / "
            f"{c.get('misses', 0)} misses "
            f"({100.0 * c.get('hit_rate', 0.0):.0f}%), "
            f"{c.get('disk_hits', 0)} from disk"
        )
        d = snap.get("drain")
        if d:
            dh, dm = d.get("hits", 0), d.get("misses", 0)
            dt = dh + dm
            lines.append(
                f"  last drain: {dh}/{dt} hits "
                f"({100.0 * d.get('hit_rate', 0.0):.0f}%)"
            )
        pools = snap.get("pools") or {}
        if pools:
            running = sum(1 for v in pools.values() if v == "running")
            lines.append(f"  pools: {running}/{len(pools)} running")
        lat = snap.get("latency") or {}
        if lat:
            lines.append(
                f"  {'latency':<10} {'n':>6} {'p50':>9} {'p95':>9} "
                f"{'p99':>9}"
            )
            for stage, h in sorted(lat.items()):
                lines.append(
                    f"  {stage:<10} {h['n']:>6} "
                    f"{h['p50'] * 1e3:>7.1f}ms {h['p95'] * 1e3:>7.1f}ms "
                    f"{h['p99'] * 1e3:>7.1f}ms"
                )
        per_rank = snap.get("per_rank")
        if per_rank:
            lines.append("  per-rank phase split (last run):")
            for row in per_rank:
                tot = row["compute_seconds"] + row["comm_seconds"]
                frac = row["compute_seconds"] / tot if tot else 0.0
                lines.append(
                    f"    rank {row['rank']}: compute "
                    f"{row['compute_seconds']:.3f}s "
                    f"comm {row['comm_seconds']:.3f}s "
                    f"({100 * frac:.0f}% compute)"
                )
        print("\n".join(lines))
        return True

    if not args.watch:
        return 0 if render() else 1
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            render()
            _time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_profile(args) -> int:
    os.makedirs(args.out_dir, exist_ok=True)
    reports = []
    if args.scenario in ("forward", "all"):
        reports.extend(_profile_forward(args, args.out_dir))
    if args.scenario in ("inverse", "all"):
        reports.append(_profile_inverse(args, args.out_dir))
    for report in reports:
        print()
        print(report.as_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Forward/inverse earthquake modeling (SC2003 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    pe = sub.add_parser("estimate", help="mesh-size/work projection")
    _add_material_args(pe)
    pe.set_defaults(func=cmd_estimate)

    pm = sub.add_parser("mesh", help="generate the etree mesh database")
    _add_material_args(pm)
    pm.add_argument("--workdir", required=True)
    pm.add_argument("--max-level", type=int, default=7)
    pm.add_argument("--blocks", type=int, default=4)
    pm.set_defaults(func=cmd_mesh)

    pf = sub.add_parser("forward", help="run a forward simulation")
    _add_material_args(pf)
    pf.add_argument("--max-level", type=int, default=6)
    pf.add_argument("--t-end", type=float, required=True)
    pf.add_argument(
        "--scenario", choices=("northridge", "strike-slip"),
        default="strike-slip",
    )
    pf.add_argument("--damping", type=float, default=0.0)
    pf.add_argument(
        "--receivers",
        help='JSON list of [x, y, z] positions (m), e.g. "[[100,100,0]]"',
    )
    pf.add_argument("--out", help="write seismograms to this .npz file")
    pf.add_argument(
        "--checkpoint-dir",
        help="directory for durable run checkpoints (crash-safe restart)",
    )
    pf.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="snapshot every N steps (0 = only on --resume loads)",
    )
    pf.add_argument(
        "--resume", action="store_true",
        help="restart from the latest valid checkpoint in --checkpoint-dir",
    )
    pf.add_argument(
        "--lts", type=int, nargs="?", const=32, default=0,
        metavar="MAX_RATE",
        help="clustered local time stepping (optional coarsest-to-"
             "finest step-rate cap, default 32 when given bare)",
    )
    pf.set_defaults(func=cmd_forward)

    pp = sub.add_parser(
        "profile",
        help="instrumented runs emitting JSONL traces and PerfReports",
    )
    pp.add_argument("--out-dir", default="profile_out",
                    help="directory for traces and reports")
    pp.add_argument("--size", type=int, default=8,
                    help="forward mesh is size^3 elements (power of two)")
    pp.add_argument("--steps", type=int, default=20,
                    help="forward time steps (inversion uses 4x)")
    pp.add_argument("--workers", type=int, default=2,
                    help="distributed worker count (both transports)")
    pp.add_argument(
        "--scenario", choices=("forward", "inverse", "all"), default="all"
    )
    pp.add_argument(
        "--resume", action="store_true",
        help="resume the inversion from its Gauss-Newton checkpoint",
    )
    pp.add_argument(
        "--lts", type=int, nargs="?", const=32, default=0,
        metavar="MAX_RATE",
        help="profile the forward runs with clustered local time "
             "stepping on a layered (soft-over-stiff) material, "
             "reporting theoretical vs achieved speedup",
    )
    pp.add_argument(
        "--steps-per-exchange", default="1", metavar="K",
        help="fuse K time steps per halo exchange in the distributed "
             "forward runs (communication-avoiding stepping); 'auto' "
             "picks K from the calibrated machine model",
    )
    pp.set_defaults(func=cmd_profile)

    ps = sub.add_parser(
        "submit",
        help="spool a forward request for the simulation service",
    )
    _add_material_args(ps)
    ps.add_argument("--max-level", type=int, default=6)
    ps.add_argument("--t-end", type=float, required=True)
    ps.add_argument(
        "--scenario", choices=("northridge", "strike-slip"),
        default="strike-slip",
    )
    ps.add_argument(
        "--receivers",
        help='JSON list of [x, y, z] positions (m), e.g. "[[100,100,0]]"',
    )
    ps.add_argument("--spool", required=True,
                    help="spool directory shared with `repro serve`")
    ps.set_defaults(func=cmd_submit)

    pv = sub.add_parser(
        "serve",
        help="drain spooled requests through the warm simulation service",
    )
    pv.add_argument("--spool", required=True,
                    help="spool directory `repro submit` writes into")
    pv.add_argument("--out-dir", default="service_out",
                    help="directory for per-request seismogram .npz files")
    pv.add_argument("--cache-dir",
                    help="on-disk artifact tier (warm restarts)")
    pv.add_argument("--capacity", type=int, default=4,
                    help="memory-tier LRU slots for constructed basins")
    pv.add_argument("--max-batch", type=int, default=16,
                    help="coalescing width cap (B of the fused loop)")
    pv.add_argument("--max-wait", type=float, default=0.05,
                    help="seconds a batching window stays open")
    pv.add_argument("--watch", action="store_true",
                    help="keep polling the spool instead of one drain pass")
    pv.add_argument("--poll", type=float, default=0.5,
                    help="idle poll interval with --watch (s)")
    pv.add_argument("--report", action="store_true",
                    help="print the PerfReport service section after draining")
    pv.add_argument("--max-queue-depth", type=int, default=0,
                    help="shed submissions past this queue depth "
                         "(0 = unbounded)")
    pv.add_argument("--deadline", type=float, default=0.0,
                    help="per-request deadline in seconds from submit "
                         "(0 = none)")
    pv.add_argument("--max-attempts", type=int, default=3,
                    help="drain attempts before a failing request is "
                         "quarantined")
    pv.add_argument("--no-bisect", action="store_true",
                    help="fail whole batches instead of bisecting out "
                         "poisoned requests")
    pv.add_argument("--status-file",
                    help="publish live status JSON here (read by "
                         "`repro top`); enables telemetry")
    pv.add_argument("--prometheus",
                    help="write Prometheus text-format metrics to this "
                         "path after each drain; enables telemetry")
    pv.add_argument("--metrics-jsonl",
                    help="append a metrics snapshot (JSONL) per drain; "
                         "enables telemetry")
    pv.add_argument("--trace-out",
                    help="dump the request-stitched span trace (JSONL) "
                         "on exit; enables telemetry")
    pv.set_defaults(func=cmd_serve)

    pt = sub.add_parser(
        "top",
        help="live view of a running `repro serve --status-file` process",
    )
    pt.add_argument("--status-file", required=True,
                    help="status file the serve process publishes")
    pt.add_argument("--watch", action="store_true",
                    help="refresh continuously instead of one shot")
    pt.add_argument("--poll", type=float, default=1.0,
                    help="refresh interval with --watch (s)")
    pt.set_defaults(func=cmd_top)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
