"""Command-line interface.

Three subcommands mirror the library's main workflows:

* ``forward``  — basin earthquake simulation to a seismogram archive;
* ``mesh``     — etree mesh-database generation (construct/balance/
  transform) with the accounting Figure 2.1 reports;
* ``estimate`` — mesh-size / work projection for a target frequency
  (the paper's 8x-per-octave scaling law).

Examples
--------
::

    python -m repro.cli estimate --L 80000 --depth-frac 0.5 --fmax 1.0 \
        --vs-min 100
    python -m repro.cli forward --L 16000 --fmax 0.5 --t-end 10 \
        --out /tmp/run.npz
    python -m repro.cli mesh --L 80000 --fmax 0.1 --workdir /tmp/meshdb
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _add_material_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--L", type=float, required=True, help="box edge (m)")
    p.add_argument(
        "--depth-frac",
        type=float,
        default=0.5,
        help="meshed depth as a fraction of L (power-of-two denominator)",
    )
    p.add_argument("--vs-min", type=float, default=400.0,
                   help="minimum basin shear velocity (m/s)")
    p.add_argument("--fmax", type=float, required=True,
                   help="highest resolved frequency (Hz)")
    p.add_argument("--ppw", type=float, default=10.0,
                   help="grid points per wavelength")
    p.add_argument("--h-min", type=float, default=0.0,
                   help="element size floor (m) for scaled-down runs")


def _material(args):
    from repro.materials import SyntheticBasinModel

    return SyntheticBasinModel(
        L=args.L, depth=args.depth_frac * args.L, vs_min=args.vs_min
    )


def cmd_estimate(args) -> int:
    from repro.mesh import estimate_mesh_size

    est = estimate_mesh_size(
        _material(args),
        L=args.L,
        fmax=args.fmax,
        box_frac=(1, 1, args.depth_frac),
        points_per_wavelength=args.ppw,
        h_min=args.h_min,
    )
    print(json.dumps({k: float(v) for k, v in est.items()}, indent=2))
    return 0


def cmd_mesh(args) -> int:
    from repro.etree import generate_mesh_database

    result = generate_mesh_database(
        args.workdir,
        _material(args),
        L=args.L,
        fmax=args.fmax,
        points_per_wavelength=args.ppw,
        max_level=args.max_level,
        box_frac=(1, 1, args.depth_frac),
        h_min=args.h_min,
        blocks_per_axis=args.blocks,
    )
    print(f"elements     : {result.n_elements:,}")
    print(f"grid points  : {result.n_nodes:,}")
    print(f"hanging      : {result.n_hanging:,}")
    print(
        f"times (s)    : construct {result.construct_seconds:.2f} | "
        f"balance {result.balance_seconds:.2f} | "
        f"transform {result.transform_seconds:.2f}"
    )
    print(f"element db   : {result.element_path}")
    print(f"node db      : {result.node_path}")
    return 0


def cmd_forward(args) -> int:
    from repro.core import ForwardSimulation
    from repro.sources import idealized_northridge, idealized_strike_slip

    sim = ForwardSimulation(
        _material(args),
        L=args.L,
        fmax=args.fmax,
        box_frac=(1, 1, args.depth_frac),
        points_per_wavelength=args.ppw,
        max_level=args.max_level,
        h_min=args.h_min,
        damping_ratio=args.damping,
    )
    summary = sim.mesh_summary()
    print(f"mesh: {summary['elements']:,} elements, "
          f"{summary['grid_points']:,} points, dt = {summary['dt_s']:.4f} s")
    scenario = (
        idealized_northridge(L=args.L)
        if args.scenario == "northridge"
        else idealized_strike_slip(L=args.L)
    )
    if args.receivers:
        rec = np.array(json.loads(args.receivers), dtype=float)
    else:
        xs = np.linspace(0.2, 0.8, 5) * args.L
        rec = np.stack([xs, np.full_like(xs, 0.5 * args.L),
                        np.zeros_like(xs)], axis=1)
    result = sim.run(scenario, t_end=args.t_end, receivers=rec)
    seis = result.seismograms
    pgv = np.abs(seis.data).max(axis=(1, 2))
    for i, v in enumerate(pgv):
        print(f"  receiver {i}: PGV {v:.4f} m/s")
    if args.out:
        np.savez_compressed(
            args.out,
            data=seis.data,
            dt=seis.dt,
            kind=seis.kind,
            positions=seis.positions,
        )
        print(f"seismograms written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Forward/inverse earthquake modeling (SC2003 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    pe = sub.add_parser("estimate", help="mesh-size/work projection")
    _add_material_args(pe)
    pe.set_defaults(func=cmd_estimate)

    pm = sub.add_parser("mesh", help="generate the etree mesh database")
    _add_material_args(pm)
    pm.add_argument("--workdir", required=True)
    pm.add_argument("--max-level", type=int, default=7)
    pm.add_argument("--blocks", type=int, default=4)
    pm.set_defaults(func=cmd_mesh)

    pf = sub.add_parser("forward", help="run a forward simulation")
    _add_material_args(pf)
    pf.add_argument("--max-level", type=int, default=6)
    pf.add_argument("--t-end", type=float, required=True)
    pf.add_argument(
        "--scenario", choices=("northridge", "strike-slip"),
        default="strike-slip",
    )
    pf.add_argument("--damping", type=float, default=0.0)
    pf.add_argument(
        "--receivers",
        help='JSON list of [x, y, z] positions (m), e.g. "[[100,100,0]]"',
    )
    pf.add_argument("--out", help="write seismograms to this .npz file")
    pf.set_defaults(func=cmd_forward)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
