"""Auto-navigation octree construction (paper Section 2.3).

"The idea of auto-navigation is based on a simple insight: since the
ordering of expanding an octree under construction is independent of the
correctness of the result, the octree traversal logic can be decoupled
from the application's logic and incorporated into the etree library."

:func:`construct_octree` owns the traversal: the application supplies a
vectorized *decide* callback (refine or keep) and a *payload* callback
(record for a leaf), and never tracks which octants were decomposed.
The traversal visits the subtrees rooted at a configurable chunk level
in Morton order, expands each subtree breadth-first in memory, and
streams its leaves — already sorted — to the database's bulk loader, so
the resident set is one subtree plus one leaf page.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.etree.database import EtreeDatabase
from repro.octree.linear_octree import _binary_fraction_ticks
from repro.octree.morton import MAX_COORD, MAX_LEVEL
from repro.octree.octant import (
    octant_anchor,
    octant_children,
    octant_size,
    pack_key,
)
from repro.octree.morton import morton_encode


def _expand_subtree(
    roots: np.ndarray,
    decide: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    max_level: int,
    box_ticks: np.ndarray,
) -> np.ndarray:
    """Breadth-first expansion of ``roots`` into leaves (sorted keys)."""
    leaves: list[np.ndarray] = []
    frontier = roots
    while len(frontier):
        x, y, z, lvl = octant_anchor(frontier)
        size = octant_size(lvl)
        anchors = np.stack([x, y, z], axis=1)
        outside = np.any(anchors >= box_ticks, axis=1)
        frontier = frontier[~outside]
        if not len(frontier):
            break
        anchors = anchors[~outside]
        size = size[~outside]
        lvl = lvl[~outside]
        crosses = np.any(anchors + size[:, None] > box_ticks, axis=1)
        centers = (anchors + 0.5 * size[:, None]) / MAX_COORD
        want = np.asarray(
            decide(centers, size / MAX_COORD, lvl), dtype=bool
        )
        refine = (crosses | want) & (lvl < max_level)
        if np.any(crosses & (lvl >= max_level)):
            raise ValueError("max_level too small to align with box_frac")
        leaves.append(frontier[~refine])
        frontier = (
            octant_children(frontier[refine]).ravel()
            if np.any(refine)
            else np.array([], dtype=np.uint64)
        )
    if not leaves:
        return np.array([], dtype=np.uint64)
    return np.sort(np.concatenate(leaves))


def construct_octree(
    db: EtreeDatabase,
    decide: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    payload: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    max_level: int,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    chunk_level: int = 2,
) -> int:
    """Construct an octree straight into ``db`` (which must be empty).

    Parameters
    ----------
    decide:
        ``decide(centers, sizes, levels) -> bool mask`` — True where an
        octant must be refined.  Centers/sizes are in root-cube units.
    payload:
        ``payload(centers, sizes) -> structured array`` with ``db.dtype``
        — the record stored for each leaf.
    max_level:
        Refinement cap.
    box_frac:
        Meshed box as fractions of the root cube (power-of-two
        denominators).
    chunk_level:
        The traversal streams one level-``chunk_level`` subtree at a
        time, bounding memory to ``8**-chunk_level`` of the tree.

    Returns
    -------
    int
        Number of leaf octants written.
    """
    box_ticks = np.array([_binary_fraction_ticks(f) for f in box_frac])
    # chunk roots in Morton order; expand the tree down to chunk_level
    # first (respecting the box), then stream each chunk subtree
    top = np.array([pack_key(np.uint64(0), np.uint64(0))], dtype=np.uint64)
    for _ in range(chunk_level):
        x, y, z, lvl = octant_anchor(top)
        anchors = np.stack([x, y, z], axis=1)
        inside = np.all(anchors < box_ticks, axis=1)
        top = octant_children(top[inside]).ravel()
    top = np.sort(top)

    total = 0
    with db.bulk_loader() as loader:
        for root in top:
            keys = _expand_subtree(
                np.array([root], dtype=np.uint64), decide, max_level, box_ticks
            )
            if not len(keys):
                continue
            x, y, z, lvl = octant_anchor(keys)
            size = octant_size(lvl)
            centers = (
                np.stack([x, y, z], axis=1) + 0.5 * size[:, None]
            ) / MAX_COORD
            recs = np.asarray(
                payload(centers, size / MAX_COORD), dtype=db.dtype
            )
            loader.append(keys, recs)
            total += len(keys)
    db.flush()
    return total
