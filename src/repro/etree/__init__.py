"""The etree method: database-oriented out-of-core octree mesh generation
(paper Section 2.3, Tu, O'Hallaron & Lopez [37]).

Octants are addressed by linear-octree keys (Morton code + level) and
stored in an on-disk **B-tree** — "the most commonly used primary key
indexing structure in database systems".  Two higher-level abstractions
support mesh generation:

* **auto-navigation** (:mod:`repro.etree.navigation`): the octree
  traversal logic is decoupled from the application's refine/coarsen
  decision, so a mesh is constructed by a single callback without the
  application tracking which octants were decomposed;
* **local balancing** (:func:`repro.etree.pipeline.balance_step`): the
  domain is partitioned into blocks that are balanced internally and
  then reconciled along boundaries, keeping the working set small.

The full pipeline (Figure 2.1) is **construct -> balance -> transform**;
the transform step derives the element-node relation and node
coordinates into two databases, one for elements, one for nodes.
"""

from repro.etree.btree import BTree
from repro.etree.database import EtreeDatabase, OctantRecord
from repro.etree.navigation import construct_octree
from repro.etree.pipeline import (
    DatabaseMaterial,
    MeshDatabases,
    balance_step,
    construct_step,
    generate_mesh_database,
    load_mesh_from_databases,
    transform_step,
)

__all__ = [
    "BTree",
    "EtreeDatabase",
    "OctantRecord",
    "construct_octree",
    "construct_step",
    "balance_step",
    "transform_step",
    "generate_mesh_database",
    "load_mesh_from_databases",
    "DatabaseMaterial",
    "MeshDatabases",
]
