"""The etree mesh-generation pipeline: construct -> balance -> transform
(paper Figure 2.1).

* **construct** builds an unbalanced octree on disk, refining until each
  octant resolves the local seismic wavelength
  (``h = vs / (N_lambda * f_max)``), and stores the material properties
  queried at each octant center.
* **balance** enforces the 2-to-1 constraint with the paper's *local
  balancing*: octants are processed block by block (each block is a
  Morton-contiguous range scan), balanced internally, then a boundary
  phase resolves interactions between adjacent blocks.  New octants
  created by splitting inherit their ancestor's material record.
* **transform** derives mesh-specific information — the element-node
  relation and the node coordinates (with hanging-node constraints) —
  into two databases, one for elements, one for nodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import telemetry
from repro.etree.database import EtreeDatabase, OctantRecord
from repro.etree.navigation import construct_octree
from repro.octree.balance import _balance_rounds
from repro.octree.linear_octree import LinearOctree, _binary_fraction_ticks
from repro.octree.morton import MAX_COORD, morton_encode
from repro.octree.octant import (
    octant_anchor,
    octant_parent,
    octant_size,
    pack_key,
    unpack_key,
)

#: element database record: global node ids, material, level
ElementRecord = np.dtype(
    [
        ("nodes", "<u4", (8,)),
        ("vs", "<f4"),
        ("vp", "<f4"),
        ("rho", "<f4"),
        ("level", "<u4"),
    ]
)

#: node database record: lattice coordinates, hanging flag, constraint
NodeRecord = np.dtype(
    [
        ("x", "<u4"),
        ("y", "<u4"),
        ("z", "<u4"),
        ("flags", "<u4"),
        ("masters", "<u4", (8,)),
        ("weights", "<f4", (8,)),
    ]
)

HANGING_FLAG = 1


def construct_step(
    path: str,
    material,
    *,
    L: float,
    fmax: float,
    points_per_wavelength: float = 10.0,
    max_level: int,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    h_min: float = 0.0,
    cache_pages: int = 256,
    chunk_level: int = 2,
) -> EtreeDatabase:
    """Construct the (unbalanced) wavelength-adaptive octant database.

    ``material`` must expose ``query(points_m) -> (vs, vp, rho)`` for
    physical points in meters, vectorized.
    """
    db = EtreeDatabase(path, OctantRecord, cache_pages=cache_pages)
    # sample the material at the center and the 8 corners of each octant
    # and let the slowest (shortest-wavelength) sample govern refinement
    corner_dirs = np.array(
        [(0, 0, 0)]
        + [((k & 1) * 2 - 1, ((k >> 1) & 1) * 2 - 1, ((k >> 2) & 1) * 2 - 1) for k in range(8)],
        dtype=float,
    )

    def decide(centers, sizes, levels):
        pts = (
            centers[:, None, :]
            + corner_dirs[None, :, :] * (0.5 * sizes[:, None, None])
        ).reshape(-1, 3)
        vs, _, _ = material.query(pts * L)
        vs = np.asarray(vs, dtype=float).reshape(len(centers), len(corner_dirs))
        vs_min = vs.min(axis=1)
        target = np.maximum(vs_min / (points_per_wavelength * fmax), h_min) / L
        return sizes > target + 1e-15

    def payload(centers, sizes):
        vs, vp, rho = material.query(centers * L)
        rec = np.zeros(len(centers), dtype=OctantRecord)
        rec["vs"], rec["vp"], rec["rho"] = vs, vp, rho
        return rec

    construct_octree(
        db,
        decide,
        payload,
        max_level=max_level,
        box_frac=box_frac,
        chunk_level=chunk_level,
    )
    return db


def _inherit_records(db: EtreeDatabase, keys: np.ndarray) -> np.ndarray:
    """Records for ``keys``: direct hit in ``db`` or nearest ancestor's."""
    recs = np.zeros(len(keys), dtype=db.dtype)
    for i, k in enumerate(keys):
        k = np.uint64(k)
        while True:
            r = db.get(int(k))
            if r is not None:
                recs[i] = r
                break
            _, lvl = unpack_key(k)
            if int(lvl) == 0:
                raise KeyError(f"no ancestor record for key {int(keys[i])}")
            k = octant_parent(k)
    return recs


def balance_step(
    db: EtreeDatabase,
    path_out: str,
    *,
    blocks_per_axis: int = 4,
    cache_pages: int = 256,
) -> EtreeDatabase:
    """Enforce the 2-to-1 constraint out-of-core via local balancing."""
    if MAX_COORD % blocks_per_axis:
        raise ValueError("blocks_per_axis must divide the lattice")
    bsize = MAX_COORD // blocks_per_axis
    block_level = int(np.log2(blocks_per_axis))

    balanced_keys: list[np.ndarray] = []
    # phase 1: internal balancing, one Morton-contiguous block at a time
    for bx in range(blocks_per_axis):
        for by in range(blocks_per_axis):
            for bz in range(blocks_per_axis):
                anchor = np.array([bx, by, bz], dtype=np.int64) * bsize
                m0 = morton_encode(anchor[0], anchor[1], anchor[2])
                span = np.uint64(bsize) ** np.uint64(3)
                lo = int(pack_key(m0, np.uint64(0)))
                hi = int(pack_key(m0 + span, np.uint64(0)))
                keys, _ = db.scan_arrays(lo, hi)
                if not len(keys):
                    continue
                out = _balance_rounds(
                    keys, keys, restrict_block=(anchor, bsize)
                )
                balanced_keys.append(np.sort(out))
    if not balanced_keys:
        raise ValueError("octant database is empty")
    # blocks were visited in x-major order but Morton order is bit-
    # interleaved; concatenate then sort (keys only — cheap)
    keys = np.sort(np.concatenate(balanced_keys))

    # phase 2: boundary balancing over leaves touching block faces
    x, y, z, lvl = octant_anchor(keys)
    sz = octant_size(lvl)
    touches = (
        (x % bsize == 0)
        | (y % bsize == 0)
        | (z % bsize == 0)
        | ((x + sz) % bsize == 0)
        | ((y + sz) % bsize == 0)
        | ((z + sz) % bsize == 0)
    )
    keys = np.sort(_balance_rounds(keys, keys[touches]))

    out_db = EtreeDatabase(path_out, db.dtype, cache_pages=cache_pages)
    with out_db.bulk_loader() as loader:
        chunk = 8192
        for start in range(0, len(keys), chunk):
            ks = keys[start : start + chunk]
            loader.append(ks, _inherit_records(db, ks))
    out_db.flush()
    return out_db


def transform_step(
    db: EtreeDatabase,
    elem_path: str,
    node_path: str,
    *,
    L: float,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    cache_pages: int = 256,
) -> tuple[EtreeDatabase, EtreeDatabase]:
    """Derive the element and node databases from the balanced octants."""
    from repro.mesh.hanging import build_constraints
    from repro.mesh.hexmesh import extract_mesh

    keys, recs = db.scan_arrays()
    tree = LinearOctree(keys)
    mesh = extract_mesh(tree, L=L, box_frac=box_frac)
    info = build_constraints(tree, mesh)

    # element database, keyed by the octant key
    elem_db = EtreeDatabase(elem_path, ElementRecord, cache_pages=cache_pages)
    erecs = np.zeros(mesh.nelem, dtype=ElementRecord)
    erecs["nodes"] = mesh.conn.astype(np.uint32)
    # scan order of the balanced db matches tree key order == mesh order
    erecs["vs"], erecs["vp"], erecs["rho"] = recs["vs"], recs["vp"], recs["rho"]
    erecs["level"] = mesh.elem_level.astype(np.uint32)
    elem_db.append_sorted(tree.keys, erecs)

    # node database, keyed by the Morton code of the node coordinates
    node_db = EtreeDatabase(node_path, NodeRecord, cache_pages=cache_pages)
    nrecs = np.zeros(mesh.nnode, dtype=NodeRecord)
    nrecs["x"] = mesh.node_ticks[:, 0]
    nrecs["y"] = mesh.node_ticks[:, 1]
    nrecs["z"] = mesh.node_ticks[:, 2]
    nrecs["flags"][info.hanging] = HANGING_FLAG
    for i, stencil in info.masters.items():
        if len(stencil) > 8:
            raise ValueError(
                f"hanging node {i} has {len(stencil)} masters; record holds 8"
            )
        for j, (node, w) in enumerate(stencil.items()):
            nrecs["masters"][i, j] = node
            nrecs["weights"][i, j] = w
    node_codes = morton_encode(
        mesh.node_ticks[:, 0], mesh.node_ticks[:, 1], mesh.node_ticks[:, 2]
    )
    order = np.argsort(node_codes)
    node_db.append_sorted(node_codes[order], nrecs[order])
    elem_db.flush()
    node_db.flush()
    return elem_db, node_db


def load_mesh_from_databases(
    elem_path: str,
    node_path: str,
    *,
    L: float,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    cache_pages: int = 256,
):
    """Rebuild a solver-ready mesh from the element and node databases.

    This is the paper's production workflow: "each basin is meshed just
    once for a given resolution of interest — but subjected to many
    earthquake scenarios", so simulations start from the databases, not
    from re-meshing.  Returns ``(mesh, tree, constraints, materials)``
    with ``materials = (vs, vp, rho)`` per element, ready for
    :class:`repro.solver.ElasticWaveSolver`.
    """
    import scipy.sparse as sp

    from repro.mesh.hanging import HangingNodeInfo
    from repro.mesh.hexmesh import HexMesh
    from repro.octree.linear_octree import LinearOctree

    with EtreeDatabase(elem_path, ElementRecord, cache_pages=cache_pages) as edb:
        keys, erecs = edb.scan_arrays()
    with EtreeDatabase(node_path, NodeRecord, cache_pages=cache_pages) as ndb:
        node_codes, nrecs = ndb.scan_arrays()

    tree = LinearOctree(keys)
    # node records are stored in Morton order of their coordinates; the
    # element records reference node indices in extraction order, which
    # is the same Morton order (transform_step sorts before writing)
    order = np.argsort(node_codes)
    if not np.array_equal(order, np.arange(len(order))):
        raise ValueError("node database is not Morton-sorted")
    node_ticks = np.stack(
        [nrecs["x"], nrecs["y"], nrecs["z"]], axis=1
    ).astype(np.int64)
    conn = erecs["nodes"].astype(np.int64)
    box_ticks = np.array([_binary_fraction_ticks(f) for f in box_frac])
    mesh = HexMesh(
        conn=conn,
        node_ticks=node_ticks,
        elem_anchor=tree.anchors.copy(),
        elem_size=tree.sizes.copy(),
        elem_level=tree.levels.copy(),
        L=float(L),
        box_ticks=box_ticks,
    )
    hanging = (nrecs["flags"] & HANGING_FLAG) > 0
    masters: dict[int, dict[int, float]] = {}
    for i in np.nonzero(hanging)[0]:
        st = {}
        for node, w in zip(nrecs["masters"][i], nrecs["weights"][i]):
            if w != 0.0:
                st[int(node)] = float(w)
        masters[int(i)] = st
    independent = np.nonzero(~hanging)[0]
    col_of = np.full(mesh.nnode, -1, dtype=np.int64)
    col_of[independent] = np.arange(len(independent))
    rows = list(independent)
    cols = list(col_of[independent])
    vals = [1.0] * len(independent)
    for i, st in masters.items():
        for j, w in st.items():
            rows.append(i)
            cols.append(col_of[j])
            vals.append(w)
    B = sp.csr_matrix(
        (vals, (rows, cols)), shape=(mesh.nnode, len(independent))
    )
    constraints = HangingNodeInfo(
        hanging=hanging, independent=independent, B=B, masters=masters
    )
    materials = (
        erecs["vs"].astype(float),
        erecs["vp"].astype(float),
        erecs["rho"].astype(float),
    )
    return mesh, tree, constraints, materials


class DatabaseMaterial:
    """Adapter: per-element properties from the database, served through
    the ``query(points)`` protocol by octree point location."""

    def __init__(self, tree, mesh, vs, vp, rho):
        self.tree = tree
        self.mesh = mesh
        self.vs = np.asarray(vs, dtype=float)
        self.vp = np.asarray(vp, dtype=float)
        self.rho = np.asarray(rho, dtype=float)

    def query(self, points: np.ndarray):
        from repro.octree.morton import MAX_COORD

        pts = np.atleast_2d(np.asarray(points, dtype=float))
        tol = 1e-9 * self.mesh.L
        if np.any(pts < -tol) or np.any(pts > self.mesh.L + tol):
            raise ValueError("query point outside the meshed box")
        ticks = np.clip(
            (pts / self.mesh.L * MAX_COORD).astype(np.int64),
            0,
            MAX_COORD - 1,
        )
        idx = self.tree.locate(ticks)
        if np.any(idx < 0):
            raise ValueError("query point outside the meshed box")
        return self.vs[idx], self.vp[idx], self.rho[idx]


@dataclass
class MeshDatabases:
    """Outputs and accounting of a full etree pipeline run."""

    octant_path: str
    balanced_path: str
    element_path: str
    node_path: str
    n_octants_unbalanced: int
    n_elements: int
    n_nodes: int
    n_hanging: int
    construct_seconds: float
    balance_seconds: float
    transform_seconds: float
    io_stats: dict = field(default_factory=dict)


def generate_mesh_database(
    workdir: str,
    material,
    *,
    L: float,
    fmax: float,
    points_per_wavelength: float = 10.0,
    max_level: int,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    h_min: float = 0.0,
    blocks_per_axis: int = 4,
    cache_pages: int = 256,
) -> MeshDatabases:
    """Run construct -> balance -> transform and report the accounting
    that Figure 2.1's benchmark prints."""
    import os

    os.makedirs(workdir, exist_ok=True)
    p_oct = os.path.join(workdir, "octants.etree")
    p_bal = os.path.join(workdir, "balanced.etree")
    p_elem = os.path.join(workdir, "elements.etree")
    p_node = os.path.join(workdir, "nodes.etree")
    for p in (p_oct, p_bal, p_elem, p_node):
        if os.path.exists(p):
            os.remove(p)

    t0 = time.perf_counter()
    with telemetry.span("mesh.construct"):
        oct_db = construct_step(
            p_oct,
            material,
            L=L,
            fmax=fmax,
            points_per_wavelength=points_per_wavelength,
            max_level=max_level,
            box_frac=box_frac,
            h_min=h_min,
            cache_pages=cache_pages,
        )
    t1 = time.perf_counter()
    with telemetry.span("mesh.balance"):
        bal_db = balance_step(
            oct_db, p_bal, blocks_per_axis=blocks_per_axis,
            cache_pages=cache_pages,
        )
    t2 = time.perf_counter()
    with telemetry.span("mesh.transform"):
        elem_db, node_db = transform_step(
            bal_db, p_elem, p_node, L=L, box_frac=box_frac,
            cache_pages=cache_pages,
        )
    t3 = time.perf_counter()

    n_unbal = len(oct_db)
    n_elem = len(elem_db)
    n_node = len(node_db)
    n_hanging = 0
    for _, rec in node_db.scan():
        if rec["flags"] & HANGING_FLAG:
            n_hanging += 1
    stats = {
        "octants": oct_db.io_stats,
        "balanced": bal_db.io_stats,
        "elements": elem_db.io_stats,
        "nodes": node_db.io_stats,
    }
    oct_db.close()
    bal_db.close()
    elem_db.close()
    node_db.close()
    return MeshDatabases(
        octant_path=p_oct,
        balanced_path=p_bal,
        element_path=p_elem,
        node_path=p_node,
        n_octants_unbalanced=n_unbal,
        n_elements=n_elem,
        n_nodes=n_node,
        n_hanging=n_hanging,
        construct_seconds=t1 - t0,
        balance_seconds=t2 - t1,
        transform_seconds=t3 - t2,
        io_stats=stats,
    )
