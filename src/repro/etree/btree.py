"""On-disk B-tree with fixed-size pages and an LRU page cache.

This is the storage engine underneath the etree method (paper Section
2.3): octant keys (Morton code + level, packed ``uint64``) index
fixed-size records.  The tree supports single-pass top-down insertion
(children are split preemptively), point lookup, deletion, in-order
range scans via leaf chaining, and sorted **bulk loading** — the fast
path used when octants are emitted in Z-order during construction.

The page cache bounds memory: only ``cache_pages`` pages are resident,
and the ``reads``/``writes`` counters expose the disk traffic, which the
Figure 2.1 benchmark reports.  Meshes are therefore limited by available
disk space, not memory, exactly as the paper claims.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

_MAGIC = b"ETREEBT1"
_HEADER = struct.Struct("<8sIIIQQQI")  # magic, ver, page, rec, root, npages, nitems, height
_PAGE_HDR = struct.Struct("<BHQ")  # kind, count, next_leaf
_LEAF, _INTERNAL = 0, 1
_NO_PAGE = 0xFFFFFFFFFFFFFFFF


@dataclass
class _Page:
    page_id: int
    kind: int
    keys: np.ndarray  # uint64, logical length = count
    count: int
    next_leaf: int = _NO_PAGE
    records: np.ndarray | None = None  # (capacity, record_size) uint8, leaves
    children: np.ndarray | None = None  # uint64, capacity+1, internals
    dirty: bool = False


class BTree:
    """A B-tree mapping ``uint64`` keys to fixed-size byte records.

    Parameters
    ----------
    path:
        Backing file.  Opened read-write; created when ``record_size``
        is given, otherwise the existing header is read.
    record_size:
        Bytes per record (creation only).
    page_size:
        Bytes per on-disk page (creation only; default 4096).
    cache_pages:
        Number of pages kept resident in the LRU cache.
    """

    def __init__(
        self,
        path: str,
        record_size: int | None = None,
        *,
        page_size: int = 4096,
        cache_pages: int = 256,
    ):
        self.path = path
        create = not os.path.exists(path) or os.path.getsize(path) == 0
        if create and record_size is None:
            raise ValueError("record_size is required when creating a BTree")
        self._file = open(path, "w+b" if create else "r+b")
        self._cache: OrderedDict[int, _Page] = OrderedDict()
        self._cache_pages = max(cache_pages, 4)
        self.reads = 0
        self.writes = 0
        if create:
            self.page_size = page_size
            self.record_size = record_size
            self._npages = 1  # header occupies page 0
            self._nitems = 0
            self.height = 1
            self._compute_capacities()
            root = self._alloc_page(_LEAF)
            self._root = root.page_id
            self._write_header()
        else:
            self._file.seek(0)
            raw = self._file.read(_HEADER.size)
            magic, _ver, psize, rsize, root, npages, nitems, height = _HEADER.unpack(
                raw
            )
            if magic != _MAGIC:
                raise ValueError(f"{path} is not an etree B-tree file")
            self.page_size = psize
            self.record_size = rsize
            self._root = root
            self._npages = npages
            self._nitems = nitems
            self.height = height
            self._compute_capacities()

    def _compute_capacities(self) -> None:
        """Leaf and internal fan-out derived from the page layout."""
        self.leaf_capacity = (self.page_size - _PAGE_HDR.size) // (
            8 + self.record_size
        )
        self.internal_capacity = (self.page_size - _PAGE_HDR.size - 8) // 16
        if self.leaf_capacity < 2 or self.internal_capacity < 3:
            raise ValueError("page_size too small for record_size")

    # ------------------------------------------------------------------ io

    def _write_header(self) -> None:
        raw = _HEADER.pack(
            _MAGIC,
            1,
            self.page_size,
            self.record_size,
            self._root,
            self._npages,
            self._nitems,
            self.height,
        )
        self._file.seek(0)
        self._file.write(raw.ljust(self.page_size, b"\0"))

    def _alloc_page(self, kind: int) -> _Page:
        pid = self._npages
        self._npages += 1
        if kind == _LEAF:
            page = _Page(
                pid,
                kind,
                np.zeros(self.leaf_capacity, dtype=np.uint64),
                0,
                records=np.zeros(
                    (self.leaf_capacity, self.record_size), dtype=np.uint8
                ),
                dirty=True,
            )
        else:
            page = _Page(
                pid,
                kind,
                np.zeros(self.internal_capacity, dtype=np.uint64),
                0,
                children=np.zeros(self.internal_capacity + 1, dtype=np.uint64),
                dirty=True,
            )
        self._cache_put(page)
        return page

    def _serialize(self, page: _Page) -> bytes:
        buf = bytearray(self.page_size)
        _PAGE_HDR.pack_into(buf, 0, page.kind, page.count, page.next_leaf)
        off = _PAGE_HDR.size
        if page.kind == _LEAF:
            kb = page.keys.tobytes()
            buf[off : off + len(kb)] = kb
            off += len(kb)
            rb = page.records.tobytes()
            buf[off : off + len(rb)] = rb
        else:
            kb = page.keys.tobytes()
            buf[off : off + len(kb)] = kb
            off += len(kb)
            cb = page.children.tobytes()
            buf[off : off + len(cb)] = cb
        return bytes(buf)

    def _deserialize(self, pid: int, raw: bytes) -> _Page:
        kind, count, next_leaf = _PAGE_HDR.unpack_from(raw, 0)
        off = _PAGE_HDR.size
        if kind == _LEAF:
            keys = np.frombuffer(
                raw, dtype=np.uint64, count=self.leaf_capacity, offset=off
            ).copy()
            off += self.leaf_capacity * 8
            records = (
                np.frombuffer(
                    raw,
                    dtype=np.uint8,
                    count=self.leaf_capacity * self.record_size,
                    offset=off,
                )
                .copy()
                .reshape(self.leaf_capacity, self.record_size)
            )
            return _Page(pid, kind, keys, count, next_leaf, records=records)
        keys = np.frombuffer(
            raw, dtype=np.uint64, count=self.internal_capacity, offset=off
        ).copy()
        off += self.internal_capacity * 8
        children = np.frombuffer(
            raw, dtype=np.uint64, count=self.internal_capacity + 1, offset=off
        ).copy()
        return _Page(pid, kind, keys, count, next_leaf, children=children)

    def _flush_page(self, page: _Page) -> None:
        if not page.dirty:
            return
        self._file.seek(page.page_id * self.page_size)
        self._file.write(self._serialize(page))
        self.writes += 1
        page.dirty = False

    def _cache_put(self, page: _Page) -> None:
        self._cache[page.page_id] = page
        self._cache.move_to_end(page.page_id)
        while len(self._cache) > self._cache_pages:
            _, evicted = self._cache.popitem(last=False)
            self._flush_page(evicted)

    def _get_page(self, pid: int) -> _Page:
        page = self._cache.get(pid)
        if page is not None:
            self._cache.move_to_end(pid)
            return page
        self._file.seek(pid * self.page_size)
        raw = self._file.read(self.page_size)
        self.reads += 1
        page = self._deserialize(pid, raw)
        self._cache_put(page)
        return page

    def flush(self) -> None:
        """Write every dirty cached page and the header to disk."""
        for page in self._cache.values():
            self._flush_page(page)
        self._write_header()
        self._file.flush()

    def close(self) -> None:
        self.flush()
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __len__(self) -> int:
        return self._nitems

    # --------------------------------------------------------------- search

    def get(self, key: int) -> bytes | None:
        """Return the record stored under ``key``, or None."""
        key = int(key)
        page = self._get_page(self._root)
        while page.kind == _INTERNAL:
            i = int(np.searchsorted(page.keys[: page.count], key, side="right"))
            page = self._get_page(int(page.children[i]))
        i = int(np.searchsorted(page.keys[: page.count], key))
        if i < page.count and int(page.keys[i]) == key:
            return page.records[i].tobytes()
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_scan(self, lo: int = 0, hi: int = 2**64 - 1):
        """Yield ``(key, record)`` for ``lo <= key < hi`` in key order."""
        page = self._get_page(self._root)
        while page.kind == _INTERNAL:
            i = int(np.searchsorted(page.keys[: page.count], lo, side="right"))
            page = self._get_page(int(page.children[i]))
        while True:
            keys = page.keys[: page.count]
            start = int(np.searchsorted(keys, lo))
            for i in range(start, page.count):
                k = int(page.keys[i])
                if k >= hi:
                    return
                yield k, page.records[i].tobytes()
            if page.next_leaf == _NO_PAGE:
                return
            page = self._get_page(int(page.next_leaf))

    def keys(self) -> np.ndarray:
        """All keys in sorted order, as a uint64 array."""
        out = np.empty(self._nitems, dtype=np.uint64)
        n = 0
        for k, _ in self.range_scan():
            out[n] = k
            n += 1
        return out[:n]

    # --------------------------------------------------------------- insert

    def _split_child(self, parent: _Page, idx: int, child: _Page) -> None:
        mid = child.count // 2
        new = self._alloc_page(child.kind)
        if child.kind == _LEAF:
            move = child.count - mid
            new.keys[:move] = child.keys[mid : child.count]
            new.records[:move] = child.records[mid : child.count]
            new.count = move
            child.count = mid
            new.next_leaf = child.next_leaf
            child.next_leaf = new.page_id
            sep = int(new.keys[0])
        else:
            # key at mid moves up; children split around it
            sep = int(child.keys[mid])
            move = child.count - mid - 1
            new.keys[:move] = child.keys[mid + 1 : child.count]
            new.children[: move + 1] = child.children[mid + 1 : child.count + 1]
            new.count = move
            child.count = mid
        parent.keys[idx + 1 : parent.count + 1] = parent.keys[idx : parent.count]
        parent.children[idx + 2 : parent.count + 2] = parent.children[
            idx + 1 : parent.count + 1
        ]
        parent.keys[idx] = sep
        parent.children[idx + 1] = new.page_id
        parent.count += 1
        parent.dirty = child.dirty = new.dirty = True
        # re-pin: any of these may have been evicted (and flushed) by the
        # allocation above; putting them back after mutation keeps the
        # cache copy authoritative
        self._cache_put(child)
        self._cache_put(new)
        self._cache_put(parent)

    def _is_full(self, page: _Page) -> bool:
        cap = self.leaf_capacity if page.kind == _LEAF else self.internal_capacity
        return page.count >= cap

    def insert(self, key: int, record: bytes, *, replace: bool = True) -> None:
        """Insert ``record`` under ``key`` (replacing any existing value)."""
        key = int(key)
        record = bytes(record)
        if len(record) != self.record_size:
            raise ValueError(
                f"record is {len(record)} bytes, expected {self.record_size}"
            )
        root = self._get_page(self._root)
        if self._is_full(root):
            new_root = self._alloc_page(_INTERNAL)
            new_root.children[0] = root.page_id
            self._root = new_root.page_id
            self.height += 1
            self._split_child(new_root, 0, root)
            root = new_root
        page = root
        while page.kind == _INTERNAL:
            i = int(np.searchsorted(page.keys[: page.count], key, side="right"))
            child = self._get_page(int(page.children[i]))
            if self._is_full(child):
                self._split_child(page, i, child)
                if key >= int(page.keys[i]):
                    child = self._get_page(int(page.children[i + 1]))
            page = child
        i = int(np.searchsorted(page.keys[: page.count], key))
        if i < page.count and int(page.keys[i]) == key:
            if not replace:
                raise KeyError(f"duplicate key {key}")
            page.records[i] = np.frombuffer(record, dtype=np.uint8)
            page.dirty = True
            self._cache_put(page)
            return
        page.keys[i + 1 : page.count + 1] = page.keys[i : page.count]
        page.records[i + 1 : page.count + 1] = page.records[i : page.count]
        page.keys[i] = key
        page.records[i] = np.frombuffer(record, dtype=np.uint8)
        page.count += 1
        page.dirty = True
        self._cache_put(page)
        self._nitems += 1

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present.

        Underfull pages are tolerated (no rebalancing) — deletions in
        the etree workload only occur transiently during construction.
        """
        key = int(key)
        page = self._get_page(self._root)
        while page.kind == _INTERNAL:
            i = int(np.searchsorted(page.keys[: page.count], key, side="right"))
            page = self._get_page(int(page.children[i]))
        i = int(np.searchsorted(page.keys[: page.count], key))
        if i >= page.count or int(page.keys[i]) != key:
            return False
        page.keys[i : page.count - 1] = page.keys[i + 1 : page.count]
        page.records[i : page.count - 1] = page.records[i + 1 : page.count]
        page.count -= 1
        page.dirty = True
        self._cache_put(page)
        self._nitems -= 1
        return True

    # ------------------------------------------------------------ bulk load

    def bulk_loader(self) -> "_BulkLoader":
        """Return a bulk loader for an empty tree.

        The loader's :meth:`_BulkLoader.append` may be called repeatedly
        with sorted chunks (strictly increasing across calls), so octants
        emitted subtree-by-subtree in Z-order stream straight to disk;
        only one leaf page and the (small) per-level separator lists stay
        in memory.  Call :meth:`_BulkLoader.close` (or use as a context
        manager) to build the internal levels.
        """
        if self._nitems:
            raise ValueError("bulk loading requires an empty tree")
        return _BulkLoader(self)

    def bulk_load(self, keys: np.ndarray, records: np.ndarray) -> None:
        """Load sorted ``(keys, records)`` into an empty tree in one shot."""
        with self.bulk_loader() as loader:
            loader.append(keys, records)


class _BulkLoader:
    """Streaming sorted loader; see :meth:`BTree.bulk_loader`."""

    def __init__(self, tree: BTree):
        self.tree = tree
        self.fill = max(2, int(tree.leaf_capacity * 0.9))
        self.leaf_ids: list[int] = []
        self.first_keys: list[int] = []
        self.prev: _Page | None = None
        self.last_key = -1
        self.count = 0
        self.closed = False

    def append(self, keys: np.ndarray, records: np.ndarray) -> None:
        if self.closed:
            raise ValueError("loader already closed")
        tree = self.tree
        keys = np.asarray(keys, dtype=np.uint64)
        records = np.ascontiguousarray(records, dtype=np.uint8).reshape(
            len(keys), tree.record_size
        )
        if len(keys) == 0:
            return
        diffs_ok = bool(np.all(keys[1:] > keys[:-1]))
        if not diffs_ok or int(keys[0]) <= self.last_key:
            raise ValueError("bulk-load keys must be strictly increasing")
        self.last_key = int(keys[-1])
        start = 0
        while start < len(keys):
            # top up the previous partially-filled leaf first
            if self.prev is not None and self.prev.count < self.fill:
                leaf = self.prev
            else:
                leaf = tree._alloc_page(_LEAF)
                if self.prev is not None:
                    self.prev.next_leaf = leaf.page_id
                    self.prev.dirty = True
                    tree._cache_put(self.prev)
                self.prev = leaf
                self.leaf_ids.append(leaf.page_id)
                self.first_keys.append(int(keys[start]))
            room = self.fill - leaf.count
            n = min(room, len(keys) - start)
            leaf.keys[leaf.count : leaf.count + n] = keys[start : start + n]
            leaf.records[leaf.count : leaf.count + n] = records[start : start + n]
            leaf.count += n
            leaf.dirty = True
            tree._cache_put(leaf)
            start += n
        self.count += len(keys)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        tree = self.tree
        if not self.leaf_ids:
            return
        level_ids, level_keys = self.leaf_ids, self.first_keys
        height = 1
        ifill = max(3, int(tree.internal_capacity * 0.9))
        while len(level_ids) > 1:
            next_ids, next_keys = [], []
            for start in range(0, len(level_ids), ifill):
                ids = level_ids[start : start + ifill]
                ks = level_keys[start : start + ifill]
                node = tree._alloc_page(_INTERNAL)
                node.count = len(ids) - 1
                node.children[: len(ids)] = ids
                node.keys[: node.count] = ks[1:]
                node.dirty = True
                tree._cache_put(node)
                next_ids.append(node.page_id)
                next_keys.append(ks[0])
            level_ids, level_keys = next_ids, next_keys
            height += 1
        tree._root = level_ids[0]
        tree.height = height
        tree._nitems = self.count
        tree._write_header()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
