"""Typed octant databases on top of the B-tree.

An :class:`EtreeDatabase` maps packed octant keys (Morton code + level)
to records of a fixed numpy structured dtype.  This is the "etree"
abstraction an application links against: it manipulates an octree mesh
stored on disk while the library performs the indexing and caching.
"""

from __future__ import annotations

import numpy as np

from repro.etree.btree import BTree

#: Default payload for material octants produced by the construct step:
#: seismic velocities and density queried from the material model.
OctantRecord = np.dtype(
    [("vs", "<f4"), ("vp", "<f4"), ("rho", "<f4"), ("flags", "<u4")]
)


class EtreeDatabase:
    """A B-tree of octants with structured-dtype records.

    Parameters
    ----------
    path:
        Backing file for the B-tree.
    dtype:
        Numpy structured dtype of the records.  Required when creating;
        when opening an existing database the dtype must match the
        stored record size.
    cache_pages, page_size:
        Passed through to :class:`repro.etree.btree.BTree`.
    """

    def __init__(
        self,
        path: str,
        dtype: np.dtype = OctantRecord,
        *,
        page_size: int = 4096,
        cache_pages: int = 256,
    ):
        self.dtype = np.dtype(dtype)
        self.btree = BTree(
            path,
            record_size=self.dtype.itemsize,
            page_size=page_size,
            cache_pages=cache_pages,
        )
        if self.btree.record_size != self.dtype.itemsize:
            raise ValueError(
                f"database at {path} stores {self.btree.record_size}-byte "
                f"records, dtype needs {self.dtype.itemsize}"
            )
        self.path = path

    # ------------------------------------------------------------ basic ops

    def __len__(self) -> int:
        return len(self.btree)

    def __contains__(self, key: int) -> bool:
        return int(key) in self.btree

    def insert(self, key: int, record) -> None:
        """Insert one record (anything convertible to the dtype)."""
        rec = np.asarray(record, dtype=self.dtype).reshape(())
        self.btree.insert(int(key), rec.tobytes())

    def get(self, key: int):
        """Return the record under ``key`` as a structured scalar, or None."""
        raw = self.btree.get(int(key))
        if raw is None:
            return None
        return np.frombuffer(raw, dtype=self.dtype)[0]

    def delete(self, key: int) -> bool:
        return self.btree.delete(int(key))

    def append_sorted(self, keys: np.ndarray, records: np.ndarray) -> None:
        """Bulk-load sorted octants into an empty database."""
        records = np.ascontiguousarray(records, dtype=self.dtype)
        self.btree.bulk_load(
            keys, records.view(np.uint8).reshape(len(records), self.dtype.itemsize)
        )

    def bulk_loader(self):
        """Streaming sorted loader; chunks must be globally sorted."""
        db = self

        class _TypedLoader:
            def __init__(self):
                self.loader = db.btree.bulk_loader()

            def append(self, keys, records):
                records = np.ascontiguousarray(records, dtype=db.dtype)
                self.loader.append(
                    keys,
                    records.view(np.uint8).reshape(
                        len(records), db.dtype.itemsize
                    ),
                )

            def close(self):
                self.loader.close()

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.close()

        return _TypedLoader()

    # --------------------------------------------------------------- scans

    def scan(self, lo: int = 0, hi: int = 2**64 - 1):
        """Yield ``(key, record)`` in Z-order for ``lo <= key < hi``."""
        for k, raw in self.btree.range_scan(lo, hi):
            yield k, np.frombuffer(raw, dtype=self.dtype)[0]

    def scan_arrays(
        self, lo: int = 0, hi: int = 2**64 - 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range scan materialized as ``(keys, records)`` arrays."""
        keys, recs = [], []
        for k, raw in self.btree.range_scan(lo, hi):
            keys.append(k)
            recs.append(raw)
        if not keys:
            return np.array([], dtype=np.uint64), np.array([], dtype=self.dtype)
        return (
            np.array(keys, dtype=np.uint64),
            np.frombuffer(b"".join(recs), dtype=self.dtype),
        )

    def keys(self) -> np.ndarray:
        return self.btree.keys()

    # ------------------------------------------------------------- plumbing

    @property
    def io_stats(self) -> dict:
        """Disk traffic counters: pages read/written since open."""
        return {"page_reads": self.btree.reads, "page_writes": self.btree.writes}

    def flush(self) -> None:
        self.btree.flush()

    def close(self) -> None:
        self.btree.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
