"""Earthquake source models (paper Sections 2.1 and 3.1, Figure 3.1).

The seismic source is a set of body forces that equilibrate an induced
displacement dislocation on a fault plane.  Each fault point carries a
dislocation (slip) function ``g(t; T, t0)`` whose time derivative is a
hat (isosceles-triangle) function: zero before the delay time ``T``,
rising to full slip over the rise time ``t0``.  Analytic ``dg/dT`` and
``dg/dt0`` support the source inversion.
"""

from repro.sources.slip import slip_function, slip_rate, dslip_dT, dslip_dt0
from repro.sources.fault import (
    MomentTensorSource,
    double_couple_moment,
    nodal_forces_for_point_source,
)
from repro.sources.scenarios import (
    FiniteFaultScenario,
    idealized_northridge,
    idealized_strike_slip,
    moment_magnitude,
)

__all__ = [
    "slip_function",
    "slip_rate",
    "dslip_dT",
    "dslip_dt0",
    "MomentTensorSource",
    "double_couple_moment",
    "nodal_forces_for_point_source",
    "FiniteFaultScenario",
    "idealized_northridge",
    "idealized_strike_slip",
    "moment_magnitude",
]
