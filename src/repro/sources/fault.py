"""Fault dislocations as equivalent body forces.

A displacement dislocation of slip ``u0`` in direction ``s`` on a fault
patch of area ``A`` with normal ``n`` in a medium of rigidity ``mu`` is
equivalent to the double-couple moment tensor

    ``M = mu A u0 (s n^T + n s^T)``.

The equivalent body force is ``f = -div(M g(t) delta(x - xs))``; its
Galerkin discretization gives the nodal forces

    ``b_{(i,a)}(t) = sum_b M_ab dN_i/dx_b (xs) g(t)``

evaluated in the element containing the source point (Aki & Richards
Ch. 3; this is the paper's "body forces that equilibrate an induced
displacement dislocation on the fault plane").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fem.shape import shape_gradients
from repro.mesh.hexmesh import HexMesh
from repro.octree.linear_octree import LinearOctree
from repro.sources.slip import slip_function


def double_couple_moment(
    strike_deg: float, dip_deg: float, rake_deg: float, moment: float
) -> np.ndarray:
    """Moment tensor of a shear dislocation from fault angles.

    Conventions: x = east, y = north, z = **down** (matching the mesh).
    ``moment = mu * A * u0`` (N m).
    """
    st, dp, rk = np.deg2rad([strike_deg, dip_deg, rake_deg])
    # fault normal and slip direction (Aki & Richards 4.88-4.89, adapted
    # to x east / y north / z down)
    n = np.array(
        [np.cos(st) * np.sin(dp), -np.sin(st) * np.sin(dp), -np.cos(dp)]
    )
    s = np.array(
        [
            np.sin(st) * np.cos(rk) - np.cos(st) * np.cos(dp) * np.sin(rk),
            np.cos(st) * np.cos(rk) + np.sin(st) * np.cos(dp) * np.sin(rk),
            -np.sin(dp) * np.sin(rk),
        ]
    )
    return moment * (np.outer(s, n) + np.outer(n, s))


@dataclass
class MomentTensorSource:
    """A point moment-tensor source with the paper's slip function.

    Attributes
    ----------
    position:
        Physical location (meters).
    moment:
        3x3 symmetric moment tensor (N m).
    T / t0:
        Delay time and rise time (seconds) of the dislocation function.
    """

    position: np.ndarray
    moment: np.ndarray
    T: float
    t0: float

    def time_function(self, t):
        return slip_function(t, self.T, self.t0)

    def stencil(self, mesh: HexMesh, tree: LinearOctree):
        return nodal_forces_for_point_source(mesh, tree, self)


@dataclass
class PointForceSource:
    """A single body force ``F(t) e`` at a point (verification against
    the Stokes full-space solution).

    ``time_function`` returns the force magnitude (N); the force is
    distributed to the containing element's nodes by the trilinear
    shape functions.
    """

    position: np.ndarray
    direction: np.ndarray
    time_function: Callable[[np.ndarray], np.ndarray]

    def stencil(self, mesh: HexMesh, tree: LinearOctree):
        from repro.fem.shape import shape_functions
        from repro.octree.morton import MAX_COORD

        ticks = np.asarray(self.position) / mesh.L * MAX_COORD
        idx = tree.locate(np.floor(ticks).astype(np.int64)[None, :])
        e = int(idx[0])
        if e < 0:
            raise ValueError(f"source at {self.position} is outside the mesh")
        h = float(mesh.elem_h[e])
        anchor = mesh.elem_anchor[e] * (mesh.L / MAX_COORD)
        xi = (np.asarray(self.position) - anchor) / h
        N = shape_functions(xi[None, :], 3)[0]  # (8,)
        # consistent nodal load of a delta force: b_i = F N_i(xs)
        d = np.asarray(self.direction, dtype=float)
        d = d / np.linalg.norm(d)
        w = N[:, None] * d[None, :]
        return mesh.conn[e], w


def nodal_forces_for_point_source(
    mesh: HexMesh, tree: LinearOctree, src: MomentTensorSource
) -> tuple[np.ndarray, np.ndarray]:
    """Spatial stencil of a point source: ``(nodes, weights)``.

    ``weights`` has shape ``(8, 3)``: the time-independent nodal force
    pattern; the force at time ``t`` is ``weights * g(t)``.
    """
    from repro.octree.morton import MAX_COORD

    ticks = np.asarray(src.position) / mesh.L * MAX_COORD
    idx = tree.locate(np.floor(ticks).astype(np.int64)[None, :])
    e = int(idx[0])
    if e < 0:
        raise ValueError(f"source at {src.position} is outside the mesh")
    h = float(mesh.elem_h[e])
    anchor = mesh.elem_anchor[e] * (mesh.L / MAX_COORD)
    xi = (np.asarray(src.position) - anchor) / h
    g = shape_gradients(xi[None, :], 3)[0] / h  # (8, 3) physical grads
    # b[(i,a)] = sum_b M_ab dN_i/dx_b
    w = g @ np.asarray(src.moment).T  # (8, 3): w[i, a]
    return mesh.conn[e], w


class SourceCollection:
    """Set of point sources with a fast combined time evaluation."""

    def __init__(self, mesh: HexMesh, tree: LinearOctree, sources: list):
        self.sources = list(sources)
        self.nodes = []
        self.weights = []
        for s in self.sources:
            n, w = s.stencil(mesh, tree)
            self.nodes.append(n)
            self.weights.append(w)
        self._nodes_flat = np.concatenate(
            [np.asarray(n) for n in self.nodes]
        ) if self.sources else np.zeros(0, dtype=np.int64)
        self.nnode = mesh.nnode

    def forces_at(self, t: float, out: np.ndarray | None = None) -> np.ndarray:
        """Nodal force field ``(nnode, 3)`` at time ``t``."""
        if out is None:
            out = np.zeros((self.nnode, 3))
        else:
            out[:] = 0.0
        for s, n, w in zip(self.sources, self.nodes, self.weights):
            out_nodes = w * float(s.time_function(t))
            np.add.at(out, n, out_nodes)
        return out
