"""Dislocation (slip) time functions — paper Figure 3.1.

``g(t; T, t0)`` rises from 0 to 1 starting at the delay time ``T`` over
the rise time ``t0``; its derivative is an isosceles triangle of base
``t0`` (peak ``2/t0``, unit area).  Piecewise:

    tau = t - T
    g = 0                          for tau <= 0
    g = 2 tau^2 / t0^2             for 0 <= tau <= t0/2
    g = 1 - 2 (t0 - tau)^2 / t0^2  for t0/2 <= tau <= t0
    g = 1                          for tau >= t0

All functions broadcast over ``t``, ``T`` and ``t0`` and are exact
(including the analytic parameter derivatives used by the source
inversion adjoint).
"""

from __future__ import annotations

import numpy as np


def _tau(t, T):
    return np.asarray(t, dtype=float) - np.asarray(T, dtype=float)


def slip_function(t, T, t0):
    """Normalized slip ``g(t; T, t0)`` in [0, 1]."""
    tau = _tau(t, T)
    t0 = np.asarray(t0, dtype=float)
    first = 2.0 * tau**2 / t0**2
    second = 1.0 - 2.0 * (t0 - tau) ** 2 / t0**2
    g = np.where(tau <= 0, 0.0, np.where(tau <= t0 / 2, first,
                 np.where(tau <= t0, second, 1.0)))
    return g


def slip_rate(t, T, t0):
    """``dg/dt``: the isosceles-triangle slip velocity (unit area)."""
    tau = _tau(t, T)
    t0 = np.asarray(t0, dtype=float)
    up = 4.0 * tau / t0**2
    down = 4.0 * (t0 - tau) / t0**2
    return np.where(
        (tau <= 0) | (tau >= t0), 0.0, np.where(tau <= t0 / 2, up, down)
    )


def dslip_dT(t, T, t0):
    """``dg/dT = -dg/dt`` (shifting the onset later delays the slip)."""
    return -slip_rate(t, T, t0)


def dslip_dt0(t, T, t0):
    """``dg/dt0``, analytic.

    For ``0 < tau < t0/2``:  ``-4 tau^2 / t0^3``;
    for ``t0/2 < tau < t0``: ``-4 (t0 - tau)/t0^2 + 4 (t0-tau)^2/t0^3``;
    zero otherwise.
    """
    tau = _tau(t, T)
    t0 = np.asarray(t0, dtype=float)
    first = -4.0 * tau**2 / t0**3
    second = -4.0 * (t0 - tau) / t0**2 + 4.0 * (t0 - tau) ** 2 / t0**3
    return np.where(
        (tau <= 0) | (tau >= t0), 0.0, np.where(tau <= t0 / 2, first, second)
    )
