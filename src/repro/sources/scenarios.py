"""Earthquake scenarios: finite faults discretized into point sources.

:func:`idealized_northridge` builds an idealized model of the 1994
Northridge earthquake in the spirit of the paper's simulations: a buried
thrust fault plane, uniform slip, constant rupture velocity from the
hypocenter (so the delay time of each subfault is its hypocentral
distance over the rupture speed).  :func:`idealized_strike_slip` is the
extended vertical strike-slip fault of the verification study (Figure
2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sources.fault import MomentTensorSource, double_couple_moment


def moment_magnitude(m0: float) -> float:
    """Moment magnitude ``Mw = (2/3) (log10 M0 - 9.1)`` (M0 in N m)."""
    if m0 <= 0:
        raise ValueError("seismic moment must be positive")
    return (2.0 / 3.0) * (np.log10(m0) - 9.1)


@dataclass
class FiniteFaultScenario:
    """A fault plane rasterized into moment-tensor point sources."""

    sources: list
    hypocenter: np.ndarray
    total_moment: float
    strike_deg: float
    dip_deg: float
    rake_deg: float

    @property
    def n_subfaults(self) -> int:
        return len(self.sources)

    @property
    def magnitude(self) -> float:
        """Moment magnitude of the full rupture."""
        return moment_magnitude(self.total_moment)

    def duration(self) -> float:
        """Time by which all subfaults have finished slipping."""
        return max(s.T + s.t0 for s in self.sources)


def _plane_grid(
    origin: np.ndarray,
    along_strike: np.ndarray,
    along_dip: np.ndarray,
    length: float,
    width: float,
    n_strike: int,
    n_dip: int,
) -> np.ndarray:
    """Centers of an n_strike x n_dip subfault grid on the plane."""
    us = (np.arange(n_strike) + 0.5) / n_strike * length
    ud = (np.arange(n_dip) + 0.5) / n_dip * width
    US, UD = np.meshgrid(us, ud, indexing="ij")
    return (
        origin[None, :]
        + US.ravel()[:, None] * along_strike[None, :]
        + UD.ravel()[:, None] * along_dip[None, :]
    )


def _build_scenario(
    *,
    origin,
    strike_deg,
    dip_deg,
    rake_deg,
    length,
    width,
    n_strike,
    n_dip,
    hypocenter,
    rupture_velocity,
    slip,
    rise_time,
    mu,
) -> FiniteFaultScenario:
    st = np.deg2rad(strike_deg)
    dp = np.deg2rad(dip_deg)
    # strike direction in (x east, y north, z down)
    e_strike = np.array([np.sin(st), np.cos(st), 0.0])
    # down-dip direction
    e_dip = np.array(
        [np.cos(st) * np.cos(dp), -np.sin(st) * np.cos(dp), np.sin(dp)]
    )
    centers = _plane_grid(
        np.asarray(origin, dtype=float),
        e_strike,
        e_dip,
        length,
        width,
        n_strike,
        n_dip,
    )
    sub_area = (length / n_strike) * (width / n_dip)
    sub_moment = mu * sub_area * slip
    hyp = np.asarray(hypocenter, dtype=float)
    sources = []
    for c in centers:
        T = float(np.linalg.norm(c - hyp) / rupture_velocity)
        M = double_couple_moment(strike_deg, dip_deg, rake_deg, sub_moment)
        sources.append(
            MomentTensorSource(position=c, moment=M, T=T, t0=rise_time)
        )
    return FiniteFaultScenario(
        sources=sources,
        hypocenter=hyp,
        total_moment=sub_moment * len(sources),
        strike_deg=strike_deg,
        dip_deg=dip_deg,
        rake_deg=rake_deg,
    )


def idealized_northridge(
    *,
    L: float = 80_000.0,
    scale: float = 1.0,
    n_strike: int = 6,
    n_dip: int = 4,
    rise_time: float = 1.0,
    slip: float = 1.5,
    mu: float = 3.0e10,
    hypo_strike_frac: float = 0.15,
    hypo_dip_frac: float = 0.85,
) -> FiniteFaultScenario:
    """Idealized 1994 Northridge source: a blind thrust.

    Geometry loosely follows the published solutions (strike ~122, dip
    ~40 to the SSW, rake ~101 — nearly pure thrust), scaled into a model
    box of horizontal extent ``L``.  ``scale`` shrinks the fault for
    reduced-resolution runs; the hypocenter sits deep and near one end
    of the plane (fractions along strike/dip), so rupture propagates
    up-dip and along strike — the directivity Figure 2.5 shows.
    """
    length = 18_000.0 * (L / 80_000.0) * scale
    width = 21_000.0 * (L / 80_000.0) * scale
    strike, dip, rake = 122.0, 40.0, 101.0
    # top edge of the fault plane, buried
    origin = np.array([0.42 * L, 0.58 * L, 0.06 * L])
    st, dp = np.deg2rad(strike), np.deg2rad(dip)
    e_dip = np.array(
        [np.cos(st) * np.cos(dp), -np.sin(st) * np.cos(dp), np.sin(dp)]
    )
    e_strike = np.array([np.sin(st), np.cos(st), 0.0])
    hyp = (
        origin
        + hypo_strike_frac * length * e_strike
        + hypo_dip_frac * width * e_dip
    )
    return _build_scenario(
        origin=origin,
        strike_deg=strike,
        dip_deg=dip,
        rake_deg=rake,
        length=length,
        width=width,
        n_strike=n_strike,
        n_dip=n_dip,
        hypocenter=hyp,
        rupture_velocity=2800.0,
        slip=slip,
        rise_time=rise_time,
        mu=mu,
    )


def idealized_strike_slip(
    *,
    L: float = 80_000.0,
    depth_top: float | None = None,
    length: float | None = None,
    width: float | None = None,
    n_strike: int = 8,
    n_dip: int = 3,
    rise_time: float = 1.0,
    slip: float = 1.0,
    mu: float = 3.0e10,
) -> FiniteFaultScenario:
    """Extended vertical strike-slip fault (verification study, Fig 2.2)."""
    length = length if length is not None else 0.3 * L
    width = width if width is not None else 0.1 * L
    depth_top = depth_top if depth_top is not None else 0.02 * L
    origin = np.array([0.5 * L - length / 2.0, 0.5 * L, depth_top])
    hyp = origin + np.array([length / 2.0, 0.0, width / 2.0])
    return _build_scenario(
        origin=origin,
        strike_deg=90.0,  # fault along x
        dip_deg=90.0,
        rake_deg=0.0,
        length=length,
        width=width,
        n_strike=n_strike,
        n_dip=n_dip,
        hypocenter=hyp,
        rupture_velocity=2800.0,
        slip=slip,
        rise_time=rise_time,
        mu=mu,
    )
