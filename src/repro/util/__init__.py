"""Utilities: filtering, timing, flop accounting."""

from repro.util.filters import lowpass
from repro.util.timing import Timer
from repro.util.flops import FlopCounter

__all__ = ["lowpass", "Timer", "FlopCounter"]
