"""Wall-clock timing helpers.

``Timer`` is the one-shot stopwatch; ``Timer.accumulating()`` returns a
re-enterable variant that keeps a running total and entry count, for
timing a region inside a loop without pairing ``time.perf_counter()``
calls by hand.  For anything richer (nesting, counters, export) use
:func:`repro.telemetry.span` instead.
"""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self):
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0

    @staticmethod
    def accumulating() -> "AccumulatingTimer":
        """A re-enterable timer that accumulates ``total`` seconds and
        a ``count`` of entries across ``with`` blocks."""
        return AccumulatingTimer()


class AccumulatingTimer:
    """Re-enterable stopwatch: each ``with`` adds to ``total``/``count``.

    ``seconds`` holds the duration of the most recent entry, matching
    the plain :class:`Timer` attribute so the two are interchangeable
    in single-shot use.
    """

    __slots__ = ("_t0", "seconds", "total", "count")

    def __init__(self):
        self._t0 = 0.0
        self.seconds = 0.0
        self.total = 0.0
        self.count = 0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
        self.total += self.seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0
