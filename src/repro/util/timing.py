"""Wall-clock timing helper."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self):
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
