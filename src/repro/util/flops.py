"""Floating-point operation accounting.

The scalability study (Table 2.1) reports sustained flop rates; since
we run a numpy prototype, we *count* the arithmetic the algorithm
performs (exactly, from the operation shapes) and let the machine model
convert counts to AlphaServer wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlopCounter:
    """Accumulates floating point operations by category."""

    counts: dict = field(default_factory=dict)

    def add(self, category: str, flops: int) -> None:
        self.counts[category] = self.counts.get(category, 0) + int(flops)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "FlopCounter") -> None:
        for k, v in other.counts.items():
            self.add(k, v)
