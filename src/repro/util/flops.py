"""Floating-point operation accounting.

The scalability study (Table 2.1) reports sustained flop rates; since
we run a numpy prototype, we *count* the arithmetic the algorithm
performs (exactly, from the operation shapes) and let the machine model
convert counts to AlphaServer wall time.

The counting machinery now lives in :class:`repro.telemetry.metrics.
CategoryCounter`; :class:`FlopCounter` is kept as a back-compat alias
so existing solver attributes (``solver.flops``) and call sites keep
working unchanged.
"""

from __future__ import annotations

from repro.telemetry.metrics import CategoryCounter


class FlopCounter(CategoryCounter):
    """Accumulates floating point operations by category.

    Back-compat shim: identical surface (``counts`` dict, ``add``,
    ``total``, ``merge``) inherited from
    :class:`~repro.telemetry.metrics.CategoryCounter`.
    """
