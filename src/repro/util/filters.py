"""Zero-phase low-pass filtering for seismogram comparisons (Fig 2.4)."""

from __future__ import annotations

import numpy as np
from scipy import signal


def lowpass(
    x: np.ndarray, dt: float, f_cut: float, *, order: int = 4, axis: int = -1
) -> np.ndarray:
    """Zero-phase Butterworth low-pass at ``f_cut`` Hz.

    Applies :func:`scipy.signal.filtfilt` (forward-backward, so no phase
    shift — essential when comparing waveforms from different codes).
    """
    nyq = 0.5 / dt
    if not 0 < f_cut < nyq:
        raise ValueError(f"f_cut must lie in (0, {nyq}) Hz for dt={dt}")
    b, a = signal.butter(order, f_cut / nyq)
    return signal.filtfilt(b, a, np.asarray(x, dtype=float), axis=axis)
