"""Linear tetrahedral elastic elements (the paper's baseline code).

Gradients of linear shape functions are constant per element, so the
stiffness is ``V * B^T D B`` evaluated in closed form.  All routines are
vectorized over the whole element array.
"""

from __future__ import annotations

import numpy as np


def _tet_gradients(coords: np.ndarray, conn: np.ndarray):
    """Constant shape-function gradients and volumes.

    Returns ``(grads, vol)`` with ``grads`` of shape ``(ntet, 4, 3)``
    (``dN_i/dx_a``) and positive volumes ``(ntet,)``.
    """
    p = coords[conn]  # (ntet, 4, 3)
    e = p[:, 1:] - p[:, 0:1]  # (ntet, 3, 3) edge matrix rows
    det = np.linalg.det(e)
    vol = det / 6.0
    inv = np.linalg.inv(e)  # (ntet, 3, 3); columns map to N1..N3 grads
    g = np.empty((len(conn), 4, 3))
    g[:, 1:, :] = np.transpose(inv, (0, 2, 1))
    g[:, 0, :] = -g[:, 1:, :].sum(axis=1)
    return g, vol


def tet_elastic_stiffness(
    coords: np.ndarray, conn: np.ndarray, lam: np.ndarray, mu: np.ndarray
) -> np.ndarray:
    """Element stiffness matrices, shape ``(ntet, 12, 12)``.

    DOF ordering node-major: dof ``3 i + a``.  Entry
    ``K[(i,a),(j,b)] = V [ mu (delta_ab g_i.g_j + g_j[a] g_i[b]) + lambda g_i[a] g_j[b] ]``.
    """
    g, vol = _tet_gradients(coords, conn)
    if np.any(vol <= 0):
        raise ValueError("tetrahedral elements must be positively oriented")
    ntet = len(conn)
    K = np.zeros((ntet, 12, 12))
    gdot = np.einsum("eia,eja->eij", g, g)
    for a in range(3):
        for b in range(3):
            blk = mu[:, None, None] * np.einsum("ej,ei->eij", g[:, :, a], g[:, :, b])
            blk = blk + lam[:, None, None] * np.einsum(
                "ei,ej->eij", g[:, :, a], g[:, :, b]
            )
            if a == b:
                blk = blk + mu[:, None, None] * gdot
            K[:, a::3, b::3] = blk
    return K * vol[:, None, None]


def tet_lumped_mass(
    coords: np.ndarray, conn: np.ndarray, rho: np.ndarray, nnode: int
) -> np.ndarray:
    """Lumped nodal mass: each tet deposits ``rho V / 4`` per node.

    Returns a per-node scalar mass of length ``nnode`` (identical for
    all three displacement components).
    """
    _, vol = _tet_gradients(coords, conn)
    m = rho * vol / 4.0
    out = np.zeros(nnode)
    np.add.at(out, conn.ravel(), np.repeat(m, 4))
    return out
