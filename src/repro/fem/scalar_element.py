"""Dimension-generic scalar (anti-plane / acoustic) reference elements.

Used by the inverse problem (paper Section 3): bilinear quadrilaterals
for the 2D antiplane model and trilinear hexahedra for the 3D scalar
wave equation of Table 3.1.  On a regular grid of spacing ``h``:

* stiffness scales as ``mu * h**(d-2)``  (``int grad N . grad N``),
* mass scales as ``rho * h**d``          (``int N N``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.fem.shape import gauss_points_weights, shape_functions, shape_gradients


@lru_cache(maxsize=None)
def scalar_stiffness_reference(d: int) -> np.ndarray:
    """Unit-cube scalar stiffness ``int grad N_i . grad N_j`` of shape
    ``(2**d, 2**d)``.  The cached array is shared by every caller
    (backend kernels keep references), so it is frozen read-only."""
    pts, w = gauss_points_weights(d, n=2)
    g = shape_gradients(pts, d)
    K = np.einsum("q,qia,qja->ij", w, g, g)
    K.flags.writeable = False
    return K


@lru_cache(maxsize=None)
def scalar_stiffness_diag(d: int) -> np.ndarray:
    """Diagonal of :func:`scalar_stiffness_reference`, cached so hot
    paths (Jacobi scaling, diagonal preconditioners) never re-extract
    it per call."""
    diag = np.ascontiguousarray(np.diag(scalar_stiffness_reference(d)))
    diag.flags.writeable = False
    return diag


@lru_cache(maxsize=None)
def scalar_mass_reference(d: int) -> np.ndarray:
    """Unit-cube scalar consistent mass ``int N_i N_j``.  Shared and
    read-only, like the stiffness."""
    pts, w = gauss_points_weights(d, n=2)
    N = shape_functions(pts, d)
    M = np.einsum("q,qi,qj->ij", w, N, N)
    M.flags.writeable = False
    return M
