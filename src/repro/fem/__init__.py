"""Finite elements (paper Sections 2.1-2.2).

The key design point reproduced here: on an octree mesh **all element
stiffness matrices are identical modulo element size and material
properties**, so no global matrix is stored.  The reference 24x24
elastic matrices ``K = h (lambda K_l + mu K_m)`` are precomputed once;
the solver's matrix-vector product gathers element nodal values, applies
dense reference matrices to all elements at once, and scatters back —
"relegating the work that requires indirect addressing to vector
operations and recasting the majority of the work as local element-wise
dense matrix computations".

Also here: lumped mass, the linear tetrahedral baseline elements, the
dimension-generic scalar (bilinear quad / trilinear hex) elements used
by the inversion, and the least-squares Rayleigh damping fit.
"""

from repro.fem.shape import gauss_points_weights, shape_functions, shape_gradients
from repro.fem.hex_element import (
    hex_elastic_reference,
    hex_lumped_mass_factor,
)
from repro.fem.scalar_element import (
    scalar_mass_reference,
    scalar_stiffness_diag,
    scalar_stiffness_reference,
)
from repro.fem.tet_element import tet_elastic_stiffness, tet_lumped_mass
from repro.fem.damping import rayleigh_coefficients
from repro.fem.assembly import ElasticOperator, assemble_csr

__all__ = [
    "gauss_points_weights",
    "shape_functions",
    "shape_gradients",
    "hex_elastic_reference",
    "hex_lumped_mass_factor",
    "scalar_stiffness_reference",
    "scalar_stiffness_diag",
    "scalar_mass_reference",
    "tet_elastic_stiffness",
    "tet_lumped_mass",
    "rayleigh_coefficients",
    "ElasticOperator",
    "assemble_csr",
]
