"""Assembly-free element-based operators (paper Section 2).

:class:`ElasticOperator` implements the hexahedral stiffness action the
way the paper's solver does: gather nodal values per element (the only
indirect addressing), apply the dense 24x24 reference matrices to *all*
elements at once as two large matrix-matrix products, scale by the
per-element material coefficients, and scatter-add.  No global matrix is
ever formed; memory is ~2 floats per element plus the connectivity.

:func:`assemble_csr` builds the equivalent scipy CSR matrix — the
baseline for the cache-friendliness ablation benchmark.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backend import get_backend
from repro.fem.hex_element import hex_elastic_reference, hex_lumped_mass_factor


class ElasticOperator:
    """Matrix-free stiffness operator ``K u`` on a hexahedral mesh.

    Parameters
    ----------
    conn:
        ``(nelem, 8)`` connectivity in Morton corner order.
    h:
        ``(nelem,)`` physical element edge lengths (meters).
    lam, mu:
        ``(nelem,)`` Lamé moduli (Pa).
    nnode:
        Number of grid points; displacement vectors have shape
        ``(nnode, 3)``.
    """

    def __init__(
        self,
        conn: np.ndarray,
        h: np.ndarray,
        lam: np.ndarray,
        mu: np.ndarray,
        nnode: int,
        split_elems: int | None = None,
    ):
        self.conn = np.ascontiguousarray(conn, dtype=np.int64)
        self.nnode = int(nnode)
        self.nelem = len(conn)
        K_l, K_m = hex_elastic_reference()
        self.K_l = K_l
        self.K_m = K_m
        h = np.asarray(h, dtype=float)
        self.c_lam = np.asarray(lam, dtype=float) * h
        self.c_mu = np.asarray(mu, dtype=float) * h
        # flattened dof scatter indices: element dof (i, a) -> 3*node + a
        dof = (self.conn[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
            self.nelem, 24
        )
        self._dof_flat = dof.ravel()
        self._ndof = 3 * self.nnode
        # fused gather/apply/scatter kernel from the active backend; the
        # material coefficients are fixed, so they fold into the scatter
        self._kernel = get_backend().element_kernel(
            self.conn, (K_l, K_m), self.nnode, ncomp=3,
            coefs=(self.c_lam, self.c_mu),
        )
        self.split_elems = split_elems
        if split_elems is not None:
            self._kernel.set_split(split_elems)

    def _flat(self, u: np.ndarray, what: str) -> np.ndarray:
        """Flat dof view of a ``(nnode, 3)`` field.  The kernels index
        the flat vector, so the input must be C-contiguous — asserted
        here rather than silently copied (the old
        ``np.ascontiguousarray`` hid a full-field copy on every call
        for strided inputs; all solver hot loops own contiguous
        buffers, so a strided input is a caller bug, not a tax)."""
        if u.shape != (self.nnode, 3):
            raise ValueError(
                f"{what} must be ({self.nnode}, 3), got {u.shape}"
            )
        if not u.flags.c_contiguous:
            raise ValueError(
                f"{what} must be C-contiguous (got a strided view; copy "
                "it once outside the time loop instead)"
            )
        return u.reshape(-1)

    def matvec(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply the stiffness: ``u`` is ``(nnode, 3)``; returns same.

        Pass a preallocated C-contiguous ``out`` to make the call
        allocation-free (the solvers' hot loops do)."""
        if out is None:
            out = np.empty((self.nnode, 3))
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        self._kernel.matvec(self._flat(u, "u"), out.reshape(-1))
        return out

    def matmat(self, U: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched stiffness: ``U`` is ``(nnode, 3, B)`` — ``B``
        scenario columns advanced by one level-3 kernel application.
        Column ``b`` equals ``matvec(U[:, :, b])`` bit for bit."""
        if U.ndim != 3 or U.shape[:2] != (self.nnode, 3):
            raise ValueError(
                f"U must be ({self.nnode}, 3, B), got {U.shape}"
            )
        if not U.flags.c_contiguous:
            raise ValueError("U must be C-contiguous")
        if out is None:
            out = np.empty(U.shape)
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        B = U.shape[2]
        self._kernel.matmat(
            U.reshape(self._ndof, B), out.reshape(self._ndof, B)
        )
        return out

    def matmat_interface(self, U: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Phase 1 of the overlapped batched apply (requires
        ``split_elems``): interface elements only, all columns."""
        B = U.shape[2]
        self._kernel.matmat_interface(
            U.reshape(self._ndof, B), out.reshape(self._ndof, B)
        )
        return out

    def matmat_interior_acc(self, U: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Phase 2 of the overlapped batched apply: interior elements
        accumulated into every column."""
        B = U.shape[2]
        self._kernel.matmat_interior(
            U.reshape(self._ndof, B), out.reshape(self._ndof, B)
        )
        return out

    def matvec_interface(self, u: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Phase 1 of the overlapped stiffness application (requires
        ``split_elems``): zero ``out`` and apply only the leading
        interface elements, so boundary partial sums are complete and
        can be shipped while :meth:`matvec_interior_acc` runs."""
        self._kernel.matvec_interface(self._flat(u, "u"), out.reshape(-1))
        return out

    def matvec_interior_acc(self, u: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Phase 2: accumulate the interior elements into ``out``.
        ``matvec_interface`` + ``matvec_interior_acc`` equals a single
        :meth:`matvec` to roundoff and is bit-reproducible across
        runs and processes."""
        self._kernel.matvec_interior(self._flat(u, "u"), out.reshape(-1))
        return out

    def diagonal(self, out: np.ndarray | None = None) -> np.ndarray:
        """Diagonal of the assembled stiffness, shape ``(nnode, 3)``."""
        if out is None:
            out = np.empty((self.nnode, 3))
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        self._kernel.diagonal(out.reshape(-1))
        return out

    def workspace_bytes(self) -> int:
        """Bytes held by the kernel's precomputed plan and buffers."""
        return self._kernel.workspace_bytes()

    def fold_cache_info(self) -> dict | None:
        """Keyed fold-cache counters of the underlying kernel (None
        when the backend kernel has no coefficient cache, e.g. the
        per-element-matrix tet baseline)."""
        info = getattr(self._kernel, "fold_cache_info", None)
        return info() if info is not None else None

    @property
    def flops_per_matvec(self) -> int:
        """Floating point operations per stiffness application, the
        count the scalability benchmark feeds the machine model.
        Delegated to the kernel (two dense ``(nelem, 24) @ (24, 24)``
        products + coefficient scalings + scatter — the kernel's
        general formula reduces to exactly
        ``nelem * (2*2*24*24 + 2*24 + 24)`` here)."""
        return self._kernel.flops_per_matvec

    def flops_per_matmat(self, width: int) -> int:
        """Flop count of one batched (``width``-column) application —
        the kernel's own accounting, so it cannot drift from the
        1-RHS count."""
        return self._kernel.flops_per_matmat(width)


def lumped_mass(
    conn: np.ndarray, h: np.ndarray, rho: np.ndarray, nnode: int
) -> np.ndarray:
    """Lumped (row-sum) mass vector: each hex deposits ``rho h^3 / 8``
    at each corner.  Returns shape ``(nnode,)``."""
    m = np.asarray(rho, dtype=float) * np.asarray(h, dtype=float) ** 3
    m = m * hex_lumped_mass_factor()
    out = np.bincount(
        np.asarray(conn).ravel(), weights=np.repeat(m, 8), minlength=nnode
    )
    return out


def assemble_csr(
    conn: np.ndarray, h: np.ndarray, lam: np.ndarray, mu: np.ndarray, nnode: int
) -> sp.csr_matrix:
    """Explicitly assembled global stiffness (ablation baseline).

    Memory scales with the number of stored nonzeros (~81 * 9 per row),
    roughly an order of magnitude above the matrix-free operator —
    reproducing the paper's motivation for the element-based design.
    """
    K_l, K_m = hex_elastic_reference()
    nelem = len(conn)
    h = np.asarray(h, dtype=float)
    Ke = (
        (np.asarray(lam) * h)[:, None, None] * K_l[None]
        + (np.asarray(mu) * h)[:, None, None] * K_m[None]
    )
    dof = (np.asarray(conn)[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
        nelem, 24
    )
    rows = np.repeat(dof, 24, axis=1).ravel()
    cols = np.tile(dof, (1, 24)).ravel()
    A = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(3 * nnode, 3 * nnode)
    ).tocsr()
    A.sum_duplicates()
    return A
