"""Assembly-free element-based operators (paper Section 2).

:class:`ElasticOperator` implements the hexahedral stiffness action the
way the paper's solver does: gather nodal values per element (the only
indirect addressing), apply the dense 24x24 reference matrices to *all*
elements at once as two large matrix-matrix products, scale by the
per-element material coefficients, and scatter-add.  No global matrix is
ever formed; memory is ~2 floats per element plus the connectivity.

:func:`assemble_csr` builds the equivalent scipy CSR matrix — the
baseline for the cache-friendliness ablation benchmark.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.hex_element import hex_elastic_reference, hex_lumped_mass_factor


class ElasticOperator:
    """Matrix-free stiffness operator ``K u`` on a hexahedral mesh.

    Parameters
    ----------
    conn:
        ``(nelem, 8)`` connectivity in Morton corner order.
    h:
        ``(nelem,)`` physical element edge lengths (meters).
    lam, mu:
        ``(nelem,)`` Lamé moduli (Pa).
    nnode:
        Number of grid points; displacement vectors have shape
        ``(nnode, 3)``.
    """

    def __init__(
        self,
        conn: np.ndarray,
        h: np.ndarray,
        lam: np.ndarray,
        mu: np.ndarray,
        nnode: int,
    ):
        self.conn = np.ascontiguousarray(conn, dtype=np.int64)
        self.nnode = int(nnode)
        self.nelem = len(conn)
        K_l, K_m = hex_elastic_reference()
        self.K_l = K_l
        self.K_m = K_m
        h = np.asarray(h, dtype=float)
        self.c_lam = np.asarray(lam, dtype=float) * h
        self.c_mu = np.asarray(mu, dtype=float) * h
        # flattened dof scatter indices: element dof (i, a) -> 3*node + a
        dof = (self.conn[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
            self.nelem, 24
        )
        self._dof_flat = dof.ravel()
        self._ndof = 3 * self.nnode

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Apply the stiffness: ``u`` is ``(nnode, 3)``; returns same."""
        U = u.reshape(self.nnode, 3)[self.conn].reshape(self.nelem, 24)
        Y = (U @ self.K_l.T) * self.c_lam[:, None]
        Y += (U @ self.K_m.T) * self.c_mu[:, None]
        out = np.bincount(self._dof_flat, weights=Y.ravel(), minlength=self._ndof)
        return out.reshape(self.nnode, 3)

    def diagonal(self) -> np.ndarray:
        """Diagonal of the assembled stiffness, shape ``(nnode, 3)``."""
        d_l = np.diag(self.K_l)
        d_m = np.diag(self.K_m)
        D = self.c_lam[:, None] * d_l[None, :] + self.c_mu[:, None] * d_m[None, :]
        out = np.bincount(self._dof_flat, weights=D.ravel(), minlength=self._ndof)
        return out.reshape(self.nnode, 3)

    @property
    def flops_per_matvec(self) -> int:
        """Floating point operations per stiffness application, the
        count the scalability benchmark feeds the machine model."""
        # two dense (nelem x 24) @ (24 x 24) products + scalings + scatter
        return self.nelem * (2 * 2 * 24 * 24 + 2 * 24 + 24)


def lumped_mass(
    conn: np.ndarray, h: np.ndarray, rho: np.ndarray, nnode: int
) -> np.ndarray:
    """Lumped (row-sum) mass vector: each hex deposits ``rho h^3 / 8``
    at each corner.  Returns shape ``(nnode,)``."""
    m = np.asarray(rho, dtype=float) * np.asarray(h, dtype=float) ** 3
    m = m * hex_lumped_mass_factor()
    out = np.bincount(
        np.asarray(conn).ravel(), weights=np.repeat(m, 8), minlength=nnode
    )
    return out


def assemble_csr(
    conn: np.ndarray, h: np.ndarray, lam: np.ndarray, mu: np.ndarray, nnode: int
) -> sp.csr_matrix:
    """Explicitly assembled global stiffness (ablation baseline).

    Memory scales with the number of stored nonzeros (~81 * 9 per row),
    roughly an order of magnitude above the matrix-free operator —
    reproducing the paper's motivation for the element-based design.
    """
    K_l, K_m = hex_elastic_reference()
    nelem = len(conn)
    h = np.asarray(h, dtype=float)
    Ke = (
        (np.asarray(lam) * h)[:, None, None] * K_l[None]
        + (np.asarray(mu) * h)[:, None, None] * K_m[None]
    )
    dof = (np.asarray(conn)[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
        nelem, 24
    )
    rows = np.repeat(dof, 24, axis=1).ravel()
    cols = np.tile(dof, (1, 24)).ravel()
    A = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(3 * nnode, 3 * nnode)
    ).tocsr()
    A.sum_duplicates()
    return A
