"""Tensor-product linear shape functions and Gauss quadrature.

Local coordinates live on the unit cube ``[0, 1]^d``; local node ``k``
sits at corner ``((k >> a) & 1 for axis a)`` — the same Morton corner
order the mesh uses.  All routines are dimension-generic (d = 1, 2, 3).
"""

from __future__ import annotations

import numpy as np


def gauss_points_weights(d: int, n: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Tensor-product Gauss-Legendre rule on ``[0, 1]^d``.

    Returns ``(points, weights)`` of shapes ``(n**d, d)`` and
    ``(n**d,)``; exact for polynomials of degree ``2n - 1`` per axis.
    """
    x1, w1 = np.polynomial.legendre.leggauss(n)
    x1 = 0.5 * (x1 + 1.0)  # map [-1,1] -> [0,1]
    w1 = 0.5 * w1
    grids = np.meshgrid(*([x1] * d), indexing="ij")
    pts = np.stack([g.ravel() for g in grids], axis=1)
    wgrids = np.meshgrid(*([w1] * d), indexing="ij")
    w = np.ones(n**d)
    for g in wgrids:
        w = w * g.ravel()
    return pts, w


def shape_functions(xi: np.ndarray, d: int) -> np.ndarray:
    """Evaluate the ``2**d`` multilinear shape functions at points
    ``xi`` of shape ``(npts, d)``; returns ``(npts, 2**d)``."""
    xi = np.atleast_2d(xi)
    npts = xi.shape[0]
    nn = 1 << d
    out = np.ones((npts, nn))
    for k in range(nn):
        for a in range(d):
            t = xi[:, a]
            out[:, k] = out[:, k] * (t if (k >> a) & 1 else 1.0 - t)
    return out


def shape_gradients(xi: np.ndarray, d: int) -> np.ndarray:
    """Gradients of the multilinear shape functions.

    Returns ``(npts, 2**d, d)`` with entry ``[p, k, a] = dN_k/dxi_a``.
    """
    xi = np.atleast_2d(xi)
    npts = xi.shape[0]
    nn = 1 << d
    out = np.ones((npts, nn, d))
    for k in range(nn):
        for a in range(d):
            for b in range(d):
                t = xi[:, b]
                if b == a:
                    fac = np.where((k >> b) & 1, 1.0, -1.0)
                else:
                    fac = t if (k >> b) & 1 else 1.0 - t
                out[:, k, a] = out[:, k, a] * fac
    return out
