"""Reference trilinear hexahedral elastic element.

For a cube element of edge ``h`` and Lamé moduli ``(lambda, mu)`` the
element stiffness is

    ``K_e = h * (lambda * K_LAMBDA + mu * K_MU)``

with two 24x24 reference matrices computed once on the unit cube — this
is the paper's "all element stiffness matrices are the same modulo
element size and material properties", the property that removes all
matrix storage from the solver.

DOF ordering is node-major: dof ``3 i + a`` is component ``a`` of local
node ``i`` (Morton corner order).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.fem.shape import gauss_points_weights, shape_gradients


@lru_cache(maxsize=None)
def hex_elastic_reference() -> tuple[np.ndarray, np.ndarray]:
    """Return ``(K_LAMBDA, K_MU)``, the unit-cube reference matrices.

    Entries (2x2x2 Gauss, exact for these integrands):

    ``K_MU[(i,a),(j,b)]     = int mu-part     = delta_ab grad N_i . grad N_j + dN_j/dx_a dN_i/dx_b``
    ``K_LAMBDA[(i,a),(j,b)] = dN_i/dx_a dN_j/dx_b``
    """
    pts, w = gauss_points_weights(3, n=2)
    g = shape_gradients(pts, 3)  # (nq, 8, 3)
    K_l = np.zeros((24, 24))
    K_m = np.zeros((24, 24))
    # grad-dot term: (nq, 8, 8)
    graddot = np.einsum("qia,qja->qij", g, g)
    for a in range(3):
        for b in range(3):
            # int dN_i/dx_a dN_j/dx_b
            gab = np.einsum("q,qi,qj->ij", w, g[:, :, a], g[:, :, b])
            K_l[a::3, b::3] = gab
            K_m[a::3, b::3] = gab.T  # dN_j/dx_a dN_i/dx_b
            if a == b:
                K_m[a::3, b::3] += np.einsum("q,qij->ij", w, graddot)
    # symmetry check by construction
    return K_l, K_m


def hex_lumped_mass_factor() -> float:
    """Lumped (row-sum) mass per node of a unit-density unit cube:
    ``rho h^3 / 8`` per node per component."""
    return 1.0 / 8.0


def hex_element_stiffness(h: float, lam: float, mu: float) -> np.ndarray:
    """Dense 24x24 element stiffness for a cube of edge ``h``."""
    K_l, K_m = hex_elastic_reference()
    return h * (lam * K_l + mu * K_m)


def hex_consistent_mass_reference() -> np.ndarray:
    """Unit-cube scalar consistent mass ``int N_i N_j`` (8x8); the
    vector-valued mass is block-diagonal per component."""
    from repro.fem.shape import shape_functions

    pts, w = gauss_points_weights(3, n=2)
    N = shape_functions(pts, 3)
    return np.einsum("q,qi,qj->ij", w, N, N)
