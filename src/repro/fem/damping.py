"""Rayleigh damping coefficients (paper Section 2.2).

Material attenuation is modeled by elementwise Rayleigh damping
``alpha M + beta K``, whose modal damping ratio is

    ``xi(omega) = alpha / (2 omega) + beta omega / 2``.

Since this grows both inversely and linearly with frequency, the paper
chooses ``(alpha, beta)`` per element as the least-squares fit to a
constant target ratio dictated by the local soil type, over the band of
resolved frequencies.  We solve the 2x2 normal equations of

    ``min int_{w1}^{w2} (alpha/(2w) + beta w/2 - xi)^2 dw``

in closed form.
"""

from __future__ import annotations

import numpy as np


def rayleigh_coefficients(
    xi_target: np.ndarray, f_min: float, f_max: float
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares ``(alpha, beta)`` for target damping ratios.

    Parameters
    ----------
    xi_target:
        Target damping ratio(s), scalar or per-element array (e.g.
        larger for soft soils).
    f_min, f_max:
        Frequency band (Hz) over which the fit is performed; must
        satisfy ``0 < f_min < f_max``.

    Returns
    -------
    (alpha, beta) broadcasting like ``xi_target``; both non-negative
    for positive targets.
    """
    if not 0 < f_min < f_max:
        raise ValueError("need 0 < f_min < f_max")
    xi = np.asarray(xi_target, dtype=float)
    w1 = 2.0 * np.pi * f_min
    w2 = 2.0 * np.pi * f_max
    # basis phi1 = 1/(2w), phi2 = w/2 on [w1, w2]
    a11 = 0.25 * (1.0 / w1 - 1.0 / w2)  # int phi1^2 = int 1/(4w^2)
    a12 = 0.25 * (w2 - w1)  # int phi1 phi2 = int 1/4
    a22 = (w2**3 - w1**3) / 12.0  # int phi2^2 = int w^2/4
    b1 = 0.5 * np.log(w2 / w1)  # int phi1 (per unit xi)
    b2 = 0.25 * (w2**2 - w1**2)  # int phi2 (per unit xi)
    det = a11 * a22 - a12 * a12
    alpha = (a22 * b1 - a12 * b2) / det * xi
    beta = (a11 * b2 - a12 * b1) / det * xi
    return alpha, beta


def damping_ratio(alpha, beta, f):
    """Modal damping ratio of Rayleigh damping at frequency ``f`` (Hz)."""
    w = 2.0 * np.pi * np.asarray(f, dtype=float)
    return alpha / (2.0 * w) + beta * w / 2.0
