"""Service resilience policy: admission control, deadlines, bisection,
retry, and the circuit breaker.

The scheduler in front of the warm engine is where a production
service absorbs failure instead of amplifying it.  This module holds
the knobs (:class:`ServicePolicy`), the structured errors callers can
program against, and the :class:`CircuitBreaker` state machine:

* **Admission control** — a bounded queue depth sheds excess load
  with :class:`ShedError` at ``submit`` time, before any state is
  enqueued, so overload fails in microseconds instead of queueing
  into a multi-second solve.
* **Deadlines** — each request carries an absolute
  ``time.monotonic()`` deadline minted at ``submit``; the scheduler
  rejects expired requests at dispatch (before burning solver time)
  and again at demux (a result nobody is still waiting for is not a
  success), raising :class:`DeadlineExceeded`.
* **Poison isolation** — a batch member whose solve raises (NaN
  injection, malformed source, :class:`NumericalHealthError`) is
  located by bisection and failed alone with
  :class:`PoisonedRequestError`; its batchmates resolve normally.
* **Circuit breaker** — repeated *infrastructure* failures
  (:class:`~repro.parallel.transport.WorkerFailure` surviving the
  retry policy) trip the breaker open: queued and new requests
  fast-fail with :class:`CircuitOpenError` until a cooldown elapses,
  then a single probe batch half-opens it.

All errors derive from :class:`RuntimeError` so existing "keep
serving the rest" handlers in the drain loop catch them unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.resilience.recovery import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceeded",
    "PoisonedRequestError",
    "ServicePolicy",
    "ShedError",
]


class ShedError(RuntimeError):
    """Request rejected at submit: the queue is at capacity.

    Shedding is deliberate backpressure — the caller should retry
    against another replica or after a backoff, not treat this as a
    solver fault.  ``depth``/``limit`` record the queue state at
    rejection."""

    def __init__(self, detail: str, *, depth: int = 0, limit: int = 0):
        super().__init__(detail)
        self.depth = int(depth)
        self.limit = int(limit)


class DeadlineExceeded(RuntimeError):
    """Request expired before (or while) its batch ran.

    ``stage`` is ``"dispatch"`` when the request aged out in the
    queue (no solver time was spent on it) or ``"demux"`` when the
    batch finished after the deadline passed."""

    def __init__(
        self,
        detail: str,
        *,
        request_id: str | None = None,
        stage: str = "dispatch",
        overdue: float = 0.0,
    ):
        super().__init__(detail)
        self.request_id = request_id
        self.stage = stage
        self.overdue = float(overdue)


class PoisonedRequestError(RuntimeError):
    """This specific request made its solve raise.

    Minted by the scheduler's bisection after a batch failure has
    been narrowed to a single culprit; ``__cause__`` carries the
    original solver exception (e.g. a
    :class:`~repro.resilience.health.NumericalHealthError`)."""

    def __init__(
        self,
        detail: str,
        *,
        request_id: str | None = None,
        trace_id: str | None = None,
    ):
        super().__init__(detail)
        self.request_id = request_id
        self.trace_id = trace_id


class CircuitOpenError(RuntimeError):
    """Fast-fail: the breaker is open after repeated pool failures.

    ``retry_after`` is the seconds remaining until the breaker will
    admit a probe (0.0 when unknown)."""

    def __init__(self, detail: str, *, retry_after: float = 0.0):
        super().__init__(detail)
        self.retry_after = float(retry_after)


class CircuitBreaker:
    """Three-state breaker over the engine's worker pools.

    ``closed`` (normal) counts consecutive infrastructure failures;
    ``threshold`` of them opens the breaker.  While ``open``,
    :meth:`allow` answers False until ``cooldown`` seconds pass, at
    which point the breaker half-opens and admits exactly the next
    dispatch as a probe: success closes it, failure re-opens it (and
    restarts the cooldown).  Thread-safe — ``submit`` callers and the
    scheduler thread consult it concurrently.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        *,
        clock=time.monotonic,
    ):
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return "half_open"
            return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                self.cooldown - (self._clock() - self._opened_at), 0.0
            )

    def allow(self) -> bool:
        """May a request pass right now?  Transitions open →
        half_open once the cooldown has elapsed (the caller becomes
        the probe)."""
        with self._lock:
            if self._state != "open":
                return True
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = "half_open"
                telemetry.count("service.breaker.half_open")
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != "closed":
                telemetry.count("service.breaker.closed")
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> bool:
        """Note an infrastructure failure; returns True when this
        one tripped the breaker open (the caller should drain its
        queue with fast errors)."""
        with self._lock:
            if self._state == "half_open":
                # the probe failed: straight back to open
                self._state = "open"
                self._opened_at = self._clock()
                telemetry.count("service.breaker.opened")
                return True
            self._failures += 1
            if self._state == "closed" and self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = self._clock()
                telemetry.count("service.breaker.opened")
                return True
            return False


@dataclass
class ServicePolicy:
    """Resilience knobs for one :class:`~repro.service.scheduler
    .CoalescingScheduler` (and the serve drain loop built on it).

    The defaults arm poison bisection, retry, and the breaker but
    leave admission unbounded and requests deadline-free — the
    zero-configuration behavior every existing caller sees is
    unchanged on the success path.
    """

    #: queue-depth bound across all open windows; 0 = unbounded.
    max_queue_depth: int = 0
    #: default per-request deadline in seconds from submit; None =
    #: requests never expire.
    deadline: float | None = None
    #: bisect failing batches to isolate culprits (False fails the
    #: whole batch with the raw exception, the pre-policy behavior).
    bisect: bool = True
    #: backoff schedule for transient ``WorkerFailure`` retries;
    #: None disables retrying.
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: consecutive post-retry pool failures that open the breaker;
    #: 0 disables the breaker.
    breaker_threshold: int = 5
    #: seconds an open breaker waits before admitting a probe.
    breaker_cooldown: float = 30.0
    #: spool-drain attempts before a request is quarantined.
    max_attempts: int = 3

    def make_breaker(self) -> CircuitBreaker | None:
        if self.breaker_threshold <= 0:
            return None
        return CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
