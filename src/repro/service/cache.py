"""Content-addressed artifact cache for the simulation service.

Production hazard traffic overwhelmingly re-runs the *same basin* with
a *new source*: the octree mesh, hanging-node constraints, assembled
operators, folded coefficients, and scatter plans depend only on
``(material model, mesh spec, fmax, backend, dtype)`` — never on the
rupture.  This module gives those immutables a stable content address
(:func:`artifact_key`) and a two-tier store (:class:`ArtifactCache`):

* an **in-memory LRU** holding the most recently used constructed
  artifacts (capacity in entries — the artifacts themselves track
  their workspace bytes for telemetry);
* an optional **on-disk tier** using the durable-checkpoint idiom of
  :mod:`repro.solver.checkpoint`: magic + JSON header + CRC32 of the
  payload, written to a temp name and atomically renamed, so a torn
  write can never be half-loaded — a corrupt or truncated entry is
  rejected (:class:`CacheCorruptError`), removed, and rebuilt.

Keys are *content* addresses: :func:`fingerprint` canonicalizes any
spec object (dataclasses, dicts, ndarrays, scalars) into a stream fed
to blake2b, so two specs hash equal iff every field — including the
material model's arrays — is equal, and any perturbed field changes
the key.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import zlib
from collections import OrderedDict

import numpy as np

from repro import telemetry

MAGIC = b"RPROCART"
VERSION = 1


class CacheCorruptError(RuntimeError):
    """A disk-tier entry failed validation (bad magic, header, or CRC)."""


# ------------------------------------------------------- fingerprints


def _feed(h, obj) -> None:
    """Canonical recursive serialization of ``obj`` into hash ``h``.

    Type tags precede every value so containers cannot alias scalars
    (``[1]`` vs ``1``) and floats hash by exact repr (bitwise value,
    not display rounding).
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + float(obj).hex().encode())
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"Y" + obj)
    elif isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        h.update(b"A" + str(a.dtype).encode() + repr(a.shape).encode())
        h.update(a.tobytes())
    elif isinstance(obj, dict):
        h.update(b"D%d" % len(obj))
        for k in sorted(obj, key=repr):
            _feed(h, k)
            _feed(h, obj[k])
    elif isinstance(obj, (list, tuple)):
        h.update(b"L%d" % len(obj))
        for v in obj:
            _feed(h, v)
    elif hasattr(obj, "__dict__"):
        # material models et al.: identity is the class plus every
        # attribute (LayeredMaterial interfaces/vs/vp/rho arrays, a
        # SyntheticBasinModel's geometry, ...)
        h.update(b"O" + type(obj).__qualname__.encode())
        _feed(h, vars(obj))
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r}: add __dict__ "
            "state or pass a canonical (dict/array/scalar) description"
        )


def fingerprint(obj) -> str:
    """Stable hex content digest of an arbitrary spec object."""
    h = hashlib.blake2b(digest_size=20)
    _feed(h, obj)
    return h.hexdigest()


def artifact_key(**fields) -> str:
    """Content address of an artifact from its defining fields, e.g.
    ``artifact_key(material=model, L=..., fmax=..., backend="numpy",
    dtype="float64")``.  Field names participate in the hash, so
    reordering keyword arguments cannot change the key but renaming a
    field does."""
    return fingerprint(fields)


# --------------------------------------------------------- disk tier


def save_artifact(path: str, key: str, artifact) -> int:
    """Durably write ``artifact`` under content address ``key``:
    pickle payload framed by ``MAGIC`` + length-prefixed JSON header
    carrying the payload CRC32, written to ``path + ".tmp"`` and
    atomically renamed — readers see the old entry or the new one,
    never a torn write.  Returns the payload size in bytes."""
    payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "version": VERSION,
            "key": key,
            "nbytes": len(payload),
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        }
    ).encode()
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<Q", len(header)))
        f.write(header)
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return len(payload)


def load_artifact(path: str, key: str | None = None):
    """Load and validate a disk-tier entry; raises
    :class:`CacheCorruptError` on any framing, key, or CRC mismatch
    (the cache treats that as a miss and removes the entry)."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        raise CacheCorruptError(f"unreadable cache entry {path}: {e}")
    bio = io.BytesIO(blob)
    if bio.read(len(MAGIC)) != MAGIC:
        raise CacheCorruptError(f"bad magic in {path}")
    raw = bio.read(8)
    if len(raw) != 8:
        raise CacheCorruptError(f"truncated header length in {path}")
    (hlen,) = struct.unpack("<Q", raw)
    hraw = bio.read(hlen)
    if len(hraw) != hlen:
        raise CacheCorruptError(f"truncated header in {path}")
    try:
        header = json.loads(hraw.decode())
    except ValueError as e:
        raise CacheCorruptError(f"undecodable header in {path}: {e}")
    if header.get("version") != VERSION:
        raise CacheCorruptError(
            f"cache version {header.get('version')} != {VERSION} in {path}"
        )
    if key is not None and header.get("key") != key:
        raise CacheCorruptError(
            f"key mismatch in {path}: stored {header.get('key')!r}"
        )
    payload = bio.read()
    if len(payload) != header.get("nbytes"):
        raise CacheCorruptError(
            f"payload truncated in {path}: "
            f"{len(payload)} != {header.get('nbytes')}"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != header.get("crc32"):
        raise CacheCorruptError(f"payload CRC mismatch in {path}")
    return pickle.loads(payload)


# ---------------------------------------------------------- the cache


class ArtifactCache:
    """Two-tier content-addressed store of constructed artifacts.

    ``get``/``put``/``get_or_build`` address entries by the hex key of
    :func:`artifact_key`.  The memory tier is a ``capacity``-entry LRU
    of live objects; with ``disk_dir`` set, ``put`` also persists a
    CRC-framed pickle and a memory miss falls back to loading (and
    re-promoting) the disk entry.  All traffic is counted — exposed by
    :meth:`stats` and mirrored into the telemetry registry under
    ``service.cache.*`` when telemetry is enabled.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        disk_dir: str | None = None,
        persist: bool = True,
    ):
        if capacity < 1:
            raise ValueError("cache needs at least one slot")
        self.capacity = int(capacity)
        self.disk_dir = disk_dir
        self.persist = bool(persist)
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)
        self._mem: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.corrupt_rejections = 0
        self.bytes_written = 0
        self.build_seconds = 0.0

    def _path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"artifact-{key}.bin")

    def get(self, key: str):
        """The artifact at ``key`` or None; memory first, then disk."""
        hit = self._mem.get(key)
        if hit is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            telemetry.count("service.cache.hits")
            return hit
        if self.disk_dir is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    artifact = load_artifact(path, key)
                except CacheCorruptError:
                    # reject, remove, and rebuild — never serve a
                    # half-written or bit-rotted artifact
                    self.corrupt_rejections += 1
                    telemetry.count("service.cache.corrupt_rejections")
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                else:
                    self._insert(key, artifact)
                    self.hits += 1
                    self.disk_hits += 1
                    telemetry.count("service.cache.hits")
                    telemetry.count("service.cache.disk_hits")
                    return artifact
        self.misses += 1
        telemetry.count("service.cache.misses")
        return None

    def put(self, key: str, artifact) -> None:
        """Insert (or refresh) ``key``; persists to the disk tier when
        configured.  Unpicklable artifacts stay memory-only."""
        self._insert(key, artifact)
        if self.disk_dir is not None and self.persist:
            try:
                nbytes = save_artifact(self._path(key), key, artifact)
            except (pickle.PicklingError, TypeError, AttributeError):
                return
            self.bytes_written += nbytes
            telemetry.count("service.cache.bytes_written", nbytes)

    def get_or_build(self, key: str, build):
        """The memoization workhorse: returns the cached artifact or
        calls ``build()`` once, stores the result, and returns it.
        Build time is accumulated so hit/miss telemetry can report the
        seconds the cache saved."""
        artifact = self.get(key)
        if artifact is not None:
            return artifact
        import time

        with telemetry.span("service.build"):
            t0 = time.perf_counter()
            artifact = build()
            self.build_seconds += time.perf_counter() - t0
        self.put(key, artifact)
        return artifact

    def _insert(self, key: str, artifact) -> None:
        self._mem[key] = artifact
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)
            self.evictions += 1
            telemetry.count("service.cache.evictions")

    def __contains__(self, key: str) -> bool:
        return key in self._mem or (
            self.disk_dir is not None and os.path.exists(self._path(key))
        )

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier; ``disk=True`` also unlinks persisted
        entries."""
        self._mem.clear()
        if disk and self.disk_dir is not None:
            for name in os.listdir(self.disk_dir):
                if name.startswith("artifact-") and name.endswith(".bin"):
                    try:
                        os.remove(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass

    def stats(self) -> dict:
        total = self.hits + self.misses
        hit_rate = self.hits / total if total else 0.0
        # live gauge for the exporters (a ratio is a gauge, not a
        # counter: it moves both ways as traffic shifts)
        telemetry.gauge("service.cache.hit_ratio", hit_rate)
        return {
            "entries": len(self._mem),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": hit_rate,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "corrupt_rejections": self.corrupt_rejections,
            "bytes_written": self.bytes_written,
            "build_seconds": self.build_seconds,
        }

    # ------------------------------------------------- per-drain scope

    #: the counter fields a drain-scoped report subtracts
    COUNTER_FIELDS = (
        "hits", "misses", "disk_hits", "evictions",
        "corrupt_rejections", "bytes_written", "build_seconds",
    )

    def counters(self) -> dict:
        """The raw cumulative counters — take one before a drain and
        pass it to :meth:`stats_since` after, so repeated serve drains
        report per-drain (not lifetime) hit ratios."""
        return {f: getattr(self, f) for f in self.COUNTER_FIELDS}

    def stats_since(self, baseline: dict) -> dict:
        """Drain-scoped view: :meth:`stats` with every counter (and
        the hit rate) computed relative to a :meth:`counters`
        baseline.  Entries/capacity stay absolute — they describe the
        cache, not the drain."""
        s = self.stats()
        for f in self.COUNTER_FIELDS:
            s[f] = s[f] - baseline.get(f, 0)
        total = s["hits"] + s["misses"]
        s["hit_rate"] = s["hits"] / total if total else 0.0
        telemetry.gauge("service.cache.drain_hit_ratio", s["hit_rate"])
        return s
