"""Warm simulation engine: constructed solvers + persistent pools.

The engine is the stateful middle of the service: it owns an
:class:`~repro.service.cache.ArtifactCache` of constructed
:class:`~repro.core.simulation.ForwardSimulation` instances (octree,
mesh, constraints, assembled operators, scatter plans — everything a
rupture does *not* change) and a registry of persistent
:class:`~repro.parallel.ProcWorld` pools, so successive
:meth:`submit` calls skip straight to the time loop.

A request names its basin with a :class:`SimulationSpec` — a frozen
description whose :attr:`SimulationSpec.key` is the content address
used throughout the service.  Two requests with bitwise-equal specs
share one constructed simulation; any perturbed field (a material
array entry, ``fmax``, the backend) produces a different key and a
fresh build.  Warm runs are bit-identical to cold runs: the cache
stores the *constructed operators*, and the solver time loop is
deterministic given those operators and the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro import telemetry
from repro.service.cache import ArtifactCache, artifact_key

__all__ = ["SimulationSpec", "Engine"]


def _default_backend() -> str:
    from repro.backend import get_backend

    return get_backend().name


@dataclass(frozen=True)
class SimulationSpec:
    """Everything that determines the expensive immutables of a basin.

    Mirrors the :class:`~repro.core.simulation.ForwardSimulation`
    constructor; :attr:`key` is the stable content hash of every field
    (including the material model's arrays) plus the active compute
    backend and dtype, so a cache entry can never be served across a
    change that would alter the constructed operators.
    """

    material: object
    L: float
    fmax: float
    box_frac: tuple = (1.0, 1.0, 1.0)
    points_per_wavelength: float = 10.0
    max_level: int = 7
    h_min: float = 0.0
    damping_ratio: float = 0.0
    damping_band: tuple | None = None
    stacey_c1: bool = True
    cfl_safety: float = 0.5
    lts: int = 0
    backend: str | None = None
    dtype: str = "float64"

    @property
    def key(self) -> str:
        """Content address of this spec (hex digest)."""
        return artifact_key(
            kind="forward_simulation",
            material=self.material,
            L=float(self.L),
            fmax=float(self.fmax),
            box_frac=tuple(float(b) for b in self.box_frac),
            points_per_wavelength=float(self.points_per_wavelength),
            max_level=int(self.max_level),
            h_min=float(self.h_min),
            damping_ratio=float(self.damping_ratio),
            damping_band=None
            if self.damping_band is None
            else tuple(float(b) for b in self.damping_band),
            stacey_c1=bool(self.stacey_c1),
            cfl_safety=float(self.cfl_safety),
            lts=int(self.lts),
            backend=self.backend or _default_backend(),
            dtype=str(self.dtype),
        )

    def build(self):
        """Construct the simulation this spec describes (the expensive
        cold path the cache amortizes)."""
        from repro.core.simulation import ForwardSimulation

        return ForwardSimulation(
            self.material,
            L=self.L,
            fmax=self.fmax,
            box_frac=self.box_frac,
            points_per_wavelength=self.points_per_wavelength,
            max_level=self.max_level,
            h_min=self.h_min,
            damping_ratio=self.damping_ratio,
            damping_band=self.damping_band,
            stacey_c1=self.stacey_c1,
            cfl_safety=self.cfl_safety,
            lts=self.lts,
        )


class Engine:
    """Long-running simulation engine with warm state.

    Parameters
    ----------
    capacity:
        Memory-tier LRU slots for constructed simulations.
    disk_dir:
        Optional on-disk artifact tier (CRC-verified, atomic).
    cache:
        Pass a prebuilt :class:`ArtifactCache` to share one across
        engines (overrides ``capacity``/``disk_dir``).
    faults:
        Optional :class:`~repro.resilience.faults.FaultPlan` injected
        into every solver loop this engine runs — the chaos-testing
        hook ``repro serve`` arms from ``REPRO_FAULTS``.  Mutable:
        the serve loop swaps in ``plan.retried()`` between drain
        passes so one-shot faults fire exactly once.
    """

    def __init__(
        self,
        *,
        capacity: int = 4,
        disk_dir: str | None = None,
        cache: ArtifactCache | None = None,
        faults=None,
    ):
        self.cache = cache or ArtifactCache(capacity, disk_dir=disk_dir)
        self._pools: dict[tuple, object] = {}
        self.submitted = 0
        self.faults = faults

    # ------------------------------------------------------ warm state

    def simulation(self, spec: SimulationSpec):
        """The constructed simulation for ``spec`` — a cache hit after
        the first call (or a disk load on a fresh process when the
        engine has a disk tier)."""
        return self.cache.get_or_build(spec.key, spec.build)

    def pool(self, nranks: int, **kwargs):
        """A persistent :class:`~repro.parallel.ProcWorld` shared by
        every submission that asks for ``nranks`` workers; re-attached
        if a previous user closed it or its workers died.  The engine
        owns the pool — callers must not ``close`` it mid-service
        (:meth:`close` shuts all pools down exactly once)."""
        from repro.parallel import ProcWorld

        key = (int(nranks),) + tuple(sorted(kwargs.items()))
        world = self._pools.get(key)
        if world is None:
            world = ProcWorld(nranks, **kwargs)
            self._pools[key] = world
        else:
            world.ensure_running()
        return world

    # ------------------------------------------------------ submission

    def submit(
        self,
        spec: SimulationSpec,
        scenario,
        t_end: float,
        *,
        receivers: np.ndarray | None = None,
        record: str = "velocity",
        trace_id: str | None = None,
        **run_kwargs,
    ):
        """One forward run against warm state; returns the
        :class:`~repro.core.simulation.ForwardResult`.  Identical
        dispatch to ``ForwardSimulation.run`` — a warm submit differs
        from a cold library call only in skipping construction, so the
        trajectory is bitwise the same.  ``trace_id`` scopes the run's
        spans (and any distributed per-rank timelines) to that trace."""
        sim = self.simulation(spec)
        self.submitted += 1
        telemetry.count("service.submits")
        if self.faults is not None:
            run_kwargs.setdefault("faults", self.faults)
        with telemetry.trace_context(
            trace_id if trace_id is not None
            else telemetry.get_trace_context()
        ):
            with telemetry.span("service.run"):
                return sim.run(
                    scenario,
                    t_end,
                    receivers=receivers,
                    record=record,
                    **run_kwargs,
                )

    def submit_batch(
        self,
        spec: SimulationSpec,
        scenarios: Sequence,
        t_end: float,
        *,
        receivers=None,
        record: str = "velocity",
        health_interval: int | None = None,
    ) -> list:
        """March ``B = len(scenarios)`` rupture scenarios of one basin
        in a single fused :meth:`~repro.solver.wave_solver
        .ElasticWaveSolver.run_batch` loop; returns one
        :class:`~repro.io.seismogram.Seismograms` per scenario (None
        without receivers).  ``receivers`` is one shared ``(n, 3)``
        position array or a sequence with one entry per scenario.
        Column ``b`` is bit-identical to ``submit(spec,
        scenarios[b], t_end)`` — the coalescing contract the scheduler
        builds on."""
        from repro.io.seismogram import ReceiverArray
        from repro.sources.fault import SourceCollection

        sim = self.simulation(spec)
        self.submitted += len(scenarios)
        telemetry.count("service.submits", len(scenarios))
        forces = [
            SourceCollection(sim.mesh, sim.tree, sc.sources)
            for sc in scenarios
        ]
        if receivers is None:
            recs = None
        elif isinstance(receivers, np.ndarray) and receivers.ndim == 2:
            recs = ReceiverArray(sim.mesh, receivers)
        else:
            if len(receivers) != len(scenarios):
                raise ValueError("need one receiver set per scenario")
            recs = [ReceiverArray(sim.mesh, r) for r in receivers]
        extra = {}
        if self.faults is not None:
            extra["faults"] = self.faults
        if health_interval is not None:
            extra["health_interval"] = health_interval
        with telemetry.span("service.run_batch") as _s:
            _s.add("batch", len(scenarios))
            return sim.solver.run_batch(
                forces, t_end, receivers=recs, record=record, **extra
            )

    # -------------------------------------------------------- lifetime

    def stats(self) -> dict:
        s = self.cache.stats()
        s["submitted"] = self.submitted
        s["pools"] = {
            "+".join(str(k) for k in key): (
                "closed" if world.closed else "running"
            )
            for key, world in self._pools.items()
        }
        # pool-health gauges ride along whenever stats are read (the
        # serve loop polls this once per drain, not per request)
        running = sum(
            1 for w in self._pools.values() if not w.closed
        )
        telemetry.gauge("service.pools.running", running)
        telemetry.gauge("service.pools.total", len(self._pools))
        return s

    def close(self) -> None:
        """Shut every owned pool down (idempotent).  The engine stays
        usable — the artifact cache is untouched and a later
        :meth:`pool` call re-attaches a fresh pool — so ``close`` is
        the explicit park/shutdown point between traffic bursts."""
        for world in self._pools.values():
            try:
                world.close()
            except Exception:
                pass
        self._pools.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
