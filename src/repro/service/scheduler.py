"""Coalescing scheduler: independent requests → one batched column each.

The service's request path.  Callers :meth:`~CoalescingScheduler
.submit` forward requests asynchronously and get a
:class:`concurrent.futures.Future` back; a scheduler thread groups
requests that share a **group key** — the spec's artifact key plus
``(t_end, record)``, everything a fused loop must agree on — and packs
each group into one :meth:`~repro.service.engine.Engine.submit_batch`
call, demultiplexing the per-scenario seismograms back onto the
futures.

The batching window is a small state machine per group:

* **idle** — no pending requests for the key;
* **open** — the first request arrives and starts a ``max_wait``
  timer (the window);
* **dispatch** — when the group reaches ``max_batch`` members
  (*full*), its window expires (*timeout*), or the scheduler is
  flushed/closed, the group leaves the queue and runs as one batch.

Coalescing is free of numerical consequence: ``run_batch`` column
``b`` is bit-identical to a solo ``run`` of scenario ``b`` (the
row-stacked GEMM and block-diagonal scatter keep the serial summation
orders — see ``tests/test_batch.py``), so a request cannot observe
whether it shared its time loop.

Failure is where coalescing could *amplify*: one NaN-poisoned request
would fail every batchmate's future.  With a
:class:`~repro.service.policy.ServicePolicy` armed, the scheduler
instead bisects a failing batch (log₂ re-runs against the warm
engine), fails only the culprit(s) with
:class:`~repro.service.policy.PoisonedRequestError`, and resolves the
innocents from the successful halves — still bitwise-identical to
solo runs, because column independence holds for any batch width.
The policy also bounds the queue (:class:`ShedError` fast-fail),
mints per-request deadlines, retries transient
:class:`~repro.parallel.transport.WorkerFailure`, and trips a circuit
breaker on repeated pool failures.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.parallel.transport import WorkerFailure
from repro.service.engine import Engine, SimulationSpec
from repro.service.policy import (
    CircuitOpenError,
    DeadlineExceeded,
    PoisonedRequestError,
    ServicePolicy,
    ShedError,
)

__all__ = ["ForwardRequest", "CoalescingScheduler"]


def _resolve(future: Future, result) -> None:
    """Set a result, tolerating futures the owner already cancelled
    (e.g. by a timed-out :meth:`CoalescingScheduler.close`)."""
    try:
        if not future.cancelled():
            future.set_result(result)
    except InvalidStateError:
        pass


def _fail(future: Future, exc: BaseException) -> None:
    try:
        if not future.cancelled():
            future.set_exception(exc)
    except InvalidStateError:
        pass


@dataclass
class ForwardRequest:
    """One independently-arriving forward-simulation request.

    ``trace_id`` names this request's end-to-end trace; the scheduler
    mints one on submit while telemetry is enabled (callers may set
    their own to join a larger trace).  ``request_id`` is an opaque
    caller handle echoed in structured errors (the serve loop uses
    the spool file id).  ``deadline`` is an absolute
    ``time.monotonic()`` reading after which the request is rejected
    instead of solved; the scheduler mints one from the policy's
    relative deadline at submit when the caller left it None."""

    spec: SimulationSpec
    scenario: object
    t_end: float
    receivers: np.ndarray | None = None
    record: str = "velocity"
    trace_id: str | None = None
    request_id: str | None = None
    deadline: float | None = None

    def group_key(self) -> tuple:
        """What a fused time loop must agree on: the artifact key (one
        basin, one set of operators), the horizon, the recorded field,
        and whether seismograms are wanted at all."""
        return (
            self.spec.key,
            float(self.t_end),
            self.record,
            self.receivers is not None,
        )


class _Group:
    """Pending requests sharing a group key (one open window)."""

    __slots__ = ("requests", "futures", "deadline", "t_open", "t_enq")

    def __init__(self, deadline: float, t_open: float = 0.0):
        self.requests: list[ForwardRequest] = []
        self.futures: list[Future] = []
        self.deadline = deadline
        # latency bookkeeping (perf_counter readings), only written
        # while telemetry is enabled
        self.t_open = t_open
        self.t_enq: list[float] = []


class CoalescingScheduler:
    """Async job queue in front of an :class:`Engine`.

    Parameters
    ----------
    engine:
        The warm engine that executes dispatched batches.
    max_batch:
        Dispatch a group as soon as it holds this many requests
        (``B`` of the fused loop).
    max_wait:
        Seconds a group may wait for co-batchable traffic after its
        first request arrives.  ``0`` disables coalescing latency
        entirely — every request dispatches immediately (B=1) —
        which is the idle-overhead configuration the CI gate checks.
    policy:
        A :class:`~repro.service.policy.ServicePolicy` arming
        admission control, deadlines, bisection, retry, and the
        breaker.  Defaults to ``ServicePolicy()`` (no shedding, no
        deadlines, bisection + retry + breaker on).
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_batch: int = 16,
        max_wait: float = 0.05,
        policy: ServicePolicy | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.policy = policy if policy is not None else ServicePolicy()
        self._breaker = self.policy.make_breaker()
        self._groups: dict[tuple, _Group] = {}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self.requests = 0
        self.batches = 0
        self.coalesced = 0
        self.max_observed_batch = 0
        self.solves = 0
        self.shed = 0
        self.deadline_expired = 0
        self.poisoned = 0
        self.retries = 0
        self.bisections = 0
        # futures of the group currently running, so close() can
        # cancel in-flight work the thread never resolved
        self._inflight: list[Future] | None = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------- submission

    def submit(self, request: ForwardRequest) -> Future:
        """Enqueue a request; the Future resolves to its
        :class:`~repro.io.seismogram.Seismograms` (or None without
        receivers) once its batch has run.

        Fast-fail admission gates run *before* anything is enqueued:
        an open circuit breaker raises
        :class:`~repro.service.policy.CircuitOpenError` and a full
        queue raises :class:`~repro.service.policy.ShedError` — both
        in microseconds, with no solver time or queue slot spent."""
        future: Future = Future()
        instrumented = telemetry.enabled()
        policy = self.policy
        with self._wake:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._breaker is not None and not self._breaker.allow():
                telemetry.count("service.breaker.rejected")
                raise CircuitOpenError(
                    "circuit breaker open after repeated pool failures",
                    retry_after=self._breaker.retry_after(),
                )
            if policy.max_queue_depth > 0:
                depth = sum(
                    len(g.requests) for g in self._groups.values()
                )
                if depth >= policy.max_queue_depth:
                    self.shed += 1
                    telemetry.count("service.shed")
                    raise ShedError(
                        f"queue at capacity ({depth}/"
                        f"{policy.max_queue_depth}); shedding",
                        depth=depth,
                        limit=policy.max_queue_depth,
                    )
            if request.deadline is None and policy.deadline is not None:
                request.deadline = time.monotonic() + policy.deadline
            key = request.group_key()
            group = self._groups.get(key)
            if group is None:
                group = _Group(
                    time.monotonic() + self.max_wait,
                    time.perf_counter() if instrumented else 0.0,
                )
                self._groups[key] = group
            group.requests.append(request)
            group.futures.append(future)
            if instrumented:
                if request.trace_id is None:
                    request.trace_id = telemetry.new_trace_id()
                group.t_enq.append(time.perf_counter())
            self.requests += 1
            telemetry.count("service.requests")
            self._wake.notify()
        return future

    def map_wait(self, requests, *, timeout: float | None = None) -> list:
        """Submit many requests and block for all results (in order).

        ``timeout`` bounds the *total* wait across all futures;
        exceeding it raises :class:`concurrent.futures.TimeoutError`
        (the remaining futures stay pending — close the scheduler to
        cancel them)."""
        futures = [self.submit(r) for r in requests]
        if timeout is None:
            return [f.result() for f in futures]
        deadline = time.monotonic() + timeout
        return [
            f.result(timeout=max(deadline - time.monotonic(), 0.0))
            for f in futures
        ]

    def flush(self) -> None:
        """Dispatch every open window now, ignoring remaining wait
        time, and block until the queue is empty."""
        with self._wake:
            for group in self._groups.values():
                group.deadline = 0.0
            self._wake.notify()
        while True:
            with self._wake:
                if not self._groups and not self._dispatching:
                    return
            time.sleep(0.001)

    # -------------------------------------------------------- dispatch

    _dispatching = False

    def _take_ready(self):
        """Under the lock: pop the first group that is full or past
        its window; returns ``(key, group, reason)`` or None."""
        now = time.monotonic()
        for key, group in self._groups.items():
            if len(group.requests) >= self.max_batch:
                del self._groups[key]
                return key, group, "full"
            if now >= group.deadline:
                del self._groups[key]
                return key, group, "timeout"
        return None

    def _next_deadline(self):
        return min(
            (g.deadline for g in self._groups.values()), default=None
        )

    def _loop(self) -> None:
        while True:
            with self._wake:
                ready = self._take_ready()
                if ready is None:
                    if self._closed and not self._groups:
                        return
                    deadline = self._next_deadline()
                    timeout = (
                        None
                        if deadline is None
                        else max(deadline - time.monotonic(), 0.0)
                    )
                    self._wake.wait(timeout=timeout)
                    continue
                self._dispatching = True
                self._inflight = ready[1].futures
            key, group, reason = ready
            try:
                self._run_group(group, reason)
            finally:
                with self._wake:
                    self._dispatching = False
                    self._inflight = None
                    self._wake.notify()

    def _run_group(self, group: _Group, reason: str) -> None:
        requests, futures = group.requests, group.futures
        B = len(requests)
        self.batches += 1
        self.coalesced += B - 1
        self.max_observed_batch = max(self.max_observed_batch, B)
        telemetry.count("service.batches")
        telemetry.count("service.coalesced", B - 1)
        # deadline gate: a request that aged out in the queue is
        # rejected here, before any solver time is spent on it
        now = time.monotonic()
        live: list[int] = []
        for i, r in enumerate(requests):
            if r.deadline is not None and now >= r.deadline:
                self.deadline_expired += 1
                telemetry.count("service.deadline.expired")
                _fail(
                    futures[i],
                    DeadlineExceeded(
                        f"request expired {now - r.deadline:.3f}s "
                        "before dispatch",
                        request_id=r.request_id,
                        stage="dispatch",
                        overdue=now - r.deadline,
                    ),
                )
            else:
                live.append(i)
        if not live:
            return
        requests = [requests[i] for i in live]
        futures = [futures[i] for i in live]
        enq = [
            group.t_enq[i] for i in live if i < len(group.t_enq)
        ]
        if self._breaker is not None and not self._breaker.allow():
            err = CircuitOpenError(
                "circuit breaker open; batch fast-failed",
                retry_after=self._breaker.retry_after(),
            )
            telemetry.count("service.breaker.fastfail", len(futures))
            for f in futures:
                _fail(f, err)
            return
        # one trace for the shared solve; each member request's trace
        # links to it so stitching a request pulls in the batch's
        # solver spans and per-rank phase split
        tr = telemetry.current_tracer()
        batch_trace = None
        t_dispatch = 0.0
        if tr is not None:
            batch_trace = telemetry.new_trace_id()
            for r in requests:
                if r.trace_id is not None:
                    tr.link_trace(r.trace_id, batch_trace)
            t_dispatch = time.perf_counter()
        try:
            with telemetry.trace_context(batch_trace):
                with telemetry.span("service.dispatch") as _s:
                    _s.add("batch", len(requests))
                    self._dispatch(requests, futures)
        except BaseException as e:
            # belt and braces: _dispatch handles Exceptions itself, so
            # only interpreter-level BaseExceptions land here — never
            # leave a caller hung on an unresolved future
            for f in futures:
                _fail(f, e)
            return
        if tr is not None:
            t_solved = time.perf_counter()
            t_done = time.perf_counter()
            solve = t_solved - t_dispatch
            demux = t_done - t_solved
            coalesce = (
                t_dispatch - group.t_open if group.t_open else 0.0
            )
            telemetry.observe("service.latency.solve", solve)
            telemetry.observe("service.latency.demux", demux)
            telemetry.observe("service.latency.coalesce", coalesce)
            telemetry.observe("service.batch_size", B)
            tr.record_event(
                ("service.dispatch", "demux"),
                t_solved,
                demux,
                trace_id=batch_trace,
            )
            for i, r in enumerate(requests):
                t_enq = enq[i] if i < len(enq) else t_dispatch
                queue = t_dispatch - t_enq
                total = t_done - t_enq
                telemetry.observe("service.latency.queue", queue)
                telemetry.observe("service.latency.total", total)
                tr.record_event(
                    ("service.request", "queue"),
                    t_enq,
                    queue,
                    trace_id=r.trace_id,
                )
                tr.record_event(
                    ("service.request",),
                    t_enq,
                    total,
                    trace_id=r.trace_id,
                    counters={"batch": B},
                )

    # ---------------------------------------------- failure isolation

    def _solve(self, requests: list[ForwardRequest]) -> list:
        """One engine call for ``requests``, retried through the
        policy's backoff on transient :class:`WorkerFailure`."""
        first = requests[0]

        def call():
            self.solves += 1
            return self.engine.submit_batch(
                first.spec,
                [r.scenario for r in requests],
                first.t_end,
                receivers=(
                    [r.receivers for r in requests]
                    if first.receivers is not None
                    else None
                ),
                record=first.record,
            )

        retry = self.policy.retry
        if retry is None:
            return call()
        return retry.call(
            call, retry_on=(WorkerFailure,), on_retry=self._note_retry
        )

    def _note_retry(self, attempt: int, exc: BaseException) -> None:
        self.retries += 1
        telemetry.count("service.retries")

    def _dispatch(
        self, requests: list[ForwardRequest], futures: list[Future]
    ) -> None:
        """Solve ``requests`` as one batch, bisecting on failure.

        A clean solve resolves every future.  A ``WorkerFailure``
        surviving the retry policy is *infrastructure*, not request
        content — the whole sub-batch fails with it (no bisection;
        re-running a poisoned pool would just fail again) and the
        breaker counts it.  Any other exception is *content*: split
        the batch in half and recurse, so log₂(B) extra warm solves
        isolate the culprit(s), which alone get
        :class:`PoisonedRequestError`; innocents resolve from the
        successful halves, each column still bitwise-identical to a
        solo run."""
        try:
            results = self._solve(requests)
        except WorkerFailure as e:
            tripped = (
                self._breaker is not None
                and self._breaker.record_failure()
            )
            for f in futures:
                _fail(f, e)
            if tripped:
                self._drain_queue(
                    CircuitOpenError(
                        "circuit breaker opened by repeated pool "
                        "failures; queued batch fast-failed",
                        retry_after=(
                            self._breaker.retry_after()
                            if self._breaker is not None
                            else 0.0
                        ),
                    )
                )
            return
        except Exception as e:
            if len(requests) == 1 or not self.policy.bisect:
                for r, f in zip(requests, futures):
                    self.poisoned += 1
                    telemetry.count("service.poisoned")
                    err = PoisonedRequestError(
                        f"request {r.request_id or '<anonymous>'} "
                        f"poisoned its batch: {e}",
                        request_id=r.request_id,
                        trace_id=r.trace_id,
                    )
                    err.__cause__ = e
                    _fail(f, err)
                return
            self.bisections += 1
            telemetry.count("service.bisect.rounds")
            mid = len(requests) // 2
            self._dispatch(requests[:mid], futures[:mid])
            self._dispatch(requests[mid:], futures[mid:])
            return
        if self._breaker is not None:
            self._breaker.record_success()
        if results is None:
            results = [None] * len(requests)
        now = time.monotonic()
        for r, f, seis in zip(requests, futures, results):
            if r.deadline is not None and now >= r.deadline:
                # the solve outlived the caller's patience: a result
                # nobody waits for is reported as the expiry it is
                self.deadline_expired += 1
                telemetry.count("service.deadline.expired")
                _fail(
                    f,
                    DeadlineExceeded(
                        f"request expired {now - r.deadline:.3f}s "
                        "before demux",
                        request_id=r.request_id,
                        stage="demux",
                        overdue=now - r.deadline,
                    ),
                )
            else:
                _resolve(f, seis)

    def _drain_queue(self, exc: Exception) -> None:
        """Fail every queued (not yet dispatched) request with
        ``exc`` — the breaker just opened, so letting them wait for
        the solver would only convert fast failures into slow ones."""
        with self._wake:
            drained = list(self._groups.values())
            self._groups.clear()
            self._wake.notify()
        for group in drained:
            for f in group.futures:
                _fail(f, exc)

    # -------------------------------------------------------- lifetime

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "max_batch_observed": self.max_observed_batch,
            "mean_batch": (
                self.requests / self.batches if self.batches else 0.0
            ),
            "solves": self.solves,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "poisoned": self.poisoned,
            "retries": self.retries,
            "bisections": self.bisections,
            "breaker": (
                self._breaker.state
                if self._breaker is not None
                else "disabled"
            ),
        }

    def queue_snapshot(self) -> dict:
        """Point-in-time live state for the status file: open windows
        (occupancy + remaining wait) and whether a batch is in flight.
        Taken under the scheduler lock, so it is a consistent view."""
        now = time.monotonic()
        with self._wake:
            windows = [
                {
                    "pending": len(g.requests),
                    "max_batch": self.max_batch,
                    "window_remaining": max(g.deadline - now, 0.0),
                }
                for g in self._groups.values()
            ]
            return {
                "open_windows": windows,
                "dispatching": bool(self._dispatching),
                "depth": sum(
                    len(g.requests) for g in self._groups.values()
                ),
                "breaker": (
                    self._breaker.state
                    if self._breaker is not None
                    else "disabled"
                ),
            }

    def close(self, *, wait: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting requests; drain open windows, then stop the
        scheduler thread.

        If the thread does not finish within ``timeout`` (a wedged
        engine, a hung pool), every still-pending future — queued or
        in flight — is cancelled so ``map_wait`` callers observe a
        :class:`concurrent.futures.CancelledError` instead of
        blocking forever."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            for group in self._groups.values():
                group.deadline = 0.0
            self._wake.notify()
        if not wait:
            return
        self._thread.join(timeout=timeout)
        leftovers: list[Future] = []
        with self._wake:
            for group in self._groups.values():
                leftovers.extend(group.futures)
            self._groups.clear()
            if self._inflight is not None:
                leftovers.extend(self._inflight)
        for f in leftovers:
            if not f.done():
                f.cancel()
                telemetry.count("service.cancelled_on_close")

    def __enter__(self) -> "CoalescingScheduler":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
