"""Coalescing scheduler: independent requests → one batched column each.

The service's request path.  Callers :meth:`~CoalescingScheduler
.submit` forward requests asynchronously and get a
:class:`concurrent.futures.Future` back; a scheduler thread groups
requests that share a **group key** — the spec's artifact key plus
``(t_end, record)``, everything a fused loop must agree on — and packs
each group into one :meth:`~repro.service.engine.Engine.submit_batch`
call, demultiplexing the per-scenario seismograms back onto the
futures.

The batching window is a small state machine per group:

* **idle** — no pending requests for the key;
* **open** — the first request arrives and starts a ``max_wait``
  timer (the window);
* **dispatch** — when the group reaches ``max_batch`` members
  (*full*), its window expires (*timeout*), or the scheduler is
  flushed/closed, the group leaves the queue and runs as one batch.

Coalescing is free of numerical consequence: ``run_batch`` column
``b`` is bit-identical to a solo ``run`` of scenario ``b`` (the
row-stacked GEMM and block-diagonal scatter keep the serial summation
orders — see ``tests/test_batch.py``), so a request cannot observe
whether it shared its time loop.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.service.engine import Engine, SimulationSpec

__all__ = ["ForwardRequest", "CoalescingScheduler"]


@dataclass
class ForwardRequest:
    """One independently-arriving forward-simulation request.

    ``trace_id`` names this request's end-to-end trace; the scheduler
    mints one on submit while telemetry is enabled (callers may set
    their own to join a larger trace)."""

    spec: SimulationSpec
    scenario: object
    t_end: float
    receivers: np.ndarray | None = None
    record: str = "velocity"
    trace_id: str | None = None

    def group_key(self) -> tuple:
        """What a fused time loop must agree on: the artifact key (one
        basin, one set of operators), the horizon, the recorded field,
        and whether seismograms are wanted at all."""
        return (
            self.spec.key,
            float(self.t_end),
            self.record,
            self.receivers is not None,
        )


class _Group:
    """Pending requests sharing a group key (one open window)."""

    __slots__ = ("requests", "futures", "deadline", "t_open", "t_enq")

    def __init__(self, deadline: float, t_open: float = 0.0):
        self.requests: list[ForwardRequest] = []
        self.futures: list[Future] = []
        self.deadline = deadline
        # latency bookkeeping (perf_counter readings), only written
        # while telemetry is enabled
        self.t_open = t_open
        self.t_enq: list[float] = []


class CoalescingScheduler:
    """Async job queue in front of an :class:`Engine`.

    Parameters
    ----------
    engine:
        The warm engine that executes dispatched batches.
    max_batch:
        Dispatch a group as soon as it holds this many requests
        (``B`` of the fused loop).
    max_wait:
        Seconds a group may wait for co-batchable traffic after its
        first request arrives.  ``0`` disables coalescing latency
        entirely — every request dispatches immediately (B=1) —
        which is the idle-overhead configuration the CI gate checks.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_batch: int = 16,
        max_wait: float = 0.05,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._groups: dict[tuple, _Group] = {}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self.requests = 0
        self.batches = 0
        self.coalesced = 0
        self.max_observed_batch = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------- submission

    def submit(self, request: ForwardRequest) -> Future:
        """Enqueue a request; the Future resolves to its
        :class:`~repro.io.seismogram.Seismograms` (or None without
        receivers) once its batch has run."""
        future: Future = Future()
        instrumented = telemetry.enabled()
        with self._wake:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            key = request.group_key()
            group = self._groups.get(key)
            if group is None:
                group = _Group(
                    time.monotonic() + self.max_wait,
                    time.perf_counter() if instrumented else 0.0,
                )
                self._groups[key] = group
            group.requests.append(request)
            group.futures.append(future)
            if instrumented:
                if request.trace_id is None:
                    request.trace_id = telemetry.new_trace_id()
                group.t_enq.append(time.perf_counter())
            self.requests += 1
            telemetry.count("service.requests")
            self._wake.notify()
        return future

    def map_wait(self, requests) -> list:
        """Submit many requests and block for all results (in order)."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def flush(self) -> None:
        """Dispatch every open window now, ignoring remaining wait
        time, and block until the queue is empty."""
        with self._wake:
            for group in self._groups.values():
                group.deadline = 0.0
            self._wake.notify()
        while True:
            with self._wake:
                if not self._groups and not self._dispatching:
                    return
            time.sleep(0.001)

    # -------------------------------------------------------- dispatch

    _dispatching = False

    def _take_ready(self):
        """Under the lock: pop the first group that is full or past
        its window; returns ``(key, group, reason)`` or None."""
        now = time.monotonic()
        for key, group in self._groups.items():
            if len(group.requests) >= self.max_batch:
                del self._groups[key]
                return key, group, "full"
            if now >= group.deadline:
                del self._groups[key]
                return key, group, "timeout"
        return None

    def _next_deadline(self):
        return min(
            (g.deadline for g in self._groups.values()), default=None
        )

    def _loop(self) -> None:
        while True:
            with self._wake:
                ready = self._take_ready()
                if ready is None:
                    if self._closed and not self._groups:
                        return
                    deadline = self._next_deadline()
                    timeout = (
                        None
                        if deadline is None
                        else max(deadline - time.monotonic(), 0.0)
                    )
                    self._wake.wait(timeout=timeout)
                    continue
                self._dispatching = True
            key, group, reason = ready
            try:
                self._run_group(group, reason)
            finally:
                with self._wake:
                    self._dispatching = False
                    self._wake.notify()

    def _run_group(self, group: _Group, reason: str) -> None:
        requests, futures = group.requests, group.futures
        B = len(requests)
        self.batches += 1
        self.coalesced += B - 1
        self.max_observed_batch = max(self.max_observed_batch, B)
        telemetry.count("service.batches")
        telemetry.count("service.coalesced", B - 1)
        first = requests[0]
        # one trace for the shared solve; each member request's trace
        # links to it so stitching a request pulls in the batch's
        # solver spans and per-rank phase split
        tr = telemetry.current_tracer()
        batch_trace = None
        if tr is not None:
            batch_trace = telemetry.new_trace_id()
            for r in requests:
                if r.trace_id is not None:
                    tr.link_trace(r.trace_id, batch_trace)
            t_dispatch = time.perf_counter()
        try:
            with telemetry.trace_context(batch_trace):
                with telemetry.span("service.dispatch") as _s:
                    _s.add("batch", B)
                    results = self.engine.submit_batch(
                        first.spec,
                        [r.scenario for r in requests],
                        first.t_end,
                        receivers=(
                            [r.receivers for r in requests]
                            if first.receivers is not None
                            else None
                        ),
                        record=first.record,
                    )
        except BaseException as e:
            for f in futures:
                f.set_exception(e)
            return
        if results is None:
            results = [None] * B
        t_solved = time.perf_counter() if tr is not None else 0.0
        for f, seis in zip(futures, results):
            f.set_result(seis)
        if tr is not None:
            t_done = time.perf_counter()
            solve = t_solved - t_dispatch
            demux = t_done - t_solved
            coalesce = (
                t_dispatch - group.t_open if group.t_open else 0.0
            )
            telemetry.observe("service.latency.solve", solve)
            telemetry.observe("service.latency.demux", demux)
            telemetry.observe("service.latency.coalesce", coalesce)
            telemetry.observe("service.batch_size", B)
            tr.record_event(
                ("service.dispatch", "demux"),
                t_solved,
                demux,
                trace_id=batch_trace,
            )
            for i, r in enumerate(requests):
                t_enq = (
                    group.t_enq[i] if i < len(group.t_enq) else t_dispatch
                )
                queue = t_dispatch - t_enq
                total = t_done - t_enq
                telemetry.observe("service.latency.queue", queue)
                telemetry.observe("service.latency.total", total)
                tr.record_event(
                    ("service.request", "queue"),
                    t_enq,
                    queue,
                    trace_id=r.trace_id,
                )
                tr.record_event(
                    ("service.request",),
                    t_enq,
                    total,
                    trace_id=r.trace_id,
                    counters={"batch": B},
                )

    # -------------------------------------------------------- lifetime

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "max_batch_observed": self.max_observed_batch,
            "mean_batch": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }

    def queue_snapshot(self) -> dict:
        """Point-in-time live state for the status file: open windows
        (occupancy + remaining wait) and whether a batch is in flight.
        Taken under the scheduler lock, so it is a consistent view."""
        now = time.monotonic()
        with self._wake:
            windows = [
                {
                    "pending": len(g.requests),
                    "max_batch": self.max_batch,
                    "window_remaining": max(g.deadline - now, 0.0),
                }
                for g in self._groups.values()
            ]
            return {
                "open_windows": windows,
                "dispatching": bool(self._dispatching),
            }

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; drain open windows, then stop the
        scheduler thread."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            for group in self._groups.values():
                group.deadline = 0.0
            self._wake.notify()
        if wait:
            self._thread.join(timeout=60.0)

    def __enter__(self) -> "CoalescingScheduler":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
