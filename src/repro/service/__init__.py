"""``repro.service`` — long-running simulation service (see DESIGN.md).

Turns the one-shot library into an always-on engine where a repeat
scenario run is a cache hit plus one batched column:

* :mod:`~repro.service.cache` — content-addressed artifact store
  (stable spec hashing, in-memory LRU + CRC-verified disk tier);
* :mod:`~repro.service.engine` — warm :class:`Engine` owning the
  constructed simulations and persistent :class:`ProcWorld` pools;
* :mod:`~repro.service.scheduler` — :class:`CoalescingScheduler`, an
  async job queue that packs co-batchable requests into one fused
  ``run_batch`` time loop (each column bitwise-identical to a solo
  run);
* :mod:`~repro.service.policy` — :class:`ServicePolicy` resilience
  knobs (admission control, deadlines, poisoned-batch bisection,
  retry + circuit breaker) and the structured errors
  (:class:`ShedError`, :class:`DeadlineExceeded`,
  :class:`PoisonedRequestError`, :class:`CircuitOpenError`) callers
  program against.
"""

from repro.service.cache import (
    ArtifactCache,
    CacheCorruptError,
    artifact_key,
    fingerprint,
    load_artifact,
    save_artifact,
)
from repro.service.engine import Engine, SimulationSpec
from repro.service.policy import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    PoisonedRequestError,
    ServicePolicy,
    ShedError,
)
from repro.service.scheduler import CoalescingScheduler, ForwardRequest

__all__ = [
    "ArtifactCache",
    "CacheCorruptError",
    "CircuitBreaker",
    "CircuitOpenError",
    "CoalescingScheduler",
    "DeadlineExceeded",
    "Engine",
    "ForwardRequest",
    "PoisonedRequestError",
    "ServicePolicy",
    "ShedError",
    "SimulationSpec",
    "artifact_key",
    "fingerprint",
    "load_artifact",
    "save_artifact",
]
