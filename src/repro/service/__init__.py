"""``repro.service`` — long-running simulation service (see DESIGN.md).

Turns the one-shot library into an always-on engine where a repeat
scenario run is a cache hit plus one batched column:

* :mod:`~repro.service.cache` — content-addressed artifact store
  (stable spec hashing, in-memory LRU + CRC-verified disk tier);
* :mod:`~repro.service.engine` — warm :class:`Engine` owning the
  constructed simulations and persistent :class:`ProcWorld` pools;
* :mod:`~repro.service.scheduler` — :class:`CoalescingScheduler`, an
  async job queue that packs co-batchable requests into one fused
  ``run_batch`` time loop (each column bitwise-identical to a solo
  run).
"""

from repro.service.cache import (
    ArtifactCache,
    CacheCorruptError,
    artifact_key,
    fingerprint,
    load_artifact,
    save_artifact,
)
from repro.service.engine import Engine, SimulationSpec
from repro.service.scheduler import CoalescingScheduler, ForwardRequest

__all__ = [
    "ArtifactCache",
    "CacheCorruptError",
    "CoalescingScheduler",
    "Engine",
    "ForwardRequest",
    "SimulationSpec",
    "artifact_key",
    "fingerprint",
    "load_artifact",
    "save_artifact",
]
