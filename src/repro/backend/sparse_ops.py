"""Precomputed scatter plans and allocation-free sparse products.

The paper's solver does exactly one indirect-addressing pass per
stiffness application (gather element corner values, scatter-add the
element results).  The seed code paid for that scatter with a fresh
``np.bincount`` — and a fresh output array — on every call.  Here the
scatter is planned **once**: the flat destination indices are sorted
into CSR form (row = global dof, entries = positions in the element
result block), so every subsequent scatter is a single C-level CSR
matvec into a caller-owned output buffer.

Per-element material coefficients are *folded into the CSR data array*
(see :class:`ScatterPlan.fold`), which removes the separate per-element
scaling passes from the hot loop entirely: the scatter multiplies each
gathered element value by its coefficient as it accumulates.

:func:`spmv_acc` / :func:`spmv_into` wrap scipy's internal
``csr_matvec(s)`` C routines, which accumulate into a caller-provided
output vector; when those private kernels are unavailable the helpers
fall back to ordinary (allocating) scipy products, trading the
zero-allocation guarantee for portability.
"""

from __future__ import annotations

import numpy as np

try:  # scipy's C kernels accumulate into caller buffers (y += A @ x)
    from scipy.sparse import _sparsetools as _st

    HAVE_INPLACE_SPMV = True
except ImportError:  # pragma: no cover - depends on scipy internals
    _st = None
    HAVE_INPLACE_SPMV = False


class ScatterPlan:
    """CSR-form plan for repeated scatter-adds to a fixed index set.

    Parameters
    ----------
    idx:
        Flat destination index per source slot (``nnz`` entries, each in
        ``[0, n)``) — e.g. the global dof of every element-local dof.
    n:
        Size of the destination vector.
    """

    def __init__(self, idx: np.ndarray, n: int):
        idx = np.asarray(idx, dtype=np.int64).ravel()
        self.n = int(n)
        self.nnz = int(idx.size)
        #: width of the source slot space the CSR indices refer to;
        #: equals ``nnz`` for a full plan, and stays at the parent's
        #: width for the sub-plans produced by :meth:`split`
        self.ncols = self.nnz
        #: stable source permutation sorting slots by destination; used
        #: both as the CSR column indices and to permute folded data
        self.order = np.argsort(idx, kind="stable")
        counts = (
            np.bincount(idx, minlength=self.n)
            if self.nnz
            else np.zeros(self.n, dtype=np.int64)
        )
        itype = (
            np.int32
            if max(self.nnz, self.n) < np.iinfo(np.int32).max
            else np.int64
        )
        self.indptr = np.zeros(self.n + 1, dtype=itype)
        self.indptr[1:] = np.cumsum(counts)
        self.indices = self.order.astype(itype)
        self._rows = None  # built lazily, fallback path only

    def fold(self, coef_flat: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Permute per-slot coefficients into CSR data order (so the
        scatter applies them for free)."""
        if self.order is None:
            raise ValueError("fold permutation was dropped (fixed-coef plan)")
        np.take(coef_flat, self.order, out=out, mode="clip")
        return out

    def split(self, cut: int):
        """Split the plan at source-slot ``cut`` into two sub-plans.

        ``plan_lo`` scatters only slots ``< cut`` and ``plan_hi`` the
        rest; running them in sequence over the same slot block sums
        every destination row in exactly the order of the full scatter
        (the stable sort keeps slots ascending within a row, so the low
        entries of every row are its leading entries).  This is what
        lets the distributed solver scatter its interface elements
        first (elements are ordered interface-first, so their slots are
        a prefix), ship the boundary partial sums, and overlap the
        interior scatter with the ghost exchange.

        Returns ``(plan_lo, plan_hi, mask_lo)`` where ``mask_lo`` marks
        the CSR entries (in this plan's data order) that went to
        ``plan_lo`` — use it to split a folded data array the same way.
        """
        cut = int(cut)
        if not 0 <= cut <= self.nnz:
            raise ValueError(f"cut {cut} outside [0, {self.nnz}]")
        mask_lo = self.indices < cut
        rows = np.repeat(
            np.arange(self.n, dtype=np.int64),
            np.diff(self.indptr).astype(np.int64),
        )
        plans = []
        for m in (mask_lo, ~mask_lo):
            sub = ScatterPlan.__new__(ScatterPlan)
            sub.n = self.n
            sub.nnz = int(m.sum())
            sub.ncols = self.ncols
            sub.order = None  # sub-plans never fold; data comes masked
            sub.indptr = np.zeros(self.n + 1, dtype=self.indptr.dtype)
            sub.indptr[1:] = np.cumsum(
                np.bincount(rows[m], minlength=self.n)
            )
            sub.indices = self.indices[m]
            sub._rows = None
            plans.append(sub)
        return plans[0], plans[1], mask_lo

    def drop_order(self) -> None:
        """Free the int64 fold permutation once coefficients are folded
        for good (fixed-coefficient operators); the int32 ``indices``
        copy keeps serving the scatter."""
        self.order = None

    def scatter_acc(
        self, data: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """``y[row] += data * x[slot]`` over the planned slots.

        ``x`` may be ``(nnz,)`` or ``(nnz, ncomp)`` (with matching
        ``y``): a 2D block scatters all components of a slot in one
        pass — one indirect lookup per slot instead of per value.
        Allocation-free via scipy's C CSR matvec(s); the pure-scipy
        fallback allocates small temporaries but is always available.
        """
        if self.nnz == 0:
            return y
        if _st is not None:
            if x.ndim == 2 and x.shape[1] == 1:
                # single-component block: the 1D kernel skips the
                # per-entry inner vector loop of csr_matvecs
                _st.csr_matvec(
                    self.n, self.ncols, self.indptr, self.indices, data,
                    x.reshape(-1), y.reshape(-1),
                )
            elif x.ndim == 2:
                _st.csr_matvecs(
                    self.n, self.ncols, x.shape[1], self.indptr,
                    self.indices, data, x.reshape(-1), y.reshape(-1),
                )
            else:
                _st.csr_matvec(
                    self.n, self.ncols, self.indptr, self.indices, data, x, y
                )
        else:  # pragma: no cover - exercised only without _sparsetools
            if self._rows is None:
                self._rows = np.repeat(
                    np.arange(self.n, dtype=np.int64),
                    np.diff(self.indptr).astype(np.int64),
                )
            if x.ndim == 2:
                contrib = data[:, None] * x[self.indices]
                for c in range(x.shape[1]):
                    y[:, c] += np.bincount(
                        self._rows, weights=contrib[:, c], minlength=self.n
                    )
            else:
                contrib = data * x[self.indices]
                y += np.bincount(
                    self._rows, weights=contrib, minlength=self.n
                )
        return y

    def workspace_bytes(self) -> int:
        n = self.indptr.nbytes + self.indices.nbytes
        if self.order is not None:
            n += self.order.nbytes
        if self._rows is not None:  # pragma: no cover
            n += self._rows.nbytes
        return n


def spmv_acc(A, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y += A @ x`` for a CSR matrix ``A``; ``x``/``y`` may be 1D or
    C-contiguous 2D (multiple right-hand sides).  Allocation-free when
    scipy's C kernels are importable."""
    M, N = A.shape
    if _st is not None:
        if x.ndim == 2:
            _st.csr_matvecs(
                M, N, x.shape[1], A.indptr, A.indices, A.data,
                x.reshape(-1), y.reshape(-1),
            )
        else:
            _st.csr_matvec(M, N, A.indptr, A.indices, A.data, x, y)
    else:  # pragma: no cover - exercised only without _sparsetools
        y += A @ x
    return y


def spmv_into(A, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y[:] = A @ x`` into a caller-owned buffer."""
    y.fill(0.0)
    return spmv_acc(A, x, y)
