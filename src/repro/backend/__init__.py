"""Pluggable compute backends for the time-stepping hot paths.

Every stiffness application in the package — the 3D elastic operator,
the scalar-wave kernel of the inverse problem, the tetrahedral
baseline, the per-rank operators of the distributed solver — is routed
through a *kernel* object built by the active backend:

* ``numpy`` (default): BLAS block products plus a coefficient-folded
  CSR scatter, all writing into preallocated workspace
  (:mod:`repro.backend.numpy_backend`);
* ``numba``: the same kernels JIT-compiled with ``prange`` parallelism
  (:mod:`repro.backend.numba_backend`); selecting it when numba is not
  installed warns and falls back to ``numpy``.

Selection: the ``REPRO_BACKEND`` environment variable (read once, at
first use) or :func:`set_backend`.  Kernels capture the backend active
at *operator construction*; call :func:`set_backend` before building
solvers.  Results are backend-independent to roundoff (tested to
1e-12): the backends perform identical arithmetic, only the internal
summation order of the scatter may differ.

>>> from repro.backend import set_backend
>>> set_backend("numba")           # or REPRO_BACKEND=numba in the env
>>> set_backend(None)              # back to the environment default
"""

from __future__ import annotations

import importlib.util
import os
import warnings

from repro.backend.sparse_ops import (
    HAVE_INPLACE_SPMV,
    ScatterPlan,
    spmv_acc,
    spmv_into,
)

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "ScatterPlan",
    "spmv_acc",
    "spmv_into",
    "HAVE_INPLACE_SPMV",
]

_active = None


def available_backends() -> list[str]:
    """Backends that would actually run in this environment."""
    names = ["numpy"]
    if importlib.util.find_spec("numba") is not None:
        names.append("numba")
    return names


def _instantiate(name: str):
    name = name.strip().lower()
    if name == "numpy":
        from repro.backend.numpy_backend import NumpyBackend

        return NumpyBackend()
    if name == "numba":
        try:
            from repro.backend.numba_backend import NumbaBackend

            return NumbaBackend()
        except ImportError:
            warnings.warn(
                "numba backend requested but numba is not installed; "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=3,
            )
            from repro.backend.numpy_backend import NumpyBackend

            return NumpyBackend()
    raise ValueError(
        f"unknown backend {name!r}; available: {available_backends()}"
    )


def get_backend():
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _active
    if _active is None:
        name = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
        try:
            _active = _instantiate(name)
        except ValueError:
            warnings.warn(
                f"REPRO_BACKEND={name!r} is not a known backend; "
                "using numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            _active = _instantiate("numpy")
    return _active


def set_backend(name: str | None):
    """Select the compute backend by name; ``None`` re-resolves from
    the environment.  Returns the backend actually activated (which is
    the numpy fallback when numba was requested but is absent)."""
    global _active
    _active = None if name is None else _instantiate(name)
    return get_backend()


class use_backend:
    """Context manager scoping a backend choice (used by the
    equivalence tests)."""

    def __init__(self, name: str):
        self.name = name
        self._saved = None

    def __enter__(self):
        global _active
        self._saved = _active
        return set_backend(self.name)

    def __exit__(self, *exc):
        global _active
        _active = self._saved
        return False
