"""Pure-NumPy compute backend: fused, allocation-free element kernels.

A stiffness application is three steps — gather, dense block apply,
scatter — and after construction every step writes into preallocated
workspace, so a ``matvec`` performs **zero heap allocations** of
element- or node-sized arrays:

1. ``np.take(u, dof, out=U)`` gathers the element corner values;
2. one BLAS call ``U @ [M_0^T | M_1^T | ...]`` (``out=``) applies all
   reference matrices at once into a wide result block;
3. a coefficient-folded CSR scatter (:class:`ScatterPlan`) accumulates
   the block into the output, multiplying by the per-element material
   coefficients as it goes — no separate scaling pass.

The scatter is planned over *nodes*, not dofs: for a vector problem
(``ncomp = 3``) the element result block reshapes to one row of
``ncomp`` contiguous values per (element, matrix, corner) slot, and a
single multi-vector CSR product adds all components of a node at once.
That cuts the indirect addressing per scatter by ``ncomp`` — the only
part of the matvec that is not a dense BLAS pass.

The same plan serves the operator diagonal: the diagonal contribution
of an element is its coefficient times the reference diagonal, which is
the folded scatter applied to a constant slot block.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.backend.sparse_ops import ScatterPlan

#: folded-data entries kept per kernel (see ``NumpyElementKernel._fold``)
FOLD_CACHE_SLOTS = 4


def _coef_digest(coefs) -> tuple:
    """Stable content key of a coefficient tuple: one blake2b digest
    per ``(nelem,)`` vector (hits re-verify with ``array_equal``, so a
    digest collision cannot silently alias two materials)."""
    return tuple(
        hashlib.blake2b(
            np.ascontiguousarray(c, dtype=float).tobytes(), digest_size=16
        ).digest()
        for c in coefs
    )


def _element_dof(conn: np.ndarray, ncomp: int) -> np.ndarray:
    """``(nelem, ncorner*ncomp)`` flat dof map (component-fastest)."""
    if ncomp == 1:
        return conn
    nelem = len(conn)
    return np.ascontiguousarray(
        (conn[:, :, None] * ncomp + np.arange(ncomp)[None, None, :]).reshape(
            nelem, conn.shape[1] * ncomp
        )
    )


class NumpyElementKernel:
    """Shared-reference-matrix element kernel (hexahedra on an octree:
    all element matrices are ``sum_i c_i[e] * M_i``).

    Parameters
    ----------
    conn:
        ``(nelem, ncorner)`` node connectivity.
    mats:
        Reference matrices ``M_i`` of shape ``(ncorner*ncomp,) * 2``
        with component-fastest dof ordering.
    nnode:
        Number of nodes; flat vectors have length ``nnode * ncomp``.
    ncomp:
        Field components per node (1 scalar, 3 elastic).
    coefs:
        Optional fixed per-element coefficients ``c_i`` (one ``(nelem,)``
        array per matrix).  When given they are folded into the scatter
        once; otherwise :meth:`matvec` takes them per call.
    """

    def __init__(self, conn, mats, nnode, ncomp=1, coefs=None):
        conn = np.ascontiguousarray(conn, dtype=np.int64)
        self.nelem, self.ncorner = conn.shape
        self.nmat = len(mats)
        self.ncomp = int(ncomp)
        self.nnode = int(nnode)
        self.ndof = self.nnode * self.ncomp
        self.nldof = self.ncorner * self.ncomp
        self.conn = conn
        self.dof = _element_dof(conn, self.ncomp)
        width = self.nldof * self.nmat
        for M in mats:
            if np.asarray(M).shape != (self.nldof, self.nldof):
                raise ValueError("reference matrix does not match conn/ncomp")
        self.MT = np.ascontiguousarray(
            np.concatenate(
                [np.asarray(M, dtype=float).T for M in mats], axis=1
            )
        )
        # node-wise scatter: one slot per (element, matrix, corner),
        # each carrying ncomp contiguous values of the result block
        self.plan = ScatterPlan(
            np.tile(conn, (1, self.nmat)).ravel(), self.nnode
        )
        self._U = np.empty((self.nelem, self.nldof))
        self._Y = np.empty((self.nelem, width))
        #: (nslot, ncomp) view of the result block, slot-major
        self._Yb = self._Y.reshape(-1, self.ncomp)
        self._coef = np.empty((self.nelem, self.nmat * self.ncorner))
        self._data = np.empty(self.plan.nnz)
        # reference diagonals per (matrix, corner, comp) slot; tiled on
        # demand for diagonal() (cold path)
        self._diag_ref = np.ascontiguousarray(
            np.concatenate(
                [np.diag(np.asarray(M, float)) for M in mats]
            ).reshape(self.nmat * self.ncorner, self.ncomp)
        )
        self._fixed = coefs is not None
        self.split_elems = None
        self._plan_lo = self._plan_hi = None
        self._data_lo = self._data_hi = None
        # multi-RHS (batched) workspace, sized on first matmat call and
        # kept for the batch width in use — matmat is allocation-free
        # after that warmup, exactly like matvec
        self._batch_B = 0
        self._G = self._Uall = self._Yall = self._Ym = None
        self._fold_count = 0
        self._last_coefs = None
        # keyed LRU of folded scatter data (digest -> (coefs, data));
        # the MRU entry is additionally tracked by _last_coefs for the
        # hash-free per-step fast path
        self._fold_lru: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.fold_cache_slots = FOLD_CACHE_SLOTS
        self._fold_hits = 0
        self._fold_misses = 0
        if self._fixed:
            # fold once, then free what only refolding would need
            self._fold(coefs)
            self._coef = None
            self.plan.drop_order()

    # pickling (the service's disk artifact tier stores constructed
    # operators): the workspace buffers are coupled by views — _Yb
    # aliases _Y, the batch buffers alias each other — and pickle
    # severs aliasing, so we drop all scratch and rebuild it on load.
    # Everything semantic (plan, folded data, split data, fold cache)
    # round-trips; batch workspace re-sizes lazily on the first matmat.
    _SCRATCH = (
        "_U", "_Y", "_Yb", "_u2T", "_o2T", "_Uall", "_Yall", "_G",
        "_Ym", "_dof_flat", "_Uall_g", "_Uall_rs", "_Yall_rs",
        "_bplan", "_bdata", "_bdata2", "_Yall_x", "_o2T_y",
        "_Uall_lo", "_Yall_lo", "_Uall_hi", "_Yall_hi",
    )

    def __getstate__(self):
        state = {
            k: v for k, v in self.__dict__.items() if k not in self._SCRATCH
        }
        state["_batch_B"] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._U = np.empty((self.nelem, self.nldof))
        self._Y = np.empty((self.nelem, self.nldof * self.nmat))
        self._Yb = self._Y.reshape(-1, self.ncomp)
        self._G = self._Uall = self._Yall = self._Ym = None

    @property
    def flops_per_matvec(self) -> int:
        """Exact flop count of one stiffness application, from the
        operation shapes: the ``(nelem, nldof) @ (nldof, nmat*nldof)``
        block product (multiply + add per entry) plus the coefficient
        multiply and accumulate of the folded scatter — one per
        (element, matrix, local dof) slot, i.e. ``nmat * nldof``
        per element, plus the output-touching adds (``nldof``)."""
        per_elem = (
            2 * self.nmat * self.nldof * self.nldof
            + self.nmat * self.nldof
            + self.nldof
        )
        return self.nelem * per_elem

    def flops_per_matmat(self, width: int) -> int:
        """Exact flop count of one multi-RHS application of ``width``
        columns — each column performs the matvec arithmetic, so the
        batched and one-RHS accountings can never drift."""
        return int(width) * self.flops_per_matvec

    def set_split(self, nelem_lo: int) -> None:
        """Enable the two-phase overlapped matvec: elements
        ``[0, nelem_lo)`` (the caller orders interface elements first)
        are applied by :meth:`matvec_interface`, the rest accumulated
        by :meth:`matvec_interior`.  The scatter plan is split along
        the same boundary, so the two phases together equal one full
        :meth:`matvec` to roundoff (the scatter order is identical;
        only BLAS shape-dependent summation in the block product can
        differ in the last ulp) and are bit-reproducible run to run —
        which is what makes the simulated and process transports
        bit-comparable."""
        nelem_lo = int(nelem_lo)
        if not 0 <= nelem_lo <= self.nelem:
            raise ValueError(
                f"split {nelem_lo} outside [0, {self.nelem}] elements"
            )
        if not self._fixed:
            raise ValueError(
                "overlap split requires fixed (folded) coefficients"
            )
        cut = nelem_lo * self.nmat * self.ncorner  # slots element-major
        plan_lo, plan_hi, mask_lo = self.plan.split(cut)
        self.split_elems = nelem_lo
        self._plan_lo, self._plan_hi = plan_lo, plan_hi
        self._data_lo = np.ascontiguousarray(self._data[mask_lo])
        self._data_hi = np.ascontiguousarray(self._data[~mask_lo])
        self._batch_B = 0  # phased matmat buffers depend on the split

    def matvec_interface(self, u_flat, out_flat):
        """Phase 1 of the overlapped matvec: zero ``out`` and apply
        the leading (interface) elements only, completing the local
        partial sums on every boundary node."""
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matvec")
        out_flat.fill(0.0)
        if k == 0:
            return out_flat
        np.take(u_flat, self.dof[:k], out=self._U[:k], mode="clip")
        np.dot(self._U[:k], self.MT, out=self._Y[:k])
        self._plan_lo.scatter_acc(
            self._data_lo, self._Yb, out_flat.reshape(self.nnode, self.ncomp)
        )
        return out_flat

    def matvec_interior(self, u_flat, out_flat):
        """Phase 2: accumulate the trailing (interior) elements into
        ``out`` — the work the ghost exchange hides behind."""
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matvec")
        if k >= self.nelem:
            return out_flat
        np.take(u_flat, self.dof[k:], out=self._U[k:], mode="clip")
        np.dot(self._U[k:], self.MT, out=self._Y[k:])
        self._plan_hi.scatter_acc(
            self._data_hi, self._Yb, out_flat.reshape(self.nnode, self.ncomp)
        )
        return out_flat

    # ------------------------------------------------------- multi-RHS

    def _check_block(self, u2, out2) -> int:
        """Validate a ``(ndof, B)`` column block pair; returns ``B``.
        The input may be strided (the gather handles it); the output
        must be C-contiguous because the scatter writes through a
        reshaped node-major view."""
        if u2.ndim != 2 or u2.shape[0] != self.ndof:
            raise ValueError(
                f"matmat input must be ({self.ndof}, B), got {u2.shape}"
            )
        if out2.shape != u2.shape:
            raise ValueError("matmat input/output shapes must match")
        if not out2.flags.c_contiguous:
            raise ValueError("matmat output block must be C-contiguous")
        return u2.shape[1]

    def _ensure_batch(self, B: int) -> None:
        """Size the multi-RHS workspace for batch width ``B``; kept
        until the width (or the overlap split) changes, so steady-state
        matmat calls perform zero heap allocations.

        The block product runs column slabs *row-stacked*:
        ``(B * nelem, nldof) @ (nldof, width)`` — the same (k, n) GEMM
        shape as the serial ``(nelem, nldof) @ (nldof, width)``, so
        the per-entry summation order over ``k`` is unchanged and each
        slab is bit-identical to the serial apply (enforced by
        ``tests/test_batch.py``).  Transposed layouts that fuse ``B``
        into the GEMM's ``n`` dimension are *not* bitwise-stable."""
        if self._batch_B == B:
            return
        width = self.nldof * self.nmat
        nslot = self.nelem * self.nmat * self.ncorner
        #: scenario-major state / result blocks: row b is the full flat
        #: dof vector of column b — one small transpose each way
        #: brackets the batch instead of two large slot-space permutes
        self._u2T = np.empty((B, self.ndof))
        self._o2T = np.empty((B, self.ndof))
        #: row-stacked GEMM operand / result: column slab b is
        #: _Uall[b] (nelem, nldof) — exactly the serial gather layout
        self._Uall = np.empty((B, self.nelem, self.nldof))
        self._Yall = np.empty((B, self.nelem, width))
        # per-call reshape views, built once (matmat stays free of
        # Python-level array construction in steady state)
        self._dof_flat = self.dof.reshape(-1)
        self._Uall_g = self._Uall.reshape(B, -1)
        self._Uall_rs = self._Uall.reshape(-1, self.nldof)
        self._Yall_rs = self._Yall.reshape(-1, width)
        # block-diagonal replicated scatter: scenario b's slots target
        # destination rows offset by b * nnode, so ONE planned CSR
        # product accumulates the whole batch.  Each diagonal block is
        # the serial plan (same stable slot order per node row), so
        # every column keeps the serial scatter's summation order
        idx_node = np.tile(self.conn, (1, self.nmat)).ravel()
        gdest = (
            np.arange(B, dtype=np.int64)[:, None] * self.nnode
            + idx_node[None, :]
        ).ravel()
        self._bplan = ScatterPlan(gdest, B * self.nnode)
        self._bplan.drop_order()  # data comes pre-folded, tiled below
        self._bdata = np.tile(self._data, B)
        self._bdata2 = self._bdata.reshape(B, nslot)
        self._bdata_stamp = self._fold_count
        self._Yall_x = self._Yall.reshape(B * nslot, self.ncomp)
        self._o2T_y = self._o2T.reshape(B * self.nnode, self.ncomp)
        if self.split_elems is not None:
            # the phased (overlapped) matmat keeps the slot-major
            # dataflow: the split sub-plans index the *full* slot
            # space, so lo/hi results land in one shared block
            k = self.split_elems
            self._G = np.empty((self.nelem, self.nldof, B))
            self._Ym = np.empty((self.nelem, width, B))
            self._Uall_lo = np.empty((B, k, self.nldof))
            self._Yall_lo = np.empty((B, k, width))
            self._Uall_hi = np.empty((B, self.nelem - k, self.nldof))
            self._Yall_hi = np.empty((B, self.nelem - k, width))
        self._batch_B = B

    def _block_views(self, out2, B):
        """(slot block, node-major output) views the scatter consumes:
        all ``ncomp * B`` values of a node accumulate per indirect
        lookup — the level-3 analogue of the node-wise matvec plan."""
        nslot = self.nelem * self.nmat * self.ncorner
        return (
            self._Ym.reshape(nslot, self.ncomp * B),
            out2.reshape(self.nnode, self.ncomp * B),
        )

    def matmat(self, u2, out2, coefs=None):
        """Multi-RHS stiffness: ``out2[:, b] = K(c) u2[:, b]`` for a
        column block ``(ndof, B)`` — one gather serving every column,
        one level-3 BLAS product covering the whole batch, one planned
        CSR scatter per scenario.  Each column is bit-identical to the
        corresponding :meth:`matvec` (identical per-entry summation
        orders)."""
        if coefs is not None:
            self._fold(coefs)
        elif not self._fixed:
            raise ValueError("kernel built without fixed coefs: pass coefs")
        B = self._check_block(u2, out2)
        if self.nelem == 0:
            out2.fill(0.0)
            return out2
        self._ensure_batch(B)
        # transpose the state block to scenario-major (the only copies
        # in the whole apply are these two (ndof, B) transposes), then
        # every stage is a contiguous per-scenario pass: a row-wise
        # gather straight into the GEMM operand, the row-stacked GEMM,
        # and one block-diagonal CSR scatter covering the whole batch —
        # no slot-space permutes, serial summation order untouched
        if self._bdata_stamp != self._fold_count:
            self._bdata2[:] = self._data  # refold: refresh every block
            self._bdata_stamp = self._fold_count
        np.copyto(self._u2T, u2.T)
        np.take(
            self._u2T, self._dof_flat, axis=1, out=self._Uall_g,
            mode="clip",
        )
        np.dot(self._Uall_rs, self.MT, out=self._Yall_rs)
        self._o2T.fill(0.0)
        self._bplan.scatter_acc(self._bdata, self._Yall_x, self._o2T_y)
        np.copyto(out2, self._o2T.T)
        return out2

    def matmat_interface(self, u2, out2):
        """Phase 1 of the overlapped multi-RHS apply: zero ``out2`` and
        apply the leading (interface) elements to every column, so all
        boundary partial sums of the batch ship in one exchange."""
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matmat")
        B = self._check_block(u2, out2)
        out2.fill(0.0)
        if k == 0:
            return out2
        self._ensure_batch(B)
        np.take(u2, self.dof[:k], axis=0, out=self._G[:k], mode="clip")
        np.copyto(self._Uall_lo, self._G[:k].transpose(2, 0, 1))
        np.dot(
            self._Uall_lo.reshape(-1, self.nldof),
            self.MT,
            out=self._Yall_lo.reshape(k * B, -1),
        )
        np.copyto(self._Ym[:k], self._Yall_lo.transpose(1, 2, 0))
        Xb, Yb = self._block_views(out2, B)
        self._plan_lo.scatter_acc(self._data_lo, Xb, Yb)
        return out2

    def matmat_interior(self, u2, out2):
        """Phase 2: accumulate the trailing (interior) elements into
        every column — the work a ghost exchange hides behind."""
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matmat")
        B = self._check_block(u2, out2)
        if k >= self.nelem:
            return out2
        self._ensure_batch(B)
        np.take(u2, self.dof[k:], axis=0, out=self._G[k:], mode="clip")
        np.copyto(self._Uall_hi, self._G[k:].transpose(2, 0, 1))
        np.dot(
            self._Uall_hi.reshape(-1, self.nldof),
            self.MT,
            out=self._Yall_hi.reshape((self.nelem - k) * B, -1),
        )
        np.copyto(self._Ym[k:], self._Yall_hi.transpose(1, 2, 0))
        Xb, Yb = self._block_views(out2, B)
        self._plan_hi.scatter_acc(self._data_hi, Xb, Yb)
        return out2

    def _fold(self, coefs) -> None:
        # MRU fast path: the time loops pass the same material every
        # step, so comparing the (nelem,) coefficient vectors is far
        # cheaper than redoing the nnz-sized fold permutation (and, for
        # batched applies, the tiled-data refresh it would trigger)
        if self._last_coefs is not None and len(coefs) == len(
            self._last_coefs
        ) and all(
            np.array_equal(c, lc)
            for c, lc in zip(coefs, self._last_coefs)
        ):
            return
        # not the MRU entry: consult the keyed LRU before refolding —
        # a single slot thrashes the moment two solvers alternate
        # through one kernel (forward + adjoint refold different
        # coefficient fields each half-iteration), while a few folded
        # snapshots turn that alternation into memcpy-sized restores
        if not self._fixed:
            key = _coef_digest(coefs)
            hit = self._fold_lru.get(key)
            if hit is not None:
                cached_coefs, cached_data = hit
                if len(cached_coefs) == len(coefs) and all(
                    np.array_equal(c, cc)
                    for c, cc in zip(coefs, cached_coefs)
                ):
                    self._fold_lru.move_to_end(key)
                    np.copyto(self._data, cached_data)
                    self._last_coefs = cached_coefs
                    self._fold_count += 1  # tiled matmat data refresh
                    self._fold_hits += 1
                    return
        self._last_coefs = [
            np.array(c, dtype=float, copy=True) for c in coefs
        ]
        for i, c in enumerate(coefs):
            self._coef[:, i * self.ncorner : (i + 1) * self.ncorner] = (
                np.asarray(c, dtype=float)[:, None]
            )
        self.plan.fold(self._coef.reshape(-1), self._data)
        self._fold_count += 1  # invalidates the tiled matmat data
        self._fold_misses += 1
        if not self._fixed and self.fold_cache_slots > 0:
            self._fold_lru[key] = (self._last_coefs, self._data.copy())
            while len(self._fold_lru) > self.fold_cache_slots:
                self._fold_lru.popitem(last=False)

    def fold_cache_info(self) -> dict:
        """Keyed fold-cache counters: ``hits`` restored a previously
        folded material by copy, ``misses`` paid the full fold."""
        return {
            "slots": self.fold_cache_slots,
            "entries": len(self._fold_lru),
            "hits": self._fold_hits,
            "misses": self._fold_misses,
            "folds": self._fold_count,
        }

    def matvec(self, u_flat, out_flat, coefs=None):
        """``out = K(c) u``; both flat, ``out`` caller-owned."""
        if coefs is not None:
            self._fold(coefs)
        elif not self._fixed:
            raise ValueError("kernel built without fixed coefs: pass coefs")
        out_flat.fill(0.0)
        if self.nelem == 0:
            return out_flat
        # mode="clip": the default "raise" routes through a bounce
        # buffer even with out= (indices are valid by construction)
        np.take(u_flat, self.dof, out=self._U, mode="clip")
        np.dot(self._U, self.MT, out=self._Y)
        self.plan.scatter_acc(
            self._data, self._Yb, out_flat.reshape(self.nnode, self.ncomp)
        )
        return out_flat

    def diagonal(self, out_flat, coefs=None):
        """Assembled operator diagonal into ``out_flat``."""
        if coefs is not None:
            self._fold(coefs)
        elif not self._fixed:
            raise ValueError("kernel built without fixed coefs: pass coefs")
        out_flat.fill(0.0)
        if self.nelem == 0:
            return out_flat
        diag_slots = np.tile(self._diag_ref, (self.nelem, 1))
        self.plan.scatter_acc(
            self._data, diag_slots, out_flat.reshape(self.nnode, self.ncomp)
        )
        return out_flat

    def workspace_bytes(self) -> int:
        n = (
            self.dof.nbytes
            + self._U.nbytes
            + self._Y.nbytes
            + self._data.nbytes
            + self._diag_ref.nbytes
        )
        if self.ncomp > 1:
            n += self.conn.nbytes
        if self._coef is not None:
            n += self._coef.nbytes
        if self.split_elems is not None:
            n += self._data_lo.nbytes + self._data_hi.nbytes
            n += self._plan_lo.workspace_bytes()
            n += self._plan_hi.workspace_bytes()
        if self._batch_B:
            for name in (
                "_u2T", "_o2T", "_Uall", "_Yall", "_bdata", "_G", "_Ym",
                "_Uall_lo", "_Yall_lo", "_Uall_hi", "_Yall_hi",
            ):
                buf = getattr(self, name, None)
                if buf is not None:
                    n += buf.nbytes
            if getattr(self, "_bplan", None) is not None:
                n += self._bplan.workspace_bytes()
        return n + self.plan.workspace_bytes()


class NumpyVarMatKernel:
    """Per-element-matrix kernel (the tetrahedral baseline, where the
    6-tet split leaves no shared reference matrix)."""

    def __init__(self, conn, Ke, nnode, ncomp=1):
        conn = np.ascontiguousarray(conn, dtype=np.int64)
        self.nelem, self.ncorner = conn.shape
        self.ncomp = int(ncomp)
        self.nnode = int(nnode)
        self.ndof = self.nnode * self.ncomp
        self.nldof = self.ncorner * self.ncomp
        self.conn = conn
        self.dof = _element_dof(conn, self.ncomp)
        self.Ke = np.ascontiguousarray(Ke, dtype=float)
        self.plan = ScatterPlan(conn.ravel(), self.nnode)
        self._U = np.empty((self.nelem, self.nldof))
        self._Y = np.empty((self.nelem, self.nldof))
        self._Yb = self._Y.reshape(-1, self.ncomp)
        self._ones = np.ones(self.plan.nnz)

    def __getstate__(self):
        # _Yb is a view of _Y; drop the scratch pair and rebuild on
        # load (see NumpyElementKernel.__getstate__)
        return {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("_U", "_Y", "_Yb")
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._U = np.empty((self.nelem, self.nldof))
        self._Y = np.empty((self.nelem, self.nldof))
        self._Yb = self._Y.reshape(-1, self.ncomp)

    @property
    def flops_per_matvec(self) -> int:
        """Exact flop count of one apply: the per-element dense
        ``(nldof, nldof)`` product (multiply + add) plus the scatter
        accumulate, one add per local dof slot."""
        return self.nelem * (2 * self.nldof * self.nldof + self.nldof)

    def flops_per_matmat(self, width: int) -> int:
        return int(width) * self.flops_per_matvec

    def matvec(self, u_flat, out_flat):
        out_flat.fill(0.0)
        if self.nelem == 0:
            return out_flat
        np.take(u_flat, self.dof, out=self._U, mode="clip")
        np.einsum("eij,ej->ei", self.Ke, self._U, out=self._Y)
        self.plan.scatter_acc(
            self._ones, self._Yb, out_flat.reshape(self.nnode, self.ncomp)
        )
        return out_flat

    def workspace_bytes(self) -> int:
        n = (
            self.dof.nbytes
            + self._U.nbytes
            + self._Y.nbytes
            + self._ones.nbytes
        )
        if self.ncomp > 1:
            n += self.conn.nbytes
        return n + self.plan.workspace_bytes()


class NumpyBackend:
    """Default backend: BLAS block apply + C-level CSR scatter."""

    name = "numpy"

    def element_kernel(self, conn, mats, nnode, ncomp=1, coefs=None):
        return NumpyElementKernel(conn, mats, nnode, ncomp=ncomp, coefs=coefs)

    def varmat_kernel(self, conn, Ke, nnode, ncomp=1):
        return NumpyVarMatKernel(conn, Ke, nnode, ncomp=ncomp)
