"""Numba compute backend: the same fused kernels, JIT-compiled with
``prange`` parallelism.

Importing this module raises :class:`ImportError` when numba is not
installed; the registry in :mod:`repro.backend` catches that and falls
back to the numpy backend with a warning, so the package never hard-
depends on numba.

Both loops are race-free by construction: the element apply writes one
block row per element, and the scatter is parallelized over *output*
rows of the precomputed CSR plan (each row sums its own slots), so no
atomics or coloring are needed.  Results match the numpy backend to
roundoff — the summation sets per output entry are identical, only
their internal ordering may differ.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.backend.numpy_backend import NumpyElementKernel, NumpyVarMatKernel


@njit(parallel=True, cache=True)
def _apply_elements(dof, MT, u, Y):  # pragma: no cover - needs numba
    nelem, nldof = dof.shape
    width = MT.shape[1]
    for e in prange(nelem):
        for j in range(width):
            s = 0.0
            for i in range(nldof):
                s += u[dof[e, i]] * MT[i, j]
            Y[e, j] = s


@njit(parallel=True, cache=True)
def _apply_varmat(dof, Ke, u, Y):  # pragma: no cover - needs numba
    nelem, nldof = dof.shape
    for e in prange(nelem):
        for i in range(nldof):
            s = 0.0
            for j in range(nldof):
                s += Ke[e, i, j] * u[dof[e, j]]
            Y[e, i] = s


@njit(parallel=True, cache=True)
def _apply_elements_mat(dof, MT, U2, Y):  # pragma: no cover - needs numba
    """Multi-RHS element apply: ``Y[e, w, b] = sum_i U2[dof[e, i], b]
    * MT[i, w]`` — accumulation ascends over ``i`` exactly like the
    single-RHS kernel, so every column is bit-identical to a matvec."""
    nelem, nldof = dof.shape
    width = MT.shape[1]
    B = U2.shape[1]
    for e in prange(nelem):
        for j in range(width):
            for b in range(B):
                Y[e, j, b] = 0.0
        for i in range(nldof):
            g = dof[e, i]
            for j in range(width):
                m = MT[i, j]
                for b in range(B):
                    Y[e, j, b] += m * U2[g, b]


@njit(parallel=True, cache=True)
def _csr_scatter_acc(indptr, indices, data, X, Y):  # pragma: no cover
    """Node-wise scatter: ``Y[r, :] += data[p] * X[indices[p], :]``.
    Parallel over output rows, so race-free without atomics."""
    n = Y.shape[0]
    ncomp = Y.shape[1]
    for r in prange(n):
        for p in range(indptr[r], indptr[r + 1]):
            d = data[p]
            j = indices[p]
            for c in range(ncomp):
                Y[r, c] += d * X[j, c]


class NumbaElementKernel(NumpyElementKernel):
    """Shared-matrix kernel with jitted apply and scatter (plan
    construction, coefficient folding, and the overlap split reuse the
    numpy kernel)."""

    def matvec(self, u_flat, out_flat, coefs=None):
        if coefs is not None:
            self._fold(coefs)
        elif not self._fixed:
            raise ValueError("kernel built without fixed coefs: pass coefs")
        out_flat.fill(0.0)
        if self.nelem == 0:
            return out_flat
        _apply_elements(self.dof, self.MT, u_flat, self._Y)
        _csr_scatter_acc(
            self.plan.indptr, self.plan.indices, self._data, self._Yb,
            out_flat.reshape(self.nnode, self.ncomp),
        )
        return out_flat

    def matvec_interface(self, u_flat, out_flat):
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matvec")
        out_flat.fill(0.0)
        if k == 0:
            return out_flat
        _apply_elements(self.dof[:k], self.MT, u_flat, self._Y[:k])
        _csr_scatter_acc(
            self._plan_lo.indptr, self._plan_lo.indices, self._data_lo,
            self._Yb, out_flat.reshape(self.nnode, self.ncomp),
        )
        return out_flat

    def matvec_interior(self, u_flat, out_flat):
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matvec")
        if k >= self.nelem:
            return out_flat
        _apply_elements(self.dof[k:], self.MT, u_flat, self._Y[k:])
        _csr_scatter_acc(
            self._plan_hi.indptr, self._plan_hi.indices, self._data_hi,
            self._Yb, out_flat.reshape(self.nnode, self.ncomp),
        )
        return out_flat

    # ------------------------------------------------------- multi-RHS

    def _ensure_batch(self, B: int) -> None:
        """The jitted apply reads straight from the column block, so
        only the slot-major result buffer is needed."""
        if self._batch_B == B:
            return
        self._Ym = np.empty((self.nelem, self.nldof * self.nmat, B))
        self._batch_B = B

    def matmat(self, u2, out2, coefs=None):
        if coefs is not None:
            self._fold(coefs)
        elif not self._fixed:
            raise ValueError("kernel built without fixed coefs: pass coefs")
        B = self._check_block(u2, out2)
        out2.fill(0.0)
        if self.nelem == 0:
            return out2
        self._ensure_batch(B)
        _apply_elements_mat(self.dof, self.MT, u2, self._Ym)
        Xb, Yb = self._block_views(out2, B)
        _csr_scatter_acc(
            self.plan.indptr, self.plan.indices, self._data, Xb, Yb
        )
        return out2

    def matmat_interface(self, u2, out2):
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matmat")
        B = self._check_block(u2, out2)
        out2.fill(0.0)
        if k == 0:
            return out2
        self._ensure_batch(B)
        _apply_elements_mat(self.dof[:k], self.MT, u2, self._Ym[:k])
        Xb, Yb = self._block_views(out2, B)
        _csr_scatter_acc(
            self._plan_lo.indptr, self._plan_lo.indices, self._data_lo,
            Xb, Yb,
        )
        return out2

    def matmat_interior(self, u2, out2):
        k = self.split_elems
        if k is None:
            raise ValueError("call set_split() before the phased matmat")
        B = self._check_block(u2, out2)
        if k >= self.nelem:
            return out2
        self._ensure_batch(B)
        _apply_elements_mat(self.dof[k:], self.MT, u2, self._Ym[k:])
        Xb, Yb = self._block_views(out2, B)
        _csr_scatter_acc(
            self._plan_hi.indptr, self._plan_hi.indices, self._data_hi,
            Xb, Yb,
        )
        return out2


class NumbaVarMatKernel(NumpyVarMatKernel):
    def matvec(self, u_flat, out_flat):
        out_flat.fill(0.0)
        if self.nelem == 0:
            return out_flat
        _apply_varmat(self.dof, self.Ke, u_flat, self._Y)
        _csr_scatter_acc(
            self.plan.indptr, self.plan.indices, self._ones, self._Yb,
            out_flat.reshape(self.nnode, self.ncomp),
        )
        return out_flat


class NumbaBackend:
    name = "numba"

    def element_kernel(self, conn, mats, nnode, ncomp=1, coefs=None):
        return NumbaElementKernel(conn, mats, nnode, ncomp=ncomp, coefs=coefs)

    def varmat_kernel(self, conn, Ke, nnode, ncomp=1):
        return NumbaVarMatKernel(conn, Ke, nnode, ncomp=ncomp)
