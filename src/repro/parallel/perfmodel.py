"""Machine model: from measured work/traffic to Table 2.1 columns.

The explicit solver is bulk-synchronous: every time step each rank (1)
applies its local element operator, (2) exchanges interface partial
sums with its neighbors.  Rank time per step is

    ``t_r = flops_r / rate + neighbors_r * alpha + bytes_r / beta``

and the step time is ``max_r t_r`` (the barrier).  Sustained aggregate
flop rate is ``total_flops / step_time``; parallel efficiency is the
per-PE rate relative to the single-processor rate — exactly how the
paper's Table 2.1 defines it ("degradation in Mflops/PE relative to a
single processor").

:data:`ALPHASERVER_ES45` calibrates the three constants to PSC's
LeMieux: 505 Mflop/s sustained per EV68 processor (the paper's measured
single-PE figure, 25% of the 2 Gflop/s peak) and Quadrics QsNet-like
latency/bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mesh.hexmesh import HexMesh
from repro.mesh.partition import rcb_partition
from repro.parallel.decomposition import DistributedElasticOperator
from repro.parallel.simcomm import SimWorld


@dataclass(frozen=True)
class MachineModel:
    """Four-parameter cluster model.

    ``sync_per_hop`` models the per-step synchronization/contention
    cost of the bulk-synchronous update, growing as ``log2(P)`` — on
    LeMieux this absorbs NIC sharing among the 4 processors of each
    ES45 node and barrier skew, which the paper's own numbers show to
    be scale- rather than granularity-driven (its 512- and 1024-PE rows
    have *larger* grains than the 16-PE row yet lower efficiency).
    """

    name: str
    flop_rate: float  # sustained flop/s per processor
    latency: float  # seconds per message (alpha)
    bandwidth: float  # bytes/s per link (beta)
    sync_per_hop: float = 0.0  # seconds per log2(P) per step
    #: fixed cost per exchange round (gamma): Python dispatch + handoff
    #: overhead paid once per superstep regardless of message sizes —
    #: the term that makes fused (communication-avoiding) stepping pay
    #: off when alpha/gamma rival the per-step compute
    dispatch: float = 0.0

    def rank_step_time(
        self, flops: int, neighbors: int, bytes_: int, nranks: int = 1
    ) -> float:
        hops = np.log2(nranks) if nranks > 1 else 0.0
        return (
            flops / self.flop_rate
            + neighbors * self.latency
            + bytes_ / self.bandwidth
            + hops * self.sync_per_hop
            + self.dispatch
        )

    def fused_step_time(
        self,
        flops: float,
        partners: int,
        bytes_: float,
        k: int,
        nranks: int = 1,
    ) -> float:
        """Modeled per-step time of a rank marching ``k`` steps per
        exchange: ``flops`` is one *inner* step's work (own elements
        plus the redundant halo recompute) and ``partners``/``bytes_``
        the whole window's refresh traffic, amortized over ``k``."""
        hops = np.log2(nranks) if nranks > 1 else 0.0
        window = (
            partners * self.latency
            + bytes_ / self.bandwidth
            + hops * self.sync_per_hop
            + self.dispatch
        )
        return flops / self.flop_rate + window / k


#: PSC LeMieux: HP AlphaServer ES45 (EV68 @ 1 GHz, 2 Gflop/s peak, the
#: paper sustains 505 Mflop/s on one PE — 25% of peak) with a Quadrics
#: interconnect.  ``sync_per_hop`` is calibrated so the 3000-PE
#: Northridge row lands at the paper's 80% efficiency; every other row
#: is then a prediction.
ALPHASERVER_ES45 = MachineModel(
    name="AlphaServer ES45 / Quadrics",
    flop_rate=505e6,
    latency=6.0e-6,
    bandwidth=250e6,
    sync_per_hop=2.8e-3,
)


def machine_from_measurements(
    measurement: dict,
    *,
    flop_rate: float,
    name: str = "measured shared-memory transport",
    sync_per_hop: float = 0.0,
) -> MachineModel:
    """Build a :class:`MachineModel` whose ``alpha``/``beta`` come from
    a real transport instead of hardware datasheets.

    ``measurement`` is the dict returned by
    :func:`repro.parallel.transport.measure_transport` — a ping-pong
    fit of one-way time ``t(n) = alpha + n / beta`` over the process
    transport's shared-memory channels.  ``flop_rate`` is the sustained
    per-process rate measured on the actual element kernel (the scaling
    benchmark times a serial matvec for it).  The result plugs into
    :func:`predict_scalability`, so the same Table 2.1 machinery that
    models LeMieux also predicts *this machine's* strong scaling, which
    ``benchmarks/bench_scaling.py`` compares against measured runs.
    """
    return MachineModel(
        name=name,
        flop_rate=float(flop_rate),
        latency=float(measurement["alpha"]),
        bandwidth=float(measurement["beta"]),
        sync_per_hop=sync_per_hop,
        dispatch=float(measurement.get("gamma", 0.0)),
    )


def choose_steps_per_exchange(
    dist,
    machine: MachineModel,
    *,
    candidates: Sequence[int] = (1, 2, 4, 8),
    nsteps: int | None = None,
) -> tuple[int, dict[int, float]]:
    """Pick the fusion depth ``k`` that minimizes modeled step time.

    For ``k = 1`` the cost profile is the ordinary
    :meth:`~repro.parallel.decomposition.DistributedElasticOperator.per_step_profile`;
    for ``k > 1`` it is
    :meth:`~repro.parallel.decomposition.DistributedElasticOperator.fused_profile`,
    whose flops include the redundant halo recompute and whose traffic
    is one aggregated ``(u, u_prev)`` refresh per window.  The modeled
    per-step time of rank ``r`` is

        ``flops_r / rate + (partners_r * alpha + bytes_r / beta
                            + gamma + log2(P) * sync) / k``

    and the step time is the max over ranks.  Returns ``(best_k,
    {k: modeled_step_seconds})``; ties go to the smaller ``k`` (less
    redundant compute, less ghost memory).  ``nsteps`` (if given)
    drops candidates larger than the run length.
    """
    nranks = dist.world.nranks
    times: dict[int, float] = {}
    for k in sorted(set(int(c) for c in candidates)):
        if k < 1 or (nsteps is not None and k > max(1, nsteps)):
            continue
        if k == 1:
            profile = dist.per_step_profile()
            t = max(
                machine.rank_step_time(
                    p["flops"], p["neighbors"], p["bytes"], nranks
                )
                for p in profile
            )
        else:
            profile = dist.fused_profile(k)
            t = max(
                machine.fused_step_time(
                    p["flops"], p["partners"], p["bytes"], k, nranks
                )
                for p in profile
            )
        times[k] = t
    if not times:
        return 1, {}
    best = min(times, key=lambda k: (times[k], k))
    return best, times


@dataclass
class ScalabilityRow:
    """One row of the Table 2.1 reproduction."""

    pes: int
    model: str
    grid_pts: int
    pts_per_pe: int
    gflops: float
    mflops_per_pe: float
    efficiency: float
    step_seconds: float

    def as_tuple(self):
        return (
            self.pes,
            self.model,
            self.grid_pts,
            self.pts_per_pe,
            self.gflops,
            self.mflops_per_pe,
            self.efficiency,
        )


def predict_scalability(
    mesh: HexMesh,
    lam: np.ndarray,
    mu: np.ndarray,
    pes: int,
    *,
    machine: MachineModel = ALPHASERVER_ES45,
    model_name: str = "",
    baseline_rate: float | None = None,
) -> ScalabilityRow:
    """Partition ``mesh`` onto ``pes`` ranks and model one solver step.

    The partition, per-rank flop counts and interface byte volumes are
    computed exactly from the mesh; only the time conversion uses the
    machine model.  ``baseline_rate`` (flop/s per PE at P=1) defaults to
    the machine's sustained rate, which the model reproduces exactly at
    P=1 (no communication).
    """
    parts = (
        rcb_partition(mesh.elem_centers, pes)
        if pes > 1
        else np.zeros(mesh.nelem, dtype=np.int64)
    )
    world = SimWorld(pes)
    dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
    profile = dist.per_step_profile()
    times = [
        machine.rank_step_time(p["flops"], p["neighbors"], p["bytes"], pes)
        for p in profile
    ]
    step = max(times)
    total_flops = sum(p["flops"] for p in profile)
    rate = total_flops / step  # aggregate flop/s
    per_pe = rate / pes
    base = baseline_rate if baseline_rate is not None else machine.flop_rate
    return ScalabilityRow(
        pes=pes,
        model=model_name,
        grid_pts=mesh.nnode,
        pts_per_pe=mesh.nnode // pes,
        gflops=rate / 1e9,
        mflops_per_pe=per_pe / 1e6,
        efficiency=per_pe / base,
        step_seconds=step,
    )


def fit_interface_constant(
    mesh: HexMesh, pe_counts: Sequence[int]
) -> float:
    """Fit the RCB surface-to-volume law on *measured* partitions.

    For an interior RCB part with ``g`` grid points the interface size
    follows ``n_shared ~ c * g^(2/3)``; this measures ``c`` from real
    partitions of ``mesh`` (max over ranks, the rank that sets the
    barrier).  The Table 2.1 benchmark uses the fitted ``c`` to build
    granularity-matched rank profiles at the paper's grain sizes.
    """
    cs = []
    for p in pe_counts:
        if p < 2:
            continue
        parts = rcb_partition(mesh.elem_centers, p)
        world = SimWorld(p)
        dist = DistributedElasticOperator(
            mesh,
            np.ones(mesh.nelem),
            np.ones(mesh.nelem),
            parts,
            world,
        )
        prof = dist.per_step_profile()
        worst = max(prof, key=lambda q: q["bytes"])
        g = worst["nodes"]
        shared = worst["bytes"] / 24.0  # 3 doubles per shared point
        cs.append(shared / g ** (2.0 / 3.0))
    if not cs:
        raise ValueError("need at least one multi-rank partition")
    return float(np.median(cs))


def predict_paper_row(
    pts_per_pe: int,
    pes: int,
    *,
    machine: MachineModel = ALPHASERVER_ES45,
    c_interface: float,
    flops_per_element: int = 2 * 2 * 24 * 24 + 2 * 24 + 24,
    elems_per_point: float = 0.8,
    neighbors: int = 26,
    model_name: str = "",
) -> ScalabilityRow:
    """Model one Table 2.1 row from its granularity.

    Builds the interior-rank cost profile analytically — elements from
    the grain size, interface points from the *measured* RCB surface
    law ``c_interface`` — and converts with the machine model.  This is
    how the paper-scale rows (up to 102M points on 3000 PEs) are
    reproduced without holding a 100M-point mesh in a numpy prototype;
    the law itself is validated against real partitions in
    :func:`fit_interface_constant`.
    """
    nelem = int(pts_per_pe * elems_per_point)
    flops = nelem * flops_per_element + 12 * pts_per_pe
    shared = c_interface * pts_per_pe ** (2.0 / 3.0)
    bytes_ = int(shared * 24)
    step = machine.rank_step_time(flops, neighbors, bytes_, pes)
    rate_pe = flops / step
    base = machine.flop_rate
    return ScalabilityRow(
        pes=pes,
        model=model_name,
        grid_pts=pts_per_pe * pes,
        pts_per_pe=pts_per_pe,
        gflops=rate_pe * pes / 1e9,
        mflops_per_pe=rate_pe / 1e6,
        efficiency=rate_pe / base,
        step_seconds=step,
    )


def format_table(rows: list[ScalabilityRow]) -> str:
    """Render rows in the layout of the paper's Table 2.1."""
    header = (
        f"{'PEs':>5} {'model':>8} {'grid pts':>12} {'pts/PE':>10} "
        f"{'Gflop/s':>9} {'Mflop/PE':>9} {'efficiency':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.pes:>5} {r.model:>8} {r.grid_pts:>12,} {r.pts_per_pe:>10,} "
            f"{r.gflops:>9.3f} {r.mflops_per_pe:>9.0f} {r.efficiency:>10.3f}"
        )
    return "\n".join(lines)
