"""Pluggable-transport MPI with exact traffic accounting.

:class:`SimComm` is the per-rank communicator handle with the usual
point-to-point and collective operations (numpy-buffer style, mirroring
mpi4py's upper-case API, with the historical lower-case aliases kept).
It is a thin facade over a **transport** — any object implementing the
small world-side protocol below — so the same SPMD rank program runs
unchanged over either backing:

* :class:`SimWorld` (this module): ``P`` in-process mailboxes moved
  through deques — parallel *semantics* (who sends what to whom each
  step) execute for real, only the clock is modeled;
* :class:`repro.parallel.transport.ProcWorld`: persistent worker
  processes with double-buffered shared-memory channels — real cores,
  real wall time.

Every send is accounted (count + payload bytes) per rank, which the
machine model converts to network time, and which the transport
equivalence tests compare across backings message for message.

Transport protocol (what a world must provide to back a ``SimComm``)::

    nranks                      -> int
    _send_from(rank, data, dest, tag)
    _recv_at(rank, source, tag, out=None) -> np.ndarray
    _barrier(rank)
    _add_flops(rank, n)
    rank_stats(rank)            -> TrafficStats
    _heartbeat(rank, step)      (optional: liveness ping, may no-op)
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

#: reserved tag for collective traffic (keeps it out of the
#: point-to-point tag space used by the solvers)
COLLECTIVE_TAG = -1


@dataclass
class TrafficStats:
    """Per-rank communication and work accounting.

    ``peers`` attributes every accounted send to its ``(src, dst)``
    rank pair as ``(messages, bytes)``; the scalar fields remain the
    authoritative totals (callers still bump them directly for modeled
    traffic that has no peer, e.g. machine-model estimates), and
    :meth:`record_send` keeps both in lockstep.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    flops: int = 0
    peers: dict = field(default_factory=dict)
    #: exchange rounds entered (one per superstep that touched the
    #: transport) — lets reports derive messages-per-step under fused
    #: stepping.  Not part of :meth:`as_tuple`, which stays a 3-tuple
    #: for compatibility.
    exchanges: int = 0

    def record_send(self, src: int, dst: int, nbytes: int) -> None:
        """Account one message of ``nbytes`` from ``src`` to ``dst``:
        bumps the scalar totals and the per-pair matrix together."""
        self.messages_sent += 1
        self.bytes_sent += nbytes
        m, b = self.peers.get((src, dst), (0, 0))
        self.peers[(src, dst)] = (m + 1, b + nbytes)

    def copy(self) -> "TrafficStats":
        return TrafficStats(
            self.messages_sent,
            self.bytes_sent,
            self.flops,
            dict(self.peers),
            self.exchanges,
        )

    def merge(self, other: "TrafficStats") -> None:
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.flops += other.flops
        self.exchanges += other.exchanges
        for pair, (m, b) in other.peers.items():
            pm, pb = self.peers.get(pair, (0, 0))
            self.peers[pair] = (pm + m, pb + b)

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.messages_sent, self.bytes_sent, self.flops)

    def peers_payload(self) -> list:
        """Pickle/pipe-friendly form of the peer matrix."""
        return [
            (src, dst, m, b)
            for (src, dst), (m, b) in sorted(self.peers.items())
        ]

    def merge_peers_payload(self, payload) -> None:
        for src, dst, m, b in payload:
            pm, pb = self.peers.get((src, dst), (0, 0))
            self.peers[(src, dst)] = (pm + m, pb + b)


def binomial_rounds(nranks: int) -> list[list[tuple[int, int]]]:
    """Binomial reduction tree: per round, the ``(child, parent)``
    pairs at distance ``2^k``.  Reducing runs the rounds in order
    (children send to parents); broadcasting runs them reversed
    (parents send to children).  Every rank appears as a child exactly
    once, so a full allreduce costs each rank at most ``log2(P) + 1``
    messages — the realistic collective the machine model assumes,
    rather than a ``P``-message gather-to-root."""
    rounds = []
    k = 1
    while k < nranks:
        rounds.append(
            [(r + k, r) for r in range(0, nranks, 2 * k) if r + k < nranks]
        )
        k *= 2
    return rounds


class SimComm:
    """Rank-local communicator handle over a pluggable transport.

    ``world`` is any transport implementing the module-level protocol;
    ``rank`` is this endpoint's rank in it.
    """

    def __init__(self, world, rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.nranks

    @property
    def stats(self) -> TrafficStats:
        return self.world.rank_stats(self.rank)

    # -------------------------------------------------- point to point

    def Send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        """Ship ``data`` to ``dest``; accounted against this rank.
        Completes locally (buffered) — the BSP schedules used here
        post all sends of a superstep before any receive."""
        self.world._send_from(self.rank, data, dest, tag)

    def Recv(
        self, source: int, tag: int = 0, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Next message from ``source``; written into ``out`` when
        given (zero extra copies on the hot path)."""
        return self.world._recv_at(self.rank, source, tag, out)

    def Barrier(self) -> None:
        self.world._barrier(self.rank)

    def Allreduce(self, value: float, op=sum) -> float:
        """Scalar allreduce over a binomial tree of Send/Recv pairs
        (reduce to rank 0, then broadcast), so the accounting reflects
        ``O(log P)`` critical-path messages.  ``op`` combines a list of
        two partial values.  Requires a concurrent transport (every
        rank must call it); in-process use goes through
        :meth:`SimWorld.allreduce`, which executes the same tree."""
        v = float(value)
        rounds = binomial_rounds(self.size)
        for pairs in rounds:  # reduce
            for child, parent in pairs:
                if self.rank == child:
                    self.Send(np.array([v]), parent, tag=COLLECTIVE_TAG)
                elif self.rank == parent:
                    got = self.Recv(child, tag=COLLECTIVE_TAG)
                    v = float(op([v, float(got[0])]))
        for pairs in reversed(rounds):  # broadcast
            for child, parent in pairs:
                if self.rank == parent:
                    self.Send(np.array([v]), child, tag=COLLECTIVE_TAG)
                elif self.rank == child:
                    v = float(self.Recv(parent, tag=COLLECTIVE_TAG)[0])
        return v

    # historical lower-case aliases (pre-transport API)
    send = Send
    recv = Recv
    barrier = Barrier

    def add_flops(self, n: int) -> None:
        self.world._add_flops(self.rank, n)

    def heartbeat(self, step: int) -> None:
        """Liveness ping for long-running rank programs: lets the
        master's failure detector distinguish "slow" from "hung".
        Rate-limited inside the transport (a no-op in-process), so
        calling it every time step is fine."""
        hb = getattr(self.world, "_heartbeat", None)
        if hb is not None:
            hb(self.rank, step)


class SimWorld:
    """A set of ``P`` simulated ranks sharing in-memory mailboxes."""

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self._mail: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = [TrafficStats() for _ in range(nranks)]

    def comm(self, rank: int) -> SimComm:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return SimComm(self, rank)

    def comms(self) -> list[SimComm]:
        return [self.comm(r) for r in range(self.nranks)]

    def total_stats(self) -> TrafficStats:
        out = TrafficStats()
        for s in self.stats:
            out.merge(s)
        return out

    def allreduce(self, values: list[float], op=sum) -> float:
        """World-level scalar allreduce (one value per rank), executed
        as a binomial reduce + broadcast through the mailboxes — the
        per-rank message/byte accounting is *measured* from the same
        tree the process transport walks, not modeled."""
        if len(values) != self.nranks:
            raise ValueError("one value per rank required")
        vals = [float(v) for v in values]
        rounds = binomial_rounds(self.nranks)
        for pairs in rounds:  # reduce toward rank 0
            for child, parent in pairs:
                self.comm(child).Send(
                    np.array([vals[child]]), parent, tag=COLLECTIVE_TAG
                )
            for child, parent in pairs:
                got = self.comm(parent).Recv(child, tag=COLLECTIVE_TAG)
                vals[parent] = float(op([vals[parent], float(got[0])]))
        for pairs in reversed(rounds):  # broadcast back down
            for child, parent in pairs:
                self.comm(parent).Send(
                    np.array([vals[parent]]), child, tag=COLLECTIVE_TAG
                )
            for child, parent in pairs:
                vals[child] = float(
                    self.comm(child).Recv(parent, tag=COLLECTIVE_TAG)[0]
                )
        return vals[0]

    # ------------------------------------------------ transport protocol

    def _send_from(
        self, rank: int, data: np.ndarray, dest: int, tag: int
    ) -> None:
        data = np.asarray(data)
        self._mail[(rank, dest, tag)].append(data.copy())
        self.stats[rank].record_send(rank, dest, data.nbytes)

    def _recv_at(
        self, rank: int, source: int, tag: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        box = self._mail[(source, rank, tag)]
        if not box:
            raise RuntimeError(
                f"rank {rank}: no message from {source} tag {tag}"
            )
        got = box.popleft()
        if out is not None:
            np.copyto(out, got)
            return out
        return got

    def _barrier(self, rank: int) -> None:
        pass  # supersteps are globally ordered in-process

    def _add_flops(self, rank: int, n: int) -> None:
        self.stats[rank].flops += int(n)

    def rank_stats(self, rank: int) -> TrafficStats:
        return self.stats[rank]
