"""In-process simulated MPI with exact traffic accounting.

:class:`SimWorld` owns ``P`` rank mailboxes; :class:`SimComm` is the
per-rank handle with the usual point-to-point and collective operations
(numpy-buffer style, mirroring mpi4py's upper-case API).  Messages move
through in-memory queues, and every send is accounted (count + bytes),
which the machine model converts to network time.

This is the substitution documented in DESIGN.md: parallel *semantics*
(who sends what to whom each step) are executed for real; only the
clock is modeled.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrafficStats:
    """Per-rank communication and work accounting."""

    messages_sent: int = 0
    bytes_sent: int = 0
    flops: int = 0

    def copy(self) -> "TrafficStats":
        return TrafficStats(self.messages_sent, self.bytes_sent, self.flops)


class SimWorld:
    """A set of ``P`` simulated ranks sharing in-memory mailboxes."""

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self._mail: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = [TrafficStats() for _ in range(nranks)]

    def comm(self, rank: int) -> "SimComm":
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        return [self.comm(r) for r in range(self.nranks)]

    def total_stats(self) -> TrafficStats:
        out = TrafficStats()
        for s in self.stats:
            out.messages_sent += s.messages_sent
            out.bytes_sent += s.bytes_sent
            out.flops += s.flops
        return out

    def allreduce(self, values: list[float], op=sum) -> float:
        """World-level scalar allreduce (one value per rank).

        Accounted as a binary reduction + broadcast tree: ``2 ceil(log2 P)``
        8-byte messages on every rank's critical path.
        """
        if len(values) != self.nranks:
            raise ValueError("one value per rank required")
        hops = int(np.ceil(np.log2(max(self.nranks, 2))))
        for st in self.stats:
            st.messages_sent += 2 * hops
            st.bytes_sent += 16 * hops
        return op(values)


class SimComm:
    """Rank-local communicator handle."""

    def __init__(self, world: SimWorld, rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.nranks

    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        """Enqueue a message; accounted against this rank."""
        data = np.asarray(data)
        self.world._mail[(self.rank, dest, tag)].append(data.copy())
        st = self.world.stats[self.rank]
        st.messages_sent += 1
        st.bytes_sent += data.nbytes

    def recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Dequeue the next message from ``source`` (must exist — the
        BSP schedules used here post all sends before any recv)."""
        box = self.world._mail[(source, self.rank, tag)]
        if not box:
            raise RuntimeError(
                f"rank {self.rank}: no message from {source} tag {tag}"
            )
        return box.popleft()

    def add_flops(self, n: int) -> None:
        self.world.stats[self.rank].flops += int(n)

