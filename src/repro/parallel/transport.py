"""Real shared-memory SPMD transport for the distributed solver.

:class:`ProcWorld` runs ``P`` **persistent worker processes** (spawned
once, reused across programs) connected by double-buffered
shared-memory channels, so :class:`repro.parallel.simcomm.SimComm` —
the same mpi4py-style handle the in-process simulator hands out — is
backed by real cores and real wall time:

* **channels**: one per ordered rank pair, a 2-slot ring in anonymous
  shared memory (``multiprocessing.RawArray``) guarded by a pair of
  semaphores.  A send copies the payload into a free slot and returns
  immediately; with the solvers' bulk-synchronous schedules at most two
  messages are ever in flight per channel, so sends never block — which
  is exactly what lets the interior matvec overlap the ghost exchange.
  Every payload carries a CRC32 (verified on receive when
  ``verify_crc``) so in-flight corruption surfaces as a structured
  :class:`TransportCorruption` instead of silent garbage;
* **programs**: any picklable ``fn(comm, payload) -> result`` submitted
  with :meth:`ProcWorld.run_spmd`; each worker executes it SPMD-style
  against its own rank's endpoint and ships the (small) result back
  over a pipe.  Bulk state moves through named
  :mod:`multiprocessing.shared_memory` blocks instead (see
  :func:`create_shared_array` / :func:`attach_shared_array`);
* **accounting**: every worker counts messages/bytes/flops in its own
  :class:`TrafficStats`; ``run_spmd`` merges the counts into the
  master-side ``world.stats``, so the machine model and the transport
  equivalence tests see exactly the numbers the simulator produces;
* **failure detection**: all channel waits and the result gather are
  bounded.  Workers piggyback heartbeats on the result pipe
  (:meth:`SimComm.heartbeat`, rate-limited); the master's gather polls
  the pipes and worker liveness, so a rank that dies (pipe EOF /
  ``is_alive`` false) or goes silent past ``hang_timeout`` raises
  :class:`WorkerFailure` naming the ranks — the distributed solver's
  recovery loop then tears the pool down (:meth:`ProcWorld.respawn`)
  and rewinds to the last collective checkpoint.

Teardown is guaranteed: worlds are registered with ``atexit`` and
carry finalizers, named shared-memory segments are tracked in a
module registry and unlinked on interpreter exit even when an
exception skips the owner's ``finally`` — no leaked ``/dev/shm``
segments after a crashed run (tested).

The channel capacity bounds one message; the default fits the interface
blocks of meshes up to a few hundred thousand elements — pass a larger
``slot_bytes`` for bigger partitions (the solver raises a sizing error
rather than deadlocking).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
import traceback
import weakref
import zlib
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from repro.parallel.simcomm import SimComm, TrafficStats
from repro.telemetry import spans

_HDR = 6  # per-slot header int64s: tag, ndim, shape[0..2], crc32


class TransportCorruption(RuntimeError):
    """A channel payload failed its CRC32 check on receive."""


class WorkerFailure(RuntimeError):
    """One or more SPMD ranks failed.

    ``ranks`` lists the failed ranks; ``fatal`` is True when the worker
    pool itself is broken (dead or hung processes — the channels may
    hold inconsistent semaphore state) and must be respawned before the
    next program.  Program-level exceptions (``fatal=False``) leave the
    pool reusable.
    """

    def __init__(self, detail: str, *, ranks=(), fatal: bool = False):
        super().__init__(detail)
        self.ranks = list(ranks)
        self.fatal = fatal


class _Channel:
    """One-directional double-buffered message slot pair in shared
    memory.  Exactly one process sends and one receives; each side
    keeps its own slot cursor, and strict FIFO alternation keeps the
    cursors consistent without any shared index."""

    def __init__(self, ctx, slot_bytes: int, timeout: float,
                 verify_crc: bool = True):
        if slot_bytes % 8:
            raise ValueError("slot_bytes must be a multiple of 8")
        self.slot_bytes = int(slot_bytes)
        self.timeout = float(timeout)
        self.verify_crc = bool(verify_crc)
        self._hdr = ctx.RawArray("q", 2 * _HDR)
        self._buf = ctx.RawArray("b", 2 * self.slot_bytes)
        self._free = ctx.Semaphore(2)
        self._avail = ctx.Semaphore(0)
        # process-local cursors (the object is copied into each side)
        self._w = 0
        self._r = 0

    def send(self, data: np.ndarray, tag: int, *,
             corrupt: bool = False) -> int:
        """Copy ``data`` into the next free slot; returns payload
        bytes.  Blocks only when two messages are already in flight.
        ``corrupt=True`` (fault injection only) flips a payload byte
        *after* the CRC is computed, so the receiver's check fires."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim > 3:
            raise ValueError("channel messages are at most 3-D")
        if data.nbytes > self.slot_bytes:
            raise ValueError(
                f"message of {data.nbytes} bytes exceeds the channel "
                f"capacity of {self.slot_bytes}; build the ProcWorld "
                "with a larger slot_bytes"
            )
        if not self._free.acquire(timeout=self.timeout):
            raise RuntimeError(
                f"send timed out after {self.timeout}s (receiver not "
                "draining — deadlocked or dead peer?)"
            )
        base = self._w * _HDR
        self._hdr[base] = tag
        self._hdr[base + 1] = data.ndim
        for i in range(3):
            self._hdr[base + 2 + i] = (
                data.shape[i] if i < data.ndim else 1
            )
        dst = np.frombuffer(
            self._buf,
            dtype=np.float64,
            count=data.size,
            offset=self._w * self.slot_bytes,
        )
        dst[:] = data.reshape(-1)
        self._hdr[base + 5] = (
            zlib.crc32(dst) & 0xFFFFFFFF if self.verify_crc else 0
        )
        if corrupt and data.size:
            dst.view(np.uint8)[0] ^= 0xFF
        self._avail.release()
        self._w ^= 1
        return data.nbytes

    def recv(self, tag: int, out: np.ndarray | None = None) -> np.ndarray:
        """Next message (FIFO); verified against the expected ``tag``
        and its CRC32; written into ``out`` when given."""
        if not self._avail.acquire(timeout=self.timeout):
            raise RuntimeError(
                f"recv timed out after {self.timeout}s (no message — "
                "deadlocked or dead peer?)"
            )
        base = self._r * _HDR
        got_tag = int(self._hdr[base])
        ndim = int(self._hdr[base + 1])
        shape = tuple(int(self._hdr[base + 2 + i]) for i in range(ndim))
        n = int(np.prod(shape)) if ndim else 1
        src = np.frombuffer(
            self._buf,
            dtype=np.float64,
            count=n,
            offset=self._r * self.slot_bytes,
        )
        if got_tag != tag:
            raise RuntimeError(
                f"message tag mismatch: expected {tag}, got {got_tag}"
            )
        if self.verify_crc:
            want = int(self._hdr[base + 5]) & 0xFFFFFFFF
            got = zlib.crc32(src) & 0xFFFFFFFF
            if got != want:
                raise TransportCorruption(
                    f"payload CRC mismatch on tag {tag}: expected "
                    f"{want:#010x}, got {got:#010x}"
                )
        if out is not None:
            np.copyto(out.reshape(-1), src)
            result = out
        else:
            result = src.reshape(shape).copy()
        self._free.release()
        self._r ^= 1
        return result


class ProcTransport:
    """Worker-side transport endpoint: implements the ``SimComm``
    world protocol for exactly one rank, against shared-memory
    channels.  Also carries the worker's heartbeat (piggybacked on the
    result pipe, rate-limited) and any bound fault-injection plan."""

    def __init__(self, rank, nranks, send_chs, recv_chs, barrier,
                 conn=None, heartbeat_interval: float = 0.5):
        self.rank = int(rank)
        self.nranks = int(nranks)
        self._send_chs = send_chs  # dest rank -> _Channel
        self._recv_chs = recv_chs  # source rank -> _Channel
        self._barrier_obj = barrier
        self._stats = TrafficStats()
        self._conn = conn
        self._hb_interval = float(heartbeat_interval)
        self._hb_last = 0.0
        #: fault-injection context, bound per program by the rank
        #: program (see repro.resilience.faults.FaultPlan)
        self.fault_plan = None
        self.fault_step = -1

    def _check(self, rank: int) -> None:
        if rank != self.rank:
            raise ValueError(
                f"process transport endpoint is rank {self.rank}, "
                f"not {rank}"
            )

    def _send_from(self, rank, data, dest, tag) -> None:
        self._check(rank)
        corrupt = False
        if self.fault_plan is not None:
            action = self.fault_plan.send_action(
                self.rank, self.fault_step, dest
            )
            if action == "drop":
                return  # swallowed: the peer's recv will time out
            corrupt = action == "corrupt"
        nbytes = self._send_chs[dest].send(data, tag, corrupt=corrupt)
        self._stats.record_send(self.rank, dest, nbytes)

    def _recv_at(self, rank, source, tag, out=None) -> np.ndarray:
        self._check(rank)
        return self._recv_chs[source].recv(tag, out)

    def _barrier(self, rank) -> None:
        self._check(rank)
        self._barrier_obj.wait()

    def _add_flops(self, rank, n) -> None:
        self._check(rank)
        self._stats.flops += int(n)

    def _heartbeat(self, rank, step) -> None:
        """Rate-limited liveness ping to the master over the result
        pipe (at most one every ``heartbeat_interval`` seconds — the
        per-step cost is one clock read)."""
        self._check(rank)
        if self._conn is None:
            return
        now = time.perf_counter()
        if now - self._hb_last >= self._hb_interval:
            self._hb_last = now
            try:
                self._conn.send(("hb", int(step)))
            except (BrokenPipeError, OSError):
                pass

    def rank_stats(self, rank) -> TrafficStats:
        self._check(rank)
        return self._stats


def _worker_main(rank, nranks, conn, send_chs, recv_chs, barrier,
                 heartbeat_interval):
    """Persistent worker loop: execute submitted programs until told
    to stop, shipping results and traffic counts back over the pipe."""
    transport = ProcTransport(
        rank, nranks, send_chs, recv_chs, barrier, conn,
        heartbeat_interval,
    )
    comm = SimComm(transport, rank)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if msg[0] == "stop":
            conn.close()
            return
        # run messages are ("run", program, payload) or, when the
        # master has an active request trace, ("run", program,
        # payload, trace_id) — length-guarded like the result tuple so
        # either side can be the older protocol
        program, payload = msg[1], msg[2]
        trace_ctx = msg[3] if len(msg) > 3 else None
        prev_trace = spans.set_trace_context(trace_ctx)
        try:
            result = program(comm, payload)
            conn.send(
                (
                    "ok",
                    result,
                    transport._stats.as_tuple(),
                    transport._stats.peers_payload(),
                    transport._stats.exchanges,
                )
            )
            transport._stats = TrafficStats()
        except BaseException:
            transport._stats = TrafficStats()
            transport.fault_plan = None
            try:
                conn.send(("err", traceback.format_exc()))
            except Exception:
                return
        finally:
            spans.set_trace_context(prev_trace)


#: live worlds, closed at interpreter exit even when the owner's
#: ``close``/``finally`` never ran (crash paths)
_LIVE_WORLDS: "weakref.WeakSet" = weakref.WeakSet()


def _close_live_worlds() -> None:  # pragma: no cover - exit hook
    for world in list(_LIVE_WORLDS):
        try:
            world.close(force=True)
        except Exception:
            pass


atexit.register(_close_live_worlds)


class ProcWorld:
    """Persistent multiprocessing SPMD executor.

    Mirrors the master-side surface of :class:`SimWorld` that the
    decomposition and solver layers use (``nranks``, ``stats``,
    ``total_stats``), and adds :meth:`run_spmd` for executing rank
    programs on real cores.  Workers are daemonic: they die with the
    master even if :meth:`close` is never reached.

    Failure handling: ``hang_timeout`` (seconds, None = disabled)
    bounds how long a rank may go without any pipe activity
    (result/error/heartbeat) before the gather declares it hung; dead
    workers are detected within one poll tick either way.  Both paths
    tear the pool down and raise :class:`WorkerFailure` with
    ``fatal=True`` — call :meth:`respawn` before reuse.
    """

    def __init__(
        self,
        nranks: int,
        *,
        slot_bytes: int = 1 << 18,
        timeout: float = 120.0,
        start_method: str | None = None,
        hang_timeout: float | None = None,
        heartbeat_interval: float = 0.5,
        verify_crc: bool = True,
        poll_tick: float = 0.05,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = int(nranks)
        self.slot_bytes = int(slot_bytes)
        self.timeout = float(timeout)
        self.hang_timeout = hang_timeout
        self.heartbeat_interval = float(heartbeat_interval)
        self.verify_crc = bool(verify_crc)
        self.poll_tick = float(poll_tick)
        self.stats = [TrafficStats() for _ in range(nranks)]
        #: recovery accounting: pool respawns over this world's lifetime
        self.respawns = 0
        # start the resource tracker *before* forking workers so every
        # worker shares it: attach-time registrations then deduplicate
        # against the creator's and the creator's unlink retires the
        # segment exactly once (a tracker forked mid-lifetime would
        # double-unlink shared arrays and warn at exit)
        try:  # pragma: no cover - stdlib-internal but stable API
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._ctx = mp.get_context(start_method)
        self._spawn()
        _LIVE_WORLDS.add(self)

    def _spawn(self) -> None:
        """Build fresh channels, barrier, pipes, and worker processes
        (initial start and every :meth:`respawn`)."""
        nranks = self.nranks
        ctx = self._ctx
        self._channels = {
            (i, j): _Channel(
                ctx, self.slot_bytes, self.timeout, self.verify_crc
            )
            for i in range(nranks)
            for j in range(nranks)
            if i != j
        }
        barrier = ctx.Barrier(nranks)
        self._pipes = []
        self._procs = []
        for r in range(nranks):
            parent, child = ctx.Pipe()
            send_chs = {
                j: ch for (i, j), ch in self._channels.items() if i == r
            }
            recv_chs = {
                i: ch for (i, j), ch in self._channels.items() if j == r
            }
            p = ctx.Process(
                target=_worker_main,
                args=(r, nranks, child, send_chs, recv_chs, barrier,
                      self.heartbeat_interval),
                daemon=True,
            )
            p.start()
            child.close()
            self._pipes.append(parent)
            self._procs.append(p)
        self._closed = False

    # ------------------------------------------------------- execution

    def run_spmd(self, program, payloads: list,
                 trace_context: str | None = None) -> list:
        """Run ``program(comm, payload)`` on every rank concurrently;
        returns the per-rank results.  Worker traffic counts are merged
        into ``self.stats``.

        ``trace_context`` piggybacks the master's request trace id on
        the run message (a fourth tuple element, absent when None for
        wire compatibility); workers set it as their ambient trace
        context for the program's duration so per-rank timelines and
        any worker-side spans stitch into the request's trace.

        Failures raise :class:`WorkerFailure`: program-level exceptions
        carry the failing ranks' tracebacks (``fatal=False``, pool
        still usable); dead or hung workers tear the whole pool down
        first (``fatal=True`` — :meth:`respawn` before the next
        program).
        """
        if self._closed:
            raise RuntimeError("world is closed")
        if len(payloads) != self.nranks:
            raise ValueError("one payload per rank required")
        if trace_context is None:
            trace_context = spans.get_trace_context()
        for r, pipe in enumerate(self._pipes):
            if trace_context is None:
                pipe.send(("run", program, payloads[r]))
            else:
                pipe.send(("run", program, payloads[r], trace_context))
        results = [None] * self.nranks
        errors = []
        pending = set(range(self.nranks))
        now = time.perf_counter()
        last_seen = {r: now for r in pending}
        dead: dict[int, str] = {}
        while pending:
            by_pipe = {self._pipes[r]: r for r in pending}
            try:
                ready = mp_connection.wait(
                    list(by_pipe), timeout=self.poll_tick
                )
            except OSError:
                ready = []
            for pipe in ready:
                r = by_pipe[pipe]
                try:
                    msg = pipe.recv()
                except (EOFError, OSError):
                    # reap briefly so the report can name the exit code
                    # (e.g. 173 for an injected kill)
                    self._procs[r].join(timeout=0.5)
                    code = self._procs[r].exitcode
                    dead[r] = (
                        f"worker died (exit code {code})"
                        if code is not None
                        else "worker died (pipe closed)"
                    )
                    pending.discard(r)
                    continue
                last_seen[r] = time.perf_counter()
                if msg[0] == "hb":
                    continue
                pending.discard(r)
                if msg[0] == "ok":
                    results[r] = msg[1]
                    st = self.stats[r]
                    m, b, f = msg[2]
                    st.messages_sent += m
                    st.bytes_sent += b
                    st.flops += f
                    if len(msg) > 3:
                        st.merge_peers_payload(msg[3])
                    if len(msg) > 4:
                        st.exchanges += msg[4]
                else:
                    errors.append((r, msg[1]))
            now = time.perf_counter()
            for r in list(pending):
                if not self._procs[r].is_alive():
                    code = self._procs[r].exitcode
                    dead[r] = f"worker died (exit code {code})"
                    pending.discard(r)
                elif (
                    self.hang_timeout is not None
                    and now - last_seen[r] > self.hang_timeout
                ):
                    dead[r] = (
                        f"worker hung (no pipe activity for "
                        f"{self.hang_timeout}s)"
                    )
                    pending.discard(r)
            if dead:
                # the pool is broken: peers of a dead rank are blocked
                # in channel waits — tear everything down now instead
                # of letting each of them ride out its own timeout
                self.close(force=True)
                detail = "\n".join(
                    f"-- rank {r} --\n{why}" for r, why in sorted(dead.items())
                )
                if errors:
                    detail += "\n" + "\n".join(
                        f"-- rank {r} --\n{tb}" for r, tb in errors
                    )
                raise WorkerFailure(
                    f"{len(dead)} rank(s) failed in SPMD program "
                    f"(pool torn down, respawn before reuse):\n{detail}",
                    ranks=sorted(set(dead) | {r for r, _ in errors}),
                    fatal=True,
                )
        if errors:
            detail = "\n".join(f"-- rank {r} --\n{tb}" for r, tb in errors)
            raise WorkerFailure(
                f"{len(errors)} rank(s) failed in SPMD program:\n{detail}",
                ranks=[r for r, _ in errors],
                fatal=False,
            )
        return results

    def allreduce(self, values: list[float], op=sum) -> float:
        """World-level convenience matching :meth:`SimWorld.allreduce`:
        every worker walks the same binomial tree through the real
        channels.  ``op`` must be picklable (module-level)."""
        if len(values) != self.nranks:
            raise ValueError("one value per rank required")
        results = self.run_spmd(
            _allreduce_program, [(float(v), op) for v in values]
        )
        return results[0]

    def total_stats(self) -> TrafficStats:
        out = TrafficStats()
        for s in self.stats:
            out.merge(s)
        return out

    def rank_stats(self, rank: int) -> TrafficStats:
        return self.stats[rank]

    # --------------------------------------------------------- lifetime

    def respawn(self) -> None:
        """Tear down the worker pool (terminating stuck processes) and
        start a fresh one — fresh channels too, since a killed worker
        can leave the old semaphores unbalanced.  Traffic stats and the
        master-side world object survive; in-flight program state does
        not (that is what checkpoints are for)."""
        self.close(force=True)
        self._spawn()
        self.respawns += 1

    def ensure_running(self) -> None:
        """Make the pool usable, re-attaching if necessary: a closed
        world spawns fresh workers (so ``close`` + ``ensure_running``
        is an explicit shutdown/re-attach cycle — a long-lived engine
        can park its pool between bursts of traffic), and a world
        whose workers died respawns.  A healthy pool is untouched, so
        calling this before every submission costs two checks."""
        if self._closed:
            self._spawn()
            _LIVE_WORLDS.add(self)
            self.respawns += 1
            return
        if any(not p.is_alive() for p in self._procs):
            self.respawn()

    @property
    def closed(self) -> bool:
        """True between :meth:`close` and the next re-attach."""
        return self._closed

    def close(self, force: bool = False) -> None:
        """Stop the workers; idempotent.  ``force`` terminates without
        the cooperative stop handshake (used on broken pools, where
        workers may be blocked in channel waits)."""
        if self._closed:
            return
        self._closed = True
        if not force:
            for pipe in self._pipes:
                try:
                    pipe.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for p in self._procs:
            p.join(timeout=0.2 if force else 5.0)
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            if p.is_alive():
                p.join(timeout=2.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcWorld":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close(force=True)
        except Exception:
            pass


def _allreduce_program(comm, payload):
    value, op = payload
    return comm.Allreduce(value, op=op)


# ----------------------------------------------- shared bulk state

#: master-side registry of created-but-not-yet-unlinked segments; the
#: exit hook retires anything a crash path left behind, so a failed
#: ``run_spmd``/gather cannot leak ``/dev/shm`` segments
_SHM_REGISTRY: dict[str, shared_memory.SharedMemory] = {}


def _cleanup_shared_segments() -> None:  # pragma: no cover - exit hook
    for name, shm in list(_SHM_REGISTRY.items()):
        _SHM_REGISTRY.pop(name, None)
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


atexit.register(_cleanup_shared_segments)


def create_shared_array(shape, dtype=np.float64):
    """Create a named shared-memory array; returns ``(shm, view)``.
    The caller owns the block: release it with
    :func:`release_shared_array` (or close **and unlink** it manually —
    and drop the view first, an exported buffer cannot be closed).
    Segments still registered at interpreter exit are unlinked by the
    module's ``atexit`` hook, so exception paths cannot leak them."""
    size = int(np.prod(shape)) * np.dtype(dtype).itemsize
    shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
    _SHM_REGISTRY[shm.name] = shm
    view = np.frombuffer(shm.buf, dtype=dtype)[: int(np.prod(shape))]
    return shm, view.reshape(shape)


def release_shared_array(shm) -> None:
    """Close and unlink a segment from :func:`create_shared_array`
    (idempotent; drop any exported views first)."""
    _SHM_REGISTRY.pop(shm.name, None)
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def attach_shared_array(name, shape, dtype=np.float64):
    """Attach to a named shared-memory array from a worker; returns
    ``(shm, view)``.

    Under the fork start method (the ProcWorld default on Linux) the
    workers share the parent's resource-tracker process, whose cache
    holds one entry per segment name — the worker's attach re-register
    deduplicates against the creator's, and the creator's ``unlink``
    retires it exactly once.  (Unregistering here instead would strip
    the creator's entry and make its unlink warn.)"""
    shm = shared_memory.SharedMemory(name=name)
    view = np.frombuffer(shm.buf, dtype=dtype)[: int(np.prod(shape))]
    return shm, view.reshape(shape)


# ------------------------------------------- transport measurement


def _pingpong_program(comm, payload):
    """Ranks 0 and 1 exchange fixed-size message bursts; returns, on
    rank 0, the median round time per ``(size, burst)`` configuration.

    One round of burst ``m`` is: rank 0 sends ``m`` back-to-back
    messages, rank 1 receives ``m`` and replies with ``m``, rank 0
    receives them — ``2m`` transfers total.  Varying ``m`` separates
    the per-round fixed cost (gamma: Python dispatch, wakeup) from the
    per-message cost (alpha), which a single-message ping-pong cannot
    do.  The median over ``repeats`` rounds rejects the scheduler
    outliers that previously made the raw means non-monotone in size.
    """
    sizes, bursts, repeats = payload
    if comm.rank > 1 or comm.size < 2:
        return None
    samples = []
    for nbytes in sizes:
        arr = np.zeros(max(nbytes // 8, 1))
        for m in bursts:
            if comm.rank == 0:
                rounds = []
                for it in range(repeats + 1):
                    t0 = time.perf_counter()
                    for _ in range(m):
                        comm.Send(arr, 1, tag=99)
                    for _ in range(m):
                        comm.Recv(1, tag=99)
                    if it > 0:  # round 0 warms the channel both ways
                        rounds.append(time.perf_counter() - t0)
                samples.append(
                    (int(arr.nbytes), int(m), float(np.median(rounds)))
                )
            else:
                for _ in range(repeats + 1):
                    for _ in range(m):
                        comm.Recv(0, tag=99)
                    for _ in range(m):
                        comm.Send(arr, 0, tag=99)
    return samples


def measure_transport(
    world: ProcWorld,
    *,
    sizes: tuple = (64, 1024, 8192, 65536),
    repeats: int = 30,
    bursts: tuple = (1, 2),
) -> dict:
    """Calibrate the transport's alpha/beta/gamma by burst ping-pong
    between ranks 0 and 1.

    Each ``(size n, burst m)`` configuration is timed as the median of
    ``repeats`` rounds of ``2m`` transfers, then all configurations are
    fit jointly by least squares to

        ``T_round = gamma + 2m * alpha + 2m * n / beta``

    Returns ``{"alpha": s/message, "beta": bytes/s, "gamma": s/round,
    "samples": [(bytes, burst, round_s)]}`` — the constants
    :func:`repro.parallel.perfmodel.machine_from_measurements` turns
    into a calibrated MachineModel (gamma becomes ``dispatch``).  Note
    the ping-pong traffic is merged into ``world.stats``; use a scratch
    world when exact solver accounting matters.  Burst depth is capped
    at 2 by the channels' double buffering.
    """
    if world.nranks < 2:
        raise ValueError("transport measurement needs at least 2 ranks")
    sizes = tuple(s for s in sizes if s <= world.slot_bytes)
    bursts = tuple(sorted(set(int(m) for m in bursts)))
    if any(m < 1 or m > 2 for m in bursts):
        raise ValueError("bursts must be within the channel depth (1-2)")
    results = world.run_spmd(
        _pingpong_program, [(sizes, bursts, repeats)] * world.nranks
    )
    samples = results[0]
    ns = np.array([s[0] for s in samples], dtype=float)
    ms = np.array([s[1] for s in samples], dtype=float)
    ts = np.array([s[2] for s in samples], dtype=float)
    A = np.stack([np.ones_like(ns), 2.0 * ms, 2.0 * ms * ns], axis=1)
    (gamma, alpha, slope), *_ = np.linalg.lstsq(A, ts, rcond=None)
    return {
        "alpha": float(max(alpha, 1e-9)),
        "beta": float(1.0 / max(slope, 1e-15)),
        "gamma": float(max(gamma, 0.0)),
        "samples": samples,
    }


#: process-wide memo of transport calibrations — the alpha/beta/gamma
#: of a transport flavour at a rank count are machine properties, not
#: per-world state, so one burst ping-pong serves every solver and
#: ``steps_per_exchange="auto"`` call in the process
_CALIBRATION_CACHE: dict[tuple, dict] = {}


def transport_fingerprint(world) -> tuple:
    """What makes two worlds calibration-equivalent: the transport
    implementation, the rank count, and the channel slot size (the
    ping-pong saturates differently against different slot depths)."""
    return (
        type(world).__name__,
        int(world.nranks),
        int(getattr(world, "slot_bytes", 0)),
    )


def calibrate_transport(
    world,
    *,
    sizes: tuple = (64, 1024, 8192, 65536),
    repeats: int = 30,
    bursts: tuple = (1, 2),
    refresh: bool = False,
) -> dict:
    """Memoized :func:`measure_transport`: the first call per
    ``(transport, nranks, slot_bytes, sizes, repeats, bursts)`` runs
    the burst ping-pong, every later one is a dictionary lookup — so
    ``steps_per_exchange="auto"`` and sharding heuristics stop paying
    the measurement on every solver construction.  ``refresh=True``
    forces a re-measurement (and replaces the memo entry);
    :func:`clear_transport_calibration` drops everything, which tests
    use to keep measurements hermetic."""
    key = transport_fingerprint(world) + (
        tuple(int(s) for s in sizes),
        int(repeats),
        tuple(sorted(set(int(m) for m in bursts))),
    )
    if not refresh:
        hit = _CALIBRATION_CACHE.get(key)
        if hit is not None:
            from repro import telemetry

            telemetry.count("service.calibration_hits")
            return dict(hit)
    meas = measure_transport(
        world, sizes=sizes, repeats=repeats, bursts=bursts
    )
    _CALIBRATION_CACHE[key] = dict(meas)
    return meas


def clear_transport_calibration() -> None:
    """Forget all memoized transport calibrations."""
    _CALIBRATION_CACHE.clear()
