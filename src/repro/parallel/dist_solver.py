"""Distributed explicit wave propagation over simulated MPI.

The paper's solver is bulk-synchronous: per time step each rank applies
its local element operator and exchanges interface partial sums.  This
module executes that loop for real — per-rank state vectors, per-step
ghost exchanges through :class:`repro.parallel.simcomm.SimComm`
mailboxes — and is verified to reproduce the serial
:class:`repro.solver.ElasticWaveSolver` trajectory bit-for-bit on
conforming meshes (see tests).

Scope: lumped mass, Lysmer absorbing damping (the ``c1`` coupling and
hanging-node projection would add further interface reductions; the
accounting for those is already covered by the operator-level layer).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.fem.assembly import lumped_mass
from repro.mesh.hexmesh import HexMesh
from repro.parallel.decomposition import DistributedElasticOperator
from repro.parallel.simcomm import SimWorld
from repro.physics.cfl import stable_timestep
from repro.physics.elastic import lame_from_velocities
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.solver.wave_solver import DEFAULT_ABSORBING


class DistributedWaveSolver:
    """SPMD central-difference elastodynamics on an element partition.

    Each rank holds copies of the grid points its elements touch; nodal
    quantities that must be globally consistent (mass, boundary
    damping) are interface-summed once at setup, and the stiffness
    partial sums are exchanged every step.
    """

    def __init__(
        self,
        mesh: HexMesh,
        material,
        parts: np.ndarray,
        world: SimWorld,
        *,
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        dt: float | None = None,
        cfl_safety: float = 0.5,
    ):
        if len(np.unique(mesh.elem_level)) > 1:
            raise ValueError(
                "DistributedWaveSolver requires a conforming mesh "
                "(hanging-node projection is not distributed)"
            )
        self.mesh = mesh
        self.world = world
        vs, vp, rho = material.query(mesh.elem_centers)
        lam, mu = lame_from_velocities(vs, vp, rho)
        self.dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
        self.dt = dt if dt is not None else stable_timestep(
            mesh.elem_h, vp, safety=cfl_safety
        )

        # globally consistent nodal mass and boundary damping, sliced
        # per rank (setup-time exchange, accounted once)
        m_global = lumped_mass(mesh.conn, mesh.elem_h, rho, mesh.nnode)
        faces = []
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            coeffs = stacey_coefficients(lam[idx], mu[idx], rho[idx])
            faces.append((fnodes, mesh.elem_h[idx], axis, side, coeffs))
        C_global, _ = stacey_boundary_matrices(
            faces, mesh.nnode, include_c1=False
        )
        self.m_local = [m_global[rp.nodes][:, None] for rp in self.dist.ranks]
        self.C_local = [C_global[rp.nodes] for rp in self.dist.ranks]
        for r, rp in enumerate(self.dist.ranks):
            # account the setup exchange (mass + damping on interfaces)
            for o, (loc, _) in rp.shared_with.items():
                world.stats[r].messages_sent += 1
                world.stats[r].bytes_sent += 8 * 4 * len(loc)

    def run(
        self,
        force_fn: Callable[[float], np.ndarray],
        t_end: float,
        *,
        callback: Callable[[int, float, np.ndarray], None] | None = None,
    ) -> np.ndarray:
        """March to ``t_end``; ``force_fn(t)`` returns the *global*
        nodal force field (each rank reads its slice, as if the sources
        had been assigned to owning ranks).  Returns the final global
        displacement, gathered for verification."""
        world = self.world
        dist = self.dist
        dt = self.dt
        nsteps = int(np.ceil(t_end / dt))
        ranks = dist.ranks
        nr = len(ranks)
        u_prev = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        comms = world.comms()

        for k in range(nsteps):
            t = k * dt
            b_global = force_fn(t)
            # superstep 1: local stiffness products
            Ku = []
            for r, rp in enumerate(ranks):
                y = dist.ops[r].matvec(u[r])
                world.stats[r].flops += dist.ops[r].flops_per_matvec
                Ku.append(y)
            # superstep 2: interface exchange of partial sums
            for r, rp in enumerate(ranks):
                for o, (loc, _) in rp.shared_with.items():
                    comms[r].send(Ku[r][loc], o, tag=r)
            for r, rp in enumerate(ranks):
                for o, (loc, _) in rp.shared_with.items():
                    Ku[r][loc] += comms[r].recv(o, tag=o)
                    world.stats[r].flops += 3 * len(loc)
            # superstep 3: local update (nodal data already consistent)
            for r, rp in enumerate(ranks):
                m = self.m_local[r]
                C = self.C_local[r]
                rhs = 2.0 * m * u[r] - dt**2 * Ku[r]
                rhs += (-m + 0.5 * dt * C) * u_prev[r]
                if b_global is not None:
                    rhs += dt**2 * b_global[rp.nodes]
                u_next = rhs / (m + 0.5 * dt * C)
                u_prev[r], u[r] = u[r], u_next
                world.stats[r].flops += 15 * len(rp.nodes)
            if callback is not None:
                callback(k, t, u)

        out = np.zeros((self.mesh.nnode, 3))
        for r, rp in enumerate(ranks):
            out[rp.nodes] = u[r]
        return out
